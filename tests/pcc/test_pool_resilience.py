"""The validation pool must degrade, never hang.

A multiprocessing pool worker can wedge (stuck syscall, livelock) or
die outright (OOM kill, segfault in a C extension).  ``validate_batch``
wraps every pool result in a per-item timeout, retries the stragglers
on a fresh pool, and finally falls back to in-process validation — so
the worst case is slow-but-correct, and every degradation is counted
in ``LoaderStats`` rather than suffered silently.

The faults are injected by monkeypatching ``_pool_validate`` in the
parent: fork-spawned children resolve the pickled-by-name function
against the patched module, so the children misbehave while the
in-process fallback path (which calls ``_serial_validate`` directly)
stays honest.
"""

import os
import time

import pytest

import repro.pcc.loader as loader_module
from repro.pcc.loader import ExtensionLoader


def _wedged(job):
    """A pool worker stuck in a syscall: sleeps far past any timeout."""
    time.sleep(3600)


def _doomed(job):
    """A pool worker dying abruptly: simulates an OOM kill / segfault."""
    os._exit(1)


@pytest.fixture()
def blobs(certified_filters):
    return [certified.binary.to_bytes()
            for certified in certified_filters.values()]


def _assert_all_valid(items, blobs):
    assert [item.index for item in items] == list(range(len(blobs)))
    for item in items:
        assert item.ok, item.error


class TestHealthyPool:
    def test_no_degradation_counters_move(self, filter_policy, blobs):
        loader = ExtensionLoader(filter_policy)
        items = loader.validate_batch(blobs, processes=2)
        _assert_all_valid(items, blobs)
        stats = loader.stats()
        assert stats.pool_timeouts == 0
        assert stats.pool_retries == 0
        assert stats.pool_fallbacks == 0


class TestWedgedWorkers:
    def test_wedge_degrades_to_serial_without_hanging(
            self, filter_policy, blobs, monkeypatch):
        monkeypatch.setattr(loader_module, "_pool_validate", _wedged)
        loader = ExtensionLoader(filter_policy)
        started = time.perf_counter()
        items = loader.validate_batch(blobs, processes=2,
                                      timeout=0.5, retries=1,
                                      retry_backoff=0.01)
        elapsed = time.perf_counter() - started
        # bounded: worst case ~= timeout * items * (retries + 1), never
        # the worker's hour-long sleep
        assert elapsed < 60
        _assert_all_valid(items, blobs)
        stats = loader.stats()
        assert stats.pool_timeouts >= len(blobs)
        assert stats.pool_retries == 1
        assert stats.pool_fallbacks == len(blobs)

    def test_zero_retries_goes_straight_to_fallback(
            self, filter_policy, blobs, monkeypatch):
        monkeypatch.setattr(loader_module, "_pool_validate", _wedged)
        loader = ExtensionLoader(filter_policy)
        items = loader.validate_batch(blobs, processes=2,
                                      timeout=0.5, retries=0)
        _assert_all_valid(items, blobs)
        stats = loader.stats()
        assert stats.pool_retries == 0
        assert stats.pool_fallbacks == len(blobs)


class TestKilledWorkers:
    def test_killed_workers_degrade_to_serial(self, filter_policy, blobs,
                                              monkeypatch):
        monkeypatch.setattr(loader_module, "_pool_validate", _doomed)
        loader = ExtensionLoader(filter_policy)
        items = loader.validate_batch(blobs, processes=2,
                                      timeout=1.0, retries=1,
                                      retry_backoff=0.01)
        _assert_all_valid(items, blobs)
        stats = loader.stats()
        assert stats.pool_fallbacks == len(blobs)
        assert stats.pool_retries == 1

    def test_results_match_a_healthy_run(self, filter_policy, blobs,
                                         monkeypatch):
        mixed = blobs + [b"junk"]
        healthy = ExtensionLoader(filter_policy).validate_batch(
            mixed, processes=2)

        monkeypatch.setattr(loader_module, "_pool_validate", _doomed)
        degraded = ExtensionLoader(filter_policy).validate_batch(
            mixed, processes=2, timeout=1.0, retries=0)
        assert [(item.index, item.ok, item.error) for item in healthy] \
            == [(item.index, item.ok, item.error) for item in degraded]


class TestStatsPlumbing:
    def test_counters_start_at_zero(self, filter_policy):
        stats = ExtensionLoader(filter_policy).stats()
        assert (stats.pool_timeouts, stats.pool_retries,
                stats.pool_fallbacks) == (0, 0, 0)
