"""Cross-process determinism of the content-addressed surfaces.

The loader caches on sha256 of bytes, and negotiation caches accept
decisions on :meth:`PolicyProposal.digest` — both only work if the same
logical input produces the same key in *every* process, regardless of
``PYTHONHASHSEED``.  These tests pin the digests to literals (so any
encoding change shows up as a diff, not a silent cache-miss regression)
and re-derive one in a subprocess with a different hash seed.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.filters.checksum import checksum_invariant
from repro.filters.policy import packet_filter_policy
from repro.lf.encode import encode_formula
from repro.logic.formulas import conj, ge
from repro.logic.terms import Var
from repro.pcc.loader import ExtensionLoader
from repro.pcc.negotiate import PolicyProposal, propose_policy
from repro.proof.store import subproof_digest

#: propose_policy(packet_filter_policy(), conj([ge(Var('r2'), 64)])) —
#: i.e. "the frame is at least the contract minimum", the implication
#: every negotiation demo in this repo starts from.
PINNED_PROPOSAL_DIGEST = \
    "c026993f62de0d4808932231c7971019ac46950b228eb0a387c40936bba1282e"

#: PolicyProposal(b"precondition", b"stream", b"proof-table",
#: b"proof-stream") — pins the digest *format* (length-prefixed sha256)
#: independently of the LF encoder.
PINNED_RAW_DIGEST = \
    "e822be4e0b2d34761e0503ab38ae16c94ec3d4865665a1f92c41908ec860526e"

#: subproof_digest(encode_formula(checksum_invariant(), {}, 0)) — the
#: proof store's content address for the checksum loop invariant.  The
#: store shares subproofs *across processes* (a producer harvests, a
#: later producer reuses), so this key must be a pure function of term
#: structure: canonical LF wire encoding, length-framed, sha256.
PINNED_SUBPROOF_DIGEST = \
    "bec0573c6008d11f19c6a99488c569b9b49a66425b85da2114e87b4627d7cb5b"

SUBPROOF_SNIPPET = """
from repro.filters.checksum import checksum_invariant
from repro.lf.encode import encode_formula
from repro.proof.store import subproof_digest
print(subproof_digest(encode_formula(checksum_invariant(), {}, 0)))
"""

DIGEST_SNIPPET = """
from repro.filters.policy import packet_filter_policy
from repro.logic.formulas import conj, ge
from repro.logic.terms import Var
from repro.pcc.negotiate import propose_policy
proposal = propose_policy(packet_filter_policy(),
                          conj([ge(Var('r2'), 64)]))
print(proposal.digest())
"""


def _proposal():
    return propose_policy(packet_filter_policy(),
                          conj([ge(Var("r2"), 64)]))


def test_proposal_digest_is_pinned():
    assert _proposal().digest() == PINNED_PROPOSAL_DIGEST


def test_raw_digest_format_is_pinned():
    proposal = PolicyProposal(b"precondition", b"stream",
                              b"proof-table", b"proof-stream")
    assert proposal.digest() == PINNED_RAW_DIGEST


def test_digest_survives_wire_round_trip():
    proposal = _proposal()
    assert PolicyProposal.from_bytes(
        proposal.to_bytes()).digest() == proposal.digest()


def test_digest_is_hash_seed_independent():
    """The whole pipeline — prover, LF encoder, digest — rerun in a
    subprocess under a different PYTHONHASHSEED must reproduce the
    pinned digest bit-for-bit."""
    env = dict(os.environ)
    current = env.get("PYTHONHASHSEED", "random")
    env["PYTHONHASHSEED"] = "1" if current != "1" else "2"
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = str(src)
    output = subprocess.run(
        [sys.executable, "-c", DIGEST_SNIPPET], env=env,
        capture_output=True, text=True, check=True)
    assert output.stdout.strip() == PINNED_PROPOSAL_DIGEST


def test_subproof_digest_is_pinned():
    assert subproof_digest(
        encode_formula(checksum_invariant(), {}, 0)) == \
        PINNED_SUBPROOF_DIGEST


def test_subproof_digest_is_hash_seed_independent():
    """The proof store's content address rerun under a different
    PYTHONHASHSEED must reproduce the pinned digest bit-for-bit — a
    seed-dependent key would silently break cross-process subproof
    sharing (every lookup a miss) and, worse, patch entry resolution."""
    env = dict(os.environ)
    current = env.get("PYTHONHASHSEED", "random")
    env["PYTHONHASHSEED"] = "1" if current != "1" else "2"
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = str(src)
    output = subprocess.run(
        [sys.executable, "-c", SUBPROOF_SNIPPET], env=env,
        capture_output=True, text=True, check=True)
    assert output.stdout.strip() == PINNED_SUBPROOF_DIGEST


def test_loader_stats_invariant_under_submission_order(certified_filters):
    """validate_batch outcomes and the loads/hits/misses ledger depend
    only on the multiset of submissions, not their order."""
    policy = packet_filter_policy()
    blobs = [certified.binary.to_bytes()
             for name, certified in sorted(certified_filters.items())
             if name.startswith("filter")]
    submissions = blobs + blobs[:2] + [b"garbage"]

    ledgers = []
    for ordering in (submissions, list(reversed(submissions))):
        loader = ExtensionLoader(policy)
        outcomes = loader.validate_batch(ordering)
        stats = loader.stats()
        ledgers.append({
            "ok": sorted(item.ok for item in outcomes),
            "loads": stats.loads,
            "hits": stats.hits,
            "misses": stats.misses,
        })
    assert ledgers[0] == ledgers[1]
    assert ledgers[0]["ok"].count(True) == len(blobs) + 2
