"""End-to-end PCC: produce, validate, execute — the Figure 1 lifecycle."""

import struct

import pytest

from repro.alpha.machine import Memory
from repro.errors import CertificationError, ValidationError
from repro.pcc import CodeConsumer, CodeProducer, certify, validate
from tests.conftest import RESOURCE_ACCESS_SOURCE


class TestResourceAccess:
    """The §2 worked example, from source to kernel-table mutation."""

    def _table_memory(self, tag, data):
        memory = Memory()
        memory.map_region(0x1000, struct.pack("<QQ", tag, data),
                          writable=True, name="table")
        return memory

    def test_full_lifecycle(self, resource_policy, resource_certified):
        consumer = CodeConsumer(resource_policy)
        extension = consumer.install(resource_certified.binary.to_bytes())

        # writable entry: the data word is incremented
        memory = self._table_memory(tag=5, data=41)
        extension.run(memory, registers={0: 0x1000})
        tag, data = struct.unpack("<QQ", bytes(memory.region("table")))
        assert (tag, data) == (5, 42)

        # read-only entry (tag 0): nothing written
        memory = self._table_memory(tag=0, data=41)
        extension.run(memory, registers={0: 0x1000})
        assert struct.unpack("<QQ", bytes(memory.region("table")))[1] == 41

    def test_report_metrics(self, resource_policy, resource_certified):
        report = validate(resource_certified.binary.to_bytes(),
                          resource_policy, measure_memory=True)
        assert report.instructions == 7
        assert report.validation_seconds > 0
        assert report.peak_memory_bytes > 0
        assert report.code_bytes == 28
        # the paper: proof roughly 3x the code (ours is fatter, but the
        # proof must dominate the code section)
        assert report.proof_bytes > report.code_bytes

    def test_unsafe_variant_cannot_be_certified(self, resource_policy):
        # writing the *tag* (read-only) instead of the data word
        unsafe = """
            ADDQ r0, 8, r1
            LDQ  r2, 0(r0)
            STQ  r2, 0(r0)
            RET
        """
        with pytest.raises(CertificationError):
            certify(unsafe, resource_policy)

    def test_unconditional_write_cannot_be_certified(self, resource_policy):
        # writing the data word without checking the tag
        unsafe = """
            LDQ  r2, 8(r0)
            ADDQ r2, 1, r2
            STQ  r2, 8(r0)
            RET
        """
        with pytest.raises(CertificationError):
            certify(unsafe, resource_policy)

    def test_wrong_policy_rejized(self, resource_policy, filter_policy,
                                   resource_certified):
        """A binary certified for one policy fails another consumer."""
        blob = resource_certified.binary.to_bytes()
        with pytest.raises(ValidationError):
            validate(blob, filter_policy)

    def test_try_install(self, resource_policy, resource_certified):
        consumer = CodeConsumer(resource_policy)
        assert consumer.try_install(
            resource_certified.binary.to_bytes()) is not None
        assert consumer.try_install(b"garbage") is None
        assert len(consumer.loaded) == 1

    def test_producer_facade(self, resource_policy):
        producer = CodeProducer(resource_policy)
        blob = producer.build(RESOURCE_ACCESS_SOURCE)
        consumer = CodeConsumer(resource_policy)
        assert consumer.install(blob) is not None
