"""The extension loader: content-addressed cache, counters, batch pool.

The cache key is ``sha256(binary bytes) x policy fingerprint``; these
tests pin the keying discipline (every policy field participates, byte
identity is required), the counter algebra (hits + misses == loads), and
the batch path (pool fan-out, per-item error isolation, within-batch
dedup).  The tier-1 smoke test pushes a small batch through an actual
``multiprocessing`` pool.
"""

import pytest

from repro.errors import ValidationError
from repro.logic.formulas import conj, rd
from repro.logic.terms import Var, add64
from repro.pcc import validate
from repro.pcc.container import PccBinary
from repro.pcc.loader import ExtensionLoader, policy_fingerprint
from repro.vcgen.policy import SafetyPolicy, resource_access_policy


@pytest.fixture()
def loader(resource_policy):
    return ExtensionLoader(resource_policy, capacity=8)


@pytest.fixture(scope="module")
def resource_blob(resource_certified):
    return resource_certified.binary.to_bytes()


class TestCacheBehaviour:
    def test_second_load_hits_and_returns_cached_report(self, loader,
                                                        resource_blob):
        cold = loader.load(resource_blob)
        warm = loader.load(resource_blob)
        assert warm is cold
        stats = loader.stats()
        assert (stats.loads, stats.hits, stats.misses) == (2, 1, 1)

    def test_warm_report_equals_cold_validate(self, loader, resource_blob,
                                              resource_policy):
        loader.load(resource_blob)
        warm = loader.load(resource_blob)
        cold = validate(resource_blob, resource_policy)
        assert warm.program == cold.program
        assert warm.predicate == cold.predicate

    def test_pccbinary_object_and_bytes_share_an_entry(self, loader,
                                                       resource_certified,
                                                       resource_blob):
        loader.load(resource_certified.binary)
        assert loader.load(resource_blob) is not None
        assert loader.stats().hits == 1

    def test_rejections_are_not_cached(self, loader):
        for __ in range(2):
            with pytest.raises(ValidationError):
                loader.load(b"garbage")
        stats = loader.stats()
        assert stats.misses == 2 and stats.hits == 0 and stats.size == 0

    def test_explicit_evict_forces_revalidation(self, loader,
                                                resource_blob):
        loader.load(resource_blob)
        assert resource_blob in loader
        assert loader.evict(resource_blob) is True
        assert resource_blob not in loader
        assert loader.evict(resource_blob) is False
        loader.load(resource_blob)
        stats = loader.stats()
        assert stats.misses == 2 and stats.evictions == 1

    def test_clear_empties_and_counts(self, loader, resource_blob):
        loader.load(resource_blob)
        assert loader.clear() == 1
        assert len(loader) == 0
        assert loader.stats().evictions == 1

    def test_measure_memory_bypasses_and_refreshes(self, loader,
                                                   resource_blob):
        stale = loader.load(resource_blob)
        assert stale.peak_memory_bytes == 0
        fresh = loader.load(resource_blob, measure_memory=True)
        assert fresh.peak_memory_bytes > 0
        assert loader.stats().misses == 2
        # the refreshed (measured) report is now the cached one
        assert loader.load(resource_blob) is fresh

    def test_capacity_must_be_positive(self, resource_policy):
        with pytest.raises(ValueError):
            ExtensionLoader(resource_policy, capacity=0)


class TestPolicyFingerprint:
    def test_every_field_participates(self):
        r0 = Var("r0")
        base = resource_access_policy()
        variants = [
            base,
            SafetyPolicy(base.name + "x", base.precondition,
                         base.postcondition, base.make_checkers),
            SafetyPolicy(base.name, conj([base.precondition,
                                          rd(add64(r0, 16))]),
                         base.postcondition, base.make_checkers),
            SafetyPolicy(base.name, base.precondition,
                         rd(r0), base.make_checkers),
            SafetyPolicy(base.name, base.precondition,
                         base.postcondition, None),
        ]
        prints = [policy_fingerprint(p) for p in variants]
        assert len(set(prints)) == len(prints)

    def test_structurally_equal_policies_fingerprint_equally(self):
        assert policy_fingerprint(resource_access_policy()) == \
            policy_fingerprint(resource_access_policy())

    def test_fresh_loader_for_equal_policy_still_validates_cold(
            self, resource_policy, resource_blob):
        """Fingerprint equality shares nothing: each loader's cache is
        its own — equality only means a *shared* cache would be sound."""
        first = ExtensionLoader(resource_policy)
        second = ExtensionLoader(resource_policy)
        first.load(resource_blob)
        second.load(resource_blob)
        assert second.stats().misses == 1


class TestBatchSmoke:
    def test_small_batch_through_the_pool(self, filter_policy,
                                          certified_filters):
        """Tier-1 smoke: a small mixed batch through an actual pool."""
        blobs = [certified_filters[name].binary.to_bytes()
                 for name in ("filter1", "filter2")]
        bad = b"\x00" * 40
        loader = ExtensionLoader(filter_policy)
        items = loader.validate_batch(blobs + [bad, blobs[0]],
                                      processes=2)
        assert [item.ok for item in items] == [True, True, False, True]
        assert [item.index for item in items] == [0, 1, 2, 3]
        assert items[2].error and not items[2].cached
        with pytest.raises(ValidationError):
            items[2].unwrap()
        # within-batch dedup: items 0 and 3 share one validation
        assert items[3].report is items[0].report
        stats = loader.stats()
        assert stats.loads == 4 and stats.hits + stats.misses == 4

    def test_serial_and_inprocess_paths_agree(self, filter_policy,
                                              certified_filters):
        blob = certified_filters["filter3"].binary.to_bytes()
        loader = ExtensionLoader(filter_policy)
        serial = loader.validate_batch([blob, b"junk"], processes=0)
        assert [item.ok for item in serial] == [True, False]
        # resubmission: the valid item now comes from the cache
        again = loader.validate_batch([blob, b"junk"], processes=0)
        assert again[0].cached and again[0].report is serial[0].report
        assert not again[1].ok

    def test_batch_results_feed_consumer_install(self, filter_policy,
                                                 certified_filters):
        from repro.pcc import CodeConsumer

        blobs = [certified_filters[name].binary.to_bytes()
                 for name in ("filter1", "filter4")]
        consumer = CodeConsumer(filter_policy)
        extensions = consumer.install_batch(blobs + [b"bad"], processes=0)
        assert extensions[0] is not None and extensions[1] is not None
        assert extensions[2] is None
        assert len(consumer.loaded) == 2
        assert consumer.loader_stats().misses == 3

    def test_consumer_install_reuses_cache(self, resource_policy,
                                           resource_blob):
        from repro.pcc import CodeConsumer

        consumer = CodeConsumer(resource_policy)
        first = consumer.install(resource_blob)
        second = consumer.install(resource_blob)
        assert second.report is first.report
        stats = consumer.loader_stats()
        assert stats.hits == 1 and stats.misses == 1


class TestEmptyAndEdgeBatches:
    def test_empty_batch(self, resource_policy):
        assert ExtensionLoader(resource_policy).validate_batch([]) == []

    def test_single_item_batch_stays_in_process(self, resource_policy,
                                                resource_blob):
        loader = ExtensionLoader(resource_policy)
        [item] = loader.validate_batch([resource_blob])
        assert item.ok and item.index == 0

    def test_corrupt_container_isolated(self, resource_policy,
                                        resource_certified):
        binary = resource_certified.binary
        truncated = binary.to_bytes()[:-3]
        swapped = PccBinary(binary.code, binary.proof,
                            binary.relocation).to_bytes()
        loader = ExtensionLoader(resource_policy)
        items = loader.validate_batch(
            [truncated, binary.to_bytes(), swapped], processes=0)
        assert [item.ok for item in items] == [False, True, False]
