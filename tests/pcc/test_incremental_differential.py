"""Differential layer: incremental certification vs full recertification.

The incremental path (``repro.pcc.incremental``) is a *producer-side*
optimization riding on a trusted-checker invariant: a container
reassembled from a proof patch must be admitted or rejected exactly as a
from-scratch certification of the same program would be.  This suite is
the de Bruijn criterion applied to that claim:

* Hypothesis drives random single- and multi-block mutations of a
  multi-pass loop program through both paths and asserts identical
  admission verdicts (both certify and validate, or both fail
  certification);
* the reconstructed container is bit-identical to the producer's and
  fully revalidates, and its ``pcc.mutate`` mutants are all rejected —
  a patched proof gets no slack a shipped proof would not;
* a *poisoned* patch — a subproof swapped for a perfectly well-formed
  proof of a different obligation, with its content digest updated so
  the hash check passes — must still be rejected, proving the applied
  patch is actually rechecked rather than trusted on resolution.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CertificationError, PatchError, ValidationError
from repro.filters.checksum import (
    checksum_policy,
    multipass_checksum_source,
    multipass_invariants,
)
from repro.pcc.certify import certify
from repro.pcc.container import PccBinary, unpack_proof
from repro.pcc.incremental import (
    ProofPatch,
    apply_patch,
    block_diff,
    certify_incremental,
    split_conjunction,
)
from repro.pcc.loader import ExtensionLoader
from repro.pcc.mutate import mutants
from repro.pcc.validate import validate
from repro.proof.store import ProofStore, subproof_digest
from repro.alpha.parser import parse_program

PASSES = 3
POLICY = checksum_policy()
INVARIANTS = multipass_invariants(PASSES)


@pytest.fixture(scope="module")
def base():
    return certify(multipass_checksum_source(PASSES), POLICY,
                   invariants=INVARIANTS)


@pytest.fixture(scope="module")
def base_blob(base):
    return base.binary.to_bytes()


def _edit(shifts: dict[int, int] | None = None, commuted=()) -> str:
    return multipass_checksum_source(PASSES, shifts, commuted)


class TestBlockDiff:
    def test_identical_programs_diff_empty(self, base):
        diff = block_diff(base.program, base.program)
        assert diff.changed == ()

    def test_single_pass_edit_is_local(self, base):
        edited = parse_program(_edit(commuted={1}))
        diff = block_diff(base.program, edited)
        assert len(diff.changed) == 1
        assert diff.old_blocks == diff.new_blocks


class TestSingleBlockUpgrade:
    def test_reuses_all_but_one_obligation(self, base_blob):
        store = ProofStore()
        result = certify_incremental(base_blob, _edit(commuted={1}),
                                     POLICY, invariants=INVARIANTS,
                                     store=store)
        assert result.total_parts == PASSES + 1
        assert result.proved_parts == 1
        assert result.reused_parts == PASSES
        # The patch ships exactly the changed obligation's subproof.
        assert len(result.patch.entries) == 1

    def test_code_only_edit_reuses_everything(self, base_blob):
        """A shift edit changes the code but provably not the predicate:
        every subproof is reused, the patch ships no entries, and full
        validation still passes on the reconstruction."""
        result = certify_incremental(base_blob, _edit({1: 9}), POLICY,
                                     invariants=INVARIANTS)
        assert result.proved_parts == 0
        assert result.patch.entries == {}
        rebuilt = apply_patch(result.patch, base_blob, POLICY)
        assert rebuilt.code != PccBinary.from_bytes(base_blob).code
        validate(rebuilt, POLICY)

    def test_reconstruction_is_bit_identical(self, base_blob):
        result = certify_incremental(base_blob, _edit(commuted={0}),
                                     POLICY, invariants=INVARIANTS)
        rebuilt = apply_patch(result.patch, base_blob, POLICY)
        assert rebuilt.to_bytes() == result.binary.to_bytes()
        report = validate(rebuilt, POLICY)
        full = certify(_edit(commuted={0}), POLICY,
                       invariants=INVARIANTS)
        assert report.predicate == full.predicate

    def test_patch_wire_roundtrip(self, base_blob):
        result = certify_incremental(base_blob, _edit(commuted={2}),
                                     POLICY, invariants=INVARIANTS)
        wire = result.patch.to_bytes()
        assert ProofPatch.from_bytes(wire) == result.patch
        # Consumer can apply straight from the wire form.
        rebuilt = apply_patch(wire, base_blob, POLICY)
        validate(rebuilt, POLICY)


class TestUpgradeChains:
    def test_chain_stays_warm(self, base_blob):
        """Each upgrade in a chain commutes one more pass: exactly one
        fresh obligation per round, the rest harvested from the store
        without re-splitting the previous proof."""
        store = ProofStore()
        current = base_blob
        commuted: set[int] = set()
        for round_index in range(PASSES):
            commuted.add(round_index)
            result = certify_incremental(
                current, _edit(commuted=commuted), POLICY,
                invariants=INVARIANTS, store=store)
            assert result.proved_parts == 1
            assert result.reused_parts == PASSES
            rebuilt = apply_patch(result.patch, current, POLICY,
                                  store=store)
            validate(rebuilt, POLICY)
            current = rebuilt.to_bytes()
        stats = store.stats()
        assert stats.verify_failures == 0
        # Shared-store growth is sublinear in upgrades: PASSES rounds
        # added only PASSES fresh subproofs to the original PASSES + 1.
        assert stats.entries == 2 * PASSES + 1


class TestDifferentialVerdicts:
    @settings(max_examples=8, deadline=None)
    @given(st.dictionaries(st.integers(min_value=0, max_value=PASSES - 1),
                           st.integers(min_value=1, max_value=20),
                           max_size=PASSES),
           st.sets(st.integers(min_value=0, max_value=PASSES - 1),
                   max_size=PASSES))
    def test_safe_mutations_agree(self, base_blob, shifts, commuted):
        """Random single/multi-block mutations (code-only shift edits
        and obligation-changing address commutes, in any mix): both
        paths certify, the reconstructed container validates, and
        predicates match."""
        source = _edit(shifts, commuted)
        full = certify(source, POLICY, invariants=INVARIANTS)
        result = certify_incremental(base_blob, source, POLICY,
                                     invariants=INVARIANTS)
        assert result.reused_parts + result.proved_parts == \
            result.total_parts
        rebuilt = apply_patch(result.patch, base_blob, POLICY)
        incremental_report = validate(rebuilt, POLICY)
        full_report = validate(full.binary, POLICY)
        assert incremental_report.predicate == full_report.predicate

    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=PASSES - 1))
    def test_unsafe_mutations_rejected_by_both_paths(self, base_blob,
                                                     which):
        """Swap a pass's buffer base for the length register: the load
        runs off the buffer, and *both* paths must refuse to certify
        with the same error type."""
        source = _edit().replace(
            f"loop{which}: ADDQ   r1, r4, r5",
            f"loop{which}: ADDQ   r2, r4, r5")
        with pytest.raises(CertificationError):
            certify(source, POLICY, invariants=INVARIANTS)
        with pytest.raises(CertificationError):
            certify_incremental(base_blob, source, POLICY,
                                invariants=INVARIANTS)

    def test_mutants_of_reconstruction_rejected(self, base_blob):
        """pcc.mutate's whole corruption vocabulary against the
        reconstructed container: every mutant must fail validation,
        exactly as mutants of a from-scratch container do."""
        result = certify_incremental(base_blob, _edit(commuted={1}),
                                     POLICY, invariants=INVARIANTS)
        rebuilt = apply_patch(result.patch, base_blob, POLICY)
        blob = rebuilt.to_bytes()
        total = 0
        for kind, mutant in mutants(blob, seed=7, rounds=2):
            total += 1
            with pytest.raises(ValidationError):
                validate(mutant, POLICY)
        assert total > 0


class TestPoisonedPatches:
    def test_bitflip_in_entry_fails_hash_check(self, base_blob):
        result = certify_incremental(base_blob, _edit(commuted={1}),
                                     POLICY, invariants=INVARIANTS)
        patch = result.patch
        (digest, blob), = patch.entries.items()
        poisoned = ProofPatch(
            patch.base_digest, patch.fingerprint, patch.code,
            patch.invariants, patch.part_digests,
            {digest: blob[:40] + bytes([blob[40] ^ 1]) + blob[41:]},
            patch.changed_blocks)
        with pytest.raises(PatchError):
            apply_patch(poisoned, base_blob, POLICY)

    def test_substituted_subproof_rejected_by_full_recheck(self, base,
                                                           base_blob):
        """The strongest poison: replace the changed obligation's
        subproof with a *valid, well-formed* subproof of a different
        obligation, and fix the claimed digest so the content-hash check
        passes.  Resolution and hashing succeed; only the full proof
        recheck can catch it — and must."""
        result = certify_incremental(base_blob, _edit(commuted={1}),
                                     POLICY, invariants=INVARIANTS)
        patch = result.patch
        poison_digest, = patch.entries
        # A genuine subproof of a *different* obligation, from the base.
        base_parts = split_conjunction(
            unpack_proof(base.binary.relocation, base.binary.proof),
            PASSES + 1)
        foreign = base_parts[0]
        foreign_digest = subproof_digest(foreign)
        assert foreign_digest != poison_digest
        store = ProofStore()
        store.put(foreign)
        substituted_digests = tuple(
            foreign_digest if digest == poison_digest else digest
            for digest in patch.part_digests)
        poisoned = ProofPatch(
            patch.base_digest, patch.fingerprint, patch.code,
            patch.invariants, substituted_digests,
            {foreign_digest: store.get_blob(foreign_digest)},
            patch.changed_blocks)
        # apply_patch resolves and reassembles without complaint...
        rebuilt = apply_patch(poisoned, base_blob, POLICY)
        # ...and the mandatory full revalidation is what rejects it.
        with pytest.raises(ValidationError):
            validate(rebuilt, POLICY)
        loader = ExtensionLoader(POLICY)
        with pytest.raises(ValidationError):
            loader.load_patch(poisoned, base_blob)
        assert loader.stats().patch_rejects == 1

    def test_wrong_base_rejected(self, base_blob):
        result = certify_incremental(base_blob, _edit(commuted={1}),
                                     POLICY, invariants=INVARIANTS)
        other = certify(_edit({0: 5}), POLICY,
                        invariants=INVARIANTS).binary.to_bytes()
        with pytest.raises(PatchError):
            apply_patch(result.patch, other, POLICY)

    def test_wrong_policy_fingerprint_rejected(self, base_blob):
        from repro.filters.policy import packet_filter_policy

        result = certify_incremental(base_blob, _edit(commuted={1}),
                                     POLICY, invariants=INVARIANTS)
        with pytest.raises(PatchError):
            apply_patch(result.patch, base_blob, packet_filter_policy())

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_truncations_fail_closed(self, base_blob, data):
        result = certify_incremental(base_blob, _edit(commuted={1}),
                                     POLICY, invariants=INVARIANTS)
        wire = result.patch.to_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        with pytest.raises(PatchError):
            patch = ProofPatch.from_bytes(wire[:cut])
            apply_patch(patch, base_blob, POLICY)
