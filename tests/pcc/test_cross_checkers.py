"""Cross-validation of the two independent proof checkers.

The repository has two validators for the same proofs: the direct Delta
checker over natural-deduction trees, and the LF type checker over the
encoded objects (the paper's validator).  Every certified artifact must
satisfy BOTH — a disagreement would mean one of the trusted cores is
wrong, so this is the deepest consistency test in the suite.
"""

import pytest

from repro.lf.encode import encode_formula, encode_proof
from repro.lf.binary import deserialize_lf, serialize_lf
from repro.lf.signature import SIGNATURE
from repro.lf.syntax import LfApp, LfConst
from repro.lf.typecheck import check_proof_term
from repro.proof.checker import check_proof


def _cross_validate(certified):
    # 1. the Delta checker accepts the raw proof
    check_proof(certified.proof, certified.predicate)
    # 2. the LF checker accepts the encoded proof
    lf_proof = encode_proof(certified.proof, certified.predicate)
    expected = LfApp(LfConst("pf"),
                     encode_formula(certified.predicate, {}, 0))
    check_proof_term(lf_proof, expected, SIGNATURE)
    # 3. and still after a wire round trip (what the consumer really sees)
    table, stream = serialize_lf(lf_proof)
    check_proof_term(deserialize_lf(table, stream), expected, SIGNATURE)


class TestCrossValidation:
    def test_resource_access(self, resource_certified):
        _cross_validate(resource_certified)

    @pytest.mark.parametrize("name", ["filter1", "filter2", "filter3",
                                      "filter4", "scratch-counter"])
    def test_packet_filters(self, certified_filters, name):
        _cross_validate(certified_filters[name])

    def test_checksum_with_loop(self):
        from repro.filters.checksum import (
            CHECKSUM_LOOP_PC,
            CHECKSUM_SOURCE,
            checksum_invariant,
            checksum_policy,
        )
        from repro.pcc import certify

        certified = certify(
            CHECKSUM_SOURCE, checksum_policy(),
            invariants={CHECKSUM_LOOP_PC: checksum_invariant()})
        _cross_validate(certified)

    def test_sfi_rewritten(self):
        from repro.baselines.sfi import sfi_policy, sfi_rewrite
        from repro.filters.programs import FILTERS
        from repro.pcc import certify

        certified = certify(sfi_rewrite(FILTERS[0].program), sfi_policy())
        _cross_validate(certified)

    def test_m3_compiled(self, filter_policy):
        from repro.baselines.m3 import M3_VIEW_FILTERS, compile_view
        from repro.pcc import certify

        certified = certify(compile_view(M3_VIEW_FILTERS["filter1"]),
                            filter_policy)
        _cross_validate(certified)
