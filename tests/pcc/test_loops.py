"""Loop support beyond the single checksum loop: multiple cut points,
invariant-table wire format, and wrong-invariant rejection."""

import random
import struct

import pytest

from repro.alpha.machine import Machine, Memory
from repro.alpha.parser import parse_program
from repro.errors import CertificationError
from repro.filters.checksum import (
    checksum_memory,
    checksum_policy,
    checksum_registers,
    pad_to_words,
)
from repro.logic.formulas import conj, eq, lt
from repro.logic.terms import Var, and64, mod64
from repro.pcc import certify, validate
from repro.vcgen.policy import word_identity

#: Two sequential loops over the same buffer: the first sums the words,
#: the second XORs them; result is sum (+) xor in r0.  Each backward
#: branch needs its own invariant — two cut points in one binary.
TWO_LOOPS = """
        SUBQ   r4, r4, r4      % i := 0
        SUBQ   r0, r0, r0      % sum := 0
        BR     check1
loop1:  ADDQ   r1, r4, r5
        LDQ    r5, 0(r5)
        ADDQ   r0, r5, r0
        ADDQ   r4, 8, r4
check1: CMPULT r4, r2, r5
        BNE    r5, loop1
        SUBQ   r4, r4, r4      % i := 0 again
        SUBQ   r6, r6, r6      % xor := 0
        BR     check2
loop2:  ADDQ   r1, r4, r5
        LDQ    r5, 0(r5)
        XOR    r6, r5, r6
        ADDQ   r4, 8, r4
check2: CMPULT r4, r2, r5
        BNE    r5, loop2
        ADDQ   r0, r6, r0
        RET
"""

LOOP1_PC = 3
LOOP2_PC = 12


def _loop_invariant():
    from repro.filters.checksum import checksum_invariant
    return checksum_invariant()


def _reference(data: bytes) -> int:
    words = struct.unpack(f"<{len(pad_to_words(data)) // 8}Q",
                          pad_to_words(data))
    total = sum(words) % (1 << 64)
    xored = 0
    for word in words:
        xored ^= word
    return (total + xored) % (1 << 64)


class TestTwoLoops:
    @pytest.fixture(scope="class")
    def certified(self):
        invariant = _loop_invariant()
        return certify(TWO_LOOPS, checksum_policy(),
                       invariants={LOOP1_PC: invariant,
                                   LOOP2_PC: invariant})

    def test_certifies_and_validates(self, certified):
        report = validate(certified.binary.to_bytes(), checksum_policy())
        assert report.instructions == len(certified.program)

    def test_invariant_table_has_two_entries(self, certified):
        from repro.pcc.container import unpack_invariants
        table = unpack_invariants(certified.binary.invariants)
        assert set(table) == {LOOP1_PC, LOOP2_PC}

    def test_semantics(self, certified):
        rng = random.Random(17)
        for length in (8, 40, 160):
            data = bytes(rng.randrange(256) for __ in range(length))
            machine = Machine(certified.program, checksum_memory(data),
                              checksum_registers(data))
            assert machine.run().value == _reference(data)

    def test_missing_one_invariant_rejected(self):
        with pytest.raises(CertificationError):
            certify(TWO_LOOPS, checksum_policy(),
                    invariants={LOOP1_PC: _loop_invariant()})

    def test_wrong_invariant_rejected(self):
        # claims r4 stays below 8 — not preserved by the increment
        bogus = conj([
            word_identity(Var("r1")),
            word_identity(Var("r2")),
            word_identity(Var("r4")),
            eq(and64(Var("r4"), 7), 0),
            lt(mod64(Var("r4")), 8),
        ])
        with pytest.raises(CertificationError):
            certify(TWO_LOOPS, checksum_policy(),
                    invariants={LOOP1_PC: bogus,
                                LOOP2_PC: bogus})
