"""The Safety Theorem on randomly generated programs.

Hypothesis generates random straight-line-with-forward-branches filter
programs whose loads stay within the policy's guaranteed window.  Every
one that certifies must (a) validate, and (b) never block the abstract
machine on any packet — the full Theorem 2.1 loop, mechanized.

Programs that do NOT certify (the generator sometimes produces unsafe
ones on purpose) must never slip through validation with a forged binary.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.alpha.abstract import AbstractMachine
from repro.alpha.machine import Machine
from repro.alpha.parser import parse_program
from repro.errors import CertificationError, SafetyViolation
from repro.filters.policy import (
    filter_registers,
    packet_filter_policy,
    packet_memory,
)
from repro.pcc import certify, validate
from tests.generators import random_filter_source as _random_program

_POLICY = packet_filter_policy()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=6))
def test_certified_random_programs_never_block(seed, blocks):
    rng = random.Random(seed)
    source = _random_program(rng, blocks)
    certified = certify(source, _POLICY)  # must succeed: offsets are safe
    report = validate(certified.binary.to_bytes(), _POLICY)

    packet = bytes(rng.randrange(256) for __ in range(64))
    memory = packet_memory(packet)
    registers = filter_registers(len(packet))
    can_read, can_write = _POLICY.checkers(registers, lambda a: 0)
    abstract = AbstractMachine(report.program, memory, can_read,
                               can_write, dict(registers))
    abstract_result = abstract.run()

    concrete = Machine(report.program, packet_memory(packet),
                       dict(registers))
    assert concrete.run().value == abstract_result.value


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_unsafe_random_programs_rejected(seed):
    """Inject one out-of-window access into an otherwise safe program;
    certification must fail (the prover cannot prove a falsehood)."""
    rng = random.Random(seed)
    source = _random_program(rng, 2)
    bad_offset = rng.choice((64, 72, 128, 1000))
    unsafe = f"LDQ r4, {bad_offset}(r1)\n" + source
    try:
        certify(unsafe, _POLICY)
        raised = False
    except CertificationError:
        raised = True
    assert raised
