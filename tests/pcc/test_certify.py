"""Producer-side pipeline details: invariant canonicalization, error
wrapping, and the CertificationResult record."""

import pytest

from repro.errors import CertificationError
from repro.logic.formulas import Forall, Implies, conj, eq, ge, lt, rd
from repro.logic.terms import Var, add64, and64
from repro.pcc.certify import CertificationResult, canonicalize_invariants, certify
from repro.vcgen.policy import resource_access_policy, word_identity
from tests.conftest import RESOURCE_ACCESS_SOURCE


class TestCanonicalization:
    def test_binder_names_are_canonicalized(self):
        original = Forall("my_fancy_index", Implies(
            conj([ge(Var("my_fancy_index"), 0),
                  lt(Var("my_fancy_index"), Var("r2")),
                  eq(and64(Var("my_fancy_index"), 7), 0)]),
            rd(add64(Var("r1"), Var("my_fancy_index")))))
        canonical = canonicalize_invariants({3: original})[3]
        assert isinstance(canonical, Forall)
        assert canonical.var == "v0"

    def test_idempotent(self):
        formula = conj([word_identity(Var("r4")),
                        eq(and64(Var("r4"), 7), 0)])
        once = canonicalize_invariants({0: formula})
        twice = canonicalize_invariants(once)
        assert once == twice

    def test_register_variables_survive(self):
        formula = word_identity(Var("r4"))
        assert canonicalize_invariants({0: formula})[0] == formula


class TestCertifyApi:
    def test_accepts_source_text_and_programs(self, resource_policy):
        from repro.alpha.parser import parse_program
        from_text = certify(RESOURCE_ACCESS_SOURCE, resource_policy)
        from_program = certify(parse_program(RESOURCE_ACCESS_SOURCE),
                               resource_policy)
        assert from_text.binary.code == from_program.binary.code

    def test_result_record(self, resource_certified):
        assert isinstance(resource_certified, CertificationResult)
        assert len(resource_certified.program) == 7
        assert resource_certified.predicate is not None
        assert resource_certified.proof is not None

    def test_reproducible_binaries(self, resource_policy):
        first = certify(RESOURCE_ACCESS_SOURCE, resource_policy)
        second = certify(RESOURCE_ACCESS_SOURCE, resource_policy)
        assert first.binary.to_bytes() == second.binary.to_bytes()

    def test_assembly_errors_wrapped(self, resource_policy):
        with pytest.raises(CertificationError):
            certify("FNORD r1, r2, r3\nRET", resource_policy)

    def test_prover_failure_wrapped(self, resource_policy):
        with pytest.raises(CertificationError):
            certify("LDQ r0, 16(r0)\nRET", resource_policy)
