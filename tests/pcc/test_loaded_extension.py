"""The consumer-side execution handle: a small 'kernel' scenario driving
several installed extensions over shared state, plus cost accounting."""

import struct

from repro.alpha.machine import Memory
from repro.filters.policy import filter_registers, packet_memory
from repro.filters.programs import FILTERS
from repro.filters.trace import TraceConfig, generate_trace
from repro.pcc import CodeConsumer, CodeProducer
from repro.perf.cost import ALPHA_175


class TestKernelScenario:
    def test_multiple_extensions_one_consumer(self, filter_policy,
                                              certified_filters):
        consumer = CodeConsumer(filter_policy)
        for name in ("filter1", "filter4"):
            consumer.install(certified_filters[name].binary.to_bytes())
        assert len(consumer.loaded) == 2

        trace = generate_trace(TraceConfig(packets=120, seed=77))
        accepted = [0, 0]
        for frame in trace:
            for index, extension in enumerate(consumer.loaded):
                result = extension.run(packet_memory(frame),
                                       filter_registers(len(frame)))
                accepted[index] += bool(result.value)
        # filter1 (all IP) accepts a superset of filter4 (TCP port 25)
        assert accepted[0] > accepted[1]

    def test_cost_model_passthrough(self, filter_policy,
                                    certified_filters):
        consumer = CodeConsumer(filter_policy)
        extension = consumer.install(
            certified_filters["filter1"].binary.to_bytes())
        frame = generate_trace(TraceConfig(packets=1, seed=5))[0]
        without = extension.run(packet_memory(frame),
                                filter_registers(len(frame)))
        with_model = extension.run(packet_memory(frame),
                                   filter_registers(len(frame)),
                                   cost_model=ALPHA_175)
        assert without.instructions == with_model.instructions
        assert with_model.cycles >= without.instructions

    def test_extension_report_is_attached(self, filter_policy,
                                          certified_filters):
        consumer = CodeConsumer(filter_policy)
        extension = consumer.install(
            certified_filters["filter2"].binary.to_bytes())
        assert extension.report.instructions == 13
        assert extension.report.validation_seconds > 0
