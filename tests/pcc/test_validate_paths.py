"""Consumer-side validation: every rejection path, exercised.

validate() must catch and wrap every malformed-input failure as
ValidationError — an uncaught exception in the kernel's validator would
itself be a denial-of-service vector.
"""

import pytest

from repro.errors import ValidationError
from repro.lf.binary import serialize_lf
from repro.lf.encode import encode_formula
from repro.lf.syntax import LfConst, LfInt, lf_app
from repro.logic.formulas import Truth, eq
from repro.logic.terms import Var
from repro.pcc import validate
from repro.pcc.container import PccBinary, pack_invariants


def _reject(blob, policy):
    with pytest.raises(ValidationError):
        validate(blob, policy)


class TestRejectionPaths:
    def test_garbage_bytes(self, resource_policy):
        _reject(b"not a pcc binary at all", resource_policy)

    def test_empty_code_section(self, resource_policy, resource_certified):
        binary = resource_certified.binary
        _reject(PccBinary(b"", binary.relocation,
                          binary.proof).to_bytes(), resource_policy)

    def test_non_alpha_code_section(self, resource_policy,
                                    resource_certified):
        binary = resource_certified.binary
        _reject(PccBinary(b"\xff" * 8, binary.relocation,
                          binary.proof).to_bytes(), resource_policy)

    def test_code_with_wild_branch(self, resource_policy,
                                   resource_certified):
        from repro.alpha.encoding import encode_instruction
        from repro.alpha.isa import Br, Ret
        import struct
        # BR +100 jumps far outside the two-instruction program
        words = [encode_instruction(Br(100)), encode_instruction(Ret())]
        code = b"".join(struct.pack("<I", word) for word in words)
        binary = resource_certified.binary
        _reject(PccBinary(code, binary.relocation,
                          binary.proof).to_bytes(), resource_policy)

    def test_malformed_proof_stream(self, resource_policy,
                                    resource_certified):
        binary = resource_certified.binary
        _reject(PccBinary(binary.code, binary.relocation,
                          b"\xff\xff\xff").to_bytes(), resource_policy)

    def test_malformed_invariant_section(self, resource_policy,
                                         resource_certified):
        binary = resource_certified.binary
        _reject(PccBinary(binary.code, binary.relocation, binary.proof,
                          b"\x01\x02junk").to_bytes(), resource_policy)

    def test_invariant_decoding_to_non_formula(self, resource_policy,
                                               resource_certified):
        binary = resource_certified.binary
        bogus = pack_invariants({0: LfInt(42)})  # an int is not a formula
        _reject(PccBinary(binary.code, binary.relocation, binary.proof,
                          bogus).to_bytes(), resource_policy)

    def test_spurious_invariant_changes_predicate(self, resource_policy,
                                                  resource_certified):
        """Adding an (unneeded but well-formed) invariant changes the
        safety predicate, orphaning the proof."""
        binary = resource_certified.binary
        extra = pack_invariants(
            {3: encode_formula(eq(Var("r0"), Var("r0")), {}, 0)})
        _reject(PccBinary(binary.code, binary.relocation, binary.proof,
                          extra).to_bytes(), resource_policy)

    def test_proof_of_trivial_truth_rejected(self, resource_policy,
                                             resource_certified):
        """A (perfectly valid) proof of `true` is not a proof of SP."""
        binary = resource_certified.binary
        table, stream = serialize_lf(LfConst("truei"))
        _reject(PccBinary(binary.code, table, stream).to_bytes(),
                resource_policy)


class TestAcceptancePath:
    def test_report_fields_complete(self, resource_policy,
                                    resource_certified):
        report = validate(resource_certified.binary.to_bytes(),
                          resource_policy)
        assert report.binary_bytes == resource_certified.binary.size
        assert report.code_bytes + report.relocation_bytes \
            + report.proof_bytes <= report.binary_bytes
        assert report.peak_memory_bytes == 0  # not measured by default

    def test_pccbinary_object_accepted_directly(self, resource_policy,
                                                resource_certified):
        report = validate(resource_certified.binary, resource_policy)
        assert report.instructions == 7


class TestMonotonicTiming:
    """``validation_seconds`` must come from a monotonic clock (the
    loader's cached-vs-cold comparisons and Figure 9 subtract it)."""

    def test_clock_is_perf_counter(self):
        import importlib
        import time

        validate_module = importlib.import_module("repro.pcc.validate")
        assert validate_module._CLOCK is time.perf_counter

    def test_wall_clock_step_cannot_go_negative(self, monkeypatch,
                                                resource_policy,
                                                resource_certified):
        """Simulate NTP stepping time.time() backwards mid-validation:
        the reported duration must stay non-negative regardless."""
        import time as time_module

        backwards = iter([2_000_000_000.0, 1_000_000_000.0,
                          999_999_999.0])
        monkeypatch.setattr(time_module, "time",
                            lambda: next(backwards, 0.0))
        report = validate(resource_certified.binary.to_bytes(),
                          resource_policy)
        assert report.validation_seconds >= 0.0
