"""Run-time policy negotiation (§4 future work, implemented).

The producer proposes a new precondition P with a proof that the base
policy's guarantees imply it; the consumer validates the implication and
then accepts binaries certified under P.
"""

import pytest

from repro.errors import CertificationError, ValidationError
from repro.filters.policy import packet_filter_policy
from repro.logic.formulas import Forall, Implies, conj, eq, ge, lt, rd
from repro.logic.terms import Var, add64, and64
from repro.pcc import CodeConsumer, certify, validate
from repro.pcc.negotiate import PolicyProposal, accept_policy, propose_policy
from repro.vcgen.policy import SafetyPolicy, word_identity


def _restricted_precondition():
    """A weaker vocabulary: only the first 32 bytes are readable."""
    r1 = Var("r1")
    i = Var("i")
    guard = conj([ge(i, 0), lt(i, 32), eq(and64(i, 7), 0)])
    return conj([
        word_identity(r1),
        Forall("i", Implies(guard, rd(add64(r1, i)))),
    ])


class TestNegotiation:
    def test_round_trip(self, filter_policy):
        proposal = propose_policy(filter_policy,
                                  _restricted_precondition())
        blob = proposal.to_bytes()
        negotiated = accept_policy(filter_policy,
                                   PolicyProposal.from_bytes(blob))
        assert negotiated.name.endswith("+negotiated")

        # a binary certified under the negotiated policy validates
        certified = certify("LDQ r4, 8(r1)\nADDQ r4, 0, r0\nRET",
                            negotiated)
        report = validate(certified.binary.to_bytes(), negotiated)
        assert report.instructions == 3

        # and runs safely under the BASE policy's semantics (that is the
        # entire point of requiring BasePre => P)
        from repro.filters.policy import filter_registers, packet_memory
        from repro.alpha.abstract import AbstractMachine
        frame = bytes(range(64))
        registers = filter_registers(len(frame))
        can_read, can_write = filter_policy.checkers(registers,
                                                     lambda a: 0)
        AbstractMachine(report.program, packet_memory(frame), can_read,
                        can_write, registers).run()

    def test_overreaching_proposal_rejected_at_source(self, filter_policy):
        """Asking to read beyond what the base policy guarantees cannot
        even be proposed (the producer cannot prove the implication)."""
        r1, i = Var("r1"), Var("i")
        greedy = conj([
            word_identity(r1),
            Forall("i", Implies(
                conj([ge(i, 0), lt(i, 4096), eq(and64(i, 7), 0)]),
                rd(add64(r1, i)))),
        ])
        with pytest.raises(CertificationError):
            propose_policy(filter_policy, greedy)

    def test_forged_proposal_rejected_by_consumer(self, filter_policy):
        """Swapping the proposed precondition after proving invalidates
        the proof."""
        honest = propose_policy(filter_policy, _restricted_precondition())
        from repro.lf.binary import serialize_lf
        from repro.lf.encode import encode_formula
        r1 = Var("r1")
        greedy = conj([
            word_identity(r1),
            Forall("i", Implies(
                conj([ge(Var("i"), 0), lt(Var("i"), 4096),
                      eq(and64(Var("i"), 7), 0)]),
                rd(add64(r1, Var("i"))))),
        ])
        table, stream = serialize_lf(encode_formula(greedy, {}, 0))
        forged = PolicyProposal(table, stream, honest.proof_table,
                                honest.proof_stream)
        with pytest.raises(ValidationError):
            accept_policy(filter_policy, forged)

    def test_garbage_proposal_rejected(self, filter_policy):
        with pytest.raises(ValidationError):
            accept_policy(filter_policy, b"\x00\x01garbage")

    def test_base_binary_may_fail_negotiated_policy(self, filter_policy):
        """Narrowing works both ways: a binary reading offset 40 is fine
        under the base policy but not under the 32-byte proposal."""
        negotiated = accept_policy(
            filter_policy,
            propose_policy(filter_policy, _restricted_precondition()))
        source = "LDQ r4, 40(r1)\nADDQ r4, 0, r0\nRET"
        certify(source, filter_policy)  # fine under base
        with pytest.raises(CertificationError):
            certify(source, negotiated)
