"""Postconditions (paper §2.1-§2.2): "we can also specify a postcondition
as part of the safety policy, which would require particular invariants to
be valid when the user code terminates."

These tests certify programs against policies with non-trivial
postconditions — boolean verdicts and final-memory-state facts — and
check that lying programs are rejected.
"""

import pytest

from repro.errors import CertificationError
from repro.logic.formulas import Implies, Or, conj, eq, ne
from repro.logic.terms import Var, add64, mod64, sel
from repro.pcc import certify, validate
from repro.vcgen.policy import SafetyPolicy, word_identity
from repro.logic.formulas import wr, rd


def _boolean_verdict_policy() -> SafetyPolicy:
    """The verdict register must hold 0 or 1 at exit."""
    return SafetyPolicy(
        name="boolean-verdict",
        precondition=word_identity(Var("r1")),
        postcondition=Or(eq(Var("r0"), 0), eq(Var("r0"), 1)),
    )


def _store_echo_policy() -> SafetyPolicy:
    """r3 is writable; at exit, the cell at r3 must hold r1's word value
    — a data postcondition over the final memory state."""
    r1, r3 = Var("r1"), Var("r3")
    return SafetyPolicy(
        name="store-echo",
        precondition=conj([word_identity(r1), word_identity(r3),
                           wr(r3), rd(r3)]),
        postcondition=eq(sel(Var("rm"), r3), mod64(r1)),
    )


class TestBooleanVerdict:
    def test_compare_result_certifies(self):
        policy = _boolean_verdict_policy()
        certified = certify("CMPEQ r1, 8, r0\nRET", policy)
        validate(certified.binary.to_bytes(), policy)

    def test_cmpult_and_cmpule_too(self):
        policy = _boolean_verdict_policy()
        certify("CMPULT r1, 64, r0\nRET", policy)
        certify("CMPULE r1, r1, r0\nRET", policy)

    def test_arbitrary_verdict_rejected(self):
        policy = _boolean_verdict_policy()
        with pytest.raises(CertificationError):
            certify("ADDQ r1, 5, r0\nRET", policy)

    def test_constant_verdicts_certify(self):
        policy = _boolean_verdict_policy()
        certify("SUBQ r0, r0, r0\nRET", policy)  # 0: left disjunct
        certify("SUBQ r0, r0, r0\nADDQ r0, 1, r0\nRET", policy)


def _semaphore_policy() -> SafetyPolicy:
    """The §2 sketch: "we could change the tag word in the table entry to
    be a semaphore ... furthermore, we could also require (via a simple
    postcondition) that the code releases the semaphore before
    returning."  Release is modelled as storing 1 into the tag cell."""
    r0 = Var("r0")
    rm = Var("rm")
    precondition = conj([
        word_identity(r0),
        rd(r0),
        rd(add64(r0, 8)),
        wr(r0),
        Implies(ne(sel(rm, r0), 0), wr(add64(r0, 8))),
    ])
    return SafetyPolicy(
        name="semaphore-release",
        precondition=precondition,
        postcondition=eq(sel(Var("rm"), r0), 1),
    )


SEMAPHORE_CLIENT = """
    ADDQ r0, 8, r1     % data address
    LDQ  r2, 0(r0)     % the semaphore / tag
    LDQ  r3, 8(r0)     % the data word
    ADDQ r3, 1, r3
    BEQ  r2, rel       % not held for us: skip the write
    STQ  r3, 0(r1)
rel: SUBQ r2, r2, r2
    ADDQ r2, 1, r2
    STQ  r2, 0(r0)     % release: semaphore := 1
    RET
"""


class TestSemaphoreRelease:
    def test_releasing_client_certifies(self):
        policy = _semaphore_policy()
        certified = certify(SEMAPHORE_CLIENT, policy)
        validate(certified.binary.to_bytes(), policy)

    def test_forgetting_to_release_rejected(self):
        policy = _semaphore_policy()
        forgetful = """
            ADDQ r0, 8, r1
            LDQ  r2, 0(r0)
            LDQ  r3, 8(r0)
            ADDQ r3, 1, r3
            BEQ  r2, out
            STQ  r3, 0(r1)
        out: RET
        """
        with pytest.raises(CertificationError):
            certify(forgetful, policy)

    def test_releasing_on_one_path_only_rejected(self):
        policy = _semaphore_policy()
        half_released = """
            LDQ  r2, 0(r0)
            BEQ  r2, out
            SUBQ r2, r2, r2
            ADDQ r2, 1, r2
            STQ  r2, 0(r0)
        out: RET
        """
        with pytest.raises(CertificationError):
            certify(half_released, policy)

    def test_released_semantics(self):
        from repro.alpha.machine import Machine, Memory
        import struct
        policy = _semaphore_policy()
        certified = certify(SEMAPHORE_CLIENT, policy)
        memory = Memory()
        memory.map_region(0x800, struct.pack("<QQ", 7, 100),
                          writable=True, name="entry")
        Machine(certified.program, memory, {0: 0x800}).run()
        semaphore, data = struct.unpack("<QQ",
                                        bytes(memory.region("entry")))
        assert semaphore == 1   # released
        assert data == 101      # and the work got done


class TestDataPostcondition:
    def test_store_echo_certifies(self):
        policy = _store_echo_policy()
        certified = certify("STQ r1, 0(r3)\nRET", policy)
        validate(certified.binary.to_bytes(), policy)

    def test_semantics_of_certified_program(self):
        from repro.alpha.machine import Machine, Memory
        policy = _store_echo_policy()
        certified = certify("STQ r1, 0(r3)\nRET", policy)
        memory = Memory()
        memory.map_region(0x100, bytes(8), writable=True, name="cell")
        Machine(certified.program, memory,
                {1: 0xDEAD, 3: 0x100}).run()
        assert memory.load_quad(0x100) == 0xDEAD

    def test_storing_the_wrong_value_rejected(self):
        policy = _store_echo_policy()
        with pytest.raises(CertificationError):
            certify("ADDQ r1, 1, r2\nSTQ r2, 0(r3)\nRET", policy)

    def test_not_storing_at_all_rejected(self):
        policy = _store_echo_policy()
        with pytest.raises(CertificationError):
            certify("RET", policy)

    def test_store_then_clobber_rejected(self):
        """Storing the right value and then overwriting it fails — the
        postcondition speaks about the FINAL memory."""
        policy = _store_echo_policy()
        with pytest.raises(CertificationError):
            certify("""
                STQ r1, 0(r3)
                SUBQ r2, r2, r2
                STQ r2, 0(r3)
                RET
            """, policy)
