"""PCC container format: layout, round-trips, and malformed input."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ValidationError
from repro.pcc.container import (
    PccBinary,
    pack_invariants,
    unpack_invariants,
)
from repro.lf.syntax import LfConst, LfInt, lf_app


class TestRoundTrip:
    @given(st.binary(max_size=64), st.binary(max_size=64),
           st.binary(max_size=64), st.binary(max_size=32))
    def test_arbitrary_sections(self, code, reloc, proof, inv):
        binary = PccBinary(code, reloc, proof, inv)
        assert PccBinary.from_bytes(binary.to_bytes()) == binary

    def test_layout_matches_figure7_shape(self):
        binary = PccBinary(b"c" * 45, b"r" * 175, b"p" * 120)
        layout = binary.layout()
        rows = layout.rows()
        assert rows[0] == ("native code", 0, 45)
        assert rows[1] == ("relocation", 45, 220)
        assert rows[2] == ("proof", 220, 340)
        assert binary.size == 340

    def test_invariant_table_round_trip(self):
        table = {3: lf_app(LfConst("ge"), LfInt(0), LfInt(0)),
                 7: LfConst("true")}
        packed = pack_invariants(table)
        assert unpack_invariants(packed) == table

    def test_empty_invariants(self):
        assert unpack_invariants(b"") == {}
        assert unpack_invariants(pack_invariants({})) == {}


class TestMalformed:
    def test_short_header(self):
        with pytest.raises(ValidationError):
            PccBinary.from_bytes(b"PCC1")

    def test_bad_magic(self):
        blob = PccBinary(b"", b"", b"").to_bytes()
        with pytest.raises(ValidationError):
            PccBinary.from_bytes(b"XXXX" + blob[4:])

    def test_bad_version(self):
        blob = bytearray(PccBinary(b"", b"", b"").to_bytes())
        blob[4] = 99
        with pytest.raises(ValidationError):
            PccBinary.from_bytes(bytes(blob))

    def test_inconsistent_lengths(self):
        blob = PccBinary(b"abcd", b"", b"").to_bytes()
        with pytest.raises(ValidationError):
            PccBinary.from_bytes(blob + b"extra")
        with pytest.raises(ValidationError):
            PccBinary.from_bytes(blob[:-1])

    def test_truncated_invariant_table(self):
        packed = pack_invariants({0: LfConst("true")})
        with pytest.raises(ValidationError):
            unpack_invariants(packed[:-1])

    @given(st.binary(max_size=80))
    def test_random_bytes_never_crash(self, blob):
        try:
            PccBinary.from_bytes(blob)
        except ValidationError:
            pass
        try:
            unpack_invariants(blob)
        except ValidationError:
            pass
