"""Tamper-proofness (§2.3): "any attempt to alter either the native code
or safety proof in a PCC binary is either detected or harmless".

We verify exactly that statement: every single-bit flip of the code
section is either rejected by validation, or the accepted program is still
*semantically safe* (its own recomputed safety predicate was proved by the
enclosed proof — and we double-check by running it on the abstract
machine, which blocks on any violation).
"""

import struct

import pytest

from repro.alpha.abstract import AbstractMachine
from repro.alpha.machine import Memory
from repro.errors import SafetyViolation, ValidationError
from repro.pcc import validate
from repro.pcc.container import PccBinary, _HEADER


def _flip(blob: bytes, position: int, bit: int) -> bytes:
    mutated = bytearray(blob)
    mutated[position] ^= 1 << bit
    return bytes(mutated)


class TestCodeTampering:
    def test_every_code_bit_flip_detected_or_harmless(
            self, resource_policy, resource_certified):
        blob = resource_certified.binary.to_bytes()
        code_start = _HEADER.size
        code_end = code_start + len(resource_certified.binary.code)
        rejected = 0
        accepted_safe = 0
        for position in range(code_start, code_end):
            for bit in range(8):
                mutated = _flip(blob, position, bit)
                try:
                    report = validate(mutated, resource_policy)
                except ValidationError:
                    rejected += 1
                    continue
                # Accepted: must still be safe — run it on the abstract
                # machine under the policy; blocking would break the
                # paper's guarantee.
                memory = Memory()
                memory.map_region(0x1000, struct.pack("<QQ", 5, 41),
                                  writable=True, name="table")
                registers = {0: 0x1000}
                can_read, can_write = resource_policy.checkers(
                    registers, lambda address: 5 if address == 0x1000 else 41)
                machine = AbstractMachine(report.program, memory, can_read,
                                          can_write, registers)
                machine.run()  # must not raise SafetyViolation
                accepted_safe += 1
        # sanity: most flips must actually change the predicate
        assert rejected > accepted_safe
        assert rejected + accepted_safe == (code_end - code_start) * 8

    def test_swapping_load_and_store_rejected(self, resource_policy,
                                              resource_certified):
        """A targeted semantic attack: replace the conditional store with
        an unconditional one by rewriting the branch offset."""
        binary = resource_certified.binary
        code = bytearray(binary.code)
        # branch displacement of the BEQ at instruction 4: zero it so the
        # branch becomes a no-op fall-through (making the store
        # unconditional, which the policy forbids)
        word = int.from_bytes(code[16:20], "little")
        word &= ~0x1FFFFF
        code[16:20] = word.to_bytes(4, "little")
        mutated = PccBinary(bytes(code), binary.relocation, binary.proof,
                            binary.invariants)
        with pytest.raises(ValidationError):
            validate(mutated.to_bytes(), resource_policy)


class TestProofTampering:
    @pytest.mark.parametrize("section", ["relocation", "proof"])
    def test_bit_flips_never_validate_unsafely(self, section,
                                               resource_policy,
                                               resource_certified):
        binary = resource_certified.binary
        blob = binary.to_bytes()
        start = _HEADER.size + len(binary.code)
        if section == "proof":
            start += len(binary.relocation)
            length = len(binary.proof)
        else:
            length = len(binary.relocation)
        outcomes = {"rejected": 0, "accepted": 0}
        step = max(1, length // 40)  # sample across the section
        for position in range(start, start + length, step):
            for bit in (0, 3, 7):
                mutated = _flip(blob, position, bit)
                try:
                    validate(mutated, resource_policy)
                    outcomes["accepted"] += 1
                except ValidationError:
                    outcomes["rejected"] += 1
        # A proof-section flip can at best leave an equivalent proof; it
        # must never validate a DIFFERENT predicate.  Rejection dominates.
        assert outcomes["rejected"] > 0

    def test_proof_transplant_rejected(self, resource_policy,
                                       certified_filters, filter_policy,
                                       resource_certified):
        """Grafting filter1's (valid) proof onto the resource-access code
        must fail: the proof proves the wrong predicate."""
        donor = certified_filters["filter1"].binary
        frankenstein = PccBinary(
            code=resource_certified.binary.code,
            relocation=donor.relocation,
            proof=donor.proof,
        )
        with pytest.raises(ValidationError):
            validate(frankenstein.to_bytes(), resource_policy)

    def test_empty_proof_rejected(self, resource_policy,
                                  resource_certified):
        stripped = PccBinary(resource_certified.binary.code, b"", b"")
        with pytest.raises(ValidationError):
            validate(stripped.to_bytes(), resource_policy)
