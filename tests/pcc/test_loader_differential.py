"""Differential loader tests: cached and batched paths vs. cold validate.

Hypothesis drives ``tests/generators.py`` filter programs through both
admission paths:

* cold ``validate()`` vs. warm ``loader.load()`` — the cached verdict
  must carry the *same* program and safety predicate;
* batch-parallel vs. sequential — item-for-item identical outcomes,
  including exactly which items fail validation and with equivalent
  verdicts for duplicated submissions.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.filters.policy import packet_filter_policy
from repro.pcc import certify, validate
from repro.pcc.loader import ExtensionLoader
from tests.generators import random_filter_source

_POLICY = packet_filter_policy()


def _certified_blob(rng: random.Random, blocks: int) -> bytes:
    source = random_filter_source(rng, blocks)
    return certify(source, _POLICY).binary.to_bytes()


def _corrupt(rng: random.Random, blob: bytes) -> bytes:
    """One of the adversarial mutations: code flip, truncation, or
    section garbage — all must be rejected identically on every path."""
    choice = rng.randrange(3)
    if choice == 0:
        mutated = bytearray(blob)
        position = 20 + rng.randrange(16)  # inside the code section
        mutated[position] ^= 1 << rng.randrange(8)
        return bytes(mutated)
    if choice == 1:
        return blob[:-1 - rng.randrange(8)]
    return blob[:24] + bytes(rng.randrange(256)
                             for __ in range(len(blob) - 24))


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=4))
def test_warm_load_equals_cold_validate(seed, blocks):
    rng = random.Random(seed)
    blob = _certified_blob(rng, blocks)

    cold = validate(blob, _POLICY)
    loader = ExtensionLoader(_POLICY)
    first = loader.load(blob)
    warm = loader.load(blob)

    assert warm is first  # the second load really came from the cache
    assert loader.stats().hits == 1
    for report in (first, warm):
        assert report.program == cold.program
        assert report.predicate == cold.predicate
        assert report.code_bytes == cold.code_bytes
        assert report.proof_bytes == cold.proof_bytes
        assert report.binary_bytes == cold.binary_bytes


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_batch_parallel_identical_to_sequential(seed):
    rng = random.Random(seed)
    blobs = []
    for __ in range(3):
        blob = _certified_blob(rng, 1 + rng.randrange(3))
        blobs.append(blob)
        if rng.random() < 0.5:
            blobs.append(_corrupt(rng, blob))
    blobs.append(blobs[0])  # a within-batch duplicate

    sequential = ExtensionLoader(_POLICY).validate_batch(blobs,
                                                         processes=0)
    parallel = ExtensionLoader(_POLICY).validate_batch(blobs,
                                                       processes=2)

    assert len(sequential) == len(parallel) == len(blobs)
    for seq, par in zip(sequential, parallel):
        assert seq.index == par.index
        assert seq.ok == par.ok  # identical accept/reject per item
        if seq.ok:
            assert seq.report.program == par.report.program
            assert seq.report.predicate == par.report.predicate
        else:
            assert seq.error and par.error

    # which items fail must match a plain cold-validate sweep too
    for index, blob in enumerate(blobs):
        try:
            validate(blob, _POLICY)
            cold_ok = True
        except Exception:
            cold_ok = False
        assert sequential[index].ok == cold_ok


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_resubmitted_batch_is_pure_cache_and_identical(seed):
    rng = random.Random(seed)
    blobs = [_certified_blob(rng, 1 + rng.randrange(2))
             for __ in range(2)]
    loader = ExtensionLoader(_POLICY)
    first = loader.validate_batch(blobs, processes=0)
    second = loader.validate_batch(blobs, processes=0)
    for a, b in zip(first, second):
        assert b.cached and not a.cached
        assert b.report is a.report
    stats = loader.stats()
    assert stats.hits == len(blobs) and stats.misses == len(blobs)
