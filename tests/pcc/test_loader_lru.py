"""LRU + counter properties of the loader cache, and thread safety.

Real validation is irrelevant to the cache's bookkeeping, so these
suites monkeypatch ``repro.pcc.loader.validate`` with a cheap stub and
drive the cache with synthetic byte strings: Hypothesis checks the LRU
against a reference model; a ``ThreadPoolExecutor`` hammer checks the
counter algebra and capacity bound under interleaving.
"""

from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from unittest import mock

import pytest
from hypothesis import given, settings, strategies as st

import repro.pcc.loader as loader_module
from repro.pcc.loader import ExtensionLoader
from repro.vcgen.policy import SafetyPolicy
from repro.logic.formulas import Truth

_POLICY = SafetyPolicy("lru-test", Truth())


class _StubReport:
    """Stands in for a ValidationReport; identity marks which
    validation run produced it."""

    def __init__(self, blob):
        self.blob = blob


def _stub_validate(blob, policy, measure_memory=False):
    return _StubReport(blob)


@pytest.fixture()
def stubbed(monkeypatch):
    monkeypatch.setattr(loader_module, "validate", _stub_validate)


def _blob(value: int) -> bytes:
    return b"extension-%d" % value


class TestLruProperties:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=1, max_value=5),
           st.lists(st.integers(min_value=0, max_value=7), max_size=40))
    def test_matches_reference_model(self, capacity, sequence):
        """Drive the loader and a textbook OrderedDict LRU with the same
        load sequence; hits, evictions, contents, and order must agree."""
        with mock.patch.object(loader_module, "validate", _stub_validate):
            loader = ExtensionLoader(_POLICY, capacity=capacity)
            model: OrderedDict[bytes, None] = OrderedDict()
            hits = evictions = 0
            for value in sequence:
                blob = _blob(value)
                loader.load(blob)
                if blob in model:
                    model.move_to_end(blob)
                    hits += 1
                else:
                    model[blob] = None
                    if len(model) > capacity:
                        model.popitem(last=False)
                        evictions += 1
            stats = loader.stats()
            assert stats.loads == len(sequence)
            assert stats.hits == hits
            assert stats.misses == len(sequence) - hits
            assert stats.evictions == evictions
            assert stats.size == len(model) <= capacity
            assert [key[0] for key in loader._cache] == [
                loader.cache_key(blob)[0] for blob in model]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                    max_size=30))
    def test_counters_sum(self, sequence):
        with mock.patch.object(loader_module, "validate", _stub_validate):
            loader = ExtensionLoader(_POLICY, capacity=3)
            for value in sequence:
                loader.load(_blob(value))
            stats = loader.stats()
            assert stats.hits + stats.misses == stats.loads \
                == len(sequence)
            assert stats.evictions == stats.misses - stats.size

    def test_eviction_order_is_lru_not_fifo(self, stubbed):
        """Touching an old entry must save it: insertion order alone
        would evict it."""
        loader = ExtensionLoader(_POLICY, capacity=2)
        loader.load(_blob(1))
        loader.load(_blob(2))
        loader.load(_blob(1))       # refresh 1 → 2 is now the LRU entry
        loader.load(_blob(3))       # evicts 2
        assert _blob(1) in loader and _blob(3) in loader
        assert _blob(2) not in loader
        loader.load(_blob(1))
        assert loader.stats().hits == 2  # the refresh and the last load


class TestThreadSafety:
    def test_hammer(self, stubbed):
        """Interleaved loads from many threads: the capacity bound and
        the counter algebra must survive arbitrary interleavings."""
        capacity, keys, threads, per_thread = 4, 12, 8, 200
        loader = ExtensionLoader(_POLICY, capacity=capacity)

        def worker(seed: int) -> int:
            state = seed
            for step in range(per_thread):
                state = (state * 1103515245 + 12345) & 0x7FFFFFFF
                loader.load(_blob(state % keys))
            return seed

        with ThreadPoolExecutor(max_workers=threads) as pool:
            list(pool.map(worker, range(threads)))

        stats = loader.stats()
        assert stats.loads == threads * per_thread
        assert stats.hits + stats.misses == stats.loads
        assert stats.size <= capacity
        assert len(loader) <= capacity
        # every store is a miss; whatever was stored and isn't resident
        # was evicted (concurrent same-key misses re-store, not evict)
        assert stats.evictions <= stats.misses - stats.size

    def test_hammer_with_interleaved_evictions(self, stubbed):
        loader = ExtensionLoader(_POLICY, capacity=3)

        def loads(seed: int) -> None:
            for step in range(150):
                loader.load(_blob((seed + step) % 9))

        def evicts(seed: int) -> None:
            for step in range(150):
                loader.evict(_blob((seed * 7 + step) % 9))
                if step % 50 == 0:
                    loader.clear()

        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [pool.submit(loads, n) for n in range(4)]
            futures += [pool.submit(evicts, n) for n in range(2)]
            for future in futures:
                future.result()

        stats = loader.stats()
        assert stats.hits + stats.misses == stats.loads == 4 * 150
        assert stats.size <= 3
