"""Adversarial loader tests: tampering *after* a warm cache.

The cache must never convert "identical bytes were once valid" into
"similar bytes are valid": every mutation from ``test_tampering.py`` is
replayed against a loader that has already validated (and cached) the
pristine binary.  A flipped code byte, a swapped proof, or an altered
invariant table must MISS the cache — zero false hits — and then fail
validation exactly as it would cold.  A policy change (weaker, stronger,
or negotiated) must change the fingerprint and force re-validation.
"""

import pytest

from repro.errors import ValidationError
from repro.filters.checksum import (
    CHECKSUM_LOOP_PC,
    CHECKSUM_SOURCE,
    checksum_invariant,
    checksum_policy,
)
from repro.lf.encode import encode_formula
from repro.logic.formulas import conj, conjuncts, eq, rd
from repro.logic.terms import Var, add64
from repro.pcc import certify
from repro.pcc.container import PccBinary, _HEADER, pack_invariants
from repro.pcc.loader import ExtensionLoader, policy_fingerprint
from repro.pcc.negotiate import propose_policy
from repro.vcgen.policy import SafetyPolicy


def _flip(blob: bytes, position: int, bit: int) -> bytes:
    mutated = bytearray(blob)
    mutated[position] ^= 1 << bit
    return bytes(mutated)


@pytest.fixture()
def warm_loader(resource_policy, resource_certified):
    """A loader that has already admitted the pristine binary."""
    loader = ExtensionLoader(resource_policy, capacity=512)
    loader.load(resource_certified.binary.to_bytes())
    return loader


class TestTamperAfterWarmCache:
    def test_code_bit_flips_never_hit_the_cache(self, warm_loader,
                                                resource_certified):
        """Replay of test_tampering's code sweep through the warm
        loader: every flip misses; accepted flips (harmless ones exist)
        get a *fresh* report, never the cached verdict."""
        blob = resource_certified.binary.to_bytes()
        warm_report = warm_loader.load(blob)  # the cached verdict
        hits_before = warm_loader.stats().hits
        code_start = _HEADER.size
        code_end = code_start + len(resource_certified.binary.code)
        rejected = accepted = 0
        for position in range(code_start, code_end):
            for bit in (0, 5):
                mutated = _flip(blob, position, bit)
                try:
                    report = warm_loader.load(mutated)
                except ValidationError:
                    rejected += 1
                else:
                    accepted += 1
                    assert report is not warm_report
        assert rejected > 0
        assert warm_loader.stats().hits == hits_before  # zero false hits

    def test_unconditional_store_attack_rejected_warm(self,
                                                      warm_loader,
                                                      resource_certified):
        """The targeted semantic attack (branch displacement zeroed so
        the guarded store becomes unconditional) against a warm cache."""
        binary = resource_certified.binary
        code = bytearray(binary.code)
        word = int.from_bytes(code[16:20], "little")
        word &= ~0x1FFFFF
        code[16:20] = word.to_bytes(4, "little")
        mutated = PccBinary(bytes(code), binary.relocation, binary.proof,
                            binary.invariants)
        hits_before = warm_loader.stats().hits
        with pytest.raises(ValidationError):
            warm_loader.load(mutated.to_bytes())
        assert warm_loader.stats().hits == hits_before

    def test_proof_and_relocation_flips_never_hit(self, warm_loader,
                                                  resource_certified):
        binary = resource_certified.binary
        blob = binary.to_bytes()
        hits_before = warm_loader.stats().hits
        rejected = 0
        for section_start, length in (
                (_HEADER.size + len(binary.code), len(binary.relocation)),
                (_HEADER.size + len(binary.code) + len(binary.relocation),
                 len(binary.proof))):
            step = max(1, length // 20)
            for position in range(section_start, section_start + length,
                                  step):
                for bit in (0, 3, 7):
                    try:
                        warm_loader.load(_flip(blob, position, bit))
                    except ValidationError:
                        rejected += 1
        assert rejected > 0
        assert warm_loader.stats().hits == hits_before

    def test_proof_transplant_rejected_warm(self, warm_loader,
                                            resource_certified,
                                            certified_filters):
        donor = certified_filters["filter1"].binary
        frankenstein = PccBinary(
            code=resource_certified.binary.code,
            relocation=donor.relocation,
            proof=donor.proof,
        )
        hits_before = warm_loader.stats().hits
        with pytest.raises(ValidationError):
            warm_loader.load(frankenstein.to_bytes())
        assert warm_loader.stats().hits == hits_before


class TestInvariantTampering:
    @pytest.fixture(scope="class")
    def checksum_certified(self):
        return certify(CHECKSUM_SOURCE, checksum_policy(),
                       invariants={CHECKSUM_LOOP_PC:
                                   checksum_invariant()})

    @pytest.fixture()
    def checksum_loader(self, checksum_certified):
        loader = ExtensionLoader(checksum_policy(), capacity=64)
        loader.load(checksum_certified.binary.to_bytes())
        return loader

    def test_invariant_byte_flips_miss_and_reject(self, checksum_loader,
                                                  checksum_certified):
        binary = checksum_certified.binary
        assert binary.invariants  # the loop program must carry a table
        blob = binary.to_bytes()
        start = _HEADER.size + len(binary.code) + len(binary.relocation) \
            + len(binary.proof)
        hits_before = checksum_loader.stats().hits
        for position in range(start, start + len(binary.invariants),
                              max(1, len(binary.invariants) // 16)):
            with pytest.raises(ValidationError):
                checksum_loader.load(_flip(blob, position, 1))
        assert checksum_loader.stats().hits == hits_before

    def test_replaced_invariant_table_misses_and_rejects(
            self, checksum_loader, checksum_certified):
        """A well-formed but WRONG invariant table: decodes fine, but the
        recomputed predicate no longer matches the enclosed proof."""
        binary = checksum_certified.binary
        bogus = pack_invariants({CHECKSUM_LOOP_PC: encode_formula(
            eq(Var("r0"), Var("r0")), {}, 0)})
        assert bogus != binary.invariants
        mutated = PccBinary(binary.code, binary.relocation, binary.proof,
                            bogus)
        hits_before = checksum_loader.stats().hits
        with pytest.raises(ValidationError):
            checksum_loader.load(mutated.to_bytes())
        assert checksum_loader.stats().hits == hits_before


class TestPolicyChangeMustRevalidate:
    def _weaker(self, base: SafetyPolicy) -> SafetyPolicy:
        """Drop the guarded-write clause (the last conjunct)."""
        weaker_pre = conj(conjuncts(base.precondition)[:-1])
        assert weaker_pre != base.precondition
        return SafetyPolicy(base.name, weaker_pre, base.postcondition,
                            base.make_checkers)

    def _stronger(self, base: SafetyPolicy) -> SafetyPolicy:
        extra = rd(add64(Var("r0"), 16))
        return SafetyPolicy(base.name,
                            conj([base.precondition, extra]),
                            base.postcondition, base.make_checkers)

    @pytest.mark.parametrize("variant", ["_weaker", "_stronger"])
    def test_changed_policy_never_reuses_a_verdict(self, variant,
                                                   resource_policy,
                                                   resource_certified):
        blob = resource_certified.binary.to_bytes()
        base_loader = ExtensionLoader(resource_policy)
        base_loader.load(blob)  # warm under the base policy

        changed = getattr(self, variant)(resource_policy)
        assert policy_fingerprint(changed) != base_loader.fingerprint
        changed_loader = ExtensionLoader(changed)
        # the proof proves the BASE predicate; under the changed
        # precondition the recomputed predicate differs, so a genuine
        # re-validation must run — and reject.
        with pytest.raises(ValidationError):
            changed_loader.load(blob)
        stats = changed_loader.stats()
        assert stats.misses == 1 and stats.hits == 0

    def test_negotiated_policy_revalidates_from_cold(self, filter_policy,
                                                     certified_filters):
        """Negotiation yields a distinct fingerprint even when the
        proposed precondition is restrictive-but-compatible; binaries
        certified under it validate fresh, never via the base cache."""
        from repro.logic.formulas import Forall, Implies, ge, lt
        from repro.logic.terms import and64
        from repro.vcgen.policy import word_identity

        r1, i = Var("r1"), Var("i")
        guard = conj([ge(i, 0), lt(i, 32), eq(and64(i, 7), 0)])
        restricted = conj([
            word_identity(r1),
            Forall("i", Implies(guard, rd(add64(r1, i)))),
        ])
        proposal = propose_policy(filter_policy, restricted)
        assert proposal.digest() == proposal.digest()

        base_loader = ExtensionLoader(filter_policy)
        base_loader.load(certified_filters["filter1"].binary.to_bytes())

        negotiated_loader = base_loader.negotiate(proposal)
        assert negotiated_loader.fingerprint != base_loader.fingerprint
        assert len(negotiated_loader) == 0  # starts cold

        certified = certify("LDQ r4, 8(r1)\nADDQ r4, 0, r0\nRET",
                            negotiated_loader.policy)
        report = negotiated_loader.load(certified.binary.to_bytes())
        assert report.instructions == 3
        stats = negotiated_loader.stats()
        assert stats.misses == 1 and stats.hits == 0
