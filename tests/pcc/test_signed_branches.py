"""Signed-branch hypotheses (BGE/BLT/BGT/BLE) in certification.

The signed branches test the two's-complement sign bit; their VC
hypotheses are comparisons against 2^63.  Combined with the packet
policy's ``r2 < 2^63`` conjunct they make some arms provably dead —
exercising the prover's contradiction handling — and BGT/BLE produce
conjunction/disjunction hypotheses, exercising the or-elimination path.
"""

import pytest

from repro.errors import CertificationError
from repro.pcc import certify, validate


class TestSignedBranches:
    def test_bge_on_length_always_taken(self, filter_policy):
        """r2 < 2^63 (policy) makes BGE r2 always taken; the fall-through
        arm may do anything the policy allows — and certification must
        still prove it safe (the VC covers both arms)."""
        source = """
            BGE r2, ok
            LDQ r4, 0(r1)
        ok: LDQ r4, 8(r1)
            ADDQ r4, 0, r0
            RET
        """
        certified = certify(source, filter_policy)
        validate(certified.binary.to_bytes(), filter_policy)

    def test_dead_arm_with_unsafe_code_still_certifies(self, filter_policy):
        """The BLT arm is unreachable (r2 < 2^63 contradicts the taken
        hypothesis), so even an out-of-window load there is fine: ex falso
        quodlibet, mechanically."""
        source = """
            BLT r2, dead
            ADDQ r2, 0, r0
            RET
        dead: LDQ r4, 4096(r1)
            ADDQ r4, 0, r0
            RET
        """
        certified = certify(source, filter_policy)
        validate(certified.binary.to_bytes(), filter_policy)

    def test_live_arm_with_unsafe_code_rejected(self, filter_policy):
        """Flip the branch: now the unsafe load is reachable."""
        source = """
            BGE r2, dead
            ADDQ r2, 0, r0
            RET
        dead: LDQ r4, 4096(r1)
            ADDQ r4, 0, r0
            RET
        """
        with pytest.raises(CertificationError):
            certify(source, filter_policy)

    def test_bgt_conjunction_hypothesis(self, filter_policy):
        """BGT contributes (r2 < 2^63 AND r2 != 0) when taken."""
        source = """
            BGT r2, ok
            SUBQ r0, r0, r0
            RET
        ok: LDQ r4, 8(r1)
            ADDQ r4, 0, r0
            RET
        """
        certified = certify(source, filter_policy)
        validate(certified.binary.to_bytes(), filter_policy)

    def test_ble_disjunction_hypothesis(self, filter_policy):
        """BLE's taken arm carries (r2 >= 2^63 OR r2 = 0) — with the
        policy's r2 >= 64 and r2 < 2^63 both disjuncts are refutable, so
        the taken arm is dead and certifies by case split + ex falso."""
        source = """
            BLE r2, dead
            ADDQ r2, 0, r0
            RET
        dead: LDQ r4, 4096(r1)
            ADDQ r4, 0, r0
            RET
        """
        certified = certify(source, filter_policy)
        validate(certified.binary.to_bytes(), filter_policy)
