"""Seeded container-mutation helpers and the admission invariant.

``repro.pcc.mutate`` is the chaos harness's tampering arm: every mutant
it produces must be rejected by the loader.  These tests pin down the
generator's own contract (deterministic, actually-different bytes,
section-targeted) and then sweep the full mutant population for every
certified filter across several seeds — the property the chaos
``admission-mutants`` scenario relies on.
"""

import random

import pytest

from repro.errors import PccError
from repro.pcc.container import _HEADER, PccBinary
from repro.pcc.loader import ExtensionLoader
from repro.pcc.mutate import (
    MUTATION_KINDS,
    bitflip_section,
    corrupt_code,
    garble_header,
    mutants,
    truncate_container,
)


@pytest.fixture(scope="module")
def filter1_blob(certified_filters):
    return certified_filters["filter1"].binary.to_bytes()


class TestGenerators:
    def test_mutants_cover_every_kind(self, filter1_blob):
        kinds = {kind for kind, _ in mutants(filter1_blob, seed=3)}
        assert kinds == set(MUTATION_KINDS)

    def test_mutants_are_deterministic(self, filter1_blob):
        first = list(mutants(filter1_blob, seed=11, rounds=3))
        second = list(mutants(filter1_blob, seed=11, rounds=3))
        assert first == second

    def test_different_seeds_differ(self, filter1_blob):
        first = dict(mutants(filter1_blob, seed=1, rounds=1))
        second = dict(mutants(filter1_blob, seed=2, rounds=1))
        assert first != second

    def test_every_mutant_differs_from_original(self, filter1_blob):
        for kind, blob in mutants(filter1_blob, seed=5, rounds=4):
            assert blob != filter1_blob, f"{kind} returned the original"

    def test_bitflip_targets_the_named_section(self, filter1_blob):
        original = PccBinary.from_bytes(filter1_blob)
        mutated_blob = bitflip_section(filter1_blob, "proof", 7)
        mutated = PccBinary.from_bytes(mutated_blob)
        assert mutated.proof != original.proof
        assert mutated.code == original.code
        assert mutated.relocation == original.relocation
        assert mutated.invariants == original.invariants

    def test_bitflip_empty_section_is_none(self, filter1_blob):
        binary = PccBinary.from_bytes(filter1_blob)
        empty = PccBinary(code=binary.code, relocation=b"",
                          proof=binary.proof,
                          invariants=binary.invariants).to_bytes()
        assert bitflip_section(empty, "relocation", 0) is None

    def test_bitflip_unknown_section_raises(self, filter1_blob):
        with pytest.raises(ValueError, match="unknown section"):
            bitflip_section(filter1_blob, "padding", 0)

    def test_bitflip_accepts_an_rng(self, filter1_blob):
        seeded = bitflip_section(filter1_blob, "code", 42)
        from_rng = bitflip_section(filter1_blob, "code", random.Random(42))
        assert seeded == from_rng

    def test_corrupt_code_changes_exactly_one_word(self, filter1_blob):
        original = PccBinary.from_bytes(filter1_blob)
        mutated = PccBinary.from_bytes(corrupt_code(filter1_blob, 0))
        diffs = [index for index in range(0, len(original.code), 4)
                 if original.code[index:index + 4]
                 != mutated.code[index:index + 4]]
        assert len(diffs) == 1

    def test_truncate_shortens(self, filter1_blob):
        mutated = truncate_container(filter1_blob, 9)
        assert len(mutated) < len(filter1_blob)
        assert filter1_blob.startswith(mutated)

    def test_garble_header_touches_only_the_header(self, filter1_blob):
        mutated = garble_header(filter1_blob, 13)
        assert mutated != filter1_blob
        assert mutated[_HEADER.size:] == filter1_blob[_HEADER.size:]


class TestAdmissionInvariant:
    @pytest.mark.parametrize("seed", [0, 1, 0xBAD])
    def test_loader_rejects_every_mutant(self, filter_policy,
                                         certified_filters, seed):
        """The property the chaos campaign stakes its name on: no
        mutant of any certified filter gets past admission."""
        loader = ExtensionLoader(filter_policy)
        for name, certified in certified_filters.items():
            blob = certified.binary.to_bytes()
            loader.load(blob)  # pristine admits fine
            for kind, mutant in mutants(blob, seed=seed, rounds=3):
                with pytest.raises(PccError) as excinfo:
                    loader.load(mutant)
                assert excinfo.value is not None, f"{name}/{kind}"

    def test_rejections_never_poison_the_cache(self, filter_policy,
                                               filter1_blob):
        loader = ExtensionLoader(filter_policy)
        loader.load(filter1_blob)
        for _, mutant in mutants(filter1_blob, seed=7, rounds=2):
            with pytest.raises(PccError):
                loader.load(mutant)
        hits_before = loader.stats().hits
        loader.load(filter1_blob)  # pristine blob still cached
        assert loader.stats().hits == hits_before + 1
