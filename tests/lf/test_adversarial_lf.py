"""Hand-crafted malicious LF proof terms.

The Delta checker never sees these — they go straight at the LF type
checker, the consumer's actual trusted core, attempting the classic
attacks on proof checkers: proving the wrong formula, exploiting
beta-reduction, smuggling side-condition constants under binders,
ill-kinded types, and variable-capture confusions.  Every one must be
rejected with :class:`LfError`.
"""

import pytest

from repro.errors import LfError, ValidationError
from repro.lf.encode import encode_formula
from repro.lf.signature import SIGNATURE
from repro.lf.syntax import (
    LfApp,
    LfConst,
    LfInt,
    LfLam,
    LfPi,
    LfVar,
    lf_app,
)
from repro.lf.typecheck import check_proof_term, infer_type
from repro.logic.formulas import Falsity, eq, lt

TM = LfConst("tm")
FORM = LfConst("form")
PF = LfConst("pf")


def _pf(formula_lf):
    return LfApp(PF, formula_lf)


def rejected(term, expected):
    with pytest.raises(LfError):
        check_proof_term(term, expected, SIGNATURE)


class TestWrongFormula:
    def test_truei_cannot_prove_false(self):
        target = _pf(encode_formula(Falsity(), {}, 0))
        rejected(LfConst("truei"), target)

    def test_arith_eval_of_true_fact_cannot_stand_for_false(self):
        good_fact = encode_formula(lt(3, 4), {}, 0)
        proof = LfApp(LfConst("arith_eval"), good_fact)
        target = _pf(encode_formula(lt(4, 3), {}, 0))
        rejected(proof, target)

    def test_beta_disguise_rejected_conservatively(self):
        """(\\f. arith_eval f) applied to anything: the side condition is
        checked *inside* the lambda where the argument is a bound variable
        (non-ground), so the whole shape is rejected — even when the
        eventual instance would be true.  Conservative, hence safe: a
        malicious producer gains nothing from beta disguises."""
        good_fact = encode_formula(lt(3, 4), {}, 0)
        disguised = LfApp(
            LfLam(FORM, LfApp(LfConst("arith_eval"), LfVar(0))),
            good_fact)
        rejected(disguised, _pf(good_fact))
        rejected(disguised, _pf(encode_formula(lt(4, 3), {}, 0)))


class TestSideConditionEvasion:
    def test_eta_wrapper_does_not_skip_the_check(self):
        """Wrapping arith_eval in a lambda and applying it must still
        reject the false instance (the redex body is checked under the
        binder, where the argument is non-ground — conservative reject)."""
        bad_fact = encode_formula(eq(2, 3), {}, 0)
        wrapped = LfApp(
            LfLam(FORM, LfApp(LfConst("arith_eval"), LfVar(0))),
            bad_fact)
        rejected(wrapped, _pf(bad_fact))

    def test_direct_false_instance(self):
        bad_fact = encode_formula(eq(2, 3), {}, 0)
        rejected(LfApp(LfConst("arith_eval"), bad_fact), _pf(bad_fact))

    def test_mod_word_on_register_constant(self):
        """State constants (r0 ...) decode to plain variables — never
        word-valued by themselves."""
        r0 = LfConst("r0")
        goal = lf_app(LfConst("eq"), lf_app(LfConst("mod64"), r0), r0)
        rejected(LfApp(LfConst("mod_word"), r0), _pf(goal))


class TestIllFormedTerms:
    def test_pf_applied_to_non_formula(self):
        with pytest.raises(LfError):
            infer_type(_pf(LfInt(3)), SIGNATURE)

    def test_kind_confusion(self):
        # \x:pf. x  — pf is a family (form -> type), not a type
        with pytest.raises(LfError):
            infer_type(LfLam(PF, LfVar(0)), SIGNATURE)

    def test_pi_over_kind_rejected(self):
        from repro.lf.syntax import KIND
        with pytest.raises(LfError):
            infer_type(LfPi(KIND, TM), SIGNATURE)

    def test_dangling_de_bruijn_in_body(self):
        with pytest.raises(LfError):
            infer_type(LfLam(TM, LfVar(5)), SIGNATURE)

    def test_self_application_rejected(self):
        omega = LfLam(TM, LfApp(LfVar(0), LfVar(0)))
        with pytest.raises(LfError):
            infer_type(omega, SIGNATURE)


class TestContainerLevel:
    def test_proof_for_sibling_formula_in_same_binary(self, filter_policy,
                                                      certified_filters):
        """Reusing filter2's proof for filter1's code: the recomputed SP
        differs, so the checker's final comparison fails."""
        from repro.pcc.container import PccBinary
        from repro.pcc import validate

        donor = certified_filters["filter2"].binary
        victim = certified_filters["filter1"].binary
        hybrid = PccBinary(victim.code, donor.relocation, donor.proof)
        with pytest.raises(ValidationError):
            validate(hybrid.to_bytes(), filter_policy)

    def test_undeclared_constant_in_proof(self, filter_policy,
                                          certified_filters):
        """A proof whose symbol table names a constant outside the
        published signature is rejected at type checking."""
        from repro.lf.binary import serialize_lf
        from repro.pcc.container import PccBinary
        from repro.pcc import validate

        table, stream = serialize_lf(LfConst("backdoor_axiom"))
        victim = certified_filters["filter1"].binary
        forged = PccBinary(victim.code, table, stream)
        with pytest.raises(ValidationError):
            validate(forged.to_bytes(), filter_policy)
