"""The independent minimal LF checker vs the primary one.

The paper claims anyone distrusting the published validator "can
implement it easily themselves"; we did, and the two implementations must
agree — acceptance AND rejection — on real proofs and on adversarial
terms.  (The mini checker has no DAG memoization, so it only sees the
small artifacts; scaling is the primary checker's job.)
"""

import pytest

from repro.errors import LfError
from repro.lf.encode import encode_formula, encode_proof
from repro.lf.minicheck import MiniChecker, minicheck_proof
from repro.lf.signature import SIGNATURE
from repro.lf.syntax import LfApp, LfConst, LfInt, LfLam, LfVar, lf_app
from repro.lf.typecheck import check_proof_term, infer_type
from repro.logic.formulas import Falsity, eq, lt


def _expected(certified):
    return LfApp(LfConst("pf"),
                 encode_formula(certified.predicate, {}, 0))


class TestAgreementOnRealProofs:
    def test_resource_access(self, resource_certified):
        lf_proof = encode_proof(resource_certified.proof,
                                resource_certified.predicate)
        expected = _expected(resource_certified)
        check_proof_term(lf_proof, expected, SIGNATURE)   # primary
        minicheck_proof(lf_proof, expected, SIGNATURE)    # independent

    def test_filter1(self, certified_filters):
        certified = certified_filters["filter1"]
        lf_proof = encode_proof(certified.proof, certified.predicate)
        expected = _expected(certified)
        check_proof_term(lf_proof, expected, SIGNATURE)
        minicheck_proof(lf_proof, expected, SIGNATURE)


class TestAgreementOnRejections:
    def test_wrong_formula(self):
        good = encode_formula(lt(3, 4), {}, 0)
        bad = encode_formula(lt(4, 3), {}, 0)
        proof = LfApp(LfConst("arith_eval"), good)
        with pytest.raises(LfError):
            check_proof_term(proof, LfApp(LfConst("pf"), bad), SIGNATURE)
        with pytest.raises(LfError):
            minicheck_proof(proof, LfApp(LfConst("pf"), bad), SIGNATURE)

    def test_false_side_condition(self):
        bad = encode_formula(eq(2, 3), {}, 0)
        proof = LfApp(LfConst("arith_eval"), bad)
        target = LfApp(LfConst("pf"), bad)
        with pytest.raises(LfError):
            check_proof_term(proof, target, SIGNATURE)
        with pytest.raises(LfError):
            minicheck_proof(proof, target, SIGNATURE)

    def test_cannot_prove_falsity(self):
        target = LfApp(LfConst("pf"),
                       encode_formula(Falsity(), {}, 0))
        with pytest.raises(LfError):
            minicheck_proof(LfConst("truei"), target, SIGNATURE)


class TestInferenceAgreement:
    @pytest.mark.parametrize("term", [
        LfInt(7),
        LfConst("truei"),
        lf_app(LfConst("add64"), LfInt(1), LfInt(2)),
        LfLam(LfConst("tm"), LfVar(0)),
        lf_app(LfConst("eq"), LfInt(1), LfInt(1)),
    ])
    def test_same_types(self, term):
        checker = MiniChecker(SIGNATURE)
        assert checker.normalize(checker.infer(term)) == \
            checker.normalize(infer_type(term, SIGNATURE))

    @pytest.mark.parametrize("term", [
        LfVar(0),                                # unbound
        LfApp(LfInt(1), LfInt(2)),               # non-function
        LfConst("no_such_constant"),
        LfLam(LfConst("pf"), LfVar(0)),          # family as a type
    ])
    def test_same_rejections(self, term):
        with pytest.raises(LfError):
            infer_type(term, SIGNATURE)
        with pytest.raises(LfError):
            MiniChecker(SIGNATURE).infer(term)

    def test_budget_guard(self):
        checker = MiniChecker(SIGNATURE, step_budget=10)
        deep = LfInt(0)
        for __ in range(50):
            deep = LfApp(LfLam(LfConst("tm"), LfVar(0)), deep)
        with pytest.raises(LfError):
            checker.infer(deep)
