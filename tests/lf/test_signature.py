"""The LF signature is itself a formal object: every declared type must be
well-formed (a type or a kind) in the signature built so far.  This is the
consumer's own sanity check on its published policy logic."""

import pytest

from repro.lf.signature import SIGNATURE
from repro.lf.syntax import KIND, LfConst, LfPi, TYPE, whnf
from repro.lf.typecheck import infer_type
from repro.proof.rules import RULES


class TestWellFormedness:
    def test_every_declaration_is_a_type_or_kind(self):
        for name, entry in SIGNATURE.entries.items():
            sort = whnf(infer_type(entry.ty, SIGNATURE))
            assert sort in (TYPE, KIND), f"{name} has malformed type"

    def test_core_classes_present(self):
        for name in ("tm", "mem", "form", "pf", "true", "false", "and",
                     "or", "imp", "all", "allm", "eq", "rd", "wr"):
            assert name in SIGNATURE.entries

    def test_every_logic_operator_declared(self):
        from repro.logic.terms import OPS
        for op in OPS:
            assert op in SIGNATURE.entries, f"operator {op} undeclared"

    def test_state_constants_declared(self):
        for index in range(11):
            assert f"r{index}" in SIGNATURE.entries
        assert "rm" in SIGNATURE.entries

    def test_side_condition_arities_positive(self):
        for name, entry in SIGNATURE.entries.items():
            if entry.side_condition is not None:
                assert entry.side_arity > 0, name

    def test_rule_coverage(self):
        """Every Delta rule has an LF counterpart (ext_bound splits into
        three width-specific constants; hyp/linarith premises are encoded
        structurally)."""
        lf_names = set(SIGNATURE.entries)
        structural = {"hyp"}  # encoded as LF variables, not constants
        renamed = {"ext_bound": {"extbl_bound", "extwl_bound",
                                 "extll_bound"},
                   "cmp_bool": {"cmpeq_bool", "cmpult_bool",
                                "cmpule_bool"}}
        for rule in RULES:
            if rule in structural:
                continue
            expected = renamed.get(rule, {rule})
            assert expected & lf_names, f"no LF constant for rule {rule}"

    def test_schema_constants_are_guarded(self):
        """Every axiom schema whose soundness depends on literal values
        must carry a side condition — forgetting one would let a malicious
        proof instantiate it unsoundly."""
        must_be_guarded = (
            "arith_eval", "mod_word", "norm_mod_eq", "word_ge0",
            "word_lt_mod", "and_ubound", "and_mask_disjoint", "add_align",
            "srl_bound", "sll_align", "extbl_bound", "extwl_bound",
            "extll_bound", "linarith", "or_disjoint", "and_submask",
            "shift_trunc_le", "sll_lt_of_srl",
        )
        for name in must_be_guarded:
            entry = SIGNATURE.entries[name]
            assert entry.side_condition is not None, name


class TestProofIrrelevantDeclarations:
    def test_pf_family(self):
        pf = SIGNATURE.entries["pf"].ty
        assert isinstance(pf, LfPi)
        assert pf.dom == LfConst("form")
        assert pf.cod == TYPE
