"""Adequacy of the FOL-in-LF encoding (the property §2.3 leans on:
"the validity of a proof is implied by the well-typedness of the proof
representation" only makes sense if the encoding is faithful).

Property-based: for random formulas,

* the encoding has LF type ``form`` (terms: ``tm``),
* decoding inverts encoding up to canonical bound names,
* the wire format round-trips the encoding exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.lf.binary import deserialize_lf, serialize_lf
from repro.lf.encode import (
    decode_logic_formula,
    decode_logic_term,
    encode_formula,
    encode_term,
)
from repro.lf.signature import SIGNATURE
from repro.lf.syntax import LfConst
from repro.lf.typecheck import infer_type
from repro.logic.formulas import And, Atom, Forall, Implies, Or, eq
from repro.logic.terms import App, Int, Var

_REGISTERS = [Var(f"r{i}") for i in range(4)]

_term_leaves = st.one_of(
    st.integers(min_value=0, max_value=1 << 64).map(Int),
    st.sampled_from(_REGISTERS),
)


def _term_branches(children):
    return st.builds(
        lambda op, a, b: App(op, (a, b)),
        st.sampled_from(["add64", "sub64", "and64", "or64", "srl64",
                         "cmpult", "extbl", "add", "mul"]),
        children, children)


terms = st.recursive(_term_leaves, _term_branches, max_leaves=8)

atoms = st.builds(
    lambda pred, a, b: Atom(pred, (a, b)),
    st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]),
    terms, terms)

unary_atoms = st.builds(lambda pred, a: Atom(pred, (a,)),
                        st.sampled_from(["rd", "wr"]), terms)


def _formula_branches(children):
    return st.one_of(
        st.builds(And, children, children),
        st.builds(Or, children, children),
        st.builds(Implies, children, children),
    )


formulas = st.recursive(st.one_of(atoms, unary_atoms),
                        _formula_branches, max_leaves=6)


class TestTermAdequacy:
    @settings(max_examples=150)
    @given(terms)
    def test_encoded_terms_have_type_tm(self, term):
        encoded = encode_term(term, {}, 0)
        assert infer_type(encoded, SIGNATURE) == LfConst("tm")

    @settings(max_examples=150)
    @given(terms)
    def test_decode_inverts_encode(self, term):
        assert decode_logic_term(encode_term(term, {}, 0)) == term


class TestFormulaAdequacy:
    @settings(max_examples=100)
    @given(formulas)
    def test_encoded_formulas_have_type_form(self, formula):
        encoded = encode_formula(formula, {}, 0)
        assert infer_type(encoded, SIGNATURE) == LfConst("form")

    @settings(max_examples=100)
    @given(formulas)
    def test_decode_inverts_encode(self, formula):
        encoded = encode_formula(formula, {}, 0)
        assert decode_logic_formula(encoded) == formula

    @settings(max_examples=100)
    @given(formulas)
    def test_wire_round_trip(self, formula):
        encoded = encode_formula(formula, {}, 0)
        table, stream = serialize_lf(encoded)
        assert deserialize_lf(table, stream) == encoded

    @settings(max_examples=60)
    @given(formulas)
    def test_quantified_formulas_type_check(self, body):
        quantified = Forall("q", Implies(eq(Var("q"), 0), body))
        encoded = encode_formula(quantified, {}, 0)
        assert infer_type(encoded, SIGNATURE) == LfConst("form")

    @settings(max_examples=60)
    @given(formulas)
    def test_injective_on_samples(self, formula):
        """Different formulas encode differently (sound comparison of
        pf(SP) against the proof's type depends on it)."""
        other = And(formula, formula)
        assert encode_formula(formula, {}, 0) != \
            encode_formula(other, {}, 0)
