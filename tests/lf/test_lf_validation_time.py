"""Scaling guards for the consumer's validator: validation must stay
near-linear in the (shared) proof size — the §2.3 performance story
depends on it, and two DAG-blowup regressions were fixed during
development (normalize and subst on shared LF nodes)."""

import time

from repro.lf.binary import deserialize_lf, serialize_lf
from repro.lf.encode import encode_formula, encode_proof
from repro.lf.signature import SIGNATURE
from repro.lf.syntax import LfApp, LfConst
from repro.lf.typecheck import check_proof_term
from repro.pcc import certify
from repro.filters.policy import packet_filter_policy
from repro.alpha.parser import parse_program


def _chain(depth: int) -> str:
    lines = []
    for index in range(depth):
        label = f"skip{index}"
        lines.append(f"LDQ  r4, {8 * (index % 8)}(r1)")
        lines.append(f"BEQ  r4, {label}")
        lines.append(f"LDQ  r5, {8 * ((index + 1) % 8)}(r1)")
        lines.append(f"{label}: ADDQ r5, 1, r5")
    lines.append("ADDQ r5, 0, r0")
    lines.append("RET")
    return "\n".join(lines)


def _validate_seconds(certified) -> float:
    lf_proof = encode_proof(certified.proof, certified.predicate)
    table, stream = serialize_lf(lf_proof)
    decoded = deserialize_lf(table, stream)
    expected = LfApp(LfConst("pf"),
                     encode_formula(certified.predicate, {}, 0))
    started = time.perf_counter()
    check_proof_term(decoded, expected, SIGNATURE)
    return time.perf_counter() - started


class TestValidationScaling:
    def test_conditional_chains_stay_tame(self, filter_policy):
        times = {}
        for depth in (4, 8, 16):
            certified = certify(_chain(depth), filter_policy)
            times[depth] = _validate_seconds(certified)
        # 4x the depth may not cost more than ~12x the time (roughly
        # linear with logging slack; exponential would be >1000x)
        assert times[16] < 12 * max(times[4], 0.005)

    def test_absolute_budget(self, certified_filters, filter_policy):
        """Every shipped filter validates within a second on any
        reasonable machine (the paper: 1-3 ms in C on a 175 MHz Alpha)."""
        from repro.pcc import validate
        for name, certified in certified_filters.items():
            report = validate(certified.binary.to_bytes(), filter_policy)
            assert report.validation_seconds < 1.0, name
