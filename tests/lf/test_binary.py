"""Wire-format tests: round trips, sharing, and adversarial byte streams."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LfError
from repro.lf.binary import deserialize_lf, serialize_lf
from repro.lf.syntax import (
    LfApp,
    LfConst,
    LfInt,
    LfLam,
    LfPi,
    LfVar,
    lf_app,
)

_leaves = st.one_of(
    st.text(alphabet="abcdefg_", min_size=1, max_size=6).map(LfConst),
    st.integers(min_value=0, max_value=5).map(LfVar),
    st.integers(min_value=0, max_value=1 << 70).map(LfInt),
)


def _branches(children):
    return st.one_of(
        st.builds(LfApp, children, children),
        st.builds(lambda t, b: LfLam(t, b), children, children),
        st.builds(lambda d, c: LfPi(d, c), children, children),
    )


lf_terms = st.recursive(_leaves, _branches, max_leaves=25)


class TestRoundTrip:
    @given(lf_terms)
    def test_round_trip(self, term):
        table, stream = serialize_lf(term)
        assert deserialize_lf(table, stream) == term

    @given(lf_terms)
    def test_round_trip_unshared(self, term):
        table, stream = serialize_lf(term, share=False)
        assert deserialize_lf(table, stream) == term

    def test_sharing_shrinks_output(self):
        big = lf_app(LfConst("f"), LfInt(12345), LfInt(67890))
        for __ in range(6):
            big = LfApp(big, big)
        shared_table, shared_stream = serialize_lf(big)
        plain_table, plain_stream = serialize_lf(big, share=False)
        assert len(shared_stream) < len(plain_stream) / 4

    def test_shared_nodes_decode_to_shared_objects(self):
        """The type checker's memoization depends on decoded DAGs sharing
        Python objects."""
        leaf = lf_app(LfConst("f"), LfInt(1))
        term = LfApp(leaf, leaf)
        table, stream = serialize_lf(term)
        decoded = deserialize_lf(table, stream)
        assert decoded.fn is decoded.arg

    def test_symbol_table_deduplicates_names(self):
        term = lf_app(LfConst("same"), LfConst("same"), LfConst("same"))
        table, __ = serialize_lf(term)
        assert table.count(b"same") == 1


class TestAdversarialBytes:
    def test_empty_stream(self):
        with pytest.raises(LfError):
            deserialize_lf(b"\x00", b"")

    def test_truncated_stream(self):
        table, stream = serialize_lf(lf_app(LfConst("f"), LfInt(1)))
        with pytest.raises(LfError):
            deserialize_lf(table, stream[:-1])

    def test_trailing_garbage(self):
        table, stream = serialize_lf(LfInt(1))
        with pytest.raises(LfError):
            deserialize_lf(table, stream + b"\x00")

    def test_unknown_tag(self):
        table, __ = serialize_lf(LfInt(1))
        with pytest.raises(LfError):
            deserialize_lf(table, b"\xff")

    def test_symbol_index_out_of_range(self):
        table, __ = serialize_lf(LfConst("a"))
        with pytest.raises(LfError):
            deserialize_lf(table, bytes([0x01, 0x09]))

    def test_backreference_out_of_range(self):
        table, __ = serialize_lf(LfInt(1))
        with pytest.raises(LfError):
            deserialize_lf(table, bytes([0x07, 0x00]))

    def test_bad_utf8_symbol(self):
        with pytest.raises(LfError):
            deserialize_lf(bytes([1, 2, 0xFF, 0xFE]), b"")

    def test_node_budget(self):
        table, stream = serialize_lf(
            lf_app(LfConst("f"), LfInt(1), LfInt(2), LfInt(3)))
        with pytest.raises(LfError):
            deserialize_lf(table, stream, max_nodes=2)

    @given(st.binary(max_size=60))
    def test_random_bytes_never_crash(self, blob):
        """Arbitrary bytes either decode or raise LfError — no other
        exception may escape to the consumer."""
        try:
            deserialize_lf(blob, blob)
        except LfError:
            pass
