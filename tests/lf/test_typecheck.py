"""LF type checking: the trusted validation core.

Covers inference for every term former, side-condition enforcement, and a
battery of ill-typed terms that must be rejected (never crash)."""

import pytest

from repro.errors import LfError
from repro.lf.signature import SIGNATURE
from repro.lf.syntax import (
    KIND,
    LfApp,
    LfConst,
    LfInt,
    LfLam,
    LfPi,
    LfVar,
    TYPE,
    lf_app,
)
from repro.lf.typecheck import check_proof_term, infer_type

TM = LfConst("tm")
FORM = LfConst("form")
PF = LfConst("pf")


class TestInference:
    def test_constants(self):
        assert infer_type(TM, SIGNATURE) == TYPE
        assert infer_type(LfConst("add64"), SIGNATURE) == \
            LfPi(TM, LfPi(TM, TM))

    def test_undeclared_constant(self):
        with pytest.raises(LfError):
            infer_type(LfConst("no_such_thing"), SIGNATURE)

    def test_integers_are_individuals(self):
        assert infer_type(LfInt(42), SIGNATURE) == TM

    def test_application(self):
        term = lf_app(LfConst("add64"), LfInt(1), LfInt(2))
        assert infer_type(term, SIGNATURE) == TM

    def test_application_type_mismatch(self):
        # and(form, form) applied to an individual
        with pytest.raises(LfError):
            infer_type(LfApp(LfConst("and"), LfInt(1)), SIGNATURE)

    def test_application_of_non_function(self):
        with pytest.raises(LfError):
            infer_type(LfApp(LfInt(1), LfInt(2)), SIGNATURE)

    def test_lambda_and_pi(self):
        identity = LfLam(TM, LfVar(0))
        assert infer_type(identity, SIGNATURE) == LfPi(TM, TM)
        assert infer_type(LfPi(TM, TM), SIGNATURE) == TYPE

    def test_unbound_variable(self):
        with pytest.raises(LfError):
            infer_type(LfVar(0), SIGNATURE)

    def test_context_lookup_shifts(self):
        # \x:tm. \p:pf(eq x x). p  — the inner type mentions the outer var
        eq_xx = lf_app(LfConst("eq"), LfVar(0), LfVar(0))
        term = LfLam(TM, LfLam(LfApp(PF, eq_xx), LfVar(0)))
        inferred = infer_type(term, SIGNATURE)
        assert isinstance(inferred, LfPi)

    def test_truei(self):
        assert infer_type(LfConst("truei"), SIGNATURE) == \
            LfApp(PF, LfConst("true"))

    def test_pf_is_a_family(self):
        # pf : form -> type, so (pf true) : type
        assert infer_type(LfApp(PF, LfConst("true")), SIGNATURE) == TYPE


class TestSideConditions:
    def test_arith_eval_true_instance(self):
        goal = lf_app(LfConst("lt"), LfInt(3), LfInt(4))
        proof = LfApp(LfConst("arith_eval"), goal)
        assert infer_type(proof, SIGNATURE) == LfApp(PF, goal)

    def test_arith_eval_false_instance_rejected(self):
        goal = lf_app(LfConst("lt"), LfInt(4), LfInt(3))
        with pytest.raises(LfError):
            infer_type(LfApp(LfConst("arith_eval"), goal), SIGNATURE)

    def test_arith_eval_non_ground_rejected(self):
        # under a lambda, the argument is a bound variable — not ground
        goal = lf_app(LfConst("lt"), LfVar(0), LfInt(3))
        term = LfLam(TM, LfApp(LfConst("arith_eval"), goal))
        with pytest.raises(LfError):
            infer_type(term, SIGNATURE)

    def test_mod_word(self):
        word = lf_app(LfConst("add64"), LfInt(1), LfInt(2))
        proof = LfApp(LfConst("mod_word"), word)
        infer_type(proof, SIGNATURE)  # accepted
        # a bare lambda-bound variable is not word-valued
        bad = LfLam(TM, LfApp(LfConst("mod_word"), LfVar(0)))
        with pytest.raises(LfError):
            infer_type(bad, SIGNATURE)

    def test_partial_application_is_harmless(self):
        """A partially applied schema constant types as a Pi — it cannot
        stand as a proof of any formula, so skipping the side condition is
        safe."""
        partial = LfConst("norm_mod_eq")
        inferred = infer_type(partial, SIGNATURE)
        assert isinstance(inferred, LfPi)


class TestCheckProofTerm:
    def test_accepts_exact_type(self):
        goal = LfConst("true")
        check_proof_term(LfConst("truei"), LfApp(PF, goal), SIGNATURE)

    def test_rejects_wrong_formula(self):
        wrong = LfApp(PF, LfConst("false"))
        with pytest.raises(LfError):
            check_proof_term(LfConst("truei"), wrong, SIGNATURE)

    def test_accepts_up_to_beta(self):
        # expected type written as a redex: ((\f. pf f) true)
        redex = LfApp(LfLam(FORM, LfApp(PF, LfVar(0))), LfConst("true"))
        check_proof_term(LfConst("truei"), redex, SIGNATURE)

    def test_depth_limit(self):
        term = LfInt(0)
        for __ in range(100):
            term = LfApp(LfLam(TM, LfVar(0)), term)
        with pytest.raises(LfError):
            infer_type(term, SIGNATURE, max_depth=20)
