"""Formula/term/proof encoding into LF, and the decoding side conditions
rely on.  The key invariants:

* every Delta-checked proof encodes to a *well-typed* LF object whose type
  is ``pf(encoding of the goal)`` — validated here for representative
  proofs of every rule family;
* formula decoding is a left inverse of encoding up to canonical bound
  names (what invariant canonicalization depends on).
"""

import pytest

from repro.errors import LfError
from repro.lf.encode import (
    decode_logic_formula,
    decode_logic_term,
    encode_formula,
    encode_proof,
    encode_term,
)
from repro.lf.signature import SIGNATURE
from repro.lf.syntax import LfApp, LfConst, LfInt, LfLam, LfVar, lf_app
from repro.lf.typecheck import check_proof_term
from repro.logic.formulas import (
    And,
    Forall,
    Implies,
    Truth,
    eq,
    ge,
    le,
    lt,
    ne,
    rd,
)
from repro.logic.terms import App, Int, Var, add64, and64, mod64, sel, srl64
from repro.proof.checker import check_proof
from repro.proof.proofs import Proof


def _validate(proof, goal):
    """Check with Delta, encode, check with LF — both must accept."""
    check_proof(proof, goal)
    lf_proof = encode_proof(proof, goal)
    expected = LfApp(LfConst("pf"), encode_formula(goal, {}, 0))
    check_proof_term(lf_proof, expected, SIGNATURE)


class TestTermEncoding:
    def test_integers(self):
        assert encode_term(Int(7), {}, 0) == LfInt(7)

    def test_operators(self):
        term = add64(Int(1), Int(2))
        assert encode_term(term, {}, 0) == \
            lf_app(LfConst("add64"), LfInt(1), LfInt(2))

    def test_bound_variables(self):
        assert encode_term(Var("x"), {"x": 0}, 1) == LfVar(0)
        assert encode_term(Var("x"), {"x": 0}, 3) == LfVar(2)

    def test_free_registers_become_constants(self):
        assert encode_term(Var("r4"), {}, 0) == LfConst("r4")

    def test_unknown_free_variable_rejected(self):
        with pytest.raises(LfError):
            encode_term(Var("mystery"), {}, 0)

    def test_term_decode_round_trip(self):
        term = and64(srl64(sel(Var("rm"), add64(Var("r1"), 8)), 46), 60)
        encoded = encode_term(term, {}, 0)
        assert decode_logic_term(encoded) == term


class TestFormulaEncoding:
    def test_quantifier_sorts(self):
        individual = Forall("i", ge(Var("i"), 0))
        memory = Forall("rm", eq(sel(Var("rm"), 0), 0))
        enc_i = encode_formula(individual, {}, 0)
        enc_m = encode_formula(memory, {}, 0)
        assert enc_i.fn == LfConst("all")
        assert enc_m.fn == LfConst("allm")
        assert enc_i.arg.ty == LfConst("tm")
        assert enc_m.arg.ty == LfConst("mem")

    def test_decode_canonicalizes_bound_names(self):
        formula = Forall("i", Implies(lt(Var("i"), Var("r2")),
                                      rd(add64(Var("r1"), Var("i")))))
        encoded = encode_formula(formula, {}, 0)
        decoded = decode_logic_formula(encoded)
        assert isinstance(decoded, Forall)
        assert decoded.var == "v0"
        # decode is idempotent through another round trip
        again = decode_logic_formula(encode_formula(decoded, {}, 0))
        assert again == decoded

    def test_decode_rejects_junk(self):
        with pytest.raises(LfError):
            decode_logic_formula(LfInt(3))


class TestProofEncoding:
    def test_propositional_families(self):
        goal = Implies(eq(Var("r0"), 0),
                       And(Truth(), eq(Var("r0"), 0)))
        proof = Proof("impi", ("h",), (
            Proof("andi", (), (Proof("truei"), Proof("hyp", ("h",)))),))
        _validate(proof, goal)

    def test_quantifier_families(self):
        goal = Forall("x", Implies(eq(Var("x"), 1), eq(Var("x"), 1)))
        proof = Proof("alli", ("x",), (
            Proof("impi", ("h",), (Proof("hyp", ("h",)),)),))
        _validate(proof, goal)

    def test_memory_quantifier(self):
        goal = Forall("rm", Implies(ne(sel(Var("rm"), 8), 0),
                                    ne(sel(Var("rm"), 8), 0)))
        proof = Proof("alli", ("rm",), (
            Proof("impi", ("h",), (Proof("hyp", ("h",)),)),))
        _validate(proof, goal)

    def test_equality_families(self):
        a = add64(Var("r1"), 8)
        goal = Implies(eq(mod64(a), a), eq(mod64(a), a))
        proof = Proof("impi", ("h",), (Proof("hyp", ("h",)),))
        _validate(proof, goal)
        # eqsub through a template
        goal2 = Implies(eq(Var("r1"), Var("r2")),
                        Implies(rd(Var("r1")), rd(Var("r2"))))
        proof2 = Proof("impi", ("e",), (
            Proof("impi", ("r",), (
                Proof("eqsub", (rd(Var("?h")), "?h", Var("r1"), Var("r2")),
                      (Proof("hyp", ("e",)), Proof("hyp", ("r",)))),)),))
        _validate(proof2, goal2)

    def test_arithmetic_families(self):
        term = add64(Var("r1"), Var("r2"))
        _validate(Proof("mod_word"), eq(mod64(term), term))
        _validate(Proof("arith_eval"), lt(3, 4))
        _validate(Proof("word_ge0"), ge(term, 0))
        masked = and64(and64(Var("r1"), Int(248)), Int(7))
        _validate(Proof("and_mask_disjoint"), eq(masked, 0))

    def test_linarith_encoding(self):
        premises = (le(Var("r1"), 56), ge(Var("r2"), 64))
        goal = Implies(premises[0], Implies(premises[1],
                                            lt(Var("r1"), Var("r2"))))
        proof = Proof("impi", ("a",), (
            Proof("impi", ("b",), (
                Proof("linarith", premises,
                      (Proof("hyp", ("a",)), Proof("hyp", ("b",)))),)),))
        _validate(proof, goal)

    def test_invalid_proof_rejected_by_encoder(self):
        with pytest.raises(LfError):
            encode_proof(Proof("truei"), eq(1, 2))
