"""LF term manipulation: shifting, substitution, normalization."""

from repro.lf.syntax import (
    LfApp,
    LfConst,
    LfInt,
    LfLam,
    LfPi,
    LfVar,
    alpha_beta_equal,
    lf_app,
    lf_size,
    normalize,
    shift,
    spine,
    subst,
    whnf,
)

TM = LfConst("tm")


class TestDeBruijn:
    def test_shift_free_variables(self):
        assert shift(LfVar(0), 2) == LfVar(2)
        assert shift(LfVar(1), 3, cutoff=2) == LfVar(1)

    def test_shift_under_binder(self):
        term = LfLam(TM, LfApp(LfVar(0), LfVar(1)))
        shifted = shift(term, 1)
        assert shifted == LfLam(TM, LfApp(LfVar(0), LfVar(2)))

    def test_subst_basics(self):
        assert subst(LfVar(0), LfConst("c")) == LfConst("c")
        assert subst(LfVar(1), LfConst("c")) == LfVar(0)

    def test_subst_under_binder_shifts_replacement(self):
        term = LfLam(TM, LfVar(1))  # refers to the enclosing binder
        assert subst(term, LfVar(0)) == LfLam(TM, LfVar(1))


class TestNormalization:
    def test_beta(self):
        identity = LfLam(TM, LfVar(0))
        assert whnf(LfApp(identity, LfConst("c"))) == LfConst("c")

    def test_nested_beta(self):
        const_fn = LfLam(TM, LfLam(TM, LfVar(1)))
        term = lf_app(const_fn, LfConst("a"), LfConst("b"))
        assert normalize(term) == LfConst("a")

    def test_normalize_under_binders(self):
        identity = LfLam(TM, LfVar(0))
        term = LfLam(TM, LfApp(identity, LfVar(0)))
        assert normalize(term) == LfLam(TM, LfVar(0))

    def test_alpha_is_structural(self):
        # hints differ, de Bruijn structure identical
        a = LfLam(TM, LfVar(0), hint="x")
        b = LfLam(TM, LfVar(0), hint="y")
        assert alpha_beta_equal(a, b)

    def test_beta_equality(self):
        identity = LfLam(TM, LfVar(0))
        assert alpha_beta_equal(LfApp(identity, LfInt(7)), LfInt(7))
        assert not alpha_beta_equal(LfInt(7), LfInt(8))


class TestHelpers:
    def test_spine(self):
        term = lf_app(LfConst("f"), LfInt(1), LfInt(2))
        head, args = spine(term)
        assert head == LfConst("f")
        assert args == [LfInt(1), LfInt(2)]

    def test_lf_size(self):
        assert lf_size(LfInt(3)) == 1
        assert lf_size(lf_app(LfConst("f"), LfInt(1))) == 3
