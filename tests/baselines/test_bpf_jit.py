"""The BPF-to-Alpha compiler: semantics (JIT == interpreter == oracle),
check placement, and certifiability of the compiled code — the "replace
the interpreter with a compiler" variant of §3.1, made trustless by PCC.
"""

import pytest

from repro.alpha.machine import Machine
from repro.baselines.bpf import BPF_FILTERS, BpfInterpreter, compile_bpf
from repro.baselines.bpf.isa import (
    alu_add_k,
    alu_and_k,
    alu_lsh_k,
    alu_rsh_k,
    jeq,
    jge,
    jgt,
    jset,
    jmp_ja,
    ld_b_abs,
    ld_h_abs,
    ld_h_ind,
    ld_imm,
    ld_mem,
    ld_w_abs,
    ldx_imm,
    ldx_msh,
    ret_a,
    ret_k,
    st,
    tax,
    txa,
)
from repro.errors import BpfError
from repro.filters import ORACLES, filter_registers, packet_memory

PACKET = bytes(range(1, 101))


def _run_jit(bpf_program, frame):
    program = compile_bpf(bpf_program)
    machine = Machine(program, packet_memory(frame),
                      filter_registers(len(frame)))
    return machine.run().value


def _agree(bpf_program, frame):
    jit = _run_jit(bpf_program, frame)
    interp = BpfInterpreter(bpf_program).run(frame).verdict
    assert jit == interp, (jit, interp)
    return jit


class TestJitSemantics:
    def test_loads(self):
        assert _agree([ld_h_abs(0), ret_a()], PACKET) == \
            (PACKET[0] << 8) | PACKET[1]
        assert _agree([ld_w_abs(4), ret_a()], PACKET) == \
            int.from_bytes(PACKET[4:8], "big")
        assert _agree([ld_b_abs(10), ret_a()], PACKET) == PACKET[10]

    def test_unaligned_word_load(self):
        # offset 5 crosses an 8-byte boundary: bytes 5..8
        assert _agree([ld_w_abs(5), ret_a()], PACKET) == \
            int.from_bytes(PACKET[5:9], "big")

    def test_out_of_bounds_rejects(self):
        assert _agree([ld_w_abs(98), ret_k(1)], PACKET) == 0

    def test_indirect_and_msh(self):
        program = [ldx_msh(14), ld_h_ind(16), ret_a()]
        assert _agree(program, PACKET) > 0

    def test_alu_and_masking(self):
        program = [ld_imm(0xFFFFFFFF), alu_add_k(1), ret_a()]
        assert _agree(program, PACKET) == 0  # 32-bit wrap
        program = [ld_imm(0xF0), alu_lsh_k(4), alu_rsh_k(8), ret_a()]
        assert _agree(program, PACKET) == 0x0F

    def test_large_constants(self):
        program = [ld_imm(0x8002CE00), ret_a()]
        assert _agree(program, PACKET) == 0x8002CE00
        program = [ld_w_abs(0), alu_and_k(0xFFFFFF00), ret_a()]
        assert _agree(program, PACKET) == \
            int.from_bytes(PACKET[:4], "big") & 0xFFFFFF00

    def test_jumps(self):
        program = [ld_imm(5), jeq(5, 1, 0), ret_k(0), ret_k(1)]
        assert _agree(program, PACKET) == 1
        program = [ld_imm(5), jgt(4, 1, 0), ret_k(0), ret_k(1)]
        assert _agree(program, PACKET) == 1
        program = [ld_imm(5), jge(6, 0, 1), ret_k(7), ret_k(1)]
        assert _agree(program, PACKET) == 1
        program = [ld_imm(6), jset(2, 1, 0), ret_k(0), ret_k(1)]
        assert _agree(program, PACKET) == 1
        program = [jmp_ja(1), ret_k(9), ret_k(3)]
        assert _agree(program, PACKET) == 3

    def test_scratch_and_transfers(self):
        program = [ld_imm(123), st(0), ld_imm(0), ld_mem(0), tax(),
                   ld_imm(0), txa(), ret_a()]
        assert _agree(program, PACKET) == 123

    def test_high_scratch_cells_rejected(self):
        with pytest.raises(BpfError):
            compile_bpf([st(5), ret_k(0)])

    def test_division_unsupported(self):
        from repro.baselines.bpf.isa import BPF_ALU, BPF_DIV, BPF_K, BpfInstruction
        with pytest.raises(BpfError):
            compile_bpf([BpfInstruction(BPF_ALU | BPF_DIV | BPF_K, k=2),
                         ret_k(0)])


class TestJitOnTrace:
    def test_all_filters_agree_with_interpreter(self, small_trace):
        for name, bpf_program in BPF_FILTERS.items():
            compiled = compile_bpf(bpf_program)
            interpreter = BpfInterpreter(bpf_program)
            for frame in small_trace[:250]:
                machine = Machine(compiled, packet_memory(frame),
                                  filter_registers(len(frame)))
                assert bool(machine.run().value) == \
                    bool(interpreter.run(frame).verdict), name

    def test_all_filters_match_oracles(self, small_trace):
        for name, bpf_program in BPF_FILTERS.items():
            compiled = compile_bpf(bpf_program)
            oracle = ORACLES[name]
            for frame in small_trace[:250]:
                machine = Machine(compiled, packet_memory(frame),
                                  filter_registers(len(frame)))
                assert bool(machine.run().value) == oracle(frame), name


class TestJitCertifies:
    """The kernel need not trust the JIT: its output carries proofs."""

    @pytest.mark.parametrize("name", ["filter1", "filter2", "filter4"])
    def test_compiled_filters_certify(self, name, filter_policy):
        from repro.pcc import certify, validate
        certified = certify(compile_bpf(BPF_FILTERS[name]), filter_policy)
        validate(certified.binary.to_bytes(), filter_policy)

    def test_compiled_filter3_certifies(self, filter_policy):
        from repro.pcc import certify
        certify(compile_bpf(BPF_FILTERS["filter3"]), filter_policy)

    def test_jit_sits_between_interpreter_and_handcoded(self, small_trace):
        from repro.perf import run_approach
        from repro.filters.programs import FILTERS
        sample = small_trace[:200]
        for spec in FILTERS:
            interp = run_approach(spec, "bpf", sample)
            jit = run_approach(spec, "bpf-jit", sample)
            hand = run_approach(spec, "pcc", sample)
            assert hand.cycles_per_packet < jit.cycles_per_packet \
                < interp.cycles_per_packet, spec.name
