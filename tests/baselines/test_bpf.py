"""The BPF baseline: verifier, interpreter semantics, filter agreement."""

import pytest

from repro.baselines.bpf import (
    BPF_FILTERS,
    BpfInterpreter,
    alu_add_k,
    alu_and_k,
    alu_rsh_k,
    jeq,
    jmp_ja,
    ld_b_abs,
    ld_h_abs,
    ld_imm,
    ld_w_abs,
    ld_w_ind,
    ldx_imm,
    ldx_msh,
    ret_a,
    ret_k,
    st,
    stx,
    tax,
    txa,
    verify_bpf,
)
from repro.baselines.bpf.isa import BpfInstruction, ld_mem, ldx_mem
from repro.errors import BpfVerifyError
from repro.filters import ORACLES

PACKET = bytes(range(1, 65))  # 64 distinct bytes


def run(program, packet=PACKET):
    verify_bpf(program)
    return BpfInterpreter(program).run(packet)


class TestVerifier:
    def test_accepts_all_shipped_filters(self):
        for program in BPF_FILTERS.values():
            verify_bpf(program)

    def test_rejects_empty(self):
        with pytest.raises(BpfVerifyError):
            verify_bpf([])

    def test_rejects_missing_ret(self):
        with pytest.raises(BpfVerifyError):
            verify_bpf([ld_h_abs(12)])

    def test_rejects_branch_out_of_range(self):
        with pytest.raises(BpfVerifyError):
            verify_bpf([jeq(1, 5, 0), ret_k(0)])

    def test_rejects_bad_scratch_index(self):
        with pytest.raises(BpfVerifyError):
            verify_bpf([st(16), ret_k(0)])

    def test_rejects_constant_divide_by_zero(self):
        from repro.baselines.bpf.isa import BPF_ALU, BPF_DIV, BPF_K
        div = BpfInstruction(BPF_ALU | BPF_DIV | BPF_K, k=0)
        with pytest.raises(BpfVerifyError):
            verify_bpf([div, ret_k(0)])

    def test_rejects_unknown_opcode(self):
        with pytest.raises(BpfVerifyError):
            verify_bpf([BpfInstruction(0x00 | 0xE0), ret_k(0)])


class TestInterpreter:
    def test_loads_are_big_endian(self):
        stats = run([ld_h_abs(0), ret_a()])
        assert stats.verdict == (PACKET[0] << 8) | PACKET[1]
        stats = run([ld_w_abs(4), ret_a()])
        assert stats.verdict == int.from_bytes(PACKET[4:8], "big")

    def test_byte_load(self):
        assert run([ld_b_abs(10), ret_a()]).verdict == PACKET[10]

    def test_out_of_bounds_read_rejects_packet(self):
        """The BPF run-time check: reading past the packet returns 0."""
        stats = run([ld_w_abs(62), ret_k(1)])
        assert stats.verdict == 0

    def test_indirect_load(self):
        program = [ldx_imm(8), ld_w_ind(4), ret_a()]
        assert run(program).verdict == int.from_bytes(PACKET[12:16], "big")

    def test_msh_idiom(self):
        # X := 4 * (pkt[14] & 0xf); pkt[14] = 15 -> X = 60
        program = [ldx_msh(14), txa(), ret_a()]
        assert run(program).verdict == 4 * (PACKET[14] & 0x0F)

    def test_scratch_memory(self):
        program = [ld_imm(123), st(3), ld_imm(0), ld_mem(3), ret_a()]
        assert run(program).verdict == 123

    def test_stx_and_ldx_mem(self):
        program = [ldx_imm(7), stx(0), ldx_imm(0), ldx_mem(0), txa(),
                   ret_a()]
        assert run(program).verdict == 7

    def test_alu_is_32_bit(self):
        program = [ld_imm(0xFFFFFFFF), alu_add_k(1), ret_a()]
        assert run(program).verdict == 0

    def test_tax_txa(self):
        program = [ld_imm(9), tax(), ld_imm(0), txa(), ret_a()]
        assert run(program).verdict == 9

    def test_jump_semantics(self):
        program = [ld_imm(5), jeq(5, 1, 0), ret_k(0), ret_k(1)]
        assert run(program).verdict == 1

    def test_unconditional_jump(self):
        program = [jmp_ja(1), ret_k(7), ret_k(42)]
        assert run(program).verdict == 42

    def test_cycle_accounting(self):
        stats = run([ld_h_abs(0), ret_a()])
        assert stats.instructions == 2
        assert stats.cycles > 2 * 10  # dispatch-dominated


class TestFilterAgreement:
    def test_against_oracles(self, small_trace):
        for name, program in BPF_FILTERS.items():
            interpreter = BpfInterpreter(program)
            oracle = ORACLES[name]
            for frame in small_trace:
                assert bool(interpreter.run(frame).verdict) == \
                    oracle(frame), f"{name} vs oracle on {frame[:40].hex()}"

    def test_agreement_with_pcc_filters(self, small_trace):
        """BPF and native PCC implementations decide identically."""
        from repro.alpha.machine import Machine
        from repro.filters import FILTERS, filter_registers, packet_memory
        for spec in FILTERS:
            interpreter = BpfInterpreter(BPF_FILTERS[spec.name])
            for frame in small_trace[:300]:
                native = Machine(spec.program, packet_memory(frame),
                                 filter_registers(len(frame))).run()
                assert bool(native.value) == \
                    bool(interpreter.run(frame).verdict)
