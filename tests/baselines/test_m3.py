"""The safe-language baseline: interpreter semantics, compiler
correctness (interpreter == compiled code == oracle), check placement,
and the certifying-compiler experiment."""

import pytest

from repro.alpha.isa import Branch, Ldq, Operate
from repro.alpha.machine import Machine
from repro.baselines.m3 import (
    Bin,
    Const,
    If,
    Len,
    M3_FILTERS,
    M3_VIEW_FILTERS,
    PacketByte,
    ViewWord,
    compile_plain,
    compile_view,
    evaluate,
)
from repro.baselines.m3.lang import be16, be24, run_filter
from repro.errors import M3Error, M3RuntimeError
from repro.filters import ORACLES, filter_registers, packet_memory

PACKET = bytes(range(1, 101))


def _run_compiled(program, frame):
    machine = Machine(program, packet_memory(frame),
                      filter_registers(len(frame)))
    return machine.run().value


class TestLanguage:
    def test_constants_and_length(self):
        assert evaluate(Const(7), PACKET) == 7
        assert evaluate(Len(), PACKET) == len(PACKET)

    def test_byte_access_checked(self):
        assert evaluate(PacketByte(Const(3)), PACKET) == PACKET[3]
        with pytest.raises(M3RuntimeError):
            evaluate(PacketByte(Const(100)), PACKET)

    def test_view_word_checked(self):
        value = evaluate(ViewWord(Const(0)), PACKET)
        assert value == int.from_bytes(PACKET[:8], "little")
        with pytest.raises(M3RuntimeError):
            evaluate(ViewWord(Const(12)), PACKET)  # 100 // 8 == 12

    def test_be_helpers(self):
        assert evaluate(be16(0), PACKET) == (PACKET[0] << 8) | PACKET[1]
        assert evaluate(be24(4), PACKET) == \
            (PACKET[4] << 16) | (PACKET[5] << 8) | PACKET[6]

    def test_operators(self):
        assert evaluate(Bin("+", Const(2), Const(3)), PACKET) == 5
        assert evaluate(Bin("==", Const(2), Const(2)), PACKET) == 1
        assert evaluate(Bin("<", Const(3), Const(2)), PACKET) == 0
        assert evaluate(Bin("<<", Const(1), Const(8)), PACKET) == 256

    def test_if(self):
        expr = If(Bin("==", Const(1), Const(1)), Const(10), Const(20))
        assert evaluate(expr, PACKET) == 10

    def test_run_filter_rejects_on_failed_check(self):
        assert run_filter(PacketByte(Const(500)), PACKET) == 0

    def test_unknown_operator_rejected(self):
        with pytest.raises(M3Error):
            Bin("%%", Const(1), Const(2))


class TestCompilers:
    def test_plain_rejects_view(self):
        with pytest.raises(M3Error):
            compile_plain(ViewWord(Const(0)))

    def test_check_per_byte_access(self):
        """Plain compilation: one CMPULT per PacketByte — the checks the
        Modula-3 compiler cannot eliminate."""
        expr = Bin("+", PacketByte(Const(0)), PacketByte(Const(1)))
        program = compile_plain(expr)
        compares = [i for i in program
                    if isinstance(i, Operate) and i.name == "CMPULT"]
        assert len(compares) == 2

    def test_view_uses_fewer_loads(self):
        plain = compile_plain(M3_FILTERS["filter1"])
        view = compile_view(M3_VIEW_FILTERS["filter1"])
        plain_loads = sum(isinstance(i, Ldq) for i in plain)
        view_loads = sum(isinstance(i, Ldq) for i in view)
        assert view_loads < plain_loads

    def test_compiled_equals_interpreter(self, small_trace):
        for name, expr in M3_FILTERS.items():
            program = compile_plain(expr)
            for frame in small_trace[:150]:
                assert _run_compiled(program, frame) == \
                    run_filter(expr, frame), name

    def test_view_compiled_equals_interpreter(self, small_trace):
        for name, expr in M3_VIEW_FILTERS.items():
            program = compile_view(expr)
            for frame in small_trace[:150]:
                assert _run_compiled(program, frame) == \
                    run_filter(expr, frame), name

    def test_compiled_filters_match_oracles(self, small_trace):
        for name, expr in M3_FILTERS.items():
            program = compile_plain(expr)
            oracle = ORACLES[name]
            for frame in small_trace[:300]:
                assert bool(_run_compiled(program, frame)) == \
                    oracle(frame), name

    def test_view_filters_match_oracles(self, small_trace):
        for name, expr in M3_VIEW_FILTERS.items():
            program = compile_view(expr)
            oracle = ORACLES[name]
            for frame in small_trace[:300]:
                assert bool(_run_compiled(program, frame)) == \
                    oracle(frame), name

    def test_failed_check_rejects_at_machine_level(self):
        program = compile_plain(PacketByte(Bin("+", Len(), Const(10))))
        assert _run_compiled(program, bytes(64)) == 0

    def test_register_exhaustion_detected(self):
        deep = Const(1)
        for __ in range(10):
            deep = Bin("+", deep, PacketByte(deep))
        with pytest.raises(M3Error):
            compile_plain(deep)


class TestCertifyingCompiler:
    """The §4/§6 direction: 'starting with a safe programming language and
    then implementing a certifying compiler that produces PCC binaries' —
    our toy compilers' output is certifiable because the inserted checks
    make the safety predicate provable."""

    @pytest.mark.parametrize("name", ["filter1", "filter2", "filter4"])
    def test_plain_output_certifies(self, name, filter_policy):
        # filter3-plain also certifies but takes ~a minute; it is covered
        # by the slow marker below rather than the default run.
        from repro.pcc import certify
        certify(compile_plain(M3_FILTERS[name]), filter_policy)

    @pytest.mark.parametrize("name", ["filter1", "filter2", "filter4"])
    def test_view_output_certifies(self, name, filter_policy):
        from repro.pcc import certify
        certify(compile_view(M3_VIEW_FILTERS[name]), filter_policy)

    @pytest.mark.parametrize("variant", ["plain", "view"])
    def test_filter3_certifies(self, variant, filter_policy):
        # filter3 compiles to ~200 instructions with 24 checked accesses;
        # certification takes minutes and is exercised by the slow marker.
        from repro.pcc import certify
        if variant == "plain":
            certify(compile_plain(M3_FILTERS["filter3"]), filter_policy)
        else:
            certify(compile_view(M3_VIEW_FILTERS["filter3"]),
                    filter_policy)
