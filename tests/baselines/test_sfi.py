"""SFI baseline: rewriting correctness, containment of malicious code,
and the PCC-validates-SFI experiment (§3.1)."""

import pytest

from repro.alpha.machine import Machine
from repro.alpha.parser import parse_program
from repro.baselines.sfi import (
    SfiConfig,
    sfi_memory,
    sfi_policy,
    sfi_registers,
    sfi_rewrite,
)
from repro.baselines.sfi.rewrite import READ_SEGMENT_SIZE
from repro.errors import SfiError
from repro.filters import FILTERS, ORACLES
from repro.pcc import certify, validate


def _run_sfi(program, frame):
    machine = Machine(program, sfi_memory(frame),
                      sfi_registers(len(frame)))
    return machine.run()


class TestRewriting:
    def test_expansion_counts(self):
        program = parse_program("LDQ r4, 8(r1)\nSTQ r4, 0(r3)\nRET")
        rewritten = sfi_rewrite(program)
        # preamble 4 + (load 4) + (store 4) + ret
        assert len(rewritten) == 4 + 4 + 4 + 1

    def test_write_only_mode_is_cheaper(self):
        program = parse_program("LDQ r4, 8(r1)\nSTQ r4, 0(r3)\nRET")
        both = sfi_rewrite(program)
        write_only = sfi_rewrite(program, SfiConfig(sandbox_reads=False))
        assert len(write_only) < len(both)

    def test_branch_offsets_fixed_up(self, small_trace):
        """Rewritten filters still compute the same verdicts (branches
        cross expanded regions)."""
        for spec in FILTERS:
            rewritten = sfi_rewrite(spec.program)
            oracle = ORACLES[spec.name]
            for frame in small_trace[:300]:
                assert bool(_run_sfi(rewritten, frame).value) == \
                    oracle(frame), spec.name

    def test_dedicated_registers_enforced(self):
        with pytest.raises(SfiError):
            sfi_rewrite(parse_program("ADDQ r9, 1, r9\nRET"))

    def test_scratch_base_clobber_rejected(self):
        with pytest.raises(SfiError):
            sfi_rewrite(parse_program(
                "ADDQ r3, 8, r3\nSTQ r3, 0(r3)\nRET"))


class TestContainment:
    """SFI's actual guarantee: even a malicious filter cannot escape its
    segments — reads snap into the packet segment, writes into scratch."""

    def test_wild_read_contained(self):
        # tries to read far outside the packet
        malicious = parse_program("""
            LDAH r4, 0x7000(r1)
            LDQ  r0, 0(r4)
            RET
        """)
        rewritten = sfi_rewrite(malicious)
        frame = bytes(64)
        result = _run_sfi(rewritten, frame)  # no MachineError: contained
        assert result.value == 0

    def test_wild_write_contained(self):
        malicious = parse_program("""
            LDAH r4, 0x7000(r3)
            STQ  r2, 0(r4)
            RET
        """)
        rewritten = sfi_rewrite(malicious)
        frame = bytes(range(64))
        memory = sfi_memory(frame)
        machine = Machine(rewritten, memory, sfi_registers(len(frame)))
        machine.run()
        # the write landed inside scratch, not anywhere else
        assert bytes(memory.region("packet"))[:64] == frame

    def test_unaligned_access_snapped(self):
        malicious = parse_program("LDQ r0, 3(r1)\nRET")
        rewritten = sfi_rewrite(malicious)
        _run_sfi(rewritten, bytes(64))  # aligned by masking: no trap

    def test_semantics_difference_from_bpf_at_boundary(self):
        """The paper §3.1: SFI filters may read past the packet length
        (anywhere in the 2048-byte segment), where BPF would reject —
        'some working packet filters in the BPF semantics will not behave
        as expected in the SFI semantics'."""
        reader = parse_program("LDQ r0, 1024(r1)\nRET")
        rewritten = sfi_rewrite(reader)
        result = _run_sfi(rewritten, bytes(64))  # packet only 64 bytes
        assert result.value == 0  # reads segment padding, no fault


class TestSfiAsPcc:
    """§3.1: 'we produced safety proofs attesting that the resulting SFI
    packet filter binaries are safe with respect to the [SFI] safety
    policy' — PCC replaces the load-time SFI validator."""

    @pytest.fixture(scope="class")
    def certified_sfi(self):
        policy = sfi_policy()
        return {
            spec.name: certify(sfi_rewrite(spec.program), policy)
            for spec in FILTERS[:2]  # two suffice for the integration test
        }

    def test_rewritten_filters_certify(self, certified_sfi):
        policy = sfi_policy()
        for name, certified in certified_sfi.items():
            report = validate(certified.binary.to_bytes(), policy)
            assert report.instructions == len(certified.program)

    def test_unsandboxed_code_fails_sfi_policy(self):
        """Raw (unrewritten) filters do NOT satisfy the segment policy —
        the sandboxing instructions are what makes the proof go through."""
        from repro.errors import CertificationError
        policy = sfi_policy()
        with pytest.raises(CertificationError):
            certify(FILTERS[0].program, policy)

    def test_abstract_machine_respects_segments(self, certified_sfi):
        from repro.alpha.abstract import AbstractMachine
        policy = sfi_policy()
        frame = bytes(range(64))
        for name, certified in certified_sfi.items():
            registers = sfi_registers(len(frame))
            can_read, can_write = policy.checkers(registers, lambda a: 0)
            machine = AbstractMachine(certified.program, sfi_memory(frame),
                                      can_read, can_write, registers)
            machine.run()  # never blocks
