"""Unit tests for the prover's search utilities (untrusted, but they must
be deterministic and correct to keep certification reproducible)."""

from hypothesis import given, strategies as st

from repro.logic.terms import (
    App,
    Int,
    Var,
    WORD_MOD,
    add64,
    and64,
    eval_term,
    sel,
    srl64,
    sub64,
)
from repro.prover.arith import (
    is_word_valued,
    linear_difference,
    match_term,
)

words = st.integers(min_value=0, max_value=WORD_MOD - 1)


class TestMatching:
    def test_exact(self):
        pattern = add64(Var("r1"), Var("i"))
        term = add64(Var("r1"), Int(8))
        binding = match_term(pattern, term, frozenset(("i",)))
        assert binding == {"i": Int(8)}

    def test_nonlinear_pattern_must_agree(self):
        pattern = add64(Var("i"), Var("i"))
        assert match_term(pattern, add64(Int(3), Int(3)),
                          frozenset(("i",))) == {"i": Int(3)}
        assert match_term(pattern, add64(Int(3), Int(4)),
                          frozenset(("i",))) is None

    def test_non_wildcard_vars_match_literally(self):
        pattern = add64(Var("r1"), Var("i"))
        assert match_term(pattern, add64(Var("r2"), Int(8)),
                          frozenset(("i",))) is None

    def test_structural_mismatch(self):
        assert match_term(add64(Var("i"), 0), sub64(Var("x"), 0),
                          frozenset(("i",))) is None


class TestLinearDifference:
    def test_simple_offset(self):
        base = Var("r1")
        term = add64(Var("r1"), Int(8))
        assert linear_difference(term, base) == Int(8)

    def test_identity_gives_zero(self):
        assert linear_difference(Var("r1"), Var("r1")) == Int(0)

    def test_swapped_operands(self):
        base = Var("r1")
        offset = and64(Var("x"), 248)
        term = add64(offset, Var("r1"))
        difference = linear_difference(term, base)
        assert difference is not None

    @given(words, words)
    def test_difference_is_semantically_correct(self, r1, x):
        base = Var("r1")
        offset = and64(Var("x"), 248)
        term = add64(base, offset)
        difference = linear_difference(term, base)
        env = {"r1": r1, "x": x}
        lhs = eval_term(term, env)
        rhs = eval_term(add64(base, difference), env)
        assert lhs == rhs

    def test_non_unit_coefficient_unsupported(self):
        term = App("add64", (Var("r1"),
                             App("add64", (Var("x"), Var("x")))))
        assert linear_difference(term, Var("r1")) is None


class TestWordValued:
    def test_classification(self):
        assert is_word_valued(add64(Var("x"), 1))
        assert is_word_valued(sel(Var("rm"), Var("a")))
        assert is_word_valued(Int(5))
        assert not is_word_valued(Int(-1))
        assert not is_word_valued(Int(WORD_MOD))
        assert not is_word_valued(Var("x"))
        assert not is_word_valued(App("add", (Var("x"), Int(1))))
