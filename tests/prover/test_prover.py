"""Prover unit tests: each strategy exercised on a minimal goal, plus
failure behaviour (the prover must fail cleanly, never claim falsehoods —
every emitted proof is re-checked by the Delta checker here)."""

import pytest

from repro.errors import ProverError
from repro.logic.formulas import (
    And,
    Forall,
    Implies,
    Or,
    Truth,
    conj,
    eq,
    ge,
    le,
    lt,
    ne,
    rd,
    wr,
)
from repro.logic.terms import (
    App,
    Int,
    Var,
    add64,
    and64,
    cmpult,
    mod64,
    or64,
    sel,
    sll64,
    srl64,
    sub64,
    upd,
)
from repro.proof.checker import check_proof
from repro.prover import Prover, prove_safety_predicate


def proves(goal):
    proof = Prover().prove(goal)
    check_proof(proof, goal)
    return proof


def fails(goal):
    with pytest.raises(ProverError):
        Prover().prove(goal)


class TestStructural:
    def test_truth(self):
        proves(Truth())

    def test_conjunction(self):
        proves(And(Truth(), eq(1, 1)))

    def test_implication_and_hypothesis(self):
        proves(Implies(eq(Var("x"), 1), eq(Var("x"), 1)))

    def test_conjunction_decomposition(self):
        hypothesis = And(eq(Var("x"), 1), ne(Var("y"), 0))
        proves(Implies(hypothesis, ne(Var("y"), 0)))

    def test_forall(self):
        proves(Forall("x", ge(mod64(Var("x")), 0)))

    def test_disjunction_introduction(self):
        proves(Or(eq(1, 2), eq(3, 3)))

    def test_case_split_on_or_hypothesis(self):
        disjunction = Or(eq(Var("x"), 1), eq(Var("x"), 1))
        proves(Implies(disjunction, eq(Var("x"), 1)))

    def test_ex_falso(self):
        # contradictory linear hypotheses prove anything
        hyps = And(lt(Var("x"), 3), ge(Var("x"), 5))
        proves(Implies(hyps, eq(Var("y"), 77)))

    def test_unprovable_fails_cleanly(self):
        fails(eq(Var("x"), Var("y")))
        fails(Forall("x", lt(Var("x"), 100)))


class TestWordEquality:
    def test_paper_arithmetic_rule(self):
        """e1 (+) e2 (-) e2 = e1 if e1 mod 2^64 = e1 — the paper's example
        rule, derived from the mod-chain."""
        e1 = Var("x")
        goal = Implies(eq(mod64(e1), e1),
                       eq(sub64(add64(e1, Var("y")), Var("y")), e1))
        proves(goal)

    def test_commutativity_modulo_words(self):
        a, b = add64(Var("x"), Var("y")), add64(Var("y"), Var("x"))
        proves(eq(a, b))

    def test_congruence_through_sel(self):
        precondition = eq(mod64(Var("r0")), Var("r0"))
        goal = Implies(precondition,
                       eq(sel(Var("rm"), add64(Var("r0"), 0)),
                          sel(Var("rm"), Var("r0"))))
        proves(goal)

    def test_constant_folding_of_zero_idiom(self):
        goal = eq(and64(sub64(Var("r4"), Var("r4")), 7), 0)
        proves(goal)

    def test_sel_upd_same(self):
        memory = upd(Var("rm"), Var("a"), Var("v"))
        goal = eq(sel(memory, Var("a")), mod64(Var("v")))
        proves(goal)

    def test_or_disjoint_rewrite(self):
        masked = and64(Var("x"), 248)
        aligned_base = and64(Var("y"), Int((1 << 64) - 2048))
        goal = eq(or64(masked, aligned_base), add64(masked, aligned_base))
        proves(goal)


class TestLinearArithmetic:
    def test_transitivity_via_constants(self):
        hyps = conj([le(Var("x"), 56), ge(Var("y"), 64)])
        proves(Implies(hyps, lt(Var("x"), Var("y"))))

    def test_cmp_flag_saturation(self):
        flag_fact = ne(cmpult(Var("x"), Var("y")), 0)
        hyps = conj([eq(mod64(Var("x")), Var("x")),
                     eq(mod64(Var("y")), Var("y")), flag_fact])
        proves(Implies(hyps, lt(Var("x"), Var("y"))))

    def test_and_bound_enrichment(self):
        term = and64(Var("x"), 60)
        proves(le(term, 60))
        proves(Implies(ge(Var("y"), 64), lt(term, Var("y"))))

    def test_add64_exact_bridging(self):
        # and64(x, 60) + 16 fits, so add64 becomes pure + and bounds flow
        small = and64(Var("x"), 60)
        total = add64(small, 16)
        proves(Implies(ge(Var("len"), 100), lt(total, Var("len"))))

    def test_shift_truncation_bound(self):
        truncated = sll64(srl64(Var("i"), 3), 3)
        hyps = conj([eq(mod64(Var("i")), Var("i")), lt(Var("i"), Var("n"))])
        proves(Implies(hyps, le(truncated, Var("i"))))

    def test_ne_goal(self):
        proves(Implies(ge(Var("x"), 1), ne(Var("x"), 0)))


class TestSafetyAtoms:
    def test_direct_fact(self):
        proves(Implies(rd(Var("r1")), rd(Var("r1"))))

    def test_fact_modulo_word_equality(self):
        hyps = conj([eq(mod64(Var("r0")), Var("r0")), rd(Var("r0"))])
        proves(Implies(hyps, rd(add64(Var("r0"), 0))))

    def test_universal_instantiation_constant_offset(self):
        guard = conj([ge(Var("i"), 0), lt(Var("i"), Var("r2")),
                      eq(and64(Var("i"), 7), 0)])
        universal = Forall("i", Implies(guard,
                                        rd(add64(Var("r1"), Var("i")))))
        hyps = conj([universal, ge(Var("r2"), 64)])
        proves(Implies(hyps, rd(add64(Var("r1"), 8))))

    def test_universal_instantiation_computed_offset(self):
        """The Filter 4 pattern: a masked, bounds-checked offset."""
        guard = conj([ge(Var("i"), 0), lt(Var("i"), Var("r2")),
                      eq(and64(Var("i"), 7), 0)])
        universal = Forall("i", Implies(guard,
                                        rd(add64(Var("r1"), Var("i")))))
        offset = and64(add64(and64(srl64(Var("w"), 46), 60), 16), 248)
        checked = ne(cmpult(offset, Var("r2")), 0)
        hyps = conj([universal, eq(mod64(Var("r2")), Var("r2")), checked])
        proves(Implies(hyps, rd(add64(Var("r1"), offset))))

    def test_conditional_write_fact(self):
        hyps = conj([
            eq(mod64(Var("r0")), Var("r0")),
            Implies(ne(sel(Var("rm"), Var("r0")), 0),
                    wr(add64(Var("r0"), 8))),
            ne(sel(Var("rm"), add64(Var("r0"), 0)), 0),
        ])
        proves(Implies(hyps, wr(add64(Var("r0"), 8))))

    def test_unreadable_fails(self):
        fails(rd(Var("r1")))


class TestDeterminism:
    def test_same_input_same_proof(self):
        goal = Implies(conj([le(Var("x"), 56), ge(Var("y"), 64)]),
                       lt(Var("x"), Var("y")))
        assert Prover().prove(goal) == Prover().prove(goal)

    def test_entry_point(self):
        proof = prove_safety_predicate(Truth())
        check_proof(proof, Truth())
