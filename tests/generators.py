"""Random program generators shared by the property-based suites.

Two flavours:

* :func:`random_filter_source` emits assembly *source* for well-formed
  packet filters whose memory accesses stay inside the policy's
  guaranteed window — these usually certify, so the certification and
  safety-theorem suites use them (``tests/pcc/test_random_programs.py``).
* :func:`random_machine_program` emits raw instruction tuples with no
  safety discipline at all: unsafe displacements, unaligned addresses,
  backward branches (loops), and out-of-range branch targets.  These
  exist to exercise every execution path — normal results, machine
  errors, abstract-machine blocking, and the step limit — so the
  differential engine suite can compare the reference interpreter and
  the threaded-code engine on the full outcome space.
"""

from __future__ import annotations

import random

from repro.alpha.isa import (
    BRANCH_NAMES,
    NUM_REGS,
    OPERATE_NAMES,
    Br,
    Branch,
    Lda,
    Ldah,
    Ldq,
    Lit,
    Operate,
    Program,
    Reg,
    Ret,
    Stq,
)

_SAFE_OFFSETS = (0, 8, 16, 24, 32, 40, 48, 56)
_OPERATES = tuple(OPERATE_NAMES)

#: Displacements mixing in-bounds, unaligned, and far-out-of-bounds
#: accesses (relative to a 128-byte buffer based in r1).
_WILD_DISPS = _SAFE_OFFSETS + (4, 12, -8, -16, 120, 128, 1024)


def random_filter_source(rng: random.Random, blocks: int) -> str:
    """A random well-formed filter: loads at safe constant offsets, ALU
    scrambling, forward branches."""
    lines = []
    for index in range(blocks):
        label = f"b{index}"
        choice = rng.randrange(4)
        reg = rng.randrange(4, 8)
        if choice == 0:
            lines.append(f"LDQ r{reg}, {rng.choice(_SAFE_OFFSETS)}(r1)")
        elif choice == 1:
            lines.append(f"ADDQ r{reg}, {rng.randrange(256)}, r{reg}")
        elif choice == 2:
            lines.append(
                f"EXTBL r{reg}, {rng.randrange(8)}, r{rng.randrange(4, 8)}")
        else:
            lines.append(f"BEQ r{reg}, {label}")
            lines.append(f"LDQ r{rng.randrange(4, 8)}, "
                         f"{rng.choice(_SAFE_OFFSETS)}(r1)")
            lines.append(f"{label}: SUBQ r0, r0, r0")
    lines.append("CMPEQ r4, r5, r0")
    lines.append("RET")
    return "\n".join(lines)


#: Aligned state-area offsets inside the KV policy's 160-byte window.
_STATE_OFFSETS = (0, 8, 16, 24, 64, 120, 128, 152)


def random_kv_source(rng: random.Random, blocks: int) -> str:
    """A random well-formed *store-bearing* program under the KV
    policy: loads and stores at safe constant offsets in the packet
    (``r1``, below the guaranteed 64-byte minimum) and the state area
    (``r3``), ALU scrambling, forward branches."""
    lines = []
    for index in range(blocks):
        label = f"kb{index}"
        choice = rng.randrange(6)
        reg = rng.randrange(4, 8)
        if choice == 0:
            lines.append(f"LDQ r{reg}, {rng.choice(_SAFE_OFFSETS)}(r1)")
        elif choice == 1:
            lines.append(f"LDQ r{reg}, {rng.choice(_STATE_OFFSETS)}(r3)")
        elif choice == 2:
            lines.append(f"STQ r{reg}, {rng.choice(_STATE_OFFSETS)}(r3)")
        elif choice == 3:
            lines.append(f"STQ r{reg}, {rng.choice(_SAFE_OFFSETS)}(r1)")
        elif choice == 4:
            lines.append(f"ADDQ r{reg}, {rng.randrange(256)}, r{reg}")
        else:
            lines.append(f"BEQ r{reg}, {label}")
            lines.append(f"STQ r{rng.randrange(4, 8)}, "
                         f"{rng.choice(_STATE_OFFSETS)}(r3)")
            lines.append(f"{label}: SUBQ r0, r0, r0")
    lines.append("CMPEQ r4, r5, r0")
    lines.append("RET")
    return "\n".join(lines)


def _random_reg(rng: random.Random) -> Reg:
    return Reg(rng.randrange(NUM_REGS))


def _base_reg(rng: random.Random) -> Reg:
    # Mostly r1 (the mapped buffer); sometimes arbitrary registers whose
    # contents produce unmapped or unaligned addresses.
    return Reg(rng.choice((1, 1, 1, 1, 2, rng.randrange(NUM_REGS))))


def random_machine_program(rng: random.Random, length: int) -> Program:
    """A random raw program covering the whole outcome space (see module
    docstring); always ends in RET, but earlier RETs, loops, and invalid
    branch targets all occur."""
    instructions = []
    for pc in range(length):
        choice = rng.randrange(10)
        if choice < 4:
            rb = (Lit(rng.randrange(256)) if rng.random() < 0.5
                  else _random_reg(rng))
            instructions.append(Operate(rng.choice(_OPERATES),
                                        _random_reg(rng), rb,
                                        _random_reg(rng)))
        elif choice == 4:
            instructions.append(Ldq(_random_reg(rng),
                                    rng.choice(_WILD_DISPS),
                                    _base_reg(rng)))
        elif choice == 5:
            instructions.append(Stq(_random_reg(rng),
                                    rng.choice(_WILD_DISPS),
                                    _base_reg(rng)))
        elif choice == 6:
            instructions.append(Lda(_random_reg(rng),
                                    rng.randrange(-64, 64),
                                    _random_reg(rng)))
        elif choice == 7:
            instructions.append(Ldah(_random_reg(rng),
                                     rng.randrange(-4, 4),
                                     _random_reg(rng)))
        elif choice == 8:
            # Offsets span backward loops, forward skips, and targets
            # past either end of the program.
            instructions.append(Branch(rng.choice(BRANCH_NAMES),
                                       _random_reg(rng),
                                       rng.randrange(-4, length + 2)))
        else:
            if rng.random() < 0.3:
                instructions.append(Ret())
            else:
                instructions.append(Br(rng.randrange(-4, length + 2)))
    instructions.append(Ret())
    return tuple(instructions)
