"""Adversarial suite for the content-addressed proof store.

The store is untrusted plumbing (see ``repro.proof.store``): a corrupted,
substituted, or stale entry may never surface as a valid subproof.  Every
tampering vector here must *fail closed* — a miss, never a wrong term —
and the counter algebra (``hits + misses == gets``, verify failures
counted and dropped) must stay consistent even under concurrent hammering
with a corrupter thread in the mix.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.filters.checksum import checksum_invariant, checksum_policy
from repro.filters.policy import packet_filter_policy
from repro.lf.encode import encode_formula
from repro.lf.syntax import LfConst, lf_app
from repro.pcc.loader import policy_fingerprint
from repro.proof.store import (
    ProofStore,
    frame_sections,
    subproof_digest,
    unframe_sections,
)


def _term(i: int):
    """A family of small, structurally distinct LF terms."""
    term = LfConst("truei")
    for _ in range(i % 4):
        term = lf_app(LfConst("andi"), LfConst("tt"), LfConst("tt"),
                      term, term)
    return lf_app(LfConst(f"leaf{i}"), term)


class TestBitflips:
    def test_flipped_blob_is_dropped_not_returned(self):
        store = ProofStore()
        digest = store.put(_term(1))
        blob = store.get_blob(digest)
        store._corrupt(digest, blob[:10] + bytes([blob[10] ^ 0x40])
                       + blob[11:])
        assert store.get(digest) is None
        stats = store.stats()
        assert stats.verify_failures == 1
        assert stats.misses == 1
        # The poisoned entry is gone, not lingering for the next reader.
        assert digest not in store

    def test_get_blob_rehashes_too(self):
        store = ProofStore()
        digest = store.put(_term(2))
        store._corrupt(digest, b"\x00" * 16)
        assert store.get_blob(digest) is None
        assert store.stats().verify_failures == 1
        assert digest not in store

    def test_reput_heals_a_dropped_entry(self):
        store = ProofStore()
        term = _term(3)
        digest = store.put(term)
        store._corrupt(digest, b"junk")
        assert store.get(digest) is None
        assert store.put(term) == digest
        recovered = store.get(digest)
        assert recovered is not None
        assert subproof_digest(recovered) == digest

    def test_correctly_keyed_garbage_fails_deserialization(self):
        """A blob whose hash *matches* its key but is not a valid LF
        encoding (the re-key attack the hash check cannot catch) must
        still come back as a miss, via the validating deserializer."""
        store = ProofStore()
        garbage = frame_sections(b"", b"\xff\xff\xff\xff")
        digest = hashlib.sha256(garbage).hexdigest()
        with store._lock:
            store._blobs[digest] = garbage
        assert store.get(digest) is None
        stats = store.stats()
        assert stats.verify_failures == 1
        assert digest not in store


class TestBindings:
    def test_bindings_are_scoped_by_policy_fingerprint(self):
        """A proof harvested under one policy may never be offered for
        the same obligation under another: a policy change (even one
        that only renegotiates the precondition) invalidates every
        binding, same discipline as the loader's verdict cache."""
        store = ProofStore()
        obligation = subproof_digest(
            encode_formula(checksum_invariant(), {}, 0))
        digest = store.put(_term(4))
        checksum_fp = policy_fingerprint(checksum_policy())
        filter_fp = policy_fingerprint(packet_filter_policy())
        assert checksum_fp != filter_fp
        store.bind(checksum_fp, obligation, digest)
        assert store.lookup(checksum_fp, obligation) == digest
        assert store.lookup(filter_fp, obligation) is None

    def test_binding_to_corrupted_blob_dies_with_it(self):
        store = ProofStore()
        digest = store.put(_term(5))
        store.bind("fp", "obligation", digest)
        store._corrupt(digest, b"rot")
        assert store.get(digest) is None  # drops the blob
        assert store.lookup("fp", "obligation") is None
        # The dangling binding was pruned, not just skipped.
        with store._lock:
            assert ("fp", "obligation") not in store._bindings

    def test_rebinding_cannot_smuggle_a_foreign_subproof(self):
        """Rebinding an obligation to a different (valid) subproof is
        the store-level half of the substitution attack.  The store
        honestly returns what was bound — content addressing guarantees
        the *term* matches the digest, and the differential suite proves
        full revalidation rejects the reassembled proof.  Here: the term
        handed back always matches its own digest, never the binding."""
        store = ProofStore()
        honest = store.put(_term(6))
        foreign = store.put(_term(7))
        store.bind("fp", "obligation", honest)
        store.bind("fp", "obligation", foreign)  # attacker rebinds
        resolved = store.lookup("fp", "obligation")
        assert resolved == foreign
        term = store.get(resolved)
        assert subproof_digest(term) == foreign  # content-true, always


class TestEviction:
    def test_lru_eviction_prunes_bindings(self):
        store = ProofStore(capacity=2)
        first = store.put(_term(8))
        store.bind("fp", "first", first)
        second = store.put(_term(9))
        third = store.put(_term(10))
        assert len(store) == 2
        assert first not in store
        assert second in store and third in store
        stats = store.stats()
        assert stats.evictions == 1
        assert store.lookup("fp", "first") is None

    def test_get_refreshes_recency(self):
        store = ProofStore(capacity=2)
        first = store.put(_term(11))
        store.put(_term(12))
        assert store.get(first) is not None  # touch: first is now MRU
        store.put(_term(13))
        assert first in store

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ProofStore(capacity=0)


class TestCounters:
    def test_counter_algebra(self):
        store = ProofStore()
        term = _term(14)
        digest = store.put(term)
        blob_len = len(frame_sections(*unframe_sections(
            store.get_blob(digest))))
        assert store.put(term) == digest  # dedup
        store.get(digest)
        store.get("0" * 64)
        store._corrupt(digest, b"x")
        store.get(digest)
        stats = store.stats()
        assert stats.puts == 2
        assert stats.dedup_hits == 1
        assert stats.bytes_shared == blob_len
        assert stats.gets == 3
        assert stats.hits + stats.misses == stats.gets
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.verify_failures == 1
        assert stats.entries == 0
        assert stats.bytes_stored == 0


class TestConcurrentHammering:
    def test_put_get_hammer_with_corrupter(self):
        """Eight writers/readers race over a store smaller than the
        working set while a corrupter thread flips random entries.
        Safety property: a get returns None or a term whose canonical
        digest equals the requested key — never a mismatched term — and
        the counter algebra survives."""
        store = ProofStore(capacity=16)
        terms = [_term(i) for i in range(48)]
        digests = [subproof_digest(t) for t in terms]
        mismatches = []

        def worker(lane: int) -> None:
            for round_index in range(60):
                index = (lane * 7 + round_index) % len(terms)
                if round_index % 3 == 0:
                    store.put(terms[index])
                    store.bind("fp", f"ob{index}", digests[index])
                else:
                    got = store.get(digests[index])
                    if got is not None and \
                            subproof_digest(got) != digests[index]:
                        mismatches.append(index)
                    bound = store.lookup("fp", f"ob{index}")
                    if bound is not None and bound != digests[index]:
                        mismatches.append(index)

        def corrupter() -> None:
            for round_index in range(90):
                target = digests[round_index % len(digests)]
                store._corrupt(target, b"\xde\xad" * (round_index % 9 + 1))

        with ThreadPoolExecutor(max_workers=9) as pool:
            futures = [pool.submit(worker, lane) for lane in range(8)]
            futures.append(pool.submit(corrupter))
            for future in futures:
                future.result()

        assert mismatches == []
        stats = store.stats()
        assert stats.hits + stats.misses == stats.gets
        assert stats.entries <= store.capacity
        assert stats.entries == len(store)
