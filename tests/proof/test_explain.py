"""The proof renderer must replay the checker faithfully: it validates
while it prints, rejects invalid proofs, and handles sharing."""

import pytest

from repro.errors import ProofError
from repro.logic.formulas import And, Implies, Truth, eq
from repro.logic.terms import Var
from repro.proof.explain import explain_proof
from repro.proof.proofs import Proof


class TestExplain:
    def test_simple_tree(self):
        goal = And(Truth(), Truth())
        proof = Proof("andi", (), (Proof("truei"), Proof("truei")))
        text = explain_proof(proof, goal)
        assert "andi" in text and text.count("truei") == 2

    def test_hypothesis_annotation(self):
        goal = Implies(eq(Var("x"), 1), eq(Var("x"), 1))
        proof = Proof("impi", ("h",), (Proof("hyp", ("h",)),))
        text = explain_proof(proof, goal)
        assert "[h: x = 1]" in text

    def test_shared_subproofs_referenced(self):
        shared = Proof("andi", (), (Proof("truei"), Proof("truei")))
        proof = Proof("andi", (), (shared, shared))
        goal = And(And(Truth(), Truth()), And(Truth(), Truth()))
        text = explain_proof(proof, goal)
        assert "[see #" in text

    def test_invalid_proof_rejected(self):
        with pytest.raises(ProofError):
            explain_proof(Proof("truei"), eq(1, 2))
        with pytest.raises(ProofError):
            explain_proof(Proof("wizardry"), Truth())

    def test_depth_elision(self):
        goal = Truth()
        proof = Proof("truei")
        for __ in range(5):
            goal = And(goal, Truth())
            proof = Proof("andi", (), (proof, Proof("truei")))
        text = explain_proof(proof, goal, max_depth=2)
        assert "..." in text

    def test_real_certified_proof(self, resource_certified):
        text = explain_proof(resource_certified.proof,
                             resource_certified.predicate, max_depth=40)
        assert "mod_word" in text
        assert "norm_mod_eq" in text
        assert "eqsub" in text
