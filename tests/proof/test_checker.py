"""Unit tests for the Delta proof checker: each rule accepts its valid
instances and rejects malformed ones.  The checker is consumer-side
trusted code, so the rejection cases matter as much as the acceptance
cases."""

import pytest

from repro.errors import ProofError
from repro.logic.formulas import (
    And,
    Falsity,
    Forall,
    Implies,
    Or,
    Truth,
    eq,
    ge,
    le,
    lt,
    ne,
    rd,
)
from repro.logic.terms import App, Int, Var, add, add64, mod64, sel, srl64, sub64, upd
from repro.proof.checker import check_proof
from repro.proof.proofs import Proof, proof_rules_used, proof_size


def ok(proof, goal, hyps=None):
    check_proof(proof, goal, hyps)


def bad(proof, goal, hyps=None):
    with pytest.raises(ProofError):
        check_proof(proof, goal, hyps)


class TestPropositional:
    def test_truei(self):
        ok(Proof("truei"), Truth())
        bad(Proof("truei"), Falsity())

    def test_andi(self):
        goal = And(Truth(), Truth())
        ok(Proof("andi", (), (Proof("truei"), Proof("truei"))), goal)
        bad(Proof("andi", (), (Proof("truei"),)), goal)
        bad(Proof("andi", (), (Proof("truei"), Proof("truei"))), Truth())

    def test_projections(self):
        conj = And(eq(1, 1), eq(2, 2))
        both = Proof("andi", (), (Proof("eqrefl"), Proof("eqrefl")))
        ok(Proof("andel", (eq(2, 2),), (both,)), eq(1, 1))
        ok(Proof("ander", (eq(1, 1),), (both,)), eq(2, 2))
        # claiming a different right conjunct makes the andi premise
        # oblige eq(3, 4), which eqrefl cannot prove
        bad(Proof("andel", (eq(3, 4),), (both,)), eq(1, 1))

    def test_impi_and_hyp(self):
        goal = Implies(eq(Var("x"), 1), eq(Var("x"), 1))
        ok(Proof("impi", ("h",), (Proof("hyp", ("h",)),)), goal)
        # label shadowing in scope is rejected
        bad(Proof("impi", ("h",), (Proof("hyp", ("h",)),)), goal,
            {"h": Truth()})
        # hypothesis mismatch
        bad(Proof("impi", ("h",), (Proof("hyp", ("h",)),)),
            Implies(eq(Var("x"), 1), eq(Var("x"), 2)))

    def test_impe(self):
        hyps = {"imp": Implies(Truth(), eq(1, 1)), "t": Truth()}
        proof = Proof("impe", (Truth(),),
                      (Proof("hyp", ("imp",)), Proof("hyp", ("t",))))
        ok(proof, eq(1, 1), hyps)
        bad(proof, eq(1, 2), hyps)

    def test_disjunction(self):
        goal = Or(eq(1, 1), Falsity())
        ok(Proof("ori1", (), (Proof("eqrefl"),)), goal)
        bad(Proof("ori2", (), (Proof("eqrefl"),)), goal)

    def test_ore(self):
        hyps = {"or": Or(Truth(), Truth())}
        branch = Proof("impi", ("u",), (Proof("truei"),))
        proof = Proof("ore", (Truth(), Truth()),
                      (Proof("hyp", ("or",)), branch, branch))
        ok(proof, Truth(), hyps)

    def test_falsee(self):
        hyps = {"boom": Falsity()}
        ok(Proof("falsee", (), (Proof("hyp", ("boom",)),)), eq(1, 2), hyps)

    def test_unknown_rule(self):
        bad(Proof("abracadabra"), Truth())


class TestQuantifiers:
    def test_alli(self):
        goal = Forall("x", eq(Var("x"), Var("x")))
        ok(Proof("alli", ("x",), (Proof("eqrefl"),)), goal)

    def test_alli_eigenvariable_condition(self):
        goal = Forall("x", eq(Var("x"), Var("y")))
        # eigenvariable occurring in a hypothesis is rejected
        bad(Proof("alli", ("z",),
                  (Proof("hyp", ("h",)),)), goal, {"h": eq(Var("z"), 1)})
        # eigenvariable free in the goal is rejected
        bad(Proof("alli", ("y",), (Proof("eqrefl"),)), goal)

    def test_alle(self):
        source = Forall("i", ge(Var("i"), Var("i")))
        hyps = {"all": source}
        proof = Proof("alle", (source, Int(7)), (Proof("hyp", ("all",)),))
        ok(proof, ge(7, 7), hyps)
        bad(proof, ge(8, 8), hyps)


class TestEquality:
    def test_eqrefl(self):
        ok(Proof("eqrefl"), eq(add64(Var("x"), 1), add64(Var("x"), 1)))
        bad(Proof("eqrefl"), eq(Var("x"), Var("y")))

    def test_eqsym_eqtrans(self):
        hyps = {"ab": eq(Var("a"), Var("b")), "bc": eq(Var("b"), Var("c"))}
        ok(Proof("eqsym", (), (Proof("hyp", ("ab",)),)),
           eq(Var("b"), Var("a")), hyps)
        ok(Proof("eqtrans", (Var("b"),),
                 (Proof("hyp", ("ab",)), Proof("hyp", ("bc",)))),
           eq(Var("a"), Var("c")), hyps)

    def test_eqsub(self):
        hyps = {"ab": eq(Var("a"), Var("b")), "ra": rd(Var("a"))}
        template = rd(Var("?h"))
        proof = Proof("eqsub", (template, "?h", Var("a"), Var("b")),
                      (Proof("hyp", ("ab",)), Proof("hyp", ("ra",))))
        ok(proof, rd(Var("b")), hyps)
        bad(proof, rd(Var("c")), hyps)


class TestArithmeticSchemas:
    def test_arith_eval(self):
        ok(Proof("arith_eval"), lt(3, 4))
        bad(Proof("arith_eval"), lt(4, 3))
        bad(Proof("arith_eval"), lt(Var("x"), 4))  # not ground
        # memory-dependent atoms are never "ground"
        bad(Proof("arith_eval"), eq(sel(Var("rm"), 0), 0))

    def test_mod_word(self):
        term = add64(Var("a"), Var("b"))
        ok(Proof("mod_word"), eq(mod64(term), term))
        bad(Proof("mod_word"), eq(mod64(Var("a")), Var("a")))  # plain var

    def test_norm_mod_eq(self):
        left = add64(add64(Var("x"), 8), (1 << 64) - 8)
        ok(Proof("norm_mod_eq"), eq(mod64(left), mod64(Var("x"))))
        bad(Proof("norm_mod_eq"), eq(mod64(left), mod64(Var("y"))))

    def test_word_bounds(self):
        term = srl64(Var("x"), 3)
        ok(Proof("word_ge0"), ge(term, 0))
        ok(Proof("word_lt_mod"), lt(term, 1 << 64))
        bad(Proof("word_ge0"), ge(Var("x"), 0))

    def test_cmp_semantics(self):
        a, b = Var("a"), Var("b")
        flag = App("cmpult", (a, b))
        hyps = {"f": ne(flag, 0)}
        proof = Proof("cmpult_true", (a, b), (Proof("hyp", ("f",)),))
        ok(proof, lt(mod64(a), mod64(b)), hyps)
        bad(proof, lt(mod64(b), mod64(a)), hyps)

    def test_add64_exact_premises_required(self):
        a, b = Var("a"), Var("b")
        goal = eq(add64(a, b), App("add", (a, b)))
        bad(Proof("add64_exact", (), ()), goal)  # missing premises

    def test_and_mask_disjoint(self):
        term = App("and64", (App("and64", (Var("x"), Int(248))), Int(7)))
        ok(Proof("and_mask_disjoint"), eq(term, 0))
        overlapping = App("and64",
                          (App("and64", (Var("x"), Int(12))), Int(7)))
        bad(Proof("and_mask_disjoint"), eq(overlapping, 0))

    def test_linarith(self):
        premises = (le(Var("x"), 56), ge(Var("y"), 64))
        hyps = {"p0": premises[0], "p1": premises[1]}
        proof = Proof("linarith", premises,
                      (Proof("hyp", ("p0",)), Proof("hyp", ("p1",))))
        ok(proof, lt(Var("x"), Var("y")), hyps)
        bad(proof, lt(Var("y"), Var("x")), hyps)

    def test_linarith_cannot_use_ne_premises(self):
        premises = (ne(Var("x"), Var("y")),)
        proof = Proof("linarith", premises,
                      (Proof("hyp", ("p",)),))
        bad(proof, ne(Var("y"), Var("x")), {"p": premises[0]})


class TestAccounting:
    def test_proof_size_counts_shared_once(self):
        shared = Proof("eqrefl")
        proof = Proof("andi", (), (shared, shared))
        assert proof_size(proof) == 2

    def test_rules_used(self):
        proof = Proof("andi", (), (Proof("truei"), Proof("truei")))
        assert proof_rules_used(proof) == {"andi": 1, "truei": 2}
