"""Proof-object accounting used by the size benchmarks, plus structural
sanity of prover output on the shipped programs."""

from repro.proof.proofs import Proof, proof_rules_used, proof_size


class TestSharedAccounting:
    def test_diamond_proof_counts_once(self):
        leaf = Proof("truei")
        layer = Proof("andi", (), (leaf, leaf))
        top = Proof("andi", (), (layer, layer))
        assert proof_size(top) == 3
        assert proof_rules_used(top) == {"andi": 2, "truei": 1}

    def test_deep_chain(self):
        node = Proof("truei")
        from repro.logic.formulas import Truth
        for __ in range(50):
            node = Proof("andel", (Truth(),), (node,))
        assert proof_size(node) == 51


class TestShippedProofs:
    def test_filter_proofs_share_heavily(self, certified_filters):
        """The same policy facts are used at many sites; sharing must be
        visible in the node accounting (size << naive node count)."""
        for name in ("filter3", "filter4"):
            proof = certified_filters[name].proof
            rules = proof_rules_used(proof)
            assert rules.get("alli", 0) >= 12  # the state quantifiers
            assert "linarith" in rules or "arith_eval" in rules
            assert proof_size(proof) < 2000

    def test_loop_proofs_use_invariant_machinery(self):
        from repro.filters.checksum import (
            CHECKSUM_LOOP_PC,
            CHECKSUM_SOURCE,
            checksum_invariant,
            checksum_policy,
        )
        from repro.pcc import certify

        certified = certify(
            CHECKSUM_SOURCE, checksum_policy(),
            invariants={CHECKSUM_LOOP_PC: checksum_invariant()})
        rules = proof_rules_used(certified.proof)
        # two closed obligations -> two full quantifier prefixes
        assert rules["alli"] >= 24
        # loop-bound reasoning leans on the compare-flag semantics
        assert "cmpult_true" in rules
