"""Adversarial proofs: a malicious producer hands the checker garbage.

The consumer must reject every one of these without crashing — ProofError
is the only acceptable outcome.  Several cases target the exact soundness
pitfalls of the rule set (eigenvariable capture, schema side conditions,
premise-count confusion, parameter smuggling)."""

import pytest

from repro.errors import ProofError
from repro.logic.formulas import (
    And,
    Falsity,
    Forall,
    Implies,
    Truth,
    eq,
    ge,
    le,
    lt,
    ne,
    rd,
)
from repro.logic.terms import App, Int, Var, add64, and64, mod64
from repro.proof.checker import check_proof
from repro.proof.proofs import Proof


def rejected(proof, goal, hyps=None):
    with pytest.raises(ProofError):
        check_proof(proof, goal, hyps)


class TestForgery:
    def test_cannot_prove_falsity_from_nothing(self):
        for rule in ("truei", "eqrefl", "arith_eval", "hyp"):
            rejected(Proof(rule, params=("x",) if rule == "hyp" else ()),
                     Falsity())

    def test_unsound_universal_generalization(self):
        """ALL x. x = 7 from the hypothesis x = 7 — classic eigenvariable
        violation."""
        goal = Forall("x", eq(Var("x"), 7))
        proof = Proof("alli", ("x",), (Proof("hyp", ("h",)),))
        rejected(proof, goal, {"h": eq(Var("x"), 7)})

    def test_bogus_arith_eval(self):
        rejected(Proof("arith_eval"), eq(Int(2), Int(3)))

    def test_smuggled_linarith(self):
        """Premises that do NOT imply the goal."""
        premises = (ge(Var("x"), 0),)
        proof = Proof("linarith", premises, (Proof("hyp", ("p",)),))
        rejected(proof, ge(Var("x"), 1), {"p": premises[0]})

    def test_mod_word_on_unbounded_variable(self):
        rejected(Proof("mod_word"), eq(mod64(Var("x")), Var("x")))

    def test_add64_exact_wrong_conclusion(self):
        a, b = Var("a"), Var("b")
        goal = eq(add64(a, b), App("add", (a, Int(0))))
        rejected(Proof("add64_exact", (),
                       (Proof("truei"), Proof("truei"), Proof("truei"))),
                 goal)

    def test_eqsub_template_mismatch(self):
        """The claimed template does not produce the goal."""
        template = rd(Var("?h"))
        proof = Proof("eqsub", (template, "?h", Var("a"), Var("b")),
                      (Proof("hyp", ("e",)), Proof("hyp", ("r",))))
        rejected(proof, rd(Var("a")),  # should be rd(b)
                 {"e": eq(Var("a"), Var("b")), "r": rd(Var("a"))})

    def test_premise_count_mismatch(self):
        goal = And(Truth(), Truth())
        rejected(Proof("andi", (), (Proof("truei"),) * 3), goal)

    def test_malformed_params_do_not_crash(self):
        """Garbage parameter types must raise ProofError, not TypeError."""
        for rule, params in (
                ("andel", (42,)),
                ("alle", (Truth(), "not a term"),),
                ("eqtrans", ("nonsense",)),
                ("eqsub", (1, 2, 3, 4)),
                ("impi", (None,)),
                ("linarith", ("x",))):
            with pytest.raises(ProofError):
                check_proof(Proof(rule, params, ()), Truth())

    def test_cyclic_premises_depth_limited(self):
        """A pathologically deep proof hits the depth limit instead of
        exhausting the Python stack."""
        deep = Proof("truei")
        for __ in range(200):
            deep = Proof("andel", (Truth(),), (deep,))
        with pytest.raises(ProofError):
            check_proof(deep, Truth(), max_depth=50)

    def test_and_submask_reversed_masks(self):
        """Claiming 2040 is a submask of 8 must fail."""
        goal = eq(and64(Var("a"), Int(2040)), 0)
        proof = Proof("and_submask", (Int(8),), (Proof("hyp", ("p",)),))
        rejected(proof, goal, {"p": eq(and64(Var("a"), Int(8)), 0)})

    def test_disallowed_hypothetical_reuse_after_scope_exit(self):
        """A hypothesis introduced under one implication is not available
        in a sibling branch."""
        goal = And(Implies(eq(Var("x"), 1), eq(Var("x"), 1)),
                   eq(Var("x"), 1))
        proof = Proof(
            "andi", (),
            (Proof("impi", ("h",), (Proof("hyp", ("h",)),)),
             Proof("hyp", ("h",))))  # out of scope here
        rejected(proof, goal)
