"""Property-based soundness of every arithmetic axiom schema in Delta.

Strategy: generate random rule instances the checker *accepts*, then
evaluate premises and conclusion on random integer environments.  Whenever
all premises hold, the conclusion must hold.  A failure here would mean
the trusted rule set can prove a falsehood — the one bug class PCC cannot
tolerate — so these tests deliberately hammer the word-size boundaries.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import ProofError
from repro.logic.formulas import Atom, eq, ge, holds, le, lt, ne
from repro.logic.terms import (
    App,
    Int,
    Var,
    WORD_MOD,
    add64,
    and64,
    eval_term,
    mod64,
    or64,
    sll64,
    srl64,
    sub64,
)
from repro.proof.rules import RULES

# Values biased toward the interesting boundaries.
words = st.one_of(
    st.integers(min_value=0, max_value=WORD_MOD - 1),
    st.sampled_from([0, 1, 7, 8, 63, 64, 2047, 2048,
                     (1 << 63) - 1, 1 << 63, WORD_MOD - 8, WORD_MOD - 1]),
)
any_ints = st.integers(min_value=-(1 << 70), max_value=1 << 70)

X, Y = Var("x"), Var("y")


def _accepted(rule, goal, params=()):
    """Does the trusted checker accept this instance?  Returns the premise
    obligations, or None."""
    try:
        return RULES[rule](goal, params, {})
    except ProofError:
        return None


def _check_sound(rule, goal, params, env):
    obligations = _accepted(rule, goal, params)
    if obligations is None:
        return  # rejected instances prove nothing, trivially sound
    premises_hold = all(holds(subgoal, env)
                        for subgoal, __ in obligations)
    if premises_hold:
        assert holds(goal, env), (
            f"UNSOUND {rule}: premises hold but conclusion fails "
            f"in {env}")


class TestUnconditionalSchemas:
    @given(any_ints, any_ints)
    def test_mod_word(self, x, y):
        term = add64(X, Y)
        _check_sound("mod_word", eq(mod64(term), term), (),
                     {"x": x, "y": y})

    @given(any_ints, any_ints)
    def test_norm_mod_eq(self, x, y):
        left = add64(add64(X, Y), sub64(X, X))
        right = add64(Y, X)
        goal = eq(mod64(left), mod64(right))
        _check_sound("norm_mod_eq", goal, (), {"x": x, "y": y})

    @given(any_ints)
    def test_word_bounds(self, x):
        env = {"x": x}
        term = srl64(X, 3)
        _check_sound("word_ge0", ge(term, 0), (), env)
        _check_sound("word_lt_mod", lt(term, WORD_MOD), (), env)

    @given(words, st.integers(min_value=0, max_value=WORD_MOD - 1))
    def test_and_ubound(self, x, mask):
        goal = le(and64(X, mask), Int(mask))
        _check_sound("and_ubound", goal, (), {"x": x})

    @given(words, words, words)
    def test_and_mask_disjoint(self, x, c1, c2):
        goal = eq(and64(and64(X, c1), c2), 0)
        _check_sound("and_mask_disjoint", goal, (), {"x": x})

    @given(words, st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=WORD_MOD - 1))
    def test_srl_bound(self, x, k, c):
        goal = lt(srl64(X, k), Int(c))
        _check_sound("srl_bound", goal, (), {"x": x})

    @given(words, st.integers(min_value=0, max_value=63), words)
    def test_sll_align(self, x, k, m):
        goal = eq(and64(sll64(X, k), m), 0)
        _check_sound("sll_align", goal, (), {"x": x})

    @given(words, st.integers(min_value=256, max_value=WORD_MOD - 1))
    def test_ext_bound(self, x, c):
        goal = lt(App("extbl", (X, Int(3))), Int(c))
        _check_sound("ext_bound", goal, (), {"x": x})

    @given(words, st.integers(min_value=0, max_value=63))
    def test_shift_trunc_le(self, x, k):
        goal = le(sll64(srl64(X, k), k), mod64(X))
        _check_sound("shift_trunc_le", goal, (), {"x": x})


class TestConditionalSchemas:
    """Schemas with premises: sample states where premises happen to hold."""

    @given(any_ints, any_ints)
    def test_add64_exact(self, x, y):
        goal = eq(add64(X, Y), App("add", (X, Y)))
        _check_sound("add64_exact", goal, (), {"x": x, "y": y})

    @given(any_ints, any_ints)
    def test_sub64_exact(self, x, y):
        goal = eq(sub64(X, Y), App("sub", (X, Y)))
        _check_sound("sub64_exact", goal, (), {"x": x, "y": y})

    @given(words, words)
    def test_cmp_rules(self, x, y):
        env = {"x": x, "y": y}
        for rule, conclusion in (
                ("cmpult_true", lt(mod64(X), mod64(Y))),
                ("cmpult_false", ge(mod64(X), mod64(Y))),
                ("cmpule_true", le(mod64(X), mod64(Y))),
                ("cmpule_false", Atom("gt", (mod64(X), mod64(Y)))),
                ("cmpeq_true", eq(mod64(X), mod64(Y))),
                ("cmpeq_false", ne(mod64(X), mod64(Y)))):
            _check_sound(rule, conclusion, (X, Y), env)

    @given(words, words, st.sampled_from([7, 15, 63, 2040, 2047]))
    def test_add_align(self, x, y, mask):
        goal = eq(and64(add64(X, Y), mask), 0)
        _check_sound("add_align", goal, (), {"x": x, "y": y})

    @given(words, words, st.sampled_from([8, 63, 248, 2040]))
    def test_or_disjoint(self, x, y, mask):
        masked = and64(X, mask)
        goal = eq(or64(masked, Y), add64(masked, Y))
        _check_sound("or_disjoint", goal, (), {"x": x, "y": y})

    @given(words, st.sampled_from([(2040, 8), (15, 7), (255, 248)]))
    def test_and_submask(self, x, masks):
        wide, narrow = masks
        goal = eq(and64(X, narrow), 0)
        _check_sound("and_submask", goal, (Int(wide),), {"x": x})

    @given(words, words, st.integers(min_value=0, max_value=10))
    def test_sll_lt_of_srl(self, x, y, k):
        goal = lt(sll64(X, k), mod64(Y))
        _check_sound("sll_lt_of_srl", goal, (Y,), {"x": x, "y": y})

    @given(words, words, words, words)
    def test_sel_upd_rules(self, addr_a, addr_b, value, other):
        from repro.logic.terms import make_memory, sel, upd
        memory = make_memory({addr_a % WORD_MOD & ~7: other})
        env = {"m": memory, "a": addr_a, "b": addr_b, "v": value}
        same = eq(sel(upd(Var("m"), Var("a"), Var("v")), Var("b")),
                  mod64(Var("v")))
        _check_sound("sel_upd_same", same, (), env)
        diff = eq(sel(upd(Var("m"), Var("a"), Var("v")), Var("b")),
                  sel(Var("m"), Var("b")))
        _check_sound("sel_upd_other", diff, (), env)


class TestLinarithSoundness:
    @settings(max_examples=200)
    @given(st.lists(st.tuples(
        st.sampled_from(["le", "lt", "ge", "gt", "eq"]),
        st.integers(min_value=-5, max_value=5),
        st.integers(min_value=-5, max_value=5),
        st.integers(min_value=-20, max_value=20)), max_size=4),
        st.sampled_from(["le", "lt", "ge", "gt", "eq", "ne"]),
        st.integers(min_value=-5, max_value=5),
        st.integers(min_value=-5, max_value=5),
        st.integers(min_value=-20, max_value=20),
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=-50, max_value=50))
    def test_random_systems(self, premise_specs, goal_pred, ga, gb, gc,
                            x, y):
        """Random small linear systems over two variables: whenever the
        rule accepts, the implication must hold on a random point."""
        def atom(pred, a, b, c):
            left = App("add", (App("mul", (Int(a), X)),
                               App("mul", (Int(b), Y))))
            return Atom(pred, (left, Int(c)))

        premises = tuple(atom(*spec) for spec in premise_specs)
        goal = atom(goal_pred, ga, gb, gc)
        _check_sound("linarith", goal, premises, {"x": x, "y": y})
