"""WCET estimation: exact on the paper filters, bounded on provable
loops, honestly Unbounded otherwise, and sound as a cycle budget."""

from repro.alpha.parser import parse_program
from repro.analysis import (
    estimate_wcet,
    packet_filter_context,
    checksum_context,
)
from repro.filters.checksum import CHECKSUM_SOURCE
from repro.filters.policy import filter_registers, packet_memory
from repro.filters.programs import FILTERS
from repro.perf.cost import ALPHA_175
from repro.alpha.machine import Machine


def test_all_paper_filters_get_finite_exact_bounds():
    ctx = packet_filter_context()
    for spec in FILTERS:
        report = estimate_wcet(spec.program, ctx)
        assert report.classification == "exact", spec.name
        assert report.is_bounded, spec.name
        assert report.bound > 0


def test_filter1_bound_by_hand():
    # LDQ(3) + EXTWL(1) + CMPEQ(1) + RET(2) = 7 cycles.
    report = estimate_wcet(FILTERS[0].program, packet_filter_context())
    assert report.bound == 7


def test_filter_bounds_dominate_concrete_runs():
    """The bound is >= the observed cycles on real packets."""
    ctx = packet_filter_context()
    frames = [
        bytes(64),
        bytes(range(64)) + bytes(1024),
        b"\x00" * 12 + b"\x08\x00" + bytes(100),  # IP ethertype
    ]
    for spec in FILTERS:
        bound = estimate_wcet(spec.program, ctx).bound
        for frame in frames:
            machine = Machine(spec.program, packet_memory(frame),
                              filter_registers(len(frame)), ALPHA_175)
            result = machine.run()
            assert result.cycles <= bound, (spec.name, len(frame))


def test_countdown_loop_bound_is_tight():
    # LDA(1) + 5 x (SUBQ 1 + BNE 2) + RET(2) = 18 cycles exactly.
    program = parse_program("""
        LDA  r4, 5(r4)
 loop:  SUBQ r4, 1, r4
        BNE  r4, loop
        RET
    """)
    report = estimate_wcet(program)
    assert report.classification == "bounded"
    assert report.bound == 18
    (loop,) = report.loop_bounds
    assert loop.trips == 4  # extra passes beyond the first
    # And the concrete machine agrees.
    from repro.alpha.machine import Memory
    result = Machine(program, Memory(), None, ALPHA_175).run()
    assert result.cycles == 18


def test_infinite_loop_is_unbounded():
    report = estimate_wcet(parse_program("""
 loop:  ADDQ r4, 1, r4
        BR   loop
    """))
    assert report.classification == "unbounded"
    assert report.bound is None
    assert not report.is_bounded


def test_data_dependent_loop_is_unbounded():
    # The checksum loop's trip count depends on r2 (up to 64K/8 passes),
    # beyond the abstract round cap: honestly Unbounded.
    report = estimate_wcet(parse_program(CHECKSUM_SOURCE),
                           checksum_context())
    assert report.classification == "unbounded"
    assert report.loop_bounds[0].trips is None


def test_budget_slack_math():
    report = estimate_wcet(FILTERS[0].program, packet_filter_context())
    assert report.budget() == report.bound
    assert report.budget(0.25) == 9   # ceil(7 * 1.25)
    assert report.budget(1.0) == 14


def test_unbounded_budget_is_none():
    report = estimate_wcet(parse_program("loop: BR loop"))
    assert report.budget() is None
    assert report.budget(0.5) is None


def test_branchy_program_takes_longest_path():
    # Taken arm costs more than fall-through; bound follows the max.
    program = parse_program("""
        BEQ  r1, slow
        RET
 slow:  MULQ r2, r3, r4
        RET
    """)
    report = estimate_wcet(program)
    # BEQ(2) + MULQ(23) + RET(2) = 27 on the slow path.
    assert report.bound == 27


def test_loop_unreachable_from_entry_contributes_nothing():
    program = parse_program("""
        RET
 loop:  SUBQ r4, 1, r4
        BNE  r4, loop
        RET
    """)
    report = estimate_wcet(program)
    assert report.is_bounded
    assert report.bound == 2  # just the RET


def test_empty_program_is_trivially_exact():
    report = estimate_wcet(())
    assert report.bound == 0
    assert report.classification == "exact"
