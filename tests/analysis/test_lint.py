"""Lint diagnostics: each code fires on its canonical trigger, stays
quiet on the paper filters, and the report structure is stable."""

from repro.alpha.isa import Branch, Operate, Lit, Reg, Ret
from repro.alpha.parser import parse_program
from repro.analysis import lint_program
from repro.filters.programs import FILTERS


def test_paper_filters_lint_clean():
    for spec in FILTERS:
        report = lint_program(spec.program)
        assert report.clean, (spec.name, list(report))


def test_invalid_branch_target_is_error():
    program = (Branch("BEQ", Reg(1), 10), Ret())
    report = lint_program(program)
    (diag,) = report.by_code("invalid-branch-target")
    assert diag.severity == "error"
    assert diag.pc == 0
    assert not report.clean


def test_fall_through_end_is_error():
    program = (Operate("ADDQ", Reg(1), Lit(1), Reg(4)),)
    report = lint_program(program)
    assert report.by_code("fall-through-end")
    assert report.errors


def test_missing_ret_on_infinite_loop():
    report = lint_program(parse_program("loop: ADDQ r4, 1, r4\nBR loop"))
    (diag,) = report.by_code("missing-ret")
    assert diag.severity == "error"


def test_unreachable_ret_does_not_satisfy_missing_ret():
    # The only RET sits in an unreachable block.
    report = lint_program(parse_program("""
 loop:  BR loop
        RET
    """))
    assert report.by_code("missing-ret")
    assert report.by_code("unreachable-block")


def test_unreachable_block_is_warning():
    report = lint_program(parse_program("""
        RET
        ADDQ r1, 1, r1
        RET
    """))
    (diag,) = report.by_code("unreachable-block")
    assert diag.severity == "warning"
    assert diag.pc == 1


def test_dead_store_detected():
    # r4 is written twice with no intervening read: first write is dead.
    report = lint_program(parse_program("""
        LDA r4, 1(r4)
        LDA r4, 2(r5)
        ADDQ r4, 0, r0
        RET
    """))
    (diag,) = report.by_code("dead-store")
    assert diag.pc == 0


def test_store_read_on_one_branch_is_live():
    # r4 is read only on the taken arm; liveness must merge both paths.
    report = lint_program(parse_program("""
        LDA  r4, 7(r5)
        BEQ  r1, use
        RET
 use:   ADDQ r4, 0, r0
        RET
    """))
    assert report.by_code("dead-store") == ()


def test_result_register_is_live_at_ret():
    report = lint_program(parse_program("LDA r0, 1(r5)\nRET"))
    assert report.by_code("dead-store") == ()


def test_clobbered_input_warning_and_custom_pins():
    program = parse_program("LDA r1, 8(r1)\nRET")
    (diag,) = lint_program(program).by_code("clobbered-input")
    assert diag.severity == "warning"
    # Pinning nothing silences it (the write is then just a dead store).
    unpinned = lint_program(program, pinned_registers=())
    assert unpinned.by_code("clobbered-input") == ()


def test_report_sorted_and_stable():
    program = parse_program("""
        LDA r1, 8(r1)
        LDA r2, 8(r2)
        RET
        ADDQ r4, 1, r4
        RET
    """)
    first = lint_program(program)
    second = lint_program(program)
    assert tuple(first) == tuple(second)
    pcs = [d.pc for d in first]
    assert pcs == sorted(pcs)
    assert len(first) == len(first.errors) + len(first.warnings)


def test_empty_program_reports_missing_ret():
    report = lint_program(())
    assert report.by_code("missing-ret")
