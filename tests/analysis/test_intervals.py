"""Interval domain unit + property tests.

The load-bearing property: every abstract transfer function
over-approximates the concrete operator.  The Hypothesis test drives
each operate through random concrete operand pairs drawn *from* random
intervals and asserts the concrete result always lands inside the
abstract one.
"""

from hypothesis import given, settings, strategies as st

from repro.alpha.isa import OPERATE_NAMES
from repro.alpha.machine import _operate
from repro.alpha.parser import parse_program
from repro.analysis import analyze_intervals, packet_filter_context
from repro.analysis.intervals import (
    TOP,
    Interval,
    WORD_MASK,
    const,
    join,
    operate_interval,
    refine_branch,
    widen,
)
from repro.filters.policy import PACKET_BASE, SCRATCH_BASE
from repro.filters.programs import FILTERS

_SIGN = 1 << 63


# -- lattice basics ----------------------------------------------------


def test_join_is_hull():
    assert join(Interval(1, 3), Interval(10, 12)) == Interval(1, 12)
    assert join(None, Interval(4, 5)) == Interval(4, 5)
    assert join(Interval(4, 5), None) == Interval(4, 5)


def test_widen_jumps_to_limits():
    assert widen(Interval(5, 10), Interval(3, 10)) == Interval(0, 10)
    assert widen(Interval(5, 10), Interval(5, 11)) == Interval(5, WORD_MASK)
    assert widen(Interval(5, 10), Interval(5, 10)) == Interval(5, 10)


def test_wrap_around_subtraction():
    # 0 - 1 wraps to 2^64 - 1.
    assert operate_interval("SUBQ", const(0), const(1)) \
        == const(WORD_MASK)


def test_multiply_overflow_goes_top():
    huge = Interval(0, 1 << 40)
    assert operate_interval("MULQ", huge, huge) == TOP


def test_comparison_decided_by_disjoint_intervals():
    assert operate_interval("CMPULT", Interval(0, 5), Interval(6, 9)) \
        == const(1)
    assert operate_interval("CMPULT", Interval(9, 12), Interval(0, 9)) \
        == const(0)
    assert operate_interval("CMPEQ", Interval(0, 5), Interval(3, 9)) \
        == Interval(0, 1)


# -- the soundness property --------------------------------------------


@st.composite
def _interval_and_member(draw):
    lo = draw(st.integers(min_value=0, max_value=WORD_MASK))
    hi = draw(st.integers(min_value=lo, max_value=WORD_MASK))
    value = draw(st.integers(min_value=lo, max_value=hi))
    return Interval(lo, hi), value


@settings(max_examples=300, deadline=None)
@given(name=st.sampled_from(sorted(OPERATE_NAMES)),
       a=_interval_and_member(), b=_interval_and_member())
def test_operate_interval_over_approximates_machine(name, a, b):
    interval_a, value_a = a
    interval_b, value_b = b
    abstract = operate_interval(name, interval_a, interval_b)
    concrete = _operate(name, value_a, value_b)
    assert concrete in abstract, \
        f"{name}: {value_a} op {value_b} = {concrete} not in {abstract}"


@settings(max_examples=200, deadline=None)
@given(name=st.sampled_from(["BEQ", "BNE", "BGE", "BLT", "BGT", "BLE"]),
       value=st.integers(min_value=0, max_value=WORD_MASK),
       taken=st.booleans())
def test_branch_refinement_keeps_consistent_values(name, value, taken):
    from repro.alpha.machine import _branch_taken

    if _branch_taken(name, value) != taken:
        return  # this concrete value does not take this edge
    state = (Interval(0, WORD_MASK),) * 11
    refined = refine_branch(state, name, 0, taken)
    assert refined is not None
    assert value in refined[0], \
        f"{name} taken={taken}: {value:#x} refined away"


def test_refinement_proves_edges_infeasible():
    state = (const(0),) * 11
    # r0 == 0, so BNE cannot be taken.
    assert refine_branch(state, "BNE", 0, taken=True) is None
    assert refine_branch(state, "BEQ", 0, taken=True) is not None
    # r0 in [2^63, 2^64-1] is negative: BGE cannot be taken.
    neg = (Interval(_SIGN, WORD_MASK),) * 11
    assert refine_branch(neg, "BGE", 0, taken=True) is None
    assert refine_branch(neg, "BLT", 0, taken=True) is not None


# -- whole-program fixpoint --------------------------------------------


def test_entry_state_matches_context():
    ctx = packet_filter_context()
    analysis = analyze_intervals(parse_program("RET"), ctx)
    state = analysis.state_at(0)
    assert state[1] == const(PACKET_BASE)
    assert state[2] == Interval(64, 1518)
    assert state[3] == const(SCRATCH_BASE)
    # Unmentioned registers are the machine's zeroed file.
    assert state[4] == const(0)


def test_filter_accesses_all_safe_and_aligned():
    ctx = packet_filter_context()
    for spec in FILTERS:
        analysis = analyze_intervals(spec.program, ctx)
        assert analysis.accesses, spec.name
        for access in analysis.accesses:
            assert access.verdict == "safe", (spec.name, access)
            # Constant addresses are proved aligned; loop-indexed ones
            # (filter4) are at worst "maybe" — never proven-unaligned.
            assert access.alignment != "never", (spec.name, access)
        assert analysis.definite_faults == ()


def test_rogue_store_is_definite_fault():
    ctx = packet_filter_context()
    analysis = analyze_intervals(parse_program("STQ r2, 0(r1)\nRET"), ctx)
    (access,) = analysis.accesses
    assert access.kind == "wr"
    assert access.verdict == "escape"
    assert access.definite_fault


def test_unaligned_load_is_definite_fault():
    ctx = packet_filter_context()
    analysis = analyze_intervals(
        parse_program("LDA r4, 4(r1)\nLDQ r5, 0(r4)\nRET"), ctx)
    (access,) = analysis.accesses
    assert access.alignment == "never"
    assert access.definite_fault


def test_null_load_is_definite_fault():
    ctx = packet_filter_context()
    analysis = analyze_intervals(parse_program("LDQ r4, 0(r5)\nRET"), ctx)
    (access,) = analysis.accesses
    assert access.verdict == "escape"


def test_widening_terminates_on_growing_loop():
    # r4 grows forever; without widening the fixpoint would not close.
    analysis = analyze_intervals(parse_program("""
 loop:  ADDQ r4, 8, r4
        BR   loop
    """))
    state = analysis.state_at(0)
    assert state is not None
    assert state[4].hi == WORD_MASK  # widened


def test_state_at_propagates_within_block():
    analysis = analyze_intervals(parse_program("""
        LDA r4, 8(r4)
        LDA r4, 8(r4)
        RET
    """))
    assert analysis.state_at(0)[4] == const(0)
    assert analysis.state_at(1)[4] == const(8)
    assert analysis.state_at(2)[4] == const(16)


def test_unreachable_pc_reports_none():
    analysis = analyze_intervals(parse_program("""
        RET
        ADDQ r1, 1, r1
        RET
    """))
    assert analysis.state_at(0) is not None
    assert analysis.state_at(1) is None


def test_exit_interval_joins_all_rets():
    from repro.analysis import AnalysisContext

    analysis = analyze_intervals(parse_program("""
        BEQ  r1, zero
        LDA  r0, 5(r0)
        RET
 zero:  LDA  r0, 9(r0)
        RET
    """), AnalysisContext(entry={1: TOP}))
    assert analysis.exit_interval(0) == Interval(5, 9)


def test_infeasible_edge_pruned_with_exact_entry():
    # With the default zeroed entry, BEQ r1 is always taken: the
    # fall-through arm is proved unreachable.
    analysis = analyze_intervals(parse_program("""
        BEQ  r1, zero
        LDA  r0, 5(r0)
        RET
 zero:  LDA  r0, 9(r0)
        RET
    """))
    assert analysis.state_at(1) is None
    assert analysis.exit_interval(0) == const(9)
