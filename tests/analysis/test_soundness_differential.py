"""Differential soundness: the static analyzer never lies about a
concrete execution.

Random programs — the same wild generator the engine-differential suite
uses, covering loops, unsafe accesses, and invalid branch targets — run
on the concrete :class:`Machine` with a trace hook.  Every traced
``(pc, registers)`` pair must sit inside the analyzer's interval state
for that pc; every concrete memory address must sit inside the flagged
access's interval; completed runs must return a value inside
``exit_interval`` and spend no more cycles than a finite WCET bound.

The analysis context mirrors the concrete entry exactly (same register
file, same mapped regions), so any containment failure is an unsound
transfer function, not a modelling gap.
"""

import random
import struct

from hypothesis import given, settings, strategies as st

from repro.alpha.engine import ExecutionEngine
from repro.alpha.machine import Machine, Memory
from repro.alpha.parser import parse_program
from repro.analysis import (
    AnalysisContext,
    analyze_intervals,
    estimate_wcet,
    packet_filter_context,
)
from repro.analysis.intervals import const
from repro.errors import MachineError
from repro.filters.policy import filter_registers, packet_memory
from repro.perf.cost import ALPHA_175
from tests.generators import random_filter_source, random_machine_program

_BUF_BASE = 0x1000
_RO_BASE = 0x2000
_REGISTERS = {1: _BUF_BASE, 2: _RO_BASE, 3: _BUF_BASE + 64}

#: Context describing the differential harness environment exactly.
_CONTEXT = AnalysisContext(
    name="differential",
    entry={index: const(value) for index, value in _REGISTERS.items()},
    readable=((_BUF_BASE, 128), (_RO_BASE, 16)),
    writable=((_BUF_BASE, 128),),
)


def _memory() -> Memory:
    memory = Memory()
    memory.map_region(_BUF_BASE, bytes(128), writable=True, name="buf")
    memory.map_region(_RO_BASE, struct.pack("<QQ", 7, 1 << 63),
                      writable=False, name="ro")
    return memory


def _assert_contained(analysis, pc, regs, label):
    state = analysis.state_at(pc)
    assert state is not None, \
        f"{label}: concrete execution reached pc {pc} " \
        "which the analyzer thinks is unreachable"
    for index, value in enumerate(regs):
        assert value in state[index], \
            f"{label}: at pc {pc}, r{index} = {value:#x} " \
            f"outside {state[index]}"


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=24))
def test_traced_states_within_intervals(seed, length):
    """Every concrete register file is inside the abstract state."""
    program = random_machine_program(random.Random(seed), length)
    analysis = analyze_intervals(program, _CONTEXT)
    machine = Machine(
        program, _memory(), dict(_REGISTERS), ALPHA_175,
        max_steps=2000,
        trace_hook=lambda pc, regs: _assert_contained(
            analysis, pc, regs, f"seed {seed}"))
    try:
        result = machine.run()
    except MachineError:
        return  # faulting runs still had every traced state checked
    assert result.value in analysis.exit_interval(0), \
        f"seed {seed}: r0 = {result.value:#x} " \
        f"outside {analysis.exit_interval(0)}"


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=24))
def test_concrete_addresses_within_access_intervals(seed, length):
    """Every address the engine checks is inside the flagged interval."""
    program = random_machine_program(random.Random(seed), length)
    analysis = analyze_intervals(program, _CONTEXT)
    by_pc = {(access.pc, access.kind): access
             for access in analysis.accesses}
    observed = []

    def check(kind):
        def hook(address, pc):
            observed.append((pc, kind, address))
        return hook

    engine = ExecutionEngine(program, cost_model=ALPHA_175,
                             max_steps=2000,
                             check_read=check("rd"),
                             check_write=check("wr"))
    try:
        engine.run(_memory(), dict(_REGISTERS))
    except MachineError:
        pass
    for pc, kind, address in observed:
        access = by_pc.get((pc, kind))
        assert access is not None, \
            f"seed {seed}: unflagged {kind} access at pc {pc}"
        assert address in access.interval, \
            f"seed {seed}: {kind} at pc {pc} hit {address:#x} " \
            f"outside {access.interval}"
        # A "safe" verdict is a proof: the concrete address must be
        # inside a declared readable (or writable) region.
        if access.verdict == "safe":
            regions = (_CONTEXT.readable if kind == "rd"
                       else _CONTEXT.writable)
            assert any(base <= address and address + 8 <= base + size
                       for base, size in regions), \
                f"seed {seed}: 'safe' {kind} at pc {pc} " \
                f"escaped to {address:#x}"


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=24))
def test_cycles_never_exceed_finite_wcet(seed, length):
    """Completed runs stay within a finite WCET bound (engine charges
    whole blocks up front, exactly what the bound sums)."""
    program = random_machine_program(random.Random(seed), length)
    report = estimate_wcet(program, _CONTEXT, ALPHA_175)
    if not report.is_bounded:
        return
    engine = ExecutionEngine(program, cost_model=ALPHA_175,
                             max_steps=100_000)
    try:
        result = engine.run(_memory(), dict(_REGISTERS))
    except MachineError:
        return
    assert result.cycles <= report.bound, \
        f"seed {seed}: ran {result.cycles} cycles, bound {report.bound}"


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=6))
def test_generated_filters_sound_under_packet_policy(seed, blocks):
    """The well-formed filter generator, under the real packet context:
    traced states contained, cycles within the (finite) bound."""
    rng = random.Random(seed)
    program = parse_program(random_filter_source(rng, blocks))
    context = packet_filter_context()
    analysis = analyze_intervals(program, context)
    report = estimate_wcet(program, context, ALPHA_175,
                           analysis=analysis)
    assert report.is_bounded  # generator emits forward branches only

    packet = rng.randbytes(64 + 8 * rng.randrange(8))
    machine = Machine(
        program, packet_memory(packet),
        filter_registers(len(packet)), ALPHA_175,
        trace_hook=lambda pc, regs: _assert_contained(
            analysis, pc, regs, f"seed {seed}"))
    result = machine.run()
    assert result.cycles <= report.bound
    assert result.value in analysis.exit_interval(0)
    for access in analysis.accesses:
        assert access.verdict == "safe", access
