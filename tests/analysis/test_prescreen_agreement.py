"""Prescreen/validation agreement: the fast-reject path rejects only
what full validation rejects, and never turns away a certifying binary.

Two directions:

* **completeness for certified code** — every blob the prover certifies
  (the paper filters, the scratch-writer, and freshly generated random
  filters) sails through the prescreen;
* **soundness of rejection** — for every corpus blob the prescreen
  rejects, full validation raises too.  The reverse containment is NOT
  asserted: validation legitimately rejects far more (anything without
  a proof), and the prescreen is free to have no opinion.
"""

import random

import pytest

from repro.alpha.encoding import encode_program
from repro.alpha.isa import Lit, Operate, Reg
from repro.alpha.parser import parse_program
from repro.analysis import prescreen_blob
from repro.errors import ValidationError
from repro.pcc import certify
from repro.pcc.container import PccBinary
from repro.pcc.validate import validate
from tests.generators import random_filter_source


def _container(source: str) -> bytes:
    """A proof-less but well-framed PCC container for ``source``."""
    return PccBinary(encode_program(parse_program(source)),
                     b"", b"", b"").to_bytes()


def _validation_rejects(blob: bytes, policy) -> bool:
    try:
        validate(blob, policy)
        return False
    except ValidationError:
        return True


# -- certified binaries must pass ---------------------------------------


def test_certified_paper_filters_pass_prescreen(certified_filters,
                                                filter_policy):
    for name, certified in certified_filters.items():
        verdict = prescreen_blob(certified.binary.to_bytes(),
                                 filter_policy)
        assert verdict.ok, (name, str(verdict))


def test_random_certified_filters_pass_prescreen(filter_policy):
    for seed in range(3):
        rng = random.Random(seed)
        source = random_filter_source(rng, blocks=1 + seed)
        certified = certify(source, filter_policy)
        verdict = prescreen_blob(certified.binary.to_bytes(),
                                 filter_policy)
        assert verdict.ok, (seed, str(verdict))


def test_prescreen_has_no_opinion_on_proofless_valid_code(filter_policy):
    """A structurally fine, memory-safe blob with no proof: prescreen
    passes (it cannot admit, only decline to reject) while validation
    rejects it at the proof stage.  This is the asymmetry by design."""
    blob = _container("LDQ r4, 0(r1)\nCMPEQ r4, 7, r0\nRET")
    assert prescreen_blob(blob, filter_policy).ok
    assert _validation_rejects(blob, filter_policy)


# -- rejected corpus: prescreen reject implies validation reject --------

_REJECT_CORPUS = [
    ("truncated-container", lambda: b"\x00\x01\x02"),
    ("undecodable-code",
     lambda: PccBinary(b"\xff\xee\xdd\xcc", b"", b"", b"").to_bytes()),
    # parse_program validates, so the structurally-broken blob is built
    # from raw instruction tuples (encode_program does not validate).
    ("fall-off-end", lambda: PccBinary(
        encode_program((Operate("ADDQ", Reg(1), Lit(1), Reg(4)),)),
        b"", b"", b"").to_bytes()),
    ("no-invariant-loop", lambda: _container("""
        LDA  r4, 5(r4)
 loop:  SUBQ r4, 1, r4
        BNE  r4, loop
        RET
    """)),
    ("rogue-store", lambda: _container("STQ r2, 0(r1)\nRET")),
    ("unaligned-load",
     lambda: _container("LDA r4, 4(r1)\nLDQ r5, 0(r4)\nRET")),
    ("null-load", lambda: _container("LDQ r4, 0(r5)\nRET")),
]

_EXPECTED_STAGE = {
    "truncated-container": "container",
    "undecodable-code": "code",
    # decode_program validates structure itself, so the broken program
    # surfaces at the decode ("code") stage.
    "fall-off-end": "code",
    "no-invariant-loop": "invariants",
    "rogue-store": "memory",
    "unaligned-load": "memory",
    "null-load": "memory",
}


@pytest.mark.parametrize("name,make",
                         _REJECT_CORPUS, ids=[n for n, _ in _REJECT_CORPUS])
def test_prescreen_rejects_are_validation_rejects(name, make,
                                                  filter_policy):
    blob = make()
    verdict = prescreen_blob(blob, filter_policy)
    assert not verdict.ok, name
    assert verdict.stage == _EXPECTED_STAGE[name], str(verdict)
    assert _validation_rejects(blob, filter_policy), \
        f"{name}: prescreen rejected but validation admitted"


def test_prescreen_never_raises_on_garbage(filter_policy):
    for blob in (b"", b"\x00" * 64, bytes(range(256))):
        verdict = prescreen_blob(blob, filter_policy)
        assert not verdict.ok
        assert verdict.stage and verdict.reason


#: Same program as the runtime suite's rogue fixture: stores the frame
#: length through the (read-only) frame base.
_ROGUE_BLOB = _container("STQ r2, 0(r1)\nADDQ r1, 1, r0\nRET")


def test_rogue_blob_rejected_by_both(filter_policy):
    verdict = prescreen_blob(_ROGUE_BLOB, filter_policy)
    assert not verdict.ok
    assert verdict.stage == "memory"
    assert _validation_rejects(_ROGUE_BLOB, filter_policy)


def test_loader_prescreen_matches_direct_prescreen(certified_filters,
                                                   filter_policy):
    """The loader's opt-in path agrees with calling prescreen directly:
    certified blobs load, the rogue blob is rejected with the
    prescreen's message, and rejections are cached."""
    from repro.pcc.loader import ExtensionLoader

    loader = ExtensionLoader(filter_policy, prescreen=True)
    blob = certified_filters["filter1"].binary.to_bytes()
    extension = loader.load(blob)
    assert extension.program

    with pytest.raises(ValidationError) as excinfo:
        loader.load(_ROGUE_BLOB)
    assert "prescreen[memory]" in str(excinfo.value)
    with pytest.raises(ValidationError):
        loader.load(_ROGUE_BLOB)

    stats = loader.stats()
    assert stats.prescreen_checks >= 2
    assert stats.prescreen_rejects == 2
