"""CFG recovery unit tests: leaders, edges, dominators, loops."""

from repro.alpha.isa import Branch, Operate, Reg, Lit, Ret
from repro.alpha.parser import parse_program
from repro.analysis import build_cfg
from repro.filters.programs import FILTERS


def test_straight_line_single_block():
    cfg = build_cfg(parse_program("ADDQ r1, 1, r2\nRET"))
    assert len(cfg.blocks) == 1
    block = cfg.blocks[0]
    assert (block.start, block.end) == (0, 2)
    assert block.successors == ()
    assert not block.falls_off and not block.fault_targets
    assert cfg.reachable == {0}
    assert cfg.loops == ()


def test_diamond_edges_and_dominators():
    cfg = build_cfg(parse_program("""
        BEQ r1, other
        ADDQ r2, 1, r2
        BR join
 other: SUBQ r2, 1, r2
 join:  RET
    """))
    assert len(cfg.blocks) == 4
    entry, then, other, join = cfg.blocks
    assert set(entry.successors) == {then.index, other.index}
    assert then.successors == (join.index,)
    assert other.successors == (join.index,)
    # The entry dominates everything; neither arm dominates the join.
    assert all(cfg.dominates(0, b) for b in range(4))
    assert not cfg.dominates(then.index, join.index)
    assert not cfg.dominates(other.index, join.index)
    assert cfg.predecessors[join.index] == (then.index, other.index)


def test_backward_branch_is_a_natural_loop():
    cfg = build_cfg(parse_program("""
        LDA  r4, 5(r4)
 loop:  SUBQ r4, 1, r4
        BNE  r4, loop
        RET
    """))
    assert len(cfg.loops) == 1
    loop = cfg.loops[0]
    header = cfg.block_at(1).index
    assert loop.header == header
    assert loop.blocks == {header}
    assert cfg.back_edges == ((header, header),)
    assert cfg.irreducible_edges == ()


def test_unreachable_code_detected():
    cfg = build_cfg(parse_program("""
        RET
        ADDQ r1, 1, r1
        RET
    """))
    assert cfg.reachable == {0}
    assert cfg.blocks[1].index not in cfg.reachable


def test_out_of_range_target_is_fault_not_edge():
    program = (Branch("BEQ", Reg(1), 10), Ret())
    cfg = build_cfg(program)
    entry = cfg.blocks[0]
    assert entry.fault_targets == (11,)
    assert entry.successors == (1,)


def test_fall_off_end_recorded():
    program = (Operate("ADDQ", Reg(1), Lit(1), Reg(1)),)
    cfg = build_cfg(program)
    assert cfg.blocks[0].falls_off
    assert cfg.blocks[0].successors == ()


def test_branch_offset_zero_deduplicates_successor():
    # Taken target == fall-through: one edge, not two.
    program = (Branch("BEQ", Reg(1), 0), Ret())
    cfg = build_cfg(program)
    assert cfg.blocks[0].successors == (1,)


def test_ret_terminates_block_midstream():
    cfg = build_cfg(parse_program("""
        ADDQ r1, 1, r1
        RET
        SUBQ r2, 1, r2
        RET
    """))
    assert [b.start for b in cfg.blocks] == [0, 2]
    assert cfg.blocks[0].successors == ()


def test_empty_program():
    cfg = build_cfg(())
    assert cfg.blocks == ()
    assert cfg.reachable == frozenset()
    assert cfg.loops == ()


def test_block_of_maps_every_pc():
    for spec in FILTERS:
        cfg = build_cfg(spec.program)
        for pc in range(len(cfg.program)):
            block = cfg.block_at(pc)
            assert block.start <= pc < block.end


def test_paper_filters_are_loop_free():
    for spec in FILTERS:
        cfg = build_cfg(spec.program)
        assert cfg.loops == (), spec.name
        assert cfg.irreducible_edges == (), spec.name
        # Every block is reachable in hand-written filters.
        assert cfg.reachable == frozenset(range(len(cfg.blocks)))


def test_irreducible_flow_flagged():
    # Two blocks jumping into each other's middle without a dominating
    # header: entry branches into the middle of a cycle.
    program = parse_program("""
        BEQ r1, second
 first: ADDQ r2, 1, r2
 second: SUBQ r3, 1, r3
        BNE r3, first
        RET
    """)
    cfg = build_cfg(program)
    # The retreating edge second->first is not dominated: irreducible.
    assert cfg.irreducible_edges != () or cfg.loops != ()
