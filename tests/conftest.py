"""Shared fixtures: policies, programs, traces, and certified binaries.

Certification is the expensive step (the paper: 5-10 seconds per filter),
so certified artifacts are session-scoped and shared across test modules.
"""

from __future__ import annotations

import pytest

from repro.filters.policy import packet_filter_policy
from repro.filters.programs import FILTERS, SCRATCH_COUNTER
from repro.filters.trace import TraceConfig, generate_trace
from repro.pcc import certify
from repro.vcgen.policy import resource_access_policy

#: The Figure 5 resource-access client, verbatim from the paper.
RESOURCE_ACCESS_SOURCE = """
    ADDQ r0, 8, r1    % address of data in r1
    LDQ  r0, 8(r0)    % data in r0
    LDQ  r2, -8(r1)   % tag in r2
    ADDQ r0, 1, r0    % increment data
    BEQ  r2, L1       % skip if tag == 0
    STQ  r0, 0(r1)    % write back data
L1: RET
"""


@pytest.fixture(scope="session")
def resource_policy():
    return resource_access_policy()


@pytest.fixture(scope="session")
def filter_policy():
    return packet_filter_policy()


@pytest.fixture(scope="session")
def small_trace():
    """A seeded 1,500-packet trace shared by correctness tests."""
    return generate_trace(TraceConfig(packets=1500, seed=42))


@pytest.fixture(scope="session")
def resource_certified(resource_policy):
    return certify(RESOURCE_ACCESS_SOURCE, resource_policy)


@pytest.fixture(scope="session")
def certified_filters(filter_policy):
    """All four paper filters plus the scratch-writer, certified once."""
    return {spec.name: certify(spec.source, filter_policy)
            for spec in FILTERS + (SCRATCH_COUNTER,)}
