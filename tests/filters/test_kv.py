"""The write-capable KV/NAT/LB family: certification, oracles, and the
engine-vs-oracle differential.

Every program in :data:`KV_PROGRAMS` must certify end to end under the
read/write policy with at least one loop invariant, and the native
engine's verdicts, packet rewrites, and persistent state must match the
pure-Python oracles bit for bit — the oracles are the specification the
runtime differential (``tests/runtime/test_kv_runtime.py``) and the
benchmark reuse.
"""

import pytest

from repro.alpha.engine import ExecutionEngine
from repro.filters.kv import (
    BACKEND_OCTET_BASE,
    BACKEND_SLOTS,
    KV_PROGRAMS,
    NAT_IP_LE,
    ORACLES,
    STATE_SIZE,
    TABLE_SLOTS,
    TTL_INIT,
    initial_state,
    kv_evict_oracle,
    kv_insert_oracle,
    kv_packet_policy,
    kv_registers,
    lb_balance_oracle,
    loop_cut_points,
    nat_rewrite_oracle,
    oracle_run,
    reusable_kv_memory,
)
from repro.filters.packets import MAX_FRAME, MIN_FRAME, make_tcp_packet
from repro.filters.trace import (
    KvTraceConfig,
    generate_adversarial_trace,
    generate_kv_trace,
)
from repro.pcc import certify, validate

PACKETS = 400


@pytest.fixture(scope="module")
def kv_policy():
    return kv_packet_policy()


@pytest.fixture(scope="module")
def certified_kv(kv_policy):
    return {spec.name: certify(spec.source, kv_policy,
                               invariants=spec.invariants())
            for spec in KV_PROGRAMS}


@pytest.fixture(scope="module")
def kv_trace():
    return generate_kv_trace(KvTraceConfig(packets=PACKETS, hosts=24))


def _frame(src="128.2.206.9", dst="128.2.220.7"):
    return make_tcp_packet(src, dst, 4321, 80, b"")


def _src_key_of(src):
    import socket
    return int.from_bytes(socket.inet_aton(src), "little")


# -- certification ------------------------------------------------------


def test_family_has_four_programs():
    assert len(KV_PROGRAMS) == 4
    assert set(ORACLES) == {spec.name for spec in KV_PROGRAMS}


@pytest.mark.parametrize("spec", KV_PROGRAMS, ids=lambda s: s.name)
def test_every_program_has_a_loop_invariant(spec):
    cuts = loop_cut_points(spec.program)
    assert len(cuts) >= 1
    assert set(spec.invariants()) == set(cuts)


@pytest.mark.parametrize("spec", KV_PROGRAMS, ids=lambda s: s.name)
def test_certifies_and_validates(spec, kv_policy, certified_kv):
    certified = certified_kv[spec.name]
    assert certified.binary.proof  # a real proof, not a stub
    report = validate(certified.binary.to_bytes(), kv_policy)
    assert report.program == spec.program


@pytest.mark.parametrize("spec", KV_PROGRAMS, ids=lambda s: s.name)
def test_programs_contain_stores(spec):
    from repro.alpha.isa import Stq
    assert any(isinstance(ins, Stq) for ins in spec.program)


# -- pinned oracle vectors ---------------------------------------------


def test_insert_then_refresh_then_fill():
    state = initial_state()
    verdict, __ = kv_insert_oracle(state, _frame("128.2.206.9"))
    assert verdict == 1
    key = _src_key_of("128.2.206.9")
    assert state[0] == key | (TTL_INIT << 32)
    # A second sighting refreshes in place, not a second slot.
    kv_insert_oracle(state, _frame("128.2.206.9"))
    assert state[1] == 0
    # Fill the table with distinct keys; the next new key is refused.
    for host in range(1, TABLE_SLOTS):
        assert kv_insert_oracle(state, _frame(f"10.1.4.{host}"))[0] == 1
    verdict, __ = kv_insert_oracle(state, _frame("192.168.1.200"))
    assert verdict == 0


def test_evict_ages_and_clears():
    state = initial_state()
    kv_insert_oracle(state, _frame("128.2.206.9"))
    for tick in range(TTL_INIT - 1):
        assert kv_evict_oracle(state, _frame())[0] == 0
    assert state[0] >> 32 == 1
    verdict, __ = kv_evict_oracle(state, _frame())
    assert verdict == 1
    assert state[0] == 0


def test_nat_rewrites_network_a_sources_only():
    state = initial_state()
    verdict, out = nat_rewrite_oracle(state, _frame("128.2.206.9"))
    assert verdict == 1
    assert out[26:30] == bytes([128, 2, 220, 1])     # rewritten src IP
    assert state[17] == 1                            # translation counter
    verdict, out2 = nat_rewrite_oracle(state, _frame("192.168.1.5"))
    assert verdict == 0
    assert out2[26:30] == bytes([192, 168, 1, 5])    # untouched
    assert state[17] == 1
    # The splice is the little-endian translation address, sanity-pinned.
    assert NAT_IP_LE.to_bytes(4, "little") == bytes([128, 2, 220, 1])


def test_lb_picks_least_loaded_backend():
    state = initial_state()
    state[:BACKEND_SLOTS] = [5, 2, 2, 9]
    verdict, out = lb_balance_oracle(state, _frame())
    assert verdict == 1
    assert state[:BACKEND_SLOTS] == [5, 3, 2, 9]     # first minimum wins
    assert out[33] == BACKEND_OCTET_BASE + 1         # dst host octet


def test_non_ip_frames_pass_untouched():
    from repro.filters.packets import make_arp_packet
    arp = make_arp_packet("128.2.206.9", "128.2.220.7")
    for oracle in (nat_rewrite_oracle, lb_balance_oracle):
        state = initial_state()
        verdict, out = oracle(state, arp)
        assert verdict == 0
        assert out[:len(arp)] == arp
        assert state == initial_state()


# -- engine vs oracle, serially over a shared persistent state ----------


@pytest.mark.parametrize("spec", KV_PROGRAMS, ids=lambda s: s.name)
def test_engine_matches_oracle_over_trace(spec, certified_kv, kv_trace):
    report_program = validate(
        certified_kv[spec.name].binary.to_bytes(), kv_packet_policy()
    ).program
    engine = ExecutionEngine(report_program)
    memory, rebind = reusable_kv_memory()
    verdicts, outputs, state = oracle_run(spec.name, kv_trace)
    for frame, want_verdict, want_out in zip(kv_trace, verdicts, outputs):
        rebind(frame)
        result = engine.run(memory, kv_registers(len(frame)))
        assert result.value == want_verdict
        assert bytes(memory.region("packet")) == want_out
    # The persistent state area ends bit-identical to the oracle's.
    want_state = b"".join(word.to_bytes(8, "little") for word in state)
    assert bytes(memory.region("state")) == want_state
    assert len(want_state) == STATE_SIZE


# -- trace generators ---------------------------------------------------


def test_kv_trace_is_seed_deterministic():
    config = KvTraceConfig(packets=500)
    assert generate_kv_trace(config) == generate_kv_trace(config)
    other = generate_kv_trace(KvTraceConfig(packets=500, seed=7))
    assert other != generate_kv_trace(config)


def test_kv_trace_is_heavy_tailed():
    """Zipf popularity: the hottest source appears far more often than
    the median source."""
    from collections import Counter
    frames = generate_kv_trace(KvTraceConfig(packets=4000, hosts=32))
    counts = Counter(frame[26:30] for frame in frames
                     if frame[12:14] == b"\x08\x00")
    ranked = sorted(counts.values(), reverse=True)
    assert len(ranked) >= 16
    median = ranked[len(ranked) // 2]
    assert ranked[0] >= 5 * median


def test_adversarial_trace_is_seed_deterministic():
    assert generate_adversarial_trace(800) == generate_adversarial_trace(800)
    assert generate_adversarial_trace(800, seed=3) \
        != generate_adversarial_trace(800)


def test_adversarial_trace_is_actually_hostile():
    frames = generate_adversarial_trace(2000)
    assert len(frames) == 2000
    assert any(len(frame) < MIN_FRAME for frame in frames)     # truncated
    assert any(len(frame) > MAX_FRAME for frame in frames)     # oversize
    assert any(set(frame) == {0} for frame in frames)          # all zeros
    assert any(set(frame) == {0xFF} for frame in frames)       # all ones
    # Frames spoofing the NAT translation address itself.
    assert any(len(frame) >= 34 and frame[26:30] == bytes([128, 2, 220, 1])
               for frame in frames)
