"""The hostile-workload helpers: deterministic contract-breaking frames."""

import pytest

from repro.filters.packets import (
    FAULT_KINDS,
    MAX_FRAME,
    MIN_FRAME,
    adversarial_ihl_frame,
    inject_faults,
    oversize_frame,
    truncate_frame,
)
from repro.filters.trace import TraceConfig, generate_trace


@pytest.fixture()
def frames():
    return generate_trace(TraceConfig(packets=400, seed=7))


def test_truncate_cuts_below_contract_minimum(frames):
    mutated = truncate_frame(frames[0], 24)
    assert len(mutated) == 24 < MIN_FRAME
    assert mutated == frames[0][:24]


def test_truncate_rejects_in_contract_lengths(frames):
    with pytest.raises(ValueError):
        truncate_frame(frames[0], MIN_FRAME)
    with pytest.raises(ValueError):
        truncate_frame(frames[0], 0)


def test_oversize_pads_past_mtu(frames):
    mutated = oversize_frame(frames[0])
    assert len(mutated) > MAX_FRAME
    assert mutated.startswith(frames[0])
    with pytest.raises(ValueError):
        oversize_frame(frames[0], MAX_FRAME)


def test_adversarial_ihl_rewrites_only_the_header_nibble(frames):
    ip_frame = next(frame for frame in frames if frame[12:14] == b"\x08\x00")
    mutated = adversarial_ihl_frame(ip_frame, 15)
    assert len(mutated) == len(ip_frame)
    assert mutated[14] == (4 << 4) | 15
    assert mutated[:14] == ip_frame[:14]
    assert mutated[15:] == ip_frame[15:]
    with pytest.raises(ValueError):
        adversarial_ihl_frame(ip_frame, 16)


def test_inject_faults_is_deterministic(frames):
    first = list(frames)
    second = list(frames)
    injected_first = inject_faults(first, fraction=0.1)
    injected_second = inject_faults(second, fraction=0.1)
    assert injected_first == injected_second
    assert first == second
    assert len(injected_first) == 40


def test_inject_faults_mutates_exactly_the_reported_frames(frames):
    original = list(frames)
    mutated = list(frames)
    injected = inject_faults(mutated, fraction=0.05)
    touched = {index for index, _ in injected}
    for index, (before, after) in enumerate(zip(original, mutated)):
        if index in touched:
            assert before != after
        else:
            assert before == after
    assert all(kind in FAULT_KINDS for _, kind in injected)


def test_inject_faults_validates_arguments(frames):
    with pytest.raises(ValueError, match="fraction"):
        inject_faults(list(frames), fraction=1.5)
    with pytest.raises(ValueError, match="unknown fault kind"):
        inject_faults(list(frames), kinds=("truncated", "nonsense"))
