"""The four packet filters: certification, execution, oracle agreement,
and the empirical Safety Theorem (certified code never blocks the
abstract machine)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.alpha.abstract import AbstractMachine
from repro.alpha.machine import Machine
from repro.errors import CertificationError, SafetyViolation
from repro.filters import (
    FILTERS,
    ORACLES,
    filter_registers,
    packet_memory,
)
from repro.filters.programs import SCRATCH_COUNTER
from repro.filters.trace import TraceConfig, generate_packet, generate_trace
from repro.pcc import certify
import random


def _run_native(program, frame):
    memory = packet_memory(frame)
    machine = Machine(program, memory, filter_registers(len(frame)))
    return bool(machine.run().value)


def _run_abstract(policy, program, frame):
    memory = packet_memory(frame)
    registers = filter_registers(len(frame))
    can_read, can_write = policy.checkers(registers, lambda a: 0)
    machine = AbstractMachine(program, memory, can_read, can_write,
                              registers)
    return bool(machine.run().value)


class TestCertification:
    def test_all_four_filters_certify_automatically(self,
                                                    certified_filters):
        """The paper's headline experiment: full automation, no manual
        proof steps, for all four filters."""
        for name in ("filter1", "filter2", "filter3", "filter4"):
            assert certified_filters[name].binary.size > 0

    def test_binary_sizes_in_paper_range(self, certified_filters):
        """Table 1 reports 385..1024 bytes; our encodings are fatter but
        must stay the same order of magnitude (within ~4x)."""
        for name in ("filter1", "filter2", "filter3", "filter4"):
            size = certified_filters[name].binary.size
            assert 300 < size < 4200, f"{name}: {size} bytes"

    def test_scratch_writer_certifies(self, certified_filters):
        assert certified_filters["scratch-counter"] is not None

    def test_packet_writer_rejected(self, filter_policy):
        """Writing into the packet violates the policy."""
        bad = """
            LDQ  r4, 8(r1)
            STQ  r4, 8(r1)
            RET
        """
        with pytest.raises(CertificationError):
            certify(bad, filter_policy)

    def test_unchecked_variable_read_rejected(self, filter_policy):
        """Reading at an unchecked computed offset cannot be certified."""
        bad = """
            LDQ  r4, 8(r1)
            AND  r4, 248, r4
            ADDQ r1, r4, r4
            LDQ  r0, 0(r4)
            RET
        """
        with pytest.raises(CertificationError):
            certify(bad, filter_policy)

    def test_read_past_minimum_rejected(self, filter_policy):
        """Offset 64 is not covered by r2 >= 64."""
        with pytest.raises(CertificationError):
            certify("LDQ r0, 64(r1)\nRET", filter_policy)

    def test_backward_branch_rejected(self, filter_policy):
        """Rule (3) of the §3 policy: all branches forward — enforced by
        requiring (absent) loop invariants."""
        bad = """
        top: SUBQ r2, 8, r2
             BNE  r2, top
             RET
        """
        with pytest.raises(CertificationError):
            certify(bad, filter_policy)


class TestOracleAgreement:
    def test_against_trace(self, small_trace):
        for spec in FILTERS:
            program = spec.program
            oracle = ORACLES[spec.name]
            for frame in small_trace:
                assert _run_native(program, frame) == oracle(frame), \
                    f"{spec.name} disagrees on {frame[:40].hex()}"

    def test_acceptance_rates_plausible(self, small_trace):
        """Filter 1 accepts most traffic; 4 is the most selective."""
        rates = {}
        for spec in FILTERS:
            accepted = sum(_run_native(spec.program, frame)
                           for frame in small_trace)
            rates[spec.name] = accepted / len(small_trace)
        assert rates["filter1"] > 0.5
        assert rates["filter1"] > rates["filter2"] > rates["filter3"]
        assert 0.005 < rates["filter4"] < 0.3

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_random_packets(self, seed):
        rng = random.Random(seed)
        frame = generate_packet(rng, TraceConfig())
        for spec in FILTERS:
            assert _run_native(spec.program, frame) == \
                ORACLES[spec.name](frame)


class TestSafetyTheorem:
    """Theorem 2.1, empirically: certified filters never block the
    abstract machine, on traces and on adversarial frames."""

    def test_never_blocks_on_trace(self, filter_policy, certified_filters,
                                   small_trace):
        for name in ("filter1", "filter2", "filter3", "filter4"):
            program = certified_filters[name].program
            for frame in small_trace[:400]:
                _run_abstract(filter_policy, program, frame)  # no raise

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=64, max_size=200))
    def test_never_blocks_on_garbage_frames(self, filter_policy, blob):
        """Adversarial packet *contents* cannot make certified code trap —
        the whole point of kernel-extension safety."""
        from repro.pcc import certify as _certify
        for spec in FILTERS:
            _run_abstract(filter_policy, spec.program, blob)

    def test_concrete_and_abstract_agree(self, filter_policy, small_trace):
        for spec in FILTERS:
            for frame in small_trace[:100]:
                assert (_run_native(spec.program, frame)
                        == _run_abstract(filter_policy, spec.program,
                                         frame))


class TestScratchMemory:
    def test_counter_accumulates_across_invocations(self, small_trace):
        """The scratch-writer filter counts IP packets via STQ/LDQ."""
        program = SCRATCH_COUNTER.program
        import struct
        count = 0
        scratch = bytes(16)
        for frame in small_trace[:200]:
            memory = packet_memory(frame)
            memory.region("scratch")[:] = scratch  # persist across calls
            machine = Machine(program, memory,
                              filter_registers(len(frame)))
            machine.run()
            scratch = bytes(memory.region("scratch"))
            count += ORACLES["filter1"](frame)
        assert struct.unpack("<Q", scratch[:8])[0] == count
