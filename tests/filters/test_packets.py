"""Packet synthesis and parsing: wire-format correctness."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.filters.packets import (
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    MIN_FRAME,
    PROTO_TCP,
    PROTO_UDP,
    arp_sender_ip,
    arp_target_ip,
    ethertype_of,
    ip_checksum,
    ip_destination,
    ip_header_length,
    ip_protocol,
    ip_source,
    ipv4,
    mac,
    make_arp_packet,
    make_ethernet,
    make_ip_packet,
    make_tcp_packet,
    make_udp_packet,
    tcp_destination_port,
)

ports = st.integers(min_value=0, max_value=65535)
octets = st.integers(min_value=0, max_value=255)


class TestAddresses:
    def test_mac(self):
        assert mac("01:23:45:67:89:ab") == bytes.fromhex("0123456789ab")
        with pytest.raises(ValueError):
            mac("01:23")

    def test_ipv4(self):
        assert ipv4("128.2.206.1") == bytes([128, 2, 206, 1])
        with pytest.raises(ValueError):
            ipv4("1.2.3")


class TestFraming:
    def test_minimum_frame_padding(self):
        frame = make_ethernet(ETHERTYPE_IP, b"")
        assert len(frame) == MIN_FRAME

    def test_oversize_rejected(self):
        with pytest.raises(ValueError):
            make_ethernet(ETHERTYPE_IP, b"\x00" * 2000)

    def test_ethertype_position(self):
        frame = make_ethernet(0x1234, b"")
        assert frame[12:14] == b"\x12\x34"
        assert ethertype_of(frame) == 0x1234


class TestIp:
    def test_header_fields(self):
        frame = make_ip_packet("1.2.3.4", "5.6.7.8", PROTO_UDP)
        assert ethertype_of(frame) == ETHERTYPE_IP
        assert ip_source(frame) == ipv4("1.2.3.4")
        assert ip_destination(frame) == ipv4("5.6.7.8")
        assert ip_protocol(frame) == PROTO_UDP
        assert ip_header_length(frame) == 20

    def test_options_extend_ihl(self):
        frame = make_ip_packet("1.2.3.4", "5.6.7.8", PROTO_TCP,
                               options=b"\x01" * 8)
        assert ip_header_length(frame) == 28

    def test_odd_option_length_rejected(self):
        with pytest.raises(ValueError):
            make_ip_packet("1.2.3.4", "5.6.7.8", PROTO_TCP,
                           options=b"\x01" * 3)

    def test_header_checksum_valid(self):
        frame = make_ip_packet("10.0.0.1", "10.0.0.2", PROTO_TCP)
        header = frame[14:14 + ip_header_length(frame)]
        # a correct header checksums to zero when re-summed whole
        total = sum(struct.unpack(f">{len(header) // 2}H", header))
        while total >> 16:
            total = (total & 0xFFFF) + (total >> 16)
        assert total == 0xFFFF

    def test_ip_checksum_reference_vector(self):
        # RFC 1071 example header
        header = bytes.fromhex(
            "4500003044224000800600008c7c19acae241e2b")
        value = ip_checksum(header)
        header_with = header[:10] + struct.pack(">H", value) + header[12:]
        assert ip_checksum(header_with[:10] + b"\x00\x00"
                           + header_with[12:]) == value


class TestTransport:
    @given(ports, ports)
    def test_tcp_ports(self, src_port, dst_port):
        frame = make_tcp_packet("1.1.1.1", "2.2.2.2", src_port, dst_port)
        assert tcp_destination_port(frame) == dst_port

    def test_tcp_port_behind_options(self):
        frame = make_tcp_packet("1.1.1.1", "2.2.2.2", 1000, 25,
                                options=b"\x01" * 20)
        assert ip_header_length(frame) == 40
        assert tcp_destination_port(frame) == 25

    def test_udp_is_not_tcp(self):
        frame = make_udp_packet("1.1.1.1", "2.2.2.2", 53, 53)
        assert tcp_destination_port(frame) is None


class TestArp:
    def test_fields(self):
        frame = make_arp_packet("128.2.206.9", "128.2.220.7")
        assert ethertype_of(frame) == ETHERTYPE_ARP
        assert arp_sender_ip(frame) == ipv4("128.2.206.9")
        assert arp_target_ip(frame) == ipv4("128.2.220.7")
        assert len(frame) == MIN_FRAME
