"""Trace generator: reproducibility and the documented protocol mix."""

from repro.filters.packets import (
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    MAX_FRAME,
    MIN_FRAME,
    PROTO_TCP,
    ethertype_of,
    ip_protocol,
    tcp_destination_port,
)
from repro.filters.trace import TARGET_PORT, TraceConfig, generate_trace


class TestReproducibility:
    def test_same_seed_same_trace(self):
        config = TraceConfig(packets=300, seed=99)
        assert generate_trace(config) == generate_trace(config)

    def test_different_seed_different_trace(self):
        a = generate_trace(TraceConfig(packets=300, seed=1))
        b = generate_trace(TraceConfig(packets=300, seed=2))
        assert a != b


class TestMix:
    def test_frame_sizes_legal(self):
        for frame in generate_trace(TraceConfig(packets=500)):
            assert MIN_FRAME <= len(frame) <= MAX_FRAME

    def test_protocol_fractions_roughly_configured(self):
        config = TraceConfig(packets=4000, seed=5)
        trace = generate_trace(config)
        ip = sum(ethertype_of(f) == ETHERTYPE_IP for f in trace)
        arp = sum(ethertype_of(f) == ETHERTYPE_ARP for f in trace)
        assert abs(ip / len(trace) - config.ip_fraction) < 0.05
        assert abs(arp / len(trace) - config.arp_fraction) < 0.03

    def test_tcp_and_target_port_present(self):
        trace = generate_trace(TraceConfig(packets=3000, seed=6))
        tcp = [f for f in trace
               if ethertype_of(f) == ETHERTYPE_IP
               and ip_protocol(f) == PROTO_TCP]
        assert len(tcp) > 1000
        to_target = sum(tcp_destination_port(f) == TARGET_PORT
                        for f in tcp)
        assert 0.05 < to_target / len(tcp) < 0.25

    def test_options_produce_longer_headers(self):
        from repro.filters.packets import ip_header_length
        trace = generate_trace(TraceConfig(packets=3000, seed=8))
        ip_frames = [f for f in trace
                     if ethertype_of(f) == ETHERTYPE_IP]
        with_options = [f for f in ip_frames
                        if ip_header_length(f) > 20]
        assert with_options, "some IP packets must carry options"
        assert all(ip_header_length(f) % 4 == 0 for f in with_options)

    def test_custom_mix(self):
        config = TraceConfig(packets=600, seed=3, ip_fraction=0.0,
                             arp_fraction=1.0)
        trace = generate_trace(config)
        assert all(ethertype_of(f) == ETHERTYPE_ARP for f in trace)
