"""The oracles themselves, pinned against hand-computed frames.

Everything else in the suite is cross-checked *against* the oracles, so
the oracles deserve their own ground-truth vectors built byte-by-byte.
"""

import struct

from repro.filters.oracle import oracle1, oracle2, oracle3, oracle4
from repro.filters.packets import (
    make_arp_packet,
    make_ethernet,
    make_ip_packet,
    make_tcp_packet,
    make_udp_packet,
)


def _raw_ethernet(ethertype: int, payload: bytes) -> bytes:
    frame = b"\xff" * 6 + b"\x02" + b"\x00" * 5 \
        + struct.pack(">H", ethertype) + payload
    return frame + b"\x00" * max(0, 64 - len(frame))


class TestOracle1:
    def test_ip_accepted(self):
        assert oracle1(_raw_ethernet(0x0800, b"\x45" + b"\x00" * 30))

    def test_arp_rejected(self):
        assert not oracle1(_raw_ethernet(0x0806, b"\x00" * 28))

    def test_vlan_rejected(self):
        assert not oracle1(_raw_ethernet(0x8100, b"\x00" * 46))


class TestOracle2:
    def test_source_network_match(self):
        frame = make_ip_packet("128.2.206.42", "1.2.3.4", 17)
        assert oracle2(frame)

    def test_other_network_rejected(self):
        assert not oracle2(make_ip_packet("128.2.207.42", "1.2.3.4", 17))
        assert not oracle2(make_ip_packet("128.3.206.42", "1.2.3.4", 17))

    def test_non_ip_rejected(self):
        assert not oracle2(make_arp_packet("128.2.206.42", "1.2.3.4"))


class TestOracle3:
    def test_ip_both_directions(self):
        assert oracle3(make_ip_packet("128.2.206.1", "128.2.220.2", 6))
        assert oracle3(make_ip_packet("128.2.220.9", "128.2.206.8", 6))

    def test_ip_one_side_only_rejected(self):
        assert not oracle3(make_ip_packet("128.2.206.1", "9.9.9.9", 6))
        assert not oracle3(make_ip_packet("9.9.9.9", "128.2.220.2", 6))

    def test_arp_both_directions(self):
        assert oracle3(make_arp_packet("128.2.206.5", "128.2.220.7"))
        assert oracle3(make_arp_packet("128.2.220.5", "128.2.206.7"))

    def test_arp_mismatch_rejected(self):
        assert not oracle3(make_arp_packet("128.2.206.5", "128.2.206.7"))

    def test_other_ethertype_rejected(self):
        assert not oracle3(_raw_ethernet(0x9000, b"\x00" * 50))


class TestOracle4:
    def test_port_25_accepted(self):
        assert oracle4(make_tcp_packet("1.1.1.1", "2.2.2.2", 999, 25))

    def test_other_port_rejected(self):
        assert not oracle4(make_tcp_packet("1.1.1.1", "2.2.2.2", 999, 80))

    def test_port_hidden_behind_options(self):
        frame = make_tcp_packet("1.1.1.1", "2.2.2.2", 999, 25,
                                options=b"\x01" * 20)
        assert oracle4(frame)
        frame = make_tcp_packet("1.1.1.1", "2.2.2.2", 999, 80,
                                options=b"\x01" * 20)
        assert not oracle4(frame)

    def test_udp_rejected(self):
        assert not oracle4(make_udp_packet("1.1.1.1", "2.2.2.2", 999, 25))

    def test_source_port_25_not_enough(self):
        assert not oracle4(make_tcp_packet("1.1.1.1", "2.2.2.2", 25, 80))

    def test_max_ihl_boundary(self):
        """IHL 15: port offset 76, containing word at 72 — in bounds only
        when the frame is long enough."""
        frame = make_tcp_packet("1.1.1.1", "2.2.2.2", 999, 25,
                                options=b"\x01" * 40)
        assert oracle4(frame)
