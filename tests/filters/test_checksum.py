"""The §4 loop experiment: checksum semantics, certification with loop
invariants, and the factor-of-two claim."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.alpha.abstract import AbstractMachine
from repro.alpha.machine import Machine
from repro.alpha.parser import parse_program
from repro.errors import CertificationError
from repro.filters.checksum import (
    CHECKSUM_LOOP_PC,
    CHECKSUM_SOURCE,
    NAIVE_CHECKSUM_SOURCE,
    NAIVE_LOOP_PC,
    checksum_invariant,
    checksum_memory,
    checksum_policy,
    checksum_registers,
    naive_invariant,
    pad_to_words,
    reference_checksum,
)
from repro.pcc import certify, validate
from repro.perf.cost import ALPHA_175


@pytest.fixture(scope="module")
def checksum_certified():
    return certify(CHECKSUM_SOURCE, checksum_policy(),
                   invariants={CHECKSUM_LOOP_PC: checksum_invariant()})


def _checksum(source, data):
    program = parse_program(source)
    machine = Machine(program, checksum_memory(data),
                      checksum_registers(data), cost_model=ALPHA_175)
    return machine.run()


class TestSemantics:
    @settings(max_examples=80, deadline=None)
    @given(st.binary(min_size=1, max_size=200))
    def test_matches_rfc1071(self, data):
        assert _checksum(CHECKSUM_SOURCE, data).value == \
            reference_checksum(data)

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=120))
    def test_naive_matches_rfc1071(self, data):
        assert _checksum(NAIVE_CHECKSUM_SOURCE, data).value == \
            reference_checksum(data)

    def test_real_ip_header(self):
        header = bytes.fromhex(
            "450000735a2a40004011000ac0a80001c0a800c7")
        value = reference_checksum(header)
        assert _checksum(CHECKSUM_SOURCE, header).value == value

    def test_padding_preserves_checksum(self):
        data = b"\x12\x34\x56\x78\x9a\xbc"
        assert reference_checksum(data) == \
            reference_checksum(pad_to_words(data))


class TestCertification:
    def test_certifies_with_loop_invariant(self, checksum_certified):
        report = validate(checksum_certified.binary.to_bytes(),
                          checksum_policy())
        assert report.instructions == len(checksum_certified.program)

    def test_naive_certifies_too(self):
        certify(NAIVE_CHECKSUM_SOURCE, checksum_policy(),
                invariants={NAIVE_LOOP_PC: naive_invariant()})

    def test_without_invariant_rejected(self):
        with pytest.raises(CertificationError):
            certify(CHECKSUM_SOURCE, checksum_policy())

    def test_with_too_weak_invariant_rejected(self):
        from repro.logic.formulas import Truth
        with pytest.raises(CertificationError):
            certify(CHECKSUM_SOURCE, checksum_policy(),
                    invariants={CHECKSUM_LOOP_PC: Truth()})

    def test_invariants_travel_in_binary(self, checksum_certified):
        assert len(checksum_certified.binary.invariants) > 0

    def test_abstract_machine_never_blocks(self, checksum_certified):
        policy = checksum_policy()
        rng = random.Random(3)
        for length in (8, 24, 56, 64, 256):
            data = bytes(rng.randrange(256) for __ in range(length))
            registers = checksum_registers(data)
            can_read, can_write = policy.checkers(registers, lambda a: 0)
            machine = AbstractMachine(checksum_certified.program,
                                      checksum_memory(data), can_read,
                                      can_write, registers)
            assert machine.run().value == reference_checksum(data)


class TestPerformanceClaim:
    def test_optimized_beats_naive_by_about_2x(self):
        """The paper: the 64-bit version beats the kernel C version by a
        factor of two."""
        rng = random.Random(9)
        data = bytes(rng.randrange(256) for __ in range(1480))
        optimized = _checksum(CHECKSUM_SOURCE, data).cycles
        naive = _checksum(NAIVE_CHECKSUM_SOURCE, data).cycles
        assert 1.6 < naive / optimized < 2.6

    def test_core_loop_is_8_instructions(self):
        """The paper's core loop is 8 instructions; ours is 7 (loop body
        plus the compare at `check`)."""
        program = parse_program(CHECKSUM_SOURCE)
        # instructions from `loop:` (pc 3) to BNE (inclusive)
        assert 7 <= 11 - CHECKSUM_LOOP_PC + 1 <= 9
