"""CLI smoke tests: every subcommand, success and failure paths."""

import json

import pytest

from repro.cli import main

FILTER1 = """
    LDQ    r4, 8(r1)
    EXTWL  r4, 4, r4
    CMPEQ  r4, 8, r0
    RET
"""


@pytest.fixture(scope="module")
def certified_file(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli")
    source = directory / "filter.s"
    source.write_text(FILTER1)
    output = directory / "filter.pcc"
    assert main(["certify", str(source), "-o", str(output),
                 "--policy", "packet-filter"]) == 0
    return output


class TestCli:
    def test_validate(self, certified_file, capsys):
        assert main(["validate", str(certified_file),
                     "--policy", "packet-filter"]) == 0
        out = capsys.readouterr().out
        assert "VALID" in out
        assert "proof bytes" in out

    def test_validate_wrong_policy_fails(self, certified_file, capsys):
        assert main(["validate", str(certified_file),
                     "--policy", "resource-access"]) == 1
        assert "error" in capsys.readouterr().err

    def test_validate_tampered_fails(self, certified_file, tmp_path):
        blob = bytearray(certified_file.read_bytes())
        blob[25] ^= 0xFF
        bad = tmp_path / "bad.pcc"
        bad.write_bytes(bytes(blob))
        assert main(["validate", str(bad),
                     "--policy", "packet-filter"]) == 1

    def test_batch_valid_and_cache_stats(self, certified_file, capsys):
        assert main(["batch", str(certified_file), str(certified_file),
                     "--policy", "packet-filter", "--jobs", "0",
                     "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "2/2 valid" in out
        assert "cache:" in out and "hits" in out and "evictions" in out
        # 4 loads (2 binaries x 2 rounds): round 1 misses (the dup is
        # deduplicated but still a miss), round 2 is pure cache
        assert "2 hits, 2 misses" in out

    def test_batch_isolates_bad_item(self, certified_file, tmp_path,
                                     capsys):
        bad = tmp_path / "bad.pcc"
        bad.write_bytes(b"\x00" * 30)
        assert main(["batch", str(certified_file), str(bad),
                     "--policy", "packet-filter", "--jobs", "0"]) == 1
        out = capsys.readouterr().out
        assert "VALID" in out and "INVALID" in out
        assert "1/2 valid" in out

    def test_batch_through_pool(self, certified_file, capsys):
        assert main(["batch", str(certified_file),
                     "--policy", "packet-filter"]) == 0
        assert "1/1 valid" in capsys.readouterr().out

    def test_disasm(self, certified_file, capsys):
        assert main(["disasm", str(certified_file)]) == 0
        out = capsys.readouterr().out
        assert "LDQ r4, 8(r1)" in out
        assert "RET" in out

    def test_layout(self, certified_file, capsys):
        assert main(["layout", str(certified_file)]) == 0
        out = capsys.readouterr().out
        assert "native code" in out
        assert "proof" in out

    def test_filter_run(self, capsys):
        assert main(["filter", "filter1", "--packets", "60"]) == 0
        out = capsys.readouterr().out
        assert "pcc" in out and "bpf" in out
        assert "cycles/pkt" in out

    def test_serve_builtin_filters(self, capsys, tmp_path):
        stats = tmp_path / "stats.json"
        assert main(["serve", "--builtin-filters", "--packets", "300",
                     "--shards", "2", "--budget", "100000",
                     "--json", str(stats)]) == 0
        out = capsys.readouterr().out
        assert "ATTACHED filter1" in out
        assert "modeled" in out
        assert stats.exists()
        payload = json.loads(stats.read_text())
        assert payload["shards"] == 2
        assert len(payload["extensions"]) == 4

    def test_serve_rejects_then_downgrades(self, tmp_path, capsys):
        from repro.alpha.encoding import encode_program
        from repro.alpha.parser import parse_program
        from repro.pcc.container import PccBinary

        rogue = tmp_path / "rogue.pcc"
        code = encode_program(parse_program("STQ r2, 0(r1)\nRET"))
        rogue.write_bytes(PccBinary(code, b"", b"", b"").to_bytes())

        with pytest.raises(SystemExit, match="no extension was admitted"):
            main(["serve", str(rogue), "--packets", "50"])
        assert "REJECTED" in capsys.readouterr().out

        assert main(["serve", str(rogue), "--packets", "50",
                     "--downgrade", "--fault-threshold", "2"]) == 0
        out = capsys.readouterr().out
        assert "checked" in out
        assert "quarantined" in out

    def test_serve_with_fault_injection(self, capsys):
        assert main(["serve", "--builtin-filters", "--packets", "200",
                     "--inject-faults", "0.1"]) == 0
        assert "contract drops" in capsys.readouterr().out

    def test_analyze_certified_binary(self, certified_file, capsys):
        assert main(["analyze", str(certified_file),
                     "--policy", "packet-filter"]) == 0
        out = capsys.readouterr().out
        assert "basic blocks:" in out
        assert "memory accesses:" in out
        assert "safe" in out
        assert "auto cycle budget" in out
        assert "lint: clean" in out
        assert "prescreen" in out  # containers get a prescreen verdict

    def test_analyze_json_report(self, certified_file, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert main(["analyze", str(certified_file), "--slack", "0.25",
                     "--json", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert payload["slack"] == 0.25
        assert payload["auto_budget"] is not None
        assert payload["wcet"]["classification"] == "exact"

    def test_analyze_raw_code_with_lint_errors(self, tmp_path, capsys):
        from repro.alpha.encoding import encode_program
        from repro.alpha.parser import parse_program

        raw = tmp_path / "spin.bin"
        raw.write_bytes(encode_program(parse_program(
            "loop: BR loop\nRET")))
        assert main(["analyze", str(raw)]) == 1
        out = capsys.readouterr().out
        assert "unbudgeted dispatch" in out  # unbounded loop, no budget
        assert "missing-ret" in out
        assert "unreachable-block" in out

    def test_serve_auto_budget(self, capsys):
        assert main(["serve", "--builtin-filters", "--packets", "100",
                     "--budget", "auto", "--budget-slack", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "budget" in out and "wcet" in out

    def test_serve_rejects_malformed_budget(self):
        with pytest.raises(SystemExit):
            main(["serve", "--builtin-filters", "--packets", "10",
                  "--budget", "fast"])

    def test_unknown_policy(self, tmp_path):
        source = tmp_path / "f.s"
        source.write_text(FILTER1)
        with pytest.raises(SystemExit):
            main(["certify", str(source), "-o", str(tmp_path / "o"),
                  "--policy", "nonsense"])

    def test_unknown_filter(self):
        with pytest.raises(SystemExit):
            main(["filter", "filter99"])

    def test_uncertifiable_source(self, tmp_path, capsys):
        source = tmp_path / "bad.s"
        source.write_text("LDQ r4, 4096(r1)\nRET\n")
        assert main(["certify", str(source), "-o",
                     str(tmp_path / "bad.pcc"),
                     "--policy", "packet-filter"]) == 1
        assert "error" in capsys.readouterr().err


BENIGN_VARIANT = """
    LDQ    r4, 8(r1)
    EXTWL  r4, 4, r4
    CMPEQ  r4, 8, r0
    ADDQ   r3, 0, r3
    RET
"""

DIVERGENT_VARIANT = """
    LDQ    r4, 8(r1)
    EXTWL  r4, 4, r4
    CMPEQ  r4, 8, r0
    CMPEQ  r0, 0, r0
    RET
"""


@pytest.fixture(scope="module")
def candidate_files(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli-upgrade")
    paths = {}
    for name, variant in (("benign", BENIGN_VARIANT),
                          ("divergent", DIVERGENT_VARIANT)):
        source = directory / f"{name}.s"
        source.write_text(variant)
        output = directory / f"{name}.pcc"
        assert main(["certify", str(source), "-o", str(output),
                     "--policy", "packet-filter"]) == 0
        paths[name] = output
    return paths


class TestUpgradeCommand:
    def test_benign_candidate_promotes(self, certified_file,
                                       candidate_files, capsys):
        assert main(["upgrade", str(certified_file),
                     str(candidate_files["benign"]),
                     "--packets", "500", "--promote-after", "64"]) == 0
        out = capsys.readouterr().out
        assert "PROMOTED" in out
        assert "clean" in out

    def test_divergent_candidate_rolls_back(self, certified_file,
                                            candidate_files, capsys):
        assert main(["upgrade", str(certified_file),
                     str(candidate_files["divergent"]),
                     "--packets", "500"]) == 1
        out = capsys.readouterr().out
        assert "ROLLED-BACK" in out
        assert "divergence" in out

    def test_byte_identical_candidate_fails_cleanly(self, certified_file):
        with pytest.raises(SystemExit):
            main(["upgrade", str(certified_file), str(certified_file)])


class TestChaosCommand:
    def test_quick_campaign_passes(self, capsys):
        assert main(["chaos", "--quick", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "ALL INVARIANTS HELD" in out
        assert "PASS" in out and "FAIL" not in out

    def test_scenario_subset_and_json(self, tmp_path, capsys):
        report_path = tmp_path / "chaos.json"
        assert main(["chaos", "--quick",
                     "--scenario", "upgrade-rollback",
                     "--scenario", "shard-crash",
                     "--json", str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["passed"] is True
        assert [s["name"] for s in payload["scenarios"]] == \
            ["upgrade-rollback", "shard-crash"]
        out = capsys.readouterr().out
        assert "upgrade-rollback" in out and "shard-crash" in out

    def test_unknown_scenario_fails_cleanly(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--scenario", "no-such-drill"])
