"""Sharing preservation: the structural operations must not expand DAGs.

The VC of diamond-shaped control flow shares join-point formulas; if any
pass (substitution, simplification) rebuilt unchanged shared nodes, the
formula would blow up exponentially — the regression these tests pin.
"""

import time

from repro.alpha.parser import parse_program
from repro.logic.formulas import And, Atom, Forall, Implies, Or, Truth, eq, ne
from repro.logic.simplify import simplify_formula
from repro.logic.subst import subst_formula
from repro.logic.terms import Int, Var, add64


def _distinct_nodes(formula, seen=None):
    seen = set() if seen is None else seen
    if id(formula) in seen:
        return seen
    seen.add(id(formula))
    if isinstance(formula, (And, Or, Implies)):
        _distinct_nodes(formula.left, seen)
        _distinct_nodes(formula.right, seen)
    elif isinstance(formula, Forall):
        _distinct_nodes(formula.body, seen)
    return seen


def _diamonds(count):
    lines = []
    for index in range(count):
        label = f"m{index}"
        lines.append(f"BEQ r1, {label}")
        lines.append("ADDQ r0, 1, r0")
        lines.append(f"{label}: ADDQ r0, 0, r0")
    lines.append("RET")
    return parse_program("\n".join(lines))


class TestSubstitutionSharing:
    def test_identity_substitution_returns_same_object(self):
        shared = eq(Var("x"), 0)
        formula = And(shared, shared)
        result = subst_formula(formula, {"unrelated": Int(1)})
        assert result is formula

    def test_changed_nodes_stay_shared(self):
        shared = eq(Var("x"), 0)
        formula = And(shared, shared)
        result = subst_formula(formula, {"x": add64(Var("y"), 1)})
        assert result.left is result.right

    def test_partial_change_keeps_untouched_subtree(self):
        touched = eq(Var("x"), 0)
        untouched = ne(Var("z"), 1)
        formula = And(touched, untouched)
        result = subst_formula(formula, {"x": Int(3)})
        assert result.right is untouched


class TestVcGenerationScales:
    def test_deep_diamonds_stay_linear(self):
        from repro.vcgen.vcgen import compute_vc

        sizes = {}
        for depth in (10, 20, 40):
            vc = compute_vc(_diamonds(depth), Truth())
            sizes[depth] = len(_distinct_nodes(vc))
        # distinct-node growth must be (roughly) linear in depth
        assert sizes[40] < 5 * sizes[10]

    def test_sixty_diamonds_generate_quickly(self):
        from repro.logic.formulas import Truth
        from repro.vcgen.vcgen import safety_predicate

        started = time.perf_counter()
        safety_predicate(_diamonds(60), Truth(), Truth(), simplify=False)
        assert time.perf_counter() - started < 2.0


class TestSimplifierSharing:
    def test_unchanged_formula_is_same_object(self):
        shared = ne(Var("x"), 0)
        formula = And(shared, Implies(shared, shared))
        assert simplify_formula(formula) is formula

    def test_shared_simplified_once(self):
        reducible = eq(add64(Int(1), Int(2)), Int(3))
        formula = And(reducible, reducible)
        simplified = simplify_formula(formula)
        assert simplified == Truth()


class TestLfSharing:
    def test_normalize_preserves_shared_objects(self):
        from repro.lf.syntax import LfApp, LfConst, lf_app, normalize

        leaf = lf_app(LfConst("add64"), LfConst("r0"), LfConst("r1"))
        term = LfApp(leaf, leaf)
        result = normalize(term)
        assert result.fn is result.arg

    def test_big_dag_normalizes_quickly(self):
        from repro.lf.syntax import LfApp, LfConst, normalize

        term = LfConst("tm")
        for __ in range(40):
            term = LfApp(term, term)  # 2^40 tree nodes, 41 shared ones
        started = time.perf_counter()
        normalize(term)
        assert time.perf_counter() - started < 1.0
