"""Unit tests for logical terms and their evaluation semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import LogicError
from repro.logic.terms import (
    App,
    Int,
    Var,
    WORD_MASK,
    WORD_MOD,
    add64,
    and64,
    cmpeq,
    cmpule,
    cmpult,
    eval_term,
    extbl,
    extll,
    extwl,
    make_memory,
    mod64,
    mul64,
    or64,
    sel,
    sll64,
    srl64,
    sub64,
    term_vars,
    upd,
    xor64,
)

words = st.integers(min_value=0, max_value=WORD_MASK)
any_ints = st.integers(min_value=-(1 << 80), max_value=1 << 80)


class TestConstruction:
    def test_unknown_operator_rejected(self):
        with pytest.raises(LogicError):
            App("frobnicate", (Int(1),))

    def test_wrong_arity_rejected(self):
        with pytest.raises(LogicError):
            App("add64", (Int(1),))

    def test_helpers_coerce_python_ints(self):
        term = add64(1, 2)
        assert term.args == (Int(1), Int(2))

    def test_terms_are_hashable_and_comparable(self):
        assert add64(Var("r0"), 8) == add64(Var("r0"), 8)
        assert hash(add64(Var("r0"), 8)) == hash(add64(Var("r0"), 8))
        assert add64(Var("r0"), 8) != add64(Var("r1"), 8)

    def test_term_vars(self):
        term = add64(Var("r0"), sel(Var("rm"), Var("r1")))
        assert term_vars(term) == {"r0", "rm", "r1"}


class TestEvaluation:
    def test_unbound_variable(self):
        with pytest.raises(LogicError):
            eval_term(Var("x"), {})

    def test_add64_wraps(self):
        assert eval_term(add64(WORD_MASK, 1), {}) == 0

    def test_sub64_wraps(self):
        assert eval_term(sub64(0, 1), {}) == WORD_MASK

    def test_shift_counts_use_low_six_bits(self):
        assert eval_term(sll64(1, 64), {}) == 1
        assert eval_term(srl64(4, 66), {}) == 1

    def test_extraction_ops(self):
        word = 0x8877665544332211
        assert eval_term(extbl(word, 0), {}) == 0x11
        assert eval_term(extbl(word, 7), {}) == 0x88
        assert eval_term(extwl(word, 4), {}) == 0x6655
        assert eval_term(extll(word, 2), {}) == 0x66554433

    def test_compare_ops(self):
        assert eval_term(cmpult(3, 4), {}) == 1
        assert eval_term(cmpult(4, 4), {}) == 0
        assert eval_term(cmpule(4, 4), {}) == 1
        assert eval_term(cmpeq(4, 4), {}) == 1
        assert eval_term(cmpeq(4, 5), {}) == 0

    def test_memory_select_update(self):
        memory = make_memory({8: 7})
        env = {"rm": memory}
        assert eval_term(sel(Var("rm"), 8), env) == 7
        updated = eval_term(upd(Var("rm"), 16, 99), env)
        assert eval_term(sel(Var("rm"), 16), {"rm": updated}) == 99
        # the original memory is unchanged (functional update)
        assert eval_term(sel(Var("rm"), 16), env) == 0

    def test_sel_reduces_to_word(self):
        memory = make_memory({0: WORD_MOD + 5})
        assert eval_term(sel(Var("rm"), 0), {"rm": memory}) == 5


class TestOperatorProperties:
    @given(any_ints, any_ints)
    def test_machine_ops_are_word_valued(self, a, b):
        for op in (add64, sub64, mul64, and64, or64, xor64, sll64, srl64,
                   cmpeq, cmpult, cmpule, extbl, extwl, extll):
            value = eval_term(op(a, b), {})
            assert 0 <= value < WORD_MOD

    @given(any_ints)
    def test_mod64_is_word_valued_and_idempotent(self, a):
        value = eval_term(mod64(a), {})
        assert 0 <= value < WORD_MOD
        assert eval_term(mod64(mod64(a)), {}) == value

    @given(words, words)
    def test_add64_matches_paper_definition(self, a, b):
        assert eval_term(add64(a, b), {}) == (a + b) % WORD_MOD

    @given(any_ints, any_ints)
    def test_operands_reduced_before_computing(self, a, b):
        assert eval_term(add64(a, b), {}) == \
            eval_term(add64(a % WORD_MOD, b % WORD_MOD), {})
