"""Pretty-printer tests: paper notation, totality, and injectivity on the
structures the prover sorts by."""

from hypothesis import given, strategies as st

from repro.logic.formulas import (
    And,
    Falsity,
    Forall,
    Implies,
    Or,
    Truth,
    eq,
    ge,
    lt,
    ne,
    rd,
    wr,
)
from repro.logic.pretty import pp_formula, pp_term
from repro.logic.terms import (
    App,
    Int,
    Var,
    add64,
    and64,
    mod64,
    sel,
    srl64,
    sub64,
    upd,
)


class TestNotation:
    def test_circled_operators(self):
        assert pp_term(add64(Var("r0"), 8)) == "(r0 (+) 8)"
        assert pp_term(sub64(Var("a"), Var("b"))) == "(a (-) b)"

    def test_mod_notation(self):
        assert pp_term(mod64(Var("r0"))) == "(r0 mod 2^64)"

    def test_memory_operations(self):
        term = sel(upd(Var("rm"), Var("a"), Var("v")), Var("b"))
        assert pp_term(term) == "sel(upd(rm, a, v), b)"

    def test_formula_connectives(self):
        formula = Implies(ne(sel(Var("rm"), Var("r0")), 0),
                          wr(add64(Var("r0"), 8)))
        assert pp_formula(formula) == \
            "(sel(rm, r0) != 0 => wr((r0 (+) 8)))"

    def test_quantifier(self):
        formula = Forall("i", rd(Var("i")))
        assert pp_formula(formula) == "(ALL i. rd(i))"

    def test_truth_values(self):
        assert pp_formula(Truth()) == "true"
        assert pp_formula(Falsity()) == "false"

    def test_connective_spelling(self):
        conj = And(Truth(), Falsity())
        disj = Or(Truth(), Falsity())
        assert "/\\" in pp_formula(conj)
        assert "\\/" in pp_formula(disj)


_leaves = st.one_of(
    st.integers(min_value=0, max_value=1 << 64).map(Int),
    st.sampled_from([Var("a"), Var("b")]),
)
_terms = st.recursive(
    _leaves,
    lambda children: st.builds(
        lambda op, x, y: App(op, (x, y)),
        st.sampled_from(["add64", "sub64", "and64", "srl64"]),
        children, children),
    max_leaves=10)


class TestProperties:
    @given(_terms)
    def test_total(self, term):
        assert isinstance(pp_term(term), str)

    @given(_terms, _terms)
    def test_injective_enough_for_sorting(self, a, b):
        """Distinct terms must render distinctly: the prover's determinism
        relies on pretty-printed sort keys separating different facts."""
        if a != b:
            assert pp_term(a) != pp_term(b)

    @given(_terms)
    def test_cache_consistency(self, term):
        assert pp_term(term) == pp_term(term)
