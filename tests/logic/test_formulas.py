"""Unit tests for formulas, substitution and semantic truth."""

import pytest

from repro.errors import LogicError
from repro.logic.formulas import (
    And,
    Atom,
    Falsity,
    Forall,
    Implies,
    Or,
    Truth,
    conj,
    conjuncts,
    eq,
    formula_size,
    formula_vars,
    ge,
    gt,
    holds,
    le,
    lt,
    ne,
    rd,
    wr,
)
from repro.logic.subst import rename_bound, subst_formula, subst_term
from repro.logic.terms import App, Int, Var, add64, make_memory, sel


class TestConstruction:
    def test_unknown_predicate(self):
        with pytest.raises(LogicError):
            Atom("divides", (Int(2), Int(4)))

    def test_wrong_arity(self):
        with pytest.raises(LogicError):
            Atom("rd", (Int(0), Int(1)))

    def test_conj_empty_is_truth(self):
        assert conj([]) == Truth()

    def test_conj_roundtrips_through_conjuncts(self):
        parts = [eq(1, 1), ne(2, 3), lt(0, 5)]
        assert conjuncts(conj(parts)) == parts

    def test_formula_vars_respects_binding(self):
        formula = Forall("i", Implies(lt(Var("i"), Var("r2")),
                                      rd(add64(Var("r1"), Var("i")))))
        assert formula_vars(formula) == {"r1", "r2"}

    def test_formula_size_counts_terms(self):
        assert formula_size(eq(1, 2)) == 3
        assert formula_size(And(Truth(), Falsity())) == 3


class TestSubstitution:
    def test_subst_term(self):
        term = add64(Var("r0"), Var("r1"))
        result = subst_term(term, {"r0": Int(5)})
        assert result == add64(5, Var("r1"))

    def test_subst_formula_under_binder_shadows(self):
        formula = Forall("i", eq(Var("i"), Var("j")))
        result = subst_formula(formula, {"i": Int(1), "j": Int(2)})
        assert result == Forall("i", eq(Var("i"), Int(2)))

    def test_capture_avoided(self):
        # substituting j := i under a binder for i must rename the binder
        formula = Forall("i", eq(Var("i"), Var("j")))
        result = subst_formula(formula, {"j": Var("i")})
        assert isinstance(result, Forall)
        assert result.var != "i"
        assert result.body == eq(Var(result.var), Var("i"))

    def test_rename_bound(self):
        formula = Forall("i", rd(Var("i")))
        assert rename_bound(formula, "k") == Forall("k", rd(Var("k")))

    def test_identity_substitution_preserves_object(self):
        formula = Forall("i", eq(Var("i"), Var("i")))
        assert subst_formula(formula, {"x": Int(0)}) == formula


class TestSemantics:
    def test_connectives(self):
        assert holds(And(Truth(), Truth()), {})
        assert not holds(And(Truth(), Falsity()), {})
        assert holds(Or(Falsity(), Truth()), {})
        assert holds(Implies(Falsity(), Falsity()), {})
        assert not holds(Implies(Truth(), Falsity()), {})

    def test_comparisons(self):
        env = {"x": 3, "y": 4}
        assert holds(lt(Var("x"), Var("y")), env)
        assert holds(le(Var("x"), 3), env)
        assert holds(ge(Var("y"), 4), env)
        assert holds(gt(Var("y"), Var("x")), env)
        assert not holds(eq(Var("x"), Var("y")), env)
        assert holds(ne(Var("x"), Var("y")), env)

    def test_rd_wr_need_policy(self):
        with pytest.raises(LogicError):
            holds(rd(Int(8)), {})
        assert holds(rd(Int(8)), {}, can_read=lambda a: a == 8)
        assert not holds(wr(Int(8)), {}, can_read=lambda a: True,
                         can_write=lambda a: False)

    def test_forall_sampled_refutation(self):
        # ALL i. i < 64 is refuted by the default samples
        assert not holds(Forall("i", lt(Var("i"), 64)), {})
        assert holds(Forall("i", ge(Var("i"), 0)), {},
                     forall_samples=(0, 5, 100))

    def test_memory_atoms(self):
        memory = make_memory({0x10: 3})
        formula = ne(sel(Var("rm"), 0x10), 0)
        assert holds(formula, {"rm": memory})
