"""The simplifier must be *unconditionally* semantics-preserving: every
rewrite it performs holds for all integer values of the free variables.
Property-based tests evaluate original and simplified forms on random
environments; unit tests pin the specific rewrites the VC pipeline relies
on."""

from hypothesis import given, strategies as st

from repro.logic.formulas import (
    And,
    Falsity,
    Forall,
    Implies,
    Or,
    Truth,
    eq,
    ge,
    holds,
    lt,
    ne,
)
from repro.logic.simplify import simplify_formula, simplify_term
from repro.logic.terms import (
    App,
    Int,
    Var,
    WORD_MOD,
    add64,
    and64,
    eval_term,
    mod64,
    mul64,
    sel,
    srl64,
    sub64,
    upd,
)

values = st.integers(min_value=0, max_value=WORD_MOD - 1)

# random terms over three variables
_leaves = st.one_of(
    st.integers(min_value=-8, max_value=WORD_MOD + 8).map(Int),
    st.sampled_from([Var("a"), Var("b"), Var("c")]),
)


def _combine(children):
    ops = ["add64", "sub64", "mul64", "and64", "or64", "xor64",
           "sll64", "srl64"]
    return st.builds(
        lambda op, left, right: App(op, (left, right)),
        st.sampled_from(ops), children, children)


terms = st.recursive(_leaves, _combine, max_leaves=12)


class TestTermSimplification:
    @given(terms, values, values, values)
    def test_semantics_preserved(self, term, a, b, c):
        env = {"a": a, "b": b, "c": c}
        assert eval_term(simplify_term(term), env) == eval_term(term, env)

    def test_constant_folding(self):
        assert simplify_term(add64(3, 4)) == Int(7)
        assert simplify_term(srl64(16, 2)) == Int(4)

    def test_nested_displacement_folding(self):
        # (x (+) 8) (+) (2^64 - 8)  ->  x (+) 0  — the Figure 5 address
        term = add64(add64(Var("x"), 8), WORD_MOD - 8)
        assert simplify_term(term) == add64(Var("x"), 0)

    def test_add64_zero_not_dropped(self):
        # x (+) 0 == x only when x is in word range; must NOT simplify
        term = add64(Var("x"), 0)
        assert simplify_term(term) == term

    def test_and_zero(self):
        assert simplify_term(and64(Var("x"), 0)) == Int(0)

    def test_mod64_of_word_valued(self):
        inner = add64(Var("x"), Var("y"))
        assert simplify_term(mod64(inner)) == inner
        # but mod64 of a bare variable must stay
        assert simplify_term(mod64(Var("x"))) == mod64(Var("x"))

    def test_sel_of_upd_same_literal_address(self):
        term = sel(upd(Var("rm"), 8, Var("v")), 8)
        assert simplify_term(term) == mod64(Var("v"))

    def test_sel_of_upd_different_address_kept(self):
        term = sel(upd(Var("rm"), 8, Var("v")), 16)
        assert simplify_term(term) == term


class TestFormulaSimplification:
    def test_ground_atoms_decided(self):
        assert simplify_formula(eq(3, 3)) == Truth()
        assert simplify_formula(lt(4, 3)) == Falsity()

    def test_unit_laws(self):
        body = ne(Var("x"), 0)
        assert simplify_formula(And(Truth(), body)) == body
        assert simplify_formula(And(body, Falsity())) == Falsity()
        assert simplify_formula(Or(body, Truth())) == Truth()
        assert simplify_formula(Or(Falsity(), body)) == body
        assert simplify_formula(Implies(Falsity(), body)) == Truth()
        assert simplify_formula(Implies(Truth(), body)) == body
        assert simplify_formula(Implies(body, Truth())) == Truth()

    def test_forall_of_truth_collapses(self):
        assert simplify_formula(Forall("i", eq(1, 1))) == Truth()

    @given(values, values)
    def test_formula_semantics_preserved(self, a, b):
        formula = Implies(lt(Var("a"), Var("b")),
                          And(ne(mod64(add64(Var("a"), 1)), 0),
                              ge(Var("b"), 0)))
        env = {"a": a, "b": b}
        assert holds(simplify_formula(formula), env) == holds(formula, env)

    def test_simplification_is_deterministic(self):
        formula = And(eq(add64(add64(Var("x"), 8), WORD_MOD - 8), Var("x")),
                      Truth())
        assert simplify_formula(formula) == simplify_formula(formula)
