"""Unit tests for the threaded-code engine (decode layers, code cache,
trap slots, step-limit boundary, and the reusable kernel memories)."""

import struct

import pytest

from repro.alpha.abstract import AbstractMachine, abstract_engine
from repro.alpha.engine import (
    ExecutionEngine,
    clear_code_cache,
    code_cache_size,
    compile_program,
    run_program,
)
from repro.alpha.isa import Ret
from repro.alpha.machine import Machine, Memory
from repro.alpha.parser import parse_program
from repro.errors import MachineError, SafetyViolation
from repro.baselines.sfi.policy import (
    reusable_sfi_memory,
    sfi_memory,
    sfi_registers,
)
from repro.filters.policy import (
    filter_registers,
    packet_memory,
    reusable_packet_memory,
)
from repro.perf.cost import ALPHA_175


def _engine_run(source, registers=None, memory=None, **kwargs):
    memory = memory if memory is not None else Memory()
    engine = ExecutionEngine(parse_program(source), **kwargs)
    return engine.run(memory, registers or {})


class TestEngineSemantics:
    def test_result_fields_match_reference(self):
        source = "ADDQ r1, 2, r0\nMULQ r0, r0, r0\nRET"
        reference = Machine(parse_program(source), Memory(), {1: 5},
                            cost_model=ALPHA_175).run()
        threaded = _engine_run(source, {1: 5}, cost_model=ALPHA_175)
        assert threaded == reference
        assert threaded.value == 49

    def test_memory_effects_visible(self):
        memory = Memory()
        memory.map_region(0x1000, struct.pack("<QQ", 5, 0), writable=True,
                          name="table")
        result = _engine_run("""
            LDQ  r2, 0(r1)
            ADDQ r2, 1, r2
            STQ  r2, 8(r1)
            LDQ  r0, 8(r1)
            RET
        """, {1: 0x1000}, memory)
        assert result.value == 6
        assert memory.load_quad(0x1008) == 6

    def test_run_program_one_shot(self):
        result = run_program(parse_program("ADDQ r1, 1, r0\nRET"),
                             Memory(), {1: 41})
        assert result.value == 42

    def test_branch_to_invalid_target_is_reference_identical(self):
        from repro.alpha.isa import Branch, Reg
        program = (Branch("BEQ", Reg(1), 50), Ret())
        machine_error = None
        try:
            Machine(program, Memory(), {1: 0}).run()
        except MachineError as error:
            machine_error = str(error)
        with pytest.raises(MachineError) as info:
            ExecutionEngine(program).run(Memory(), {1: 0})
        assert str(info.value) == machine_error

    def test_empty_program_trap(self):
        with pytest.raises(MachineError) as info:
            ExecutionEngine(()).run(Memory())
        assert "pc 0" in str(info.value)

    def test_step_limit_boundary_matches_reference(self):
        """Sweep max_steps across a looping program so the limit lands at
        every offset inside a compiled block (the per-instruction
        boundary path must reproduce the reference exactly)."""
        source = "\n".join(["ADDQ r0, 1, r0"] * 6
                           + ["top: SUBQ r0, 1, r0", "BNE r0, top", "RET"])
        program = parse_program(source)
        for max_steps in range(1, 30):
            try:
                expected = ("result",
                            Machine(program, Memory(), {},
                                    max_steps=max_steps).run())
            except MachineError as error:
                expected = ("error", str(error))
            engine = ExecutionEngine(program, max_steps=max_steps)
            try:
                actual = ("result", engine.run(Memory()))
            except MachineError as error:
                actual = ("error", str(error))
            assert actual == expected, f"max_steps={max_steps}"


class TestCodeCache:
    def test_unchecked_translations_shared(self):
        clear_code_cache()
        program = parse_program("ADDQ r0, 1, r0\nRET")
        first = ExecutionEngine(program, cost_model=ALPHA_175)
        second = ExecutionEngine(program, cost_model=ALPHA_175)
        assert code_cache_size() == 1
        assert first._code is second._code

    def test_checked_translations_not_cached(self):
        clear_code_cache()
        program = parse_program("LDQ r0, 0(r1)\nRET")
        abstract_engine(program, lambda a: True, lambda a: False)
        assert code_cache_size() == 0

    def test_unhashable_cost_model_still_compiles(self):
        class Weird:
            __hash__ = None

            def cycles(self, instruction):
                return 2

        result = run_program(parse_program("RET"), Memory(),
                             cost_model=Weird())
        assert result.cycles == 2


class TestAbstractEngine:
    def test_blocks_like_abstract_machine(self):
        memory1 = Memory()
        memory1.map_region(0, bytes(64), name="buf")
        memory2 = Memory()
        memory2.map_region(0, bytes(64), name="buf")
        program = parse_program("ADDQ r1, 0, r2\nLDQ r0, 8(r2)\nRET")
        reference = AbstractMachine(program, memory1, lambda a: False,
                                    lambda a: False, {1: 0})
        with pytest.raises(SafetyViolation) as expected:
            reference.run()
        engine = abstract_engine(program, lambda a: False, lambda a: False)
        with pytest.raises(SafetyViolation) as actual:
            engine.run(memory2, {1: 0})
        assert str(actual.value) == str(expected.value)
        assert actual.value.pc == expected.value.pc == 1
        assert actual.value.address == expected.value.address


class TestReusableMemories:
    def test_packet_rebind_equals_fresh_memory(self):
        program = parse_program("LDQ r4, 0(r1)\nLDQ r5, 0(r3)\n"
                                "ADDQ r4, r5, r0\nRET")
        engine = ExecutionEngine(program)
        memory, rebind = reusable_packet_memory()
        for size in (60, 64, 72, 61):
            packet = bytes((i * 7 + size) & 0xFF for i in range(size))
            rebind(packet)
            reused = engine.run(memory, filter_registers(size))
            fresh = engine.run(packet_memory(packet), filter_registers(size))
            assert reused == fresh

    def test_packet_rebind_rezeroes_scratch(self):
        program = parse_program("ADDQ r2, 0, r4\nSTQ r4, 0(r3)\n"
                                "LDQ r0, 0(r3)\nRET")
        engine = ExecutionEngine(program)
        memory, rebind = reusable_packet_memory()
        rebind(bytes(64))
        assert engine.run(memory, filter_registers(64)).value == 64
        rebind(bytes(60))
        assert memory.load_quad(
            filter_registers(60)[3]) == 0  # scratch cleared

    def test_packet_region_stays_read_only(self):
        memory, rebind = reusable_packet_memory()
        rebind(bytes(64))
        base = filter_registers(64)[1]
        with pytest.raises(MachineError):
            memory.store_quad(base, 1)

    def test_sfi_rebind_equals_fresh_memory(self):
        program = parse_program("LDQ r4, 8(r1)\nADDQ r4, 1, r0\nRET")
        engine = ExecutionEngine(program)
        memory, rebind = reusable_sfi_memory()
        for size in (64, 100, 60):
            packet = bytes((i + size) & 0xFF for i in range(size))
            rebind(packet)
            reused = engine.run(memory, sfi_registers(size))
            fresh = engine.run(sfi_memory(packet), sfi_registers(size))
            assert reused == fresh
