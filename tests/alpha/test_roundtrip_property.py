"""Property round-trips over random valid programs:

    parse(format(p)) == p          (assembler/disassembler)
    decode(encode(p)) == p         (binary encoding)

and cross-composition: decode(encode(parse(format(p)))) == p.
"""

from hypothesis import given, strategies as st

from repro.alpha.encoding import decode_program, encode_program
from repro.alpha.isa import (
    BRANCH_NAMES,
    Br,
    Branch,
    Lda,
    Ldah,
    Ldq,
    Lit,
    NUM_REGS,
    OPERATE_NAMES,
    Operate,
    Reg,
    Ret,
    Stq,
)
from repro.alpha.parser import format_program, parse_program

_regs = st.integers(min_value=0, max_value=NUM_REGS - 1).map(Reg)
_lits = st.integers(min_value=0, max_value=255).map(Lit)
_disp = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)

_plain = st.one_of(
    st.builds(Operate, st.sampled_from(sorted(OPERATE_NAMES)), _regs,
              st.one_of(_regs, _lits), _regs),
    st.builds(Lda, _regs, _disp, _regs),
    st.builds(Ldah, _regs, _disp, _regs),
    st.builds(Ldq, _regs, _disp, _regs),
    st.builds(Stq, _regs, _disp, _regs),
)


@st.composite
def programs(draw):
    """A random valid program: plain instructions with occasional forward
    branches, terminated by RET."""
    body = draw(st.lists(_plain, min_size=0, max_size=12))
    program = list(body)
    insert_positions = draw(st.lists(
        st.integers(min_value=0, max_value=max(len(program) - 1, 0)),
        max_size=3))
    for position in sorted(set(insert_positions), reverse=True):
        remaining = len(program) - position
        offset = draw(st.integers(min_value=0, max_value=remaining))
        name = draw(st.sampled_from(BRANCH_NAMES + ("BR",)))
        if name == "BR":
            program.insert(position, Br(offset))
        else:
            program.insert(position,
                           Branch(name, draw(_regs), offset))
    program.append(Ret())
    return tuple(program)


class TestRoundTrips:
    @given(programs())
    def test_assembler_round_trip(self, program):
        assert parse_program(format_program(program)) == program

    @given(programs())
    def test_binary_round_trip(self, program):
        assert decode_program(encode_program(program)) == program

    @given(programs())
    def test_cross_composition(self, program):
        text = format_program(program)
        code = encode_program(parse_program(text))
        assert decode_program(code) == program
