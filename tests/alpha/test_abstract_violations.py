"""SafetyViolation diagnostics: a stuck abstract machine says *where*.

The runtime's quarantine log leans on three attributes of every rd/wr
violation — the faulting ``pc``, the offending ``address``, and the
check ``kind`` — so both implementations of the Figure 3 checks (the
threaded-code hooks and the reference :class:`AbstractMachine`) must
populate them, and must agree with each other.
"""

import pytest

from repro.alpha.abstract import AbstractMachine, run_abstract
from repro.alpha.parser import parse_program
from repro.errors import SafetyViolation
from repro.filters.policy import filter_registers, reusable_packet_memory

READER = parse_program("""
    ADDQ r1, 8, r4
    LDQ r0, 8(r4)
    RET
""")

WRITER = parse_program("""
    STQ r2, 16(r1)
    ADDQ r2, 1, r0
    RET
""")


def _packet_state(frame_length=96):
    memory, rebind = reusable_packet_memory()
    rebind(b"\x00" * frame_length)
    return memory, filter_registers(frame_length)


def _violation(program, can_read, can_write):
    """The same denied access on both Figure 3 implementations; returns
    the two SafetyViolations after checking they agree."""
    errors = []
    for run in (
        lambda: run_abstract(program, _packet_state()[0], can_read,
                             can_write, _packet_state()[1]),
        lambda: AbstractMachine(program, _packet_state()[0], can_read,
                                can_write, _packet_state()[1]).run(),
    ):
        with pytest.raises(SafetyViolation) as excinfo:
            run()
        errors.append(excinfo.value)
    engine_error, machine_error = errors
    assert engine_error.pc == machine_error.pc
    assert engine_error.address == machine_error.address
    assert engine_error.kind == machine_error.kind
    return engine_error


def test_read_violation_carries_pc_address_kind():
    error = _violation(READER, can_read=lambda a: False,
                       can_write=lambda a: True)
    base = filter_registers(96)[1]
    assert error.kind == "rd"
    assert error.pc == 1
    assert error.address == base + 16
    assert f"{error.address:#x}" in str(error)


def test_write_violation_carries_pc_address_kind():
    error = _violation(WRITER, can_read=lambda a: True,
                       can_write=lambda a: False)
    base = filter_registers(96)[1]
    assert error.kind == "wr"
    assert error.pc == 0
    assert error.address == base + 16


def test_alignment_is_part_of_the_check():
    """An unaligned access is a violation even when the policy predicate
    would allow the address (the paper's uniform alignment rule)."""
    unaligned = parse_program("""
        LDQ r0, 4(r1)
        RET
    """)
    error = _violation(unaligned, can_read=lambda a: True,
                       can_write=lambda a: True)
    assert error.kind == "rd"
    assert error.pc == 0
    assert error.address % 8 == 4
