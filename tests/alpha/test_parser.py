"""Unit tests for the assembly front end."""

import pytest

from repro.alpha.isa import (
    Br,
    Branch,
    Lda,
    Ldah,
    Ldq,
    Lit,
    Operate,
    Reg,
    Ret,
    Stq,
    branch_target,
)
from repro.alpha.parser import format_program, parse_program
from repro.errors import AssemblyError


class TestParsing:
    def test_figure5_program(self):
        program = parse_program("""
            ADDQ r0, 8, r1
            LDQ  r0, 8(r0)
            LDQ  r2, -8(r1)
            ADDQ r0, 1, r0
            BEQ  r2, L1
            STQ  r0, 0(r1)
        L1: RET
        """)
        assert len(program) == 7
        assert program[0] == Operate("ADDQ", Reg(0), Lit(8), Reg(1))
        assert program[1] == Ldq(Reg(0), 8, Reg(0))
        assert program[2] == Ldq(Reg(2), -8, Reg(1))
        assert program[4] == Branch("BEQ", Reg(2), 1)
        assert program[5] == Stq(Reg(0), 0, Reg(1))
        assert program[6] == Ret()

    def test_comment_styles(self):
        program = parse_program("""
            ADDQ r0, 1, r0   % percent
            ADDQ r0, 1, r0   ; semicolon
            ADDQ r0, 1, r0   # hash
            RET
        """)
        assert len(program) == 4

    def test_or_alias_for_bis(self):
        program = parse_program("OR r1, r2, r3\nRET")
        assert program[0] == Operate("BIS", Reg(1), Reg(2), Reg(3))

    def test_register_operand(self):
        program = parse_program("ADDQ r1, r2, r3\nRET")
        assert program[0].rb == Reg(2)

    def test_explicit_offsets(self):
        program = parse_program("BEQ r0, +1\nRET\nRET")
        assert branch_target(0, program[0]) == 2

    def test_lda_ldah(self):
        program = parse_program("LDA r1, -2048(r2)\nLDAH r3, 206(r4)\nRET")
        assert program[0] == Lda(Reg(1), -2048, Reg(2))
        assert program[1] == Ldah(Reg(3), 206, Reg(4))

    def test_unconditional_branch(self):
        program = parse_program("BR end\nADDQ r0, 1, r0\nend: RET")
        assert program[0] == Br(1)


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblyError):
            parse_program("FNORD r1, r2, r3\nRET")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            parse_program("BEQ r0, nowhere\nRET")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            parse_program("a: RET\na: RET")

    def test_register_out_of_range(self):
        with pytest.raises(AssemblyError):
            parse_program("ADDQ r11, 0, r0\nRET")

    def test_literal_out_of_range(self):
        with pytest.raises(AssemblyError):
            parse_program("ADDQ r0, 256, r0\nRET")

    def test_displacement_out_of_range(self):
        with pytest.raises(AssemblyError):
            parse_program("LDQ r0, 40000(r1)\nRET")

    def test_fall_off_end(self):
        with pytest.raises(AssemblyError):
            parse_program("ADDQ r0, 1, r0")

    def test_trailing_conditional_branch(self):
        with pytest.raises(AssemblyError):
            parse_program("L: ADDQ r0, 1, r0\nBEQ r0, L")

    def test_branch_outside_program(self):
        with pytest.raises(AssemblyError):
            parse_program("BEQ r0, +5\nRET")

    def test_empty_program(self):
        with pytest.raises(AssemblyError):
            parse_program("   % nothing here\n")


class TestRoundTrip:
    def test_format_parse_round_trip(self):
        source = """
            LDQ    r4, 8(r1)
            EXTWL  r4, 4, r5
            CMPEQ  r5, 8, r0
            BEQ    r0, out
            LDQ    r4, 24(r1)
            SUBQ   r5, r5, r5
            LDAH   r5, 206(r5)
            LDA    r5, 640(r5)
            CMPEQ  r4, r5, r0
        out: RET
        """
        program = parse_program(source)
        assert parse_program(format_program(program)) == program
