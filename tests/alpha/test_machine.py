"""Concrete and abstract machine tests (Figure 3 semantics)."""

import struct

import pytest

from repro.alpha.abstract import AbstractMachine
from repro.alpha.machine import Machine, Memory
from repro.alpha.parser import parse_program
from repro.errors import MachineError, SafetyViolation
from repro.perf.cost import ALPHA_175


def _run(source, registers=None, memory=None, **kwargs):
    memory = memory or Memory()
    machine = Machine(parse_program(source), memory, registers or {},
                      **kwargs)
    return machine.run()


class TestMemory:
    def test_load_store(self):
        memory = Memory()
        memory.map_region(0x1000, bytes(16), writable=True, name="buf")
        memory.store_quad(0x1008, 0xDEADBEEF)
        assert memory.load_quad(0x1008) == 0xDEADBEEF
        assert memory.load_quad(0x1000) == 0

    def test_little_endian(self):
        memory = Memory()
        memory.map_region(0, struct.pack("<Q", 0x0102030405060708),
                          name="buf")
        assert memory.load_quad(0) == 0x0102030405060708

    def test_unaligned_traps(self):
        memory = Memory()
        memory.map_region(0, bytes(16), writable=True, name="buf")
        with pytest.raises(MachineError):
            memory.load_quad(4)
        with pytest.raises(MachineError):
            memory.store_quad(4, 0)

    def test_unmapped_traps(self):
        with pytest.raises(MachineError):
            Memory().load_quad(0x2000)

    def test_read_only_region(self):
        memory = Memory()
        memory.map_region(0, bytes(8), writable=False, name="ro")
        with pytest.raises(MachineError):
            memory.store_quad(0, 1)

    def test_overlap_rejected(self):
        memory = Memory()
        memory.map_region(0, bytes(16), name="a")
        with pytest.raises(MachineError):
            memory.map_region(8, bytes(16), name="b")

    def test_last_hit_cache_keeps_read_only_enforcement(self):
        memory = Memory()
        memory.map_region(0, bytes(8), writable=False, name="ro")
        assert memory.load_quad(0) == 0  # primes the last-hit cache
        with pytest.raises(MachineError):
            memory.store_quad(0, 1)      # cached region is still read-only

    def test_last_hit_cache_keeps_bounds_enforcement(self):
        memory = Memory()
        memory.map_region(0, bytes(8), name="a")
        memory.map_region(0x100, bytes(8), writable=True, name="b")
        assert memory.load_quad(0) == 0  # cache holds "a" now
        memory.store_quad(0x100, 3)      # out of "a": must rescan to "b"
        assert memory.load_quad(0x100) == 3
        with pytest.raises(MachineError):
            memory.load_quad(0x200)      # in neither region
        with pytest.raises(MachineError):
            memory.load_quad(0x8)        # just past "a"

    def test_rebind_region_swaps_contents(self):
        memory = Memory()
        memory.map_region(0, struct.pack("<Q", 1), writable=True,
                          name="buf")
        memory.rebind_region("buf", struct.pack("<Q", 2))
        assert memory.load_quad(0) == 2

    def test_rebind_region_resize_updates_bounds(self):
        memory = Memory()
        memory.map_region(0, bytes(8), name="buf")
        assert memory.load_quad(0) == 0  # primes the cache
        memory.rebind_region("buf", bytes(16))
        assert memory.load_quad(8) == 0  # grown: new tail is mapped
        memory.rebind_region("buf", struct.pack("<Q", 9))
        assert memory.load_quad(0) == 9
        with pytest.raises(MachineError):
            memory.load_quad(8)          # shrunk: stale bounds rejected

    def test_rebind_region_rejects_overlap(self):
        memory = Memory()
        memory.map_region(0, bytes(8), name="a")
        memory.map_region(16, bytes(8), name="b")
        with pytest.raises(MachineError):
            memory.rebind_region("a", bytes(24))  # would reach into "b"
        assert memory.load_quad(0) == 0           # "a" unchanged

    def test_rebind_region_unknown_name(self):
        with pytest.raises(MachineError):
            Memory().rebind_region("nope", bytes(8))

    def test_rebind_region_keeps_permissions(self):
        memory = Memory()
        memory.map_region(0, bytes(8), writable=False, name="packet")
        memory.rebind_region("packet", bytes(16))
        with pytest.raises(MachineError):
            memory.store_quad(0, 1)


class TestExecution:
    def test_operate_semantics(self):
        result = _run("ADDQ r1, 2, r0\nRET", {1: 40})
        assert result.value == 42

    def test_wraparound(self):
        result = _run("ADDQ r1, 1, r0\nRET", {1: (1 << 64) - 1})
        assert result.value == 0

    def test_extbl(self):
        result = _run("EXTBL r1, 3, r0\nRET", {1: 0x11223344AABBCCDD})
        assert result.value == 0xAA

    def test_branch_taken_and_not_taken(self):
        source = """
            BEQ r1, yes
            ADDQ r0, 1, r0
        yes: RET
        """
        assert _run(source, {1: 0}).value == 0
        assert _run(source, {1: 5}).value == 1

    def test_signed_branches(self):
        source = "BLT r1, neg\nADDQ r0, 1, r0\nneg: RET"
        assert _run(source, {1: 1 << 63}).value == 0   # negative: taken
        assert _run(source, {1: 5}).value == 1          # positive: not

    def test_bgt_ble(self):
        source = "BGT r1, pos\nADDQ r0, 1, r0\npos: RET"
        assert _run(source, {1: 5}).value == 0
        assert _run(source, {1: 0}).value == 1
        assert _run(source, {1: 1 << 63}).value == 1

    def test_lda_constant_synthesis(self):
        source = """
            SUBQ r5, r5, r5
            LDAH r5, 206(r5)
            LDA  r5, 640(r5)
            ADDQ r5, 0, r0
            RET
        """
        assert _run(source).value == 0xCE0280

    def test_load_store_program(self):
        memory = Memory()
        memory.map_region(0x1000, struct.pack("<QQ", 5, 41), writable=True,
                          name="table")
        result = _run("""
            LDQ  r2, 0(r1)
            ADDQ r2, 1, r2
            STQ  r2, 8(r1)
            LDQ  r0, 8(r1)
            RET
        """, {1: 0x1000}, memory)
        assert result.value == 6

    def test_runaway_detection(self):
        # a one-instruction infinite loop (backward branch to itself)
        from repro.alpha.isa import Br, Ret
        program = (Br(-1), Ret())
        machine = Machine(program, Memory(), max_steps=100)
        with pytest.raises(MachineError):
            machine.run()

    def test_instruction_and_cycle_counting(self):
        result = _run("ADDQ r0, 1, r0\nADDQ r0, 1, r0\nRET",
                      cost_model=ALPHA_175)
        assert result.instructions == 3
        assert result.cycles == 1 + 1 + 2  # two ALU ops + RET


class TestAbstractMachine:
    """The Figure 3 machine blocks (raises) on failed safety checks."""

    def _machine(self, source, can_read, can_write, registers=None,
                 memory=None):
        memory = memory or Memory()
        return AbstractMachine(parse_program(source), memory, can_read,
                               can_write, registers or {})

    def test_blocks_on_unreadable_load(self):
        memory = Memory()
        memory.map_region(0, bytes(64), name="buf")
        machine = self._machine("LDQ r0, 0(r1)\nRET",
                                can_read=lambda a: False,
                                can_write=lambda a: False,
                                registers={1: 0}, memory=memory)
        with pytest.raises(SafetyViolation) as info:
            machine.run()
        assert info.value.pc == 0

    def test_blocks_on_unwritable_store(self):
        memory = Memory()
        memory.map_region(0, bytes(64), writable=True, name="buf")
        machine = self._machine("STQ r0, 8(r1)\nRET",
                                can_read=lambda a: True,
                                can_write=lambda a: False,
                                registers={1: 0}, memory=memory)
        with pytest.raises(SafetyViolation):
            machine.run()

    def test_blocks_on_unaligned_even_if_policy_allows(self):
        memory = Memory()
        memory.map_region(0, bytes(64), name="buf")
        machine = self._machine("LDQ r0, 4(r1)\nRET",
                                can_read=lambda a: True,
                                can_write=lambda a: True,
                                registers={1: 0}, memory=memory)
        with pytest.raises(SafetyViolation):
            machine.run()

    def test_agrees_with_concrete_machine_when_safe(self):
        memory1 = Memory()
        memory1.map_region(0, struct.pack("<Q", 7), name="buf")
        memory2 = Memory()
        memory2.map_region(0, struct.pack("<Q", 7), name="buf")
        source = "LDQ r0, 0(r1)\nADDQ r0, 1, r0\nRET"
        concrete = Machine(parse_program(source), memory1, {1: 0}).run()
        abstract = AbstractMachine(parse_program(source), memory2,
                                   lambda a: True, lambda a: False,
                                   {1: 0}).run()
        assert concrete.value == abstract.value == 8
