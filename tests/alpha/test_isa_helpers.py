"""ISA metadata helpers (used by the SFI rewriter's register audit)."""

import pytest

from repro.alpha.isa import (
    Br,
    Branch,
    Lda,
    Ldah,
    Ldq,
    Lit,
    Operate,
    Reg,
    Ret,
    Stq,
    branch_target,
    read_registers,
    written_register,
)
from repro.errors import AssemblyError


class TestRegisterMetadata:
    def test_written_register(self):
        assert written_register(Operate("ADDQ", Reg(1), Lit(2), Reg(3))) == 3
        assert written_register(Ldq(Reg(4), 0, Reg(1))) == 4
        assert written_register(Lda(Reg(5), 0, Reg(0))) == 5
        assert written_register(Ldah(Reg(6), 0, Reg(0))) == 6
        assert written_register(Stq(Reg(2), 0, Reg(3))) is None
        assert written_register(Branch("BEQ", Reg(1), 0)) is None
        assert written_register(Ret()) is None

    def test_read_registers(self):
        assert read_registers(Operate("ADDQ", Reg(1), Reg(2), Reg(3))) \
            == {1, 2}
        assert read_registers(Operate("ADDQ", Reg(1), Lit(2), Reg(3))) \
            == {1}
        assert read_registers(Stq(Reg(2), 0, Reg(3))) == {2, 3}
        assert read_registers(Ldq(Reg(4), 8, Reg(1))) == {1}
        assert read_registers(Branch("BNE", Reg(7), 1)) == {7}
        assert read_registers(Ret()) == set()
        assert read_registers(Br(1)) == set()

    def test_branch_target(self):
        assert branch_target(5, Branch("BEQ", Reg(0), 3)) == 9
        assert branch_target(5, Br(-2)) == 4


class TestConstructionGuards:
    def test_register_bounds(self):
        with pytest.raises(AssemblyError):
            Reg(11)
        with pytest.raises(AssemblyError):
            Reg(-1)

    def test_literal_bounds(self):
        with pytest.raises(AssemblyError):
            Lit(256)

    def test_displacement_bounds(self):
        with pytest.raises(AssemblyError):
            Ldq(Reg(0), 1 << 15, Reg(1))
        with pytest.raises(AssemblyError):
            Lda(Reg(0), -(1 << 15) - 1, Reg(1))

    def test_branch_offset_bounds(self):
        with pytest.raises(AssemblyError):
            Branch("BEQ", Reg(0), 1 << 20)

    def test_unknown_mnemonics(self):
        with pytest.raises(AssemblyError):
            Operate("FROB", Reg(0), Reg(1), Reg(2))
        with pytest.raises(AssemblyError):
            Branch("BNEVER", Reg(0), 0)
