"""Binary encoding tests: real Alpha words, round-trips, tamper rejection."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.alpha.encoding import (
    RET_WORD,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.alpha.isa import (
    BRANCH_NAMES,
    Br,
    Branch,
    Lda,
    Ldah,
    Ldq,
    Lit,
    NUM_REGS,
    OPERATE_NAMES,
    Operate,
    Reg,
    Ret,
    Stq,
)
from repro.errors import EncodingError

regs = st.integers(min_value=0, max_value=NUM_REGS - 1).map(Reg)
lits = st.integers(min_value=0, max_value=255).map(Lit)
disp16 = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)

instructions = st.one_of(
    st.builds(Operate, st.sampled_from(sorted(OPERATE_NAMES)), regs,
              st.one_of(regs, lits), regs),
    st.builds(Lda, regs, disp16, regs),
    st.builds(Ldah, regs, disp16, regs),
    st.builds(Ldq, regs, disp16, regs),
    st.builds(Stq, regs, disp16, regs),
    st.builds(Branch, st.sampled_from(BRANCH_NAMES), regs,
              st.integers(min_value=-(1 << 20), max_value=(1 << 20) - 1)),
    st.builds(Br, st.integers(min_value=-(1 << 20), max_value=(1 << 20) - 1)),
    st.just(Ret()),
)


class TestKnownEncodings:
    """Spot-check against the Alpha Architecture Reference Manual."""

    def test_ret(self):
        assert encode_instruction(Ret()) == 0x6BFA8001

    def test_ldq_opcode(self):
        word = encode_instruction(Ldq(Reg(0), 8, Reg(1)))
        assert word >> 26 == 0x29
        assert word & 0xFFFF == 8

    def test_stq_opcode(self):
        word = encode_instruction(Stq(Reg(0), -8, Reg(1)))
        assert word >> 26 == 0x2D
        assert word & 0xFFFF == 0xFFF8  # sign-extended -8

    def test_addq_operate_format(self):
        word = encode_instruction(Operate("ADDQ", Reg(1), Lit(8), Reg(2)))
        assert word >> 26 == 0x10          # INTA
        assert (word >> 5) & 0x7F == 0x20  # ADDQ function
        assert (word >> 12) & 1 == 1       # literal flag
        assert (word >> 13) & 0xFF == 8    # the literal

    def test_beq_branch_format(self):
        word = encode_instruction(Branch("BEQ", Reg(2), 1))
        assert word >> 26 == 0x39
        assert word & 0x1FFFFF == 1

    def test_physical_register_mapping(self):
        # logical r9/r10 are Alpha a0/a1 ($16/$17), still caller-save
        word = encode_instruction(Operate("ADDQ", Reg(9), Reg(10), Reg(0)))
        assert (word >> 21) & 0x1F == 16
        assert (word >> 16) & 0x1F == 17


class TestRoundTrip:
    @given(instructions)
    def test_instruction_round_trip(self, instruction):
        word = encode_instruction(instruction)
        assert 0 <= word < (1 << 32)
        assert decode_instruction(word) == instruction

    def test_program_round_trip(self):
        program = (
            Operate("ADDQ", Reg(0), Lit(8), Reg(1)),
            Ldq(Reg(0), 8, Reg(0)),
            Branch("BEQ", Reg(2), 1),
            Stq(Reg(0), 0, Reg(1)),
            Ret(),
        )
        code = encode_program(program)
        assert len(code) == 4 * len(program)
        assert decode_program(code) == program


class TestRejection:
    def test_unknown_opcode(self):
        # opcode 0x00 (CALL_PAL) is outside the policy subset
        with pytest.raises(EncodingError):
            decode_instruction(0x00000001)

    def test_reserved_register_rejected(self):
        # LDQ with ra = $9 (s0, callee-save) is outside the policy subset
        word = (0x29 << 26) | (9 << 21) | (1 << 16)
        with pytest.raises(EncodingError):
            decode_instruction(word)

    def test_unknown_operate_function(self):
        word = (0x10 << 26) | (0x7F << 5)
        with pytest.raises(EncodingError):
            decode_instruction(word)

    def test_nonzero_sbz_bits(self):
        good = encode_instruction(Operate("ADDQ", Reg(0), Reg(1), Reg(2)))
        with pytest.raises(EncodingError):
            decode_instruction(good | (1 << 13))

    def test_ragged_code_section(self):
        with pytest.raises(EncodingError):
            decode_program(b"\x01\x02\x03")

    def test_empty_code_section(self):
        with pytest.raises(EncodingError):
            decode_program(b"")

    def test_every_single_bit_flip_decodes_or_rejects(self):
        """Decoding never crashes: each flip either yields a valid
        instruction or raises EncodingError."""
        program = (Ldq(Reg(0), 8, Reg(1)), Ret())
        code = bytearray(encode_program(program))
        for position in range(len(code) * 8):
            mutated = bytearray(code)
            mutated[position // 8] ^= 1 << (position % 8)
            try:
                decode_program(bytes(mutated))
            except Exception as error:
                from repro.errors import PccError
                assert isinstance(error, PccError)
