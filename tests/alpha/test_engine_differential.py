"""Differential property suite: the threaded-code engine is bit-identical
to the reference interpreter.

The engine (:mod:`repro.alpha.engine`) pre-decodes programs into closure
tables and block superinstructions; the reference
:class:`repro.alpha.machine.Machine` re-decodes every step.  These tests
generate random programs — including unsafe accesses, loops, and invalid
branch targets — and assert the two produce *identical* outcomes:

* the same :class:`MachineResult` (value, instructions, cycles),
* or the same exception type with the same message,
* with the same memory contents afterwards (stores execute in program
  order even inside compiled blocks),
* and, for the abstract machine, blocking at the same pc and address.

Small ``max_steps`` values deliberately land the step limit in the
middle of compiled blocks, exercising the engine's per-instruction
boundary path.
"""

import random
import struct

from hypothesis import given, settings, strategies as st

from repro.alpha.abstract import AbstractMachine, run_abstract
from repro.alpha.engine import ExecutionEngine
from repro.alpha.machine import Machine, Memory
from repro.alpha.parser import parse_program
from repro.errors import MachineError, SafetyViolation
from repro.filters.policy import filter_registers, packet_memory
from repro.perf.cost import ALPHA_175
from tests.generators import random_filter_source, random_machine_program

_BUF_BASE = 0x1000
_RO_BASE = 0x2000
_REGISTERS = {1: _BUF_BASE, 2: _RO_BASE, 3: _BUF_BASE + 64}


def _memory() -> Memory:
    memory = Memory()
    memory.map_region(_BUF_BASE, bytes(128), writable=True, name="buf")
    memory.map_region(_RO_BASE, struct.pack("<QQ", 7, 1 << 63),
                      writable=False, name="ro")
    return memory


def _outcome(run, memory):
    """Everything observable about one execution, as a comparable value."""
    try:
        result = run()
        status = ("result", result.value, result.instructions, result.cycles)
    except SafetyViolation as error:
        status = ("blocked", str(error), error.pc, error.address)
    except MachineError as error:
        status = ("error", str(error))
    return status, bytes(memory.region("buf"))


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=24),
       st.sampled_from([3, 7, 23, 1_000_000]))
def test_engine_matches_reference_machine(seed, length, max_steps):
    program = random_machine_program(random.Random(seed), length)
    reference_memory = _memory()
    reference = _outcome(
        lambda: Machine(program, reference_memory, dict(_REGISTERS),
                        cost_model=ALPHA_175, max_steps=max_steps).run(),
        reference_memory)
    engine = ExecutionEngine(program, cost_model=ALPHA_175,
                             max_steps=max_steps)
    engine_memory = _memory()
    threaded = _outcome(
        lambda: engine.run(engine_memory, dict(_REGISTERS)), engine_memory)
    assert threaded == reference


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=24),
       st.sampled_from([5, 1_000_000]))
def test_abstract_engine_matches_abstract_machine(seed, length, max_steps):
    program = random_machine_program(random.Random(seed), length)

    def can_read(address):
        return (_BUF_BASE <= address < _BUF_BASE + 128
                or _RO_BASE <= address < _RO_BASE + 16)

    def can_write(address):
        return _BUF_BASE <= address < _BUF_BASE + 64

    reference_memory = _memory()
    reference = _outcome(
        lambda: AbstractMachine(program, reference_memory, can_read,
                                can_write, dict(_REGISTERS),
                                max_steps=max_steps).run(),
        reference_memory)
    engine_memory = _memory()
    threaded = _outcome(
        lambda: run_abstract(program, engine_memory, can_read, can_write,
                             dict(_REGISTERS), max_steps=max_steps),
        engine_memory)
    assert threaded == reference


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=1, max_value=6))
def test_engine_matches_machine_on_generated_filters(seed, blocks):
    """The existing certification-suite generator, run under the packet
    policy's memory layout: results must agree field for field."""
    rng = random.Random(seed)
    program = parse_program(random_filter_source(rng, blocks))
    packet = rng.randbytes(64 + 8 * rng.randrange(8))
    registers = filter_registers(len(packet))
    reference = Machine(program, packet_memory(packet), dict(registers),
                        cost_model=ALPHA_175).run()
    threaded = ExecutionEngine(program, cost_model=ALPHA_175).run(
        packet_memory(packet), dict(registers))
    assert threaded == reference
