"""A small end-to-end Figure 8 run wired into tier-1.

The full-size pipeline lives in ``benchmarks/`` (``--packets N`` for
quick mode); this smoke test runs the identical code path — threaded
engines, reusable kernel memories, oracle cross-checking — over a
~2,000-packet trace on every test run, so a regression in the perf
harness cannot hide until someone runs the benchmarks.
"""

from repro.filters.trace import TraceConfig, generate_trace
from repro.perf.harness import APPROACHES, run_figure8

_PACKETS = 2000


def test_figure8_smoke():
    trace = generate_trace(TraceConfig(packets=_PACKETS, seed=11))
    benchmarks = run_figure8(trace)
    assert len(benchmarks) == 4
    for bench in benchmarks:
        results = bench.results
        assert set(results) == set(APPROACHES)
        # Every approach saw every packet and they all agree (each run is
        # oracle-checked internally; agreement here is the cross-check).
        accepted = {result.accepted for result in results.values()}
        assert len(accepted) == 1
        for result in results.values():
            assert result.packets == _PACKETS
            assert result.instructions > 0
            assert result.cycles >= result.instructions
            assert result.wall_seconds > 0
        # The paper's headline ordering survives at smoke scale.
        assert results["pcc"].cycles_per_packet == min(
            result.cycles_per_packet for result in results.values())
