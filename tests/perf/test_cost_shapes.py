"""Cost-model shape tests that pin the qualitative claims the paper makes
in prose — cheaper to keep here (tiny traces) than to rely only on the
benchmark suite."""

import pytest

from repro.filters.programs import FILTERS
from repro.filters.trace import TraceConfig, generate_trace
from repro.perf import run_approach


@pytest.fixture(scope="module")
def micro_trace():
    return generate_trace(TraceConfig(packets=250, seed=11))


class TestOrderings:
    def test_full_ranking_per_filter(self, micro_trace):
        """PCC < SFI < BPF, PCC < m3-view <= m3-ish, jit between hand
        code and the interpreter — Figure 8's qualitative content."""
        for spec in FILTERS:
            costs = {approach: run_approach(spec, approach,
                                            micro_trace).cycles_per_packet
                     for approach in ("pcc", "sfi", "m3", "m3-view",
                                      "bpf", "bpf-jit")}
            assert costs["pcc"] < costs["sfi"]
            assert costs["pcc"] < costs["m3-view"]
            assert costs["sfi"] < costs["bpf"]
            assert costs["m3-view"] < costs["bpf"]
            assert costs["pcc"] < costs["bpf-jit"] < costs["bpf"]

    def test_filter_complexity_ordering_under_pcc(self, micro_trace):
        """More work per packet for the more selective filters."""
        costs = [run_approach(spec, "pcc", micro_trace).cycles_per_packet
                 for spec in FILTERS]
        assert costs[0] < costs[1] < costs[2]  # filter1 < filter2 < filter3

    def test_cycles_deterministic(self, micro_trace):
        first = run_approach(FILTERS[0], "pcc", micro_trace)
        second = run_approach(FILTERS[0], "pcc", micro_trace)
        assert first.cycles == second.cycles
        assert first.accepted == second.accepted
