"""Performance harness tests: the cost model, pipelines, and the shape of
the paper's comparisons on a small trace (the full-size runs live in
benchmarks/)."""

import pytest

from repro.alpha.parser import parse_program
from repro.filters.programs import FILTERS
from repro.filters.trace import TraceConfig, generate_trace
from repro.perf import (
    ALPHA_175,
    AlphaCostModel,
    amortization_series,
    crossover,
    run_approach,
    run_figure8,
)


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(TraceConfig(packets=400, seed=7))


class TestCostModel:
    def test_instruction_classes(self):
        program = parse_program("""
            ADDQ r0, 1, r0
            LDQ  r4, 8(r1)
            STQ  r4, 0(r3)
            LDA  r5, 2(r0)
            MULQ r0, r0, r0
            BEQ  r0, out
        out: RET
        """)
        model = ALPHA_175
        costs = [model.cycles(instruction) for instruction in program]
        assert costs == [1, 3, 1, 1, 23, 2, 2]

    def test_microseconds_at_clock(self):
        assert ALPHA_175.microseconds(175) == pytest.approx(1.0)

    def test_custom_model(self):
        slow_loads = AlphaCostModel(load=10)
        program = parse_program("LDQ r4, 8(r1)\nRET")
        assert slow_loads.cycles(program[0]) == 10


class TestApproaches:
    def test_all_approaches_agree_and_rank(self, tiny_trace):
        """Correctness plus the paper's headline ordering on every filter:
        PCC is fastest; BPF pays interpretation; SFI sits just above PCC."""
        benchmarks = run_figure8(tiny_trace)
        assert len(benchmarks) == 4
        for bench in benchmarks:
            results = bench.results
            accepted = {r.accepted for r in results.values()}
            assert len(accepted) == 1, f"{bench.filter_name} disagrees"
            pcc = results["pcc"].cycles_per_packet
            sfi = results["sfi"].cycles_per_packet
            bpf = results["bpf"].cycles_per_packet
            view = results["m3-view"].cycles_per_packet
            assert pcc < sfi < bpf
            assert pcc < view < bpf

    def test_bpf_roughly_10x(self, tiny_trace):
        """'BPF packet filters are about 10 times slower than our PCC
        filters' — we accept a 4x..16x band across filters."""
        for bench in run_figure8(tiny_trace, approaches=("bpf", "pcc")):
            ratio = (bench.results["bpf"].cycles_per_packet
                     / bench.results["pcc"].cycles_per_packet)
            assert 4 < ratio < 16, f"{bench.filter_name}: {ratio:.1f}x"

    def test_view_improves_on_plain(self, tiny_trace):
        """'a 20% improvement in the Modula-3 packet filter performance
        when using VIEW' — averaged across filters."""
        improvements = []
        for spec in FILTERS:
            plain = run_approach(spec, "m3", tiny_trace)
            view = run_approach(spec, "m3-view", tiny_trace)
            improvements.append(1 - view.cycles_per_packet
                                / plain.cycles_per_packet)
        average = sum(improvements) / len(improvements)
        assert average > 0.1

    def test_unknown_approach(self, tiny_trace):
        with pytest.raises(ValueError):
            run_approach(FILTERS[0], "magic", tiny_trace)


class TestAmortization:
    def test_series_shape(self):
        series = amortization_series(10.0, 0.5, 100, points=5)
        assert [point.packets for point in series] == [0, 25, 50, 75, 100]
        assert series[0].cumulative == 10.0
        assert series[-1].cumulative == 60.0

    def test_crossover(self):
        # startup 12 vs 0; per-packet 1 vs 4 -> crossover at 4 packets
        assert crossover(12, 1, 0, 4) == pytest.approx(4.0)
        assert crossover(12, 4, 0, 1) is None

    def test_effective_startup_amortizes_toward_warm_cost(self):
        from repro.perf import effective_startup

        assert effective_startup(100.0, 1.0, 1) == 100.0
        assert effective_startup(100.0, 1.0, 100) == pytest.approx(1.99)
        # monotone: more reloads -> cheaper effective startup
        costs = [effective_startup(100.0, 1.0, n) for n in (1, 10, 1000)]
        assert costs == sorted(costs, reverse=True)
        with pytest.raises(ValueError):
            effective_startup(100.0, 1.0, 0)

    def test_reload_series_shape(self):
        from repro.perf import reload_series

        series = reload_series(10.0, 0.5, 100, points=5)
        assert [point.packets for point in series] == [0, 25, 50, 75, 100]
        assert series[0].cumulative == 0.0  # nothing loaded yet
        assert series[1].cumulative == pytest.approx(10.0 + 24 * 0.5)
        assert series[-1].cumulative == pytest.approx(10.0 + 99 * 0.5)

    def test_crossover_ordering_matches_paper(self, tiny_trace):
        """Figure 9: crossover vs BPF earliest, then M3, then SFI."""
        spec = FILTERS[3]  # filter4, as in the paper
        results = {approach: run_approach(spec, approach, tiny_trace)
                   for approach in ("pcc", "bpf", "m3-view", "sfi")}
        pcc = results["pcc"].cycles_per_packet
        startup = 1_000_000.0  # any positive validation cost (cycles)
        crossings = {
            name: crossover(startup, pcc, 0.0,
                            results[name].cycles_per_packet)
            for name in ("bpf", "m3-view", "sfi")
        }
        assert crossings["bpf"] < crossings["m3-view"] < crossings["sfi"]
