"""STQ / ``wr`` obligations end to end, under the write-capable policy.

The read-only filter family never exercised the store half of Figure 4:
``STQ`` must add a ``wr(address)`` obligation *and* thread the
``rm := upd(rm, a, v)`` substitution, unaligned or out-of-policy writes
must be unprovable, backward branches in store-bearing programs must
demand invariants, and — the Safety Theorem again — every certified
store-bearing program must run the checked abstract machine without a
single ``wr`` check firing, with bit-identical post-state.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.alpha.abstract import AbstractMachine
from repro.alpha.machine import Machine
from repro.alpha.parser import parse_program
from repro.errors import CertificationError, VcGenError
from repro.filters.kv import (
    kv_invariant,
    kv_memory,
    kv_packet_policy,
    kv_registers,
)
from repro.logic.formulas import And, Truth, conjuncts, wr
from repro.logic.terms import Var, add64, sel, upd
from repro.pcc import certify, validate
from repro.vcgen.vcgen import compute_vc, safety_obligations
from tests.generators import random_kv_source

_POLICY = kv_packet_policy()


def _certifies(source: str, invariants=None) -> bool:
    try:
        certify(source, _POLICY, invariants=invariants or {})
        return True
    except CertificationError:
        return False


class TestStoreVcStructure:
    def test_stq_obligation_carries_wr_and_upd(self):
        program = parse_program("STQ r5, 8(r3)\nRET")
        address = add64(Var("r3"), 8)
        post = Truth()
        vc = compute_vc(program, post)
        assert vc == And(wr(address), post)

    def test_stq_updates_memory_seen_downstream(self):
        from repro.logic.formulas import eq
        program = parse_program("STQ r5, 8(r3)\nRET")
        address = add64(Var("r3"), 8)
        post = eq(sel(Var("rm"), address), 7)
        vc = compute_vc(program, post)
        # The postcondition's rm is rebound to the updated memory.
        expected = upd(Var("rm"), address, Var("r5"))
        assert vc == And(wr(address), eq(sel(expected, address), 7))

    def test_safety_obligation_per_cut_point(self):
        source = """
        SUBQ   r4, r4, r4
        BR     check
loop:   ADDQ   r3, r4, r5
        STQ    r0, 0(r5)
        ADDQ   r4, 8, r4
check:  CMPULT r4, 128, r5
        BNE    r5, loop
        RET
"""
        program = parse_program(source)
        obligations = safety_obligations(program, _POLICY.precondition,
                                         Truth(), {2: kv_invariant()})
        assert len(obligations) == 2  # entry + one cut point


class TestRejectedWrites:
    def test_aligned_in_policy_stores_certify(self):
        assert _certifies("STQ r0, 0(r3)\nSTQ r0, 152(r3)\nRET")
        assert _certifies("STQ r0, 0(r1)\nSTQ r0, 56(r1)\nRET")

    def test_unaligned_store_rejected(self):
        assert not _certifies("STQ r0, 4(r3)\nRET")
        assert not _certifies("STQ r0, 12(r1)\nRET")

    def test_store_past_state_area_rejected(self):
        assert not _certifies("STQ r0, 160(r3)\nRET")
        assert not _certifies("STQ r0, 1024(r3)\nRET")

    def test_store_past_guaranteed_packet_minimum_rejected(self):
        # Only r2 >= 64 is guaranteed; offset 64 may be out of frame.
        assert not _certifies("STQ r0, 64(r1)\nRET")

    def test_store_through_unconstrained_register_rejected(self):
        assert not _certifies("STQ r0, 0(r5)\nRET")

    def test_negative_offset_store_rejected(self):
        assert not _certifies("STQ r0, -8(r3)\nRET")

    def test_read_only_filter_policy_refuses_kv_scratch_store(self):
        """The same store that certifies under the KV policy is
        unprovable under the read-only checksum policy."""
        from repro.filters.checksum import checksum_policy
        source = "STQ r0, 0(r1)\nRET"
        assert _certifies(source)
        with pytest.raises(CertificationError):
            certify(source, checksum_policy())


class TestInvariantCoverage:
    _LOOP = """
        SUBQ   r4, r4, r4
        BR     check
loop:   ADDQ   r3, r4, r5
        STQ    r0, 0(r5)
        ADDQ   r4, 8, r4
check:  CMPULT r4, 128, r5
        BNE    r5, loop
        RET
"""

    def test_store_loop_with_invariant_certifies(self):
        assert _certifies(self._LOOP, invariants={2: kv_invariant()})

    def test_backward_branch_without_invariant_rejected(self):
        program = parse_program(self._LOOP)
        with pytest.raises(VcGenError):
            safety_obligations(program, _POLICY.precondition, Truth(), {})
        assert not _certifies(self._LOOP)

    def test_wrong_pc_invariant_rejected(self):
        assert not _certifies(self._LOOP, invariants={3: kv_invariant()})

    def test_too_weak_invariant_rejected(self):
        """An invariant missing the bound cannot prove the store."""
        from repro.logic.formulas import conj, eq
        from repro.logic.terms import and64
        from repro.vcgen.policy import word_identity
        weak = conj([word_identity(Var("r3")), word_identity(Var("r4")),
                     eq(and64(Var("r4"), 7), 0)])
        assert not _certifies(self._LOOP, invariants={2: weak})


class TestStoreBearingDifferential:
    """Certified store-bearing programs never trip the checked machine,
    and checked vs unchecked post-states are bit-identical."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=1, max_value=6))
    def test_certified_stores_never_block(self, seed, blocks):
        rng = random.Random(seed)
        source = random_kv_source(rng, blocks)
        certified = certify(source, _POLICY)  # offsets are safe by
        report = validate(certified.binary.to_bytes(), _POLICY)

        frame = bytes(rng.randrange(256) for __ in range(64))
        registers = kv_registers(len(frame))
        can_read, can_write = _POLICY.checkers(registers, lambda a: 0)
        checked_memory = kv_memory(frame)
        checked = AbstractMachine(report.program, checked_memory,
                                  can_read, can_write, dict(registers))
        checked_result = checked.run()   # must not raise SafetyViolation

        plain_memory = kv_memory(frame)
        plain = Machine(report.program, plain_memory, dict(registers))
        plain_result = plain.run()

        assert plain_result.value == checked_result.value
        for region in ("packet", "state"):
            assert bytes(plain_memory.region(region)) \
                == bytes(checked_memory.region(region))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_unsafe_store_injection_rejected(self, seed):
        rng = random.Random(seed)
        source = random_kv_source(rng, 2)
        bad = rng.choice((4, 12, 164, 168, 256, 1024))
        unsafe = f"STQ r4, {bad}(r3)\n" + source
        with pytest.raises(CertificationError):
            certify(unsafe, _POLICY)


def test_obligation_conjuncts_name_both_regions():
    """The KV precondition really contains both wr regions."""
    parts = conjuncts(_POLICY.precondition)
    assert len(parts) == 10
    # quantified conjuncts: rd/wr packet, rd/wr state, no-alias
    foralls = [p for p in parts if type(p).__name__ == "Forall"]
    assert len(foralls) == 5


def test_upd_sel_roundtrip_terms():
    """Sanity: the upd/sel term helpers used by the STQ rule exist and
    build the paper's memory terms."""
    rm, a, v = Var("rm"), Var("a"), Var("v")
    term = sel(upd(rm, a, v), a)
    assert term.op == "sel"
