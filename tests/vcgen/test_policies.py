"""Safety-policy objects: formula structure and semantic interpretation.

The semantic checkers (used by the abstract machine) must agree with the
logical preconditions — these tests probe both sides of that boundary.
"""

import pytest

from repro.filters.policy import (
    PACKET_BASE,
    SCRATCH_BASE,
    SCRATCH_SIZE,
    packet_filter_policy,
    packet_memory,
)
from repro.logic.formulas import Forall, conjuncts, formula_vars, holds
from repro.vcgen.policy import SafetyPolicy, resource_access_policy


class TestResourceAccessPolicy:
    def test_checkers_reflect_tag(self):
        policy = resource_access_policy()
        registers = {0: 0x1000}

        can_read, can_write = policy.checkers(
            registers, lambda address: 7)  # non-zero tag
        assert can_read(0x1000) and can_read(0x1008)
        assert not can_read(0x1010)
        assert can_write(0x1008)
        assert not can_write(0x1000)

        can_read, can_write = policy.checkers(
            registers, lambda address: 0)  # zero tag: data read-only
        assert not can_write(0x1008)

    def test_precondition_is_closed_over_registers_only(self):
        policy = resource_access_policy()
        assert formula_vars(policy.precondition) <= {"r0", "rm"}


class TestPacketFilterPolicy:
    def test_precondition_structure(self):
        policy = packet_filter_policy()
        parts = conjuncts(policy.precondition)
        # 5 register-value conjuncts + 4 quantified memory facts
        assert len(parts) == 9
        assert sum(isinstance(part, Forall) for part in parts) == 4

    def test_checkers(self):
        policy = packet_filter_policy()
        registers = {1: PACKET_BASE, 2: 100, 3: SCRATCH_BASE}
        can_read, can_write = policy.checkers(registers, lambda a: 0)
        assert can_read(PACKET_BASE)
        assert can_read(PACKET_BASE + 96)
        assert not can_read(PACKET_BASE + 100)
        assert can_read(SCRATCH_BASE)
        assert can_write(SCRATCH_BASE + 8)
        assert not can_write(SCRATCH_BASE + SCRATCH_SIZE)
        assert not can_write(PACKET_BASE)

    def test_precondition_holds_semantically(self):
        """The precondition evaluates true in the states the kernel
        actually constructs — the hinge between syntax and semantics."""
        policy = packet_filter_policy()
        length = 128
        registers = {1: PACKET_BASE, 2: length, 3: SCRATCH_BASE}
        can_read, can_write = policy.checkers(registers, lambda a: 0)
        env = {f"r{i}": registers.get(i, 0) for i in range(11)}
        from repro.logic.terms import make_memory
        env["rm"] = make_memory({})
        samples = (0, 8, 16, 63, 64, length - 8, length, 2048)
        assert holds(policy.precondition, env, can_read, can_write,
                     forall_samples=samples)

    def test_memory_padding(self):
        memory = packet_memory(b"\x01" * 61)  # padded to 64
        assert len(memory.region("packet")) == 64
        assert memory.load_quad(PACKET_BASE + 56) == 0x0000000101010101

    def test_policy_without_semantics_raises(self):
        from repro.logic.formulas import Truth
        policy = SafetyPolicy(name="bare", precondition=Truth())
        with pytest.raises(ValueError):
            policy.checkers({}, lambda a: 0)


class TestSfiPolicy:
    def test_segment_checkers(self):
        from repro.baselines.sfi import sfi_policy
        from repro.baselines.sfi.policy import (
            SFI_PACKET_BASE,
            SFI_SCRATCH_BASE,
        )
        policy = sfi_policy()
        registers = {1: SFI_PACKET_BASE, 2: 64, 3: SFI_SCRATCH_BASE}
        can_read, can_write = policy.checkers(registers, lambda a: 0)
        # the WHOLE 2048-byte segment is readable, past the packet length
        assert can_read(SFI_PACKET_BASE + 2040)
        assert not can_read(SFI_PACKET_BASE + 2048)
        assert can_write(SFI_SCRATCH_BASE + 8)
        assert not can_write(SFI_PACKET_BASE)


class TestChecksumPolicy:
    def test_read_only_buffer(self):
        from repro.filters.checksum import BUFFER_BASE, checksum_policy
        policy = checksum_policy()
        registers = {1: BUFFER_BASE, 2: 64}
        can_read, can_write = policy.checkers(registers, lambda a: 0)
        assert can_read(BUFFER_BASE + 56)
        assert not can_read(BUFFER_BASE + 64)
        assert not can_write(BUFFER_BASE)
