"""VC generator tests: the Figure 4 rules, the Figure 5 worked example,
branch hypotheses, loop invariants, and determinism."""

import pytest

from repro.alpha.parser import parse_program
from repro.errors import VcGenError
from repro.logic.formulas import (
    And,
    Forall,
    Implies,
    Truth,
    conjuncts,
    eq,
    formula_vars,
    ge,
    lt,
    ne,
    rd,
    wr,
)
from repro.logic.pretty import pp_formula
from repro.logic.terms import App, Int, Var, add64, sel, upd
from repro.vcgen.policy import resource_access_policy
from repro.vcgen.vcgen import compute_vc, safety_predicate


def _strip_foralls(formula):
    while isinstance(formula, Forall):
        formula = formula.body
    return formula


class TestFigure4Rules:
    def test_operate_substitutes(self):
        program = parse_program("ADDQ r1, 2, r0\nRET")
        vc = compute_vc(program, eq(Var("r0"), 5))
        assert vc == eq(add64(Var("r1"), 2), 5)

    def test_ldq_adds_rd_check_and_substitutes_sel(self):
        program = parse_program("LDQ r0, 8(r1)\nRET")
        vc = compute_vc(program, eq(Var("r0"), 0))
        address = add64(Var("r1"), 8)
        assert vc == And(rd(address),
                         eq(sel(Var("rm"), address), 0))

    def test_stq_adds_wr_check_and_updates_memory(self):
        program = parse_program("STQ r2, 0(r1)\nRET")
        post = eq(sel(Var("rm"), Var("r1")), 7)
        vc = compute_vc(program, post)
        new_memory = upd(Var("rm"), Var("r1"), Var("r2"))
        assert vc == And(wr(Var("r1")),
                         eq(sel(new_memory, Var("r1")), 7))

    def test_negative_displacement_becomes_word_constant(self):
        program = parse_program("LDQ r0, -8(r1)\nRET")
        vc = compute_vc(program, Truth())
        assert vc == And(rd(add64(Var("r1"), (1 << 64) - 8)), Truth())

    def test_beq_splits_on_zero(self):
        program = parse_program("BEQ r1, skip\nLDQ r0, 0(r2)\nskip: RET")
        vc = compute_vc(program, Truth())
        assert isinstance(vc, And)
        taken, fall = vc.left, vc.right
        assert taken == Implies(eq(Var("r1"), 0), Truth())
        assert fall.left == ne(Var("r1"), 0)

    def test_signed_branch_hypotheses(self):
        program = parse_program("BGE r1, skip\nLDQ r0, 0(r2)\nskip: RET")
        vc = compute_vc(program, Truth())
        bound = Int(1 << 63)
        assert vc.left.left == lt(Var("r1"), bound)
        assert vc.right.left == ge(Var("r1"), bound)

    def test_ret_yields_postcondition(self):
        program = parse_program("RET")
        post = eq(Var("r0"), 1)
        assert compute_vc(program, post) == post

    def test_lda_semantics(self):
        program = parse_program("LDA r0, -2048(r1)\nRET")
        vc = compute_vc(program, eq(Var("r0"), 0))
        assert vc == eq(add64(Var("r1"), (1 << 64) - 2048), 0)


class TestSafetyPredicate:
    def test_closed_over_all_state(self, resource_policy):
        program = parse_program("RET")
        predicate = safety_predicate(program, resource_policy.precondition,
                                     Truth())
        assert formula_vars(predicate) == set()

    def test_figure5_worked_example(self, resource_policy):
        """The paper's SP_r: rd(r0+8), rd of the tag address, and the
        conditional wr — after trivial simplifications."""
        program = parse_program("""
            ADDQ r0, 8, r1
            LDQ  r0, 8(r0)
            LDQ  r2, -8(r1)
            ADDQ r0, 1, r0
            BEQ  r2, L1
            STQ  r0, 0(r1)
        L1: RET
        """)
        predicate = safety_predicate(
            program, resource_policy.precondition, Truth())
        body = _strip_foralls(predicate)
        assert isinstance(body, Implies)
        obligations = conjuncts(body.right)
        data_address = add64(Var("r0"), 8)
        tag_address = add64(Var("r0"), 0)  # (r0+8)-8 folds to r0+0
        assert rd(data_address) in obligations
        assert rd(tag_address) in obligations
        conditional = obligations[-1]
        assert conditional == Implies(ne(sel(Var("rm"), tag_address), 0),
                                      wr(data_address))

    def test_deterministic(self, resource_policy):
        program = parse_program("LDQ r0, 8(r0)\nRET")
        first = safety_predicate(program, resource_policy.precondition,
                                 Truth())
        second = safety_predicate(program, resource_policy.precondition,
                                  Truth())
        assert first == second
        assert pp_formula(first) == pp_formula(second)


class TestLoops:
    def test_backward_branch_without_invariant_rejected(self):
        program = parse_program("""
        top: ADDQ r0, 1, r0
             BNE r1, top
             RET
        """)
        with pytest.raises(VcGenError):
            safety_predicate(program, Truth(), Truth())

    def test_invariant_splits_into_obligations(self):
        program = parse_program("""
        top: ADDQ r0, 1, r0
             BNE r1, top
             RET
        """)
        invariant = eq(Var("r1"), Var("r1"))
        predicate = safety_predicate(program, Truth(), Truth(),
                                     invariants={0: invariant},
                                     simplify=False)
        # entry obligation AND one obligation per cut point
        assert isinstance(predicate, And)

    def test_invariant_outside_program_rejected(self):
        program = parse_program("RET")
        with pytest.raises(VcGenError):
            safety_predicate(program, Truth(), Truth(),
                             invariants={5: Truth()})

    def test_diamond_control_flow_is_polynomial(self):
        """Memoization: 20 consecutive diamonds must not take exponential
        time to generate (structure sharing keeps it linear)."""
        lines = []
        for __ in range(20):
            label = f"m{len(lines)}"
            lines.append(f"BEQ r1, {label}")
            lines.append("ADDQ r0, 1, r0")
            lines.append(f"{label}: ADDQ r0, 0, r0")
        lines.append("RET")
        program = parse_program("\n".join(lines))
        predicate = safety_predicate(program, Truth(), Truth(),
                                     simplify=False)
        assert predicate is not None
