"""Every example script must run clean — examples are the documentation
users trust first."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "Tampered binary rejected" in out
        assert "data 41 -> 42" in out

    def test_ip_checksum(self):
        out = _run("ip_checksum.py")
        assert "certified" in out.lower()
        assert "1500" in out

    def test_custom_policy(self):
        out = _run("custom_policy.py")
        assert "rejected at certification" in out

    def test_policy_negotiation(self):
        out = _run("policy_negotiation.py")
        assert "Kernel accepted" in out
        assert "unprovable" in out

    def test_proof_tree(self):
        out = _run("proof_tree.py")
        assert "norm_mod_eq" in out
        assert "Figure 6" in out

    def test_tamper_detection(self):
        out = _run("tamper_detection.py")
        assert "detected or provably harmless" in out

    def test_packet_filter_demo(self):
        out = _run("packet_filter_demo.py", "400")
        assert "identical verdicts" in out
