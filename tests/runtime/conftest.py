"""Fixtures for the dispatch-runtime tests.

The rogue blob is the canonical unproven extension: a well-formed PCC
container whose code section stores through an *unchecked* pointer (no
proof at all), so admission must either reject it or downgrade it to the
checked Figure 3 tier — where its first packet faults with a precise
``wr`` violation.
"""

from __future__ import annotations

import pytest

from repro.alpha.encoding import encode_program
from repro.alpha.parser import parse_program
from repro.pcc.container import PccBinary

#: Stores r2 (the frame length) through r1 (the frame base).  The frame
#: region is read-only under the packet-filter policy, so the abstract
#: machine faults at pc=0 with a wr violation on the frame base address.
ROGUE_SOURCE = """
    STQ r2, 0(r1)
    ADDQ r1, 1, r0
    RET
"""


@pytest.fixture(scope="session")
def rogue_blob() -> bytes:
    """A decodable PCC container with no proof: unprovable, downgradable."""
    code = encode_program(parse_program(ROGUE_SOURCE))
    return PccBinary(code, b"", b"", b"").to_bytes()


@pytest.fixture(scope="session")
def undecodable_blob() -> bytes:
    """A PCC container whose code section is garbage: not even
    downgradable (the checked tier still needs a decodable program)."""
    return PccBinary(b"\xff\xee\xdd\xcc", b"", b"", b"").to_bytes()


@pytest.fixture(scope="session")
def filter_blobs(certified_filters) -> dict[str, bytes]:
    """The four paper filters as wire-format PCC binaries."""
    return {name: certified.binary.to_bytes()
            for name, certified in certified_filters.items()
            if name.startswith("filter")}
