"""Dispatch semantics: sharding may never change what a filter decides.

The reference is the pure-Python oracles: every verdict out of the
runtime — any shard count, serial or threaded — must match them
bit-for-bit, because the runtime runs the *same* certified code over the
*same* frames; shards only change which modeled core does the work.
"""

import json

from repro.filters.oracle import ORACLES
from repro.filters.packets import oversize_frame, truncate_frame
from repro.runtime import PacketRuntime, RuntimeConfig

PACKETS = 250


def _attach_all(runtime, filter_blobs):
    for name, blob in sorted(filter_blobs.items()):
        runtime.attach(name, blob)


def test_verdicts_match_oracles(filter_policy, filter_blobs, small_trace):
    runtime = PacketRuntime(filter_policy)
    _attach_all(runtime, filter_blobs)
    frames = small_trace[:PACKETS]
    report = runtime.dispatch(frames, collect=True)
    assert report.packets == PACKETS
    assert len(report.records) == PACKETS
    for frame, verdicts in zip(frames, report.records):
        for name, verdict in verdicts.items():
            assert verdict == ORACLES[name](frame), name


def test_sharding_preserves_verdict_stream(filter_policy, filter_blobs,
                                           small_trace):
    frames = small_trace[:PACKETS]
    records = {}
    for shards in (1, 4):
        runtime = PacketRuntime(filter_policy, RuntimeConfig(shards=shards))
        _attach_all(runtime, filter_blobs)
        records[shards] = runtime.dispatch(frames, collect=True).records
    assert records[1] == records[4]


def test_serve_matches_dispatch_counters(filter_policy, filter_blobs,
                                         small_trace):
    """The threaded path and the serial reference agree on every
    counter: accepts, faults, per-shard packet counts and cycle clocks."""
    frames = small_trace[:PACKETS]
    snapshots = []
    for method in ("dispatch", "serve"):
        runtime = PacketRuntime(filter_policy, RuntimeConfig(shards=4))
        _attach_all(runtime, filter_blobs)
        getattr(runtime, method)(frames)
        snapshots.append(runtime.snapshot())
    serial, threaded = snapshots
    assert serial.faults == threaded.faults == 0
    assert serial.shard_cycles == threaded.shard_cycles
    for left, right in zip(serial.extensions, threaded.extensions):
        assert left.name == right.name
        assert left.accepted == right.accepted
        assert left.cycles == right.cycles
        assert left.p99_cycles == right.p99_cycles


def test_contract_enforcement_drops_out_of_contract_frames(
        filter_policy, filter_blobs, small_trace):
    frames = list(small_trace[:60])
    frames[3] = truncate_frame(frames[3], 16)
    frames[17] = oversize_frame(frames[17])
    runtime = PacketRuntime(filter_policy)
    _attach_all(runtime, filter_blobs)
    report = runtime.dispatch(frames)
    assert report.contract_drops == 2
    assert report.packets == 58
    snapshot = runtime.snapshot()
    assert snapshot.contract_drops == 2
    assert snapshot.faults == 0


def test_snapshot_json_round_trip(filter_policy, filter_blobs, small_trace):
    runtime = PacketRuntime(filter_policy, RuntimeConfig(shards=2))
    _attach_all(runtime, filter_blobs)
    runtime.serve(small_trace[:100])
    payload = json.loads(runtime.stats_json())
    assert payload["shards"] == 2
    assert payload["packets_in"] == 100
    assert payload["dispatches"] == 400
    assert len(payload["extensions"]) == 4
    by_name = {entry["name"]: entry for entry in payload["extensions"]}
    assert set(by_name) == set(filter_blobs)
    for entry in by_name.values():
        assert entry["state"] == "active"
        assert entry["packets_in"] == 100
        assert entry["accepted"] + entry["rejected"] == 100
        assert entry["p50_cycles"] <= entry["p99_cycles"]


def test_modeled_throughput_uses_busiest_shard(filter_policy, filter_blobs,
                                               small_trace):
    runtime = PacketRuntime(filter_policy, RuntimeConfig(shards=4))
    _attach_all(runtime, filter_blobs)
    report = runtime.serve(small_trace[:200])
    assert len(report.shard_cycles) == 4
    expected = max(report.shard_cycles) / (report.clock_mhz * 1e6)
    assert report.modeled_seconds == expected
    assert report.modeled_packets_per_second == 200 / expected
