"""Telemetry primitives: reservoirs, percentiles, budgeted execution."""

import pytest

from repro.errors import BudgetExceeded
from repro.filters.policy import filter_registers, reusable_packet_memory
from repro.pcc.api import CodeConsumer
from repro.runtime import LatencyReservoir, percentile


@pytest.fixture(scope="module")
def filter1_engine(filter_policy, certified_filters):
    """The runtime's per-extension handle: install through the consumer
    facade, then take the reusable engine off the loaded extension."""
    consumer = CodeConsumer(filter_policy)
    loaded = consumer.install(certified_filters["filter1"].binary)
    return loaded.engine()


def test_reservoir_is_deterministic():
    stream = [(i * 37) % 1009 for i in range(5000)]
    first = LatencyReservoir(capacity=64, seed=7)
    second = LatencyReservoir(capacity=64, seed=7)
    for value in stream:
        first.add(value)
        second.add(value)
    assert first.samples == second.samples
    assert first.count == second.count == 5000
    assert len(first.samples) == 64


def test_reservoir_keeps_everything_under_capacity():
    reservoir = LatencyReservoir(capacity=128, seed=0)
    for value in range(100):
        reservoir.add(value)
    assert sorted(reservoir.samples) == list(range(100))


def test_different_seeds_sample_differently():
    streams = []
    for seed in (1, 2):
        reservoir = LatencyReservoir(capacity=32, seed=seed)
        for value in range(2000):
            reservoir.add(value)
        streams.append(reservoir.samples)
    assert streams[0] != streams[1]


def test_percentile_interpolates():
    values = list(range(1, 101))
    assert percentile(values, 0.0) == 1
    assert percentile(values, 1.0) == 100
    assert percentile(values, 0.5) == pytest.approx(50.5)
    assert percentile([5], 0.99) == 5
    assert percentile([], 0.5) == 0.0


def test_budgeted_run_is_bit_identical_under_budget(filter1_engine,
                                                    small_trace):
    """``run_budgeted`` with a generous budget must agree with ``run``
    exactly — same verdicts, same cycle counts — because the budget
    check only observes the cycle counter the engine keeps anyway."""
    engine = filter1_engine
    memory, rebind = reusable_packet_memory()
    for frame in small_trace[:80]:
        rebind(frame)
        plain = engine.run(memory, filter_registers(len(frame)))
        rebind(frame)
        budgeted = engine.run_budgeted(memory, filter_registers(len(frame)),
                                       cycle_budget=1_000_000)
        assert budgeted.value == plain.value
        assert budgeted.cycles == plain.cycles
        assert budgeted.instructions == plain.instructions


def test_budget_overrun_reports_cycles_and_budget(filter1_engine,
                                                  small_trace):
    engine = filter1_engine
    memory, rebind = reusable_packet_memory()
    frame = small_trace[0]
    rebind(frame)
    with pytest.raises(BudgetExceeded) as excinfo:
        engine.run_budgeted(memory, filter_registers(len(frame)),
                            cycle_budget=3)
    error = excinfo.value
    assert error.budget == 3
    assert error.cycles > 3
