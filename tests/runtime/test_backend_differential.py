"""Backend/batch differential suite: the execution vehicle may never
change semantics.

Three layers of the same claim, each checked property-based:

* **backends** — serial :meth:`PacketRuntime.dispatch`, the thread
  backend, and the forked process backend must produce bit-identical
  snapshots (verdicts, counters, cycle clocks, histograms/percentiles,
  fault ledgers, quarantine transitions) on the same frames, including
  traces that inject faults (budget overruns, checked-tier violations);
* **batch vs per-frame** — :meth:`ExecutionEngine.run_batch` must equal
  the per-frame run/run_budgeted dispatch protocol on *arbitrary*
  machine programs (loops, wild loads, stores, step limits), not just
  the well-behaved filters;
* **compiled vs generic** — :func:`repro.alpha.batch.compile_batch`
  drivers must equal the generic ``run_batch`` on random certifiable
  filter shapes and on the paper filters, across frame degeneracies
  (empty, unaligned, sub-contract lengths) and budgets.

Multi-shard runs with faults in flight are only *end-state* comparable:
the instant of the quarantine flip is scheduling-dependent on every
backend (threads read ``active`` once per chunk too), so those tests pin
the converged state, while strict bit-identity tests pin ``shards=1``.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alpha.batch import FramePlan, compile_batch
from repro.alpha.engine import ExecutionEngine
from repro.alpha.parser import parse_program
from repro.errors import BudgetExceeded, MachineError
from repro.filters.policy import (
    PACKET_BASE,
    SCRATCH_BASE,
    SCRATCH_SIZE,
    filter_registers,
    reusable_packet_memory,
)
from repro.filters.trace import TraceConfig, generate_trace
from repro.perf.cost import ALPHA_175
from repro.runtime import PacketRuntime, RuntimeConfig

from tests.generators import random_filter_source, random_machine_program

PLAN = FramePlan(PACKET_BASE, SCRATCH_BASE, SCRATCH_SIZE)

#: Frames that poke every edge of the driver's load guards: empty,
#: single byte, one-short-of-aligned, exactly one word, unaligned tail,
#: and a full contract-sized frame.
DEGENERATE_FRAMES = [
    b"", b"\x00", b"\x01" * 7, b"\xff" * 8, b"\x08" * 9,
    bytes(range(64)),
]

frame_strategy = st.binary(min_size=0, max_size=96)


def _attach_all(runtime, blobs):
    for name, blob in sorted(blobs.items()):
        runtime.attach(name, blob)


def _fingerprint(snapshot):
    """Everything a backend could corrupt; excludes wall-clock fields."""
    return (snapshot.packets_in, snapshot.faults, snapshot.contract_drops,
            snapshot.shard_cycles, snapshot.extensions)


def _serve_on(backend, policy, blobs, frames, *, shards=1,
              cycle_budget=None, fault_threshold=3,
              downgrade_unproven=False):
    runtime = PacketRuntime(policy, RuntimeConfig(
        shards=shards, backend=backend, cycle_budget=cycle_budget,
        fault_threshold=fault_threshold,
        downgrade_unproven=downgrade_unproven))
    _attach_all(runtime, blobs)
    runtime.serve(frames)
    return runtime.snapshot()


def _dispatch_on(policy, blobs, frames, *, shards=1, cycle_budget=None,
                 fault_threshold=3, downgrade_unproven=False):
    runtime = PacketRuntime(policy, RuntimeConfig(
        shards=shards, cycle_budget=cycle_budget,
        fault_threshold=fault_threshold,
        downgrade_unproven=downgrade_unproven))
    _attach_all(runtime, blobs)
    runtime.dispatch(frames)
    return runtime.snapshot()


# -- backends ------------------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), packets=st.integers(5, 80),
       shards=st.integers(1, 4),
       extra=st.lists(frame_strategy, max_size=6))
def test_backends_bit_identical_on_random_traces(
        filter_policy, filter_blobs, seed, packets, shards, extra):
    """Fault-free traffic: full snapshot equality at any shard count,
    serial vs thread vs process, including out-of-contract drops."""
    frames = generate_trace(TraceConfig(packets=packets, seed=seed)) + extra
    serial = _dispatch_on(filter_policy, filter_blobs, frames,
                          shards=shards)
    threaded = _serve_on("thread", filter_policy, filter_blobs, frames,
                         shards=shards)
    forked = _serve_on("process", filter_policy, filter_blobs, frames,
                       shards=shards)
    assert _fingerprint(serial) == _fingerprint(threaded)
    assert _fingerprint(serial) == _fingerprint(forked)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       budget=st.sampled_from([5, 12, 20, 41]),
       threshold=st.sampled_from([1, 2, 3, None]))
def test_backends_bit_identical_under_budget_faults(
        filter_policy, filter_blobs, seed, budget, threshold):
    """Injected budget overruns (and the quarantines they trigger) land
    identically on every backend at one shard — counters, consecutive
    faults, last_fault strings, states, histograms."""
    frames = generate_trace(TraceConfig(packets=40, seed=seed))
    serial = _dispatch_on(filter_policy, filter_blobs, frames,
                          cycle_budget=budget, fault_threshold=threshold)
    threaded = _serve_on("thread", filter_policy, filter_blobs, frames,
                         cycle_budget=budget, fault_threshold=threshold)
    forked = _serve_on("process", filter_policy, filter_blobs, frames,
                       cycle_budget=budget, fault_threshold=threshold)
    assert _fingerprint(serial) == _fingerprint(threaded)
    assert _fingerprint(serial) == _fingerprint(forked)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), threshold=st.integers(1, 4))
def test_backends_bit_identical_on_checked_tier_faults(
        filter_policy, filter_blobs, rogue_blob, seed, threshold):
    """A downgraded rogue faulting on its first packets: the checked
    tier's wr-violation ledger and the quarantine flip are identical
    serial vs thread vs process at one shard."""
    blobs = {"filter1": filter_blobs["filter1"], "rogue": rogue_blob}
    frames = generate_trace(TraceConfig(packets=25, seed=seed))
    serial = _dispatch_on(filter_policy, blobs, frames,
                          fault_threshold=threshold,
                          downgrade_unproven=True)
    threaded = _serve_on("thread", filter_policy, blobs, frames,
                         fault_threshold=threshold,
                         downgrade_unproven=True)
    forked = _serve_on("process", filter_policy, blobs, frames,
                       fault_threshold=threshold,
                       downgrade_unproven=True)
    assert _fingerprint(serial) == _fingerprint(threaded)
    assert _fingerprint(serial) == _fingerprint(forked)
    rogue = next(ext for ext in serial.extensions if ext.name == "rogue")
    assert rogue.state == "quarantined"
    assert rogue.quarantines == 1
    assert "wr" in rogue.last_fault


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), shards=st.integers(2, 4))
def test_multishard_quarantine_converges_identically(
        filter_policy, filter_blobs, rogue_blob, seed, shards):
    """Multi-shard with a faulting extension: the *moment* of the flip is
    scheduling-dependent, but the converged end state — quarantined
    rogue, exactly one transition, untouched healthy-filter verdicts —
    must agree across backends."""
    blobs = {"filter2": filter_blobs["filter2"], "rogue": rogue_blob}
    frames = generate_trace(TraceConfig(packets=60, seed=seed))
    states = {}
    for backend in ("thread", "process"):
        snapshot = _serve_on(backend, filter_policy, blobs, frames,
                             shards=shards, fault_threshold=2,
                             downgrade_unproven=True)
        rogue = next(ext for ext in snapshot.extensions
                     if ext.name == "rogue")
        healthy = next(ext for ext in snapshot.extensions
                       if ext.name == "filter2")
        assert rogue.state == "quarantined"
        assert rogue.quarantines == 1
        # Isolation is exact: the healthy filter saw every frame.
        assert healthy.packets_in == len(frames)
        assert healthy.faults == 0
        states[backend] = (healthy.accepted, healthy.cycles,
                           snapshot.contract_drops)
    assert states["thread"] == states["process"]


# -- batch vs per-frame --------------------------------------------------


def _normalize(outcome):
    """Comparable form of a (next_index, accepted, hist_pairs, error)
    batch outcome: drop zero-count bins, flatten the error."""
    done, accepted, pairs, error = outcome
    if error is None:
        flat = None
    elif isinstance(error, BudgetExceeded):
        flat = (type(error).__name__, str(error), error.budget,
                error.cycles, error.steps)
    else:
        flat = (type(error).__name__, str(error))
    return done, accepted, {c: n for c, n in pairs if n}, flat


def _per_frame_reference(engine, frames, start, cycle_budget):
    """The serial dispatch protocol run/run_budgeted would follow."""
    memory, rebind = reusable_packet_memory()
    accepted = 0
    hist: dict[int, int] = {}
    index = start
    while index < len(frames):
        frame = frames[index]
        rebind(frame)
        registers = filter_registers(len(frame))
        try:
            if cycle_budget is None:
                result = engine.run(memory, registers)
            else:
                result = engine.run_budgeted(memory, registers,
                                             cycle_budget)
        except MachineError as error:
            return index, accepted, list(hist.items()), error
        if result.value:
            accepted += 1
        hist[result.cycles] = hist.get(result.cycles, 0) + 1
        index += 1
    return index, accepted, list(hist.items()), None


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), length=st.integers(3, 12),
       start=st.integers(0, 2),
       budget=st.sampled_from([None, 9, 30, 10_000]))
def test_run_batch_matches_per_frame_on_wild_programs(
        seed, length, start, budget):
    """run_batch over raw random programs — loops, stores, unaligned and
    unmapped loads, step limits — equals the per-frame protocol on the
    full outcome space, at every resume offset and budget."""
    rng = random.Random(seed)
    program = random_machine_program(rng, length)
    engine = ExecutionEngine(program, ALPHA_175, max_steps=400)
    frames = DEGENERATE_FRAMES + [bytes([rng.randrange(256)] * n)
                                  for n in (64, 65, 80)]
    memory, rebind = reusable_packet_memory()
    got = engine.run_batch(memory, rebind, frames, filter_registers,
                           start, budget)
    want = _per_frame_reference(engine, frames, start, budget)
    assert _normalize(got) == _normalize(want)


# -- compiled vs generic batch -------------------------------------------


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), blocks=st.integers(1, 6),
       start=st.integers(0, 2),
       budget=st.sampled_from([None, 7, 15, 33, 100_000]))
def test_compiled_runner_matches_generic_batch(seed, blocks, start,
                                               budget):
    """compile_batch drivers vs the generic engine loop on random
    well-formed filter shapes, over degenerate and contract frames."""
    rng = random.Random(seed)
    program = parse_program(random_filter_source(rng, blocks))
    runner = compile_batch(program, ALPHA_175, PLAN)
    assert runner is not None, "store-free filter must batch-compile"
    engine = ExecutionEngine(program, ALPHA_175)
    frames = DEGENERATE_FRAMES + [bytes(rng.randrange(256)
                                        for _ in range(n))
                                  for n in (1, 15, 64, 64, 200, 1518)]
    memory, rebind = reusable_packet_memory()
    got = runner.run(frames, start, budget)
    want = engine.run_batch(memory, rebind, frames, filter_registers,
                            start, budget)
    assert _normalize(got) == _normalize(want)


@pytest.mark.parametrize("budget", [None, 5, 12, 20, 37, 42, 100_000])
def test_paper_filters_compiled_vs_generic(certified_filters, budget):
    """The four paper filters (the binaries the runtime actually serves)
    round-trip through the compiled drivers bit-identically at every
    budget, including mid-frame budget faults and resume-after-fault."""
    rng = random.Random(0xA1F4A)
    frames = (generate_trace(TraceConfig(packets=300, seed=7))
              + DEGENERATE_FRAMES
              + [bytes(rng.randrange(256) for _ in range(n))
                 for n in (1, 15, 1518)])
    for name in ("filter1", "filter2", "filter3", "filter4"):
        program = certified_filters[name].program
        runner = compile_batch(program, ALPHA_175, PLAN)
        assert runner is not None, name
        engine = ExecutionEngine(program, ALPHA_175)
        memory, rebind = reusable_packet_memory()
        # Walk segment-to-segment exactly as Shard._dispatch_batch does,
        # so resume-after-fault offsets are covered too.
        start = 0
        while start < len(frames):
            got = runner.run(frames, start, budget)
            want = engine.run_batch(memory, rebind, frames,
                                    filter_registers, start, budget)
            assert _normalize(got) == _normalize(want), (name, start)
            done, _, _, error = got
            if error is None:
                break
            start = done + 1
