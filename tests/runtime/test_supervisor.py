"""The shard supervisor: bounded ingress, crash-restart, load shedding.

The contract: a healthy supervised run is semantically identical to
:meth:`PacketRuntime.serve`; a crashed worker is restarted without
losing or reordering a single packet; a shard beyond saving is failed
loudly, with every shed frame counted.
"""

import threading
import time

import pytest

from repro.runtime import (
    IngressQueue,
    InjectedCrash,
    PacketRuntime,
    RuntimeConfig,
)
from repro.runtime.supervisor import CLOSE


def _runtime(filter_policy, **overrides):
    defaults = dict(shards=2, cycle_budget="auto",
                    restart_backoff=0.001, restart_backoff_cap=0.01,
                    health_interval=0.001)
    defaults.update(overrides)
    return PacketRuntime(filter_policy, RuntimeConfig(**defaults))


class TestIngressQueue:
    def test_fifo_and_close_drain(self):
        queue = IngressQueue(capacity=8)
        assert queue.put("a", timeout=0.0)
        assert queue.put("b", timeout=0.0)
        queue.close()
        assert queue.get() == "a"
        assert queue.get() == "b"
        assert queue.get() is CLOSE

    def test_put_sheds_fast_when_full(self):
        queue = IngressQueue(capacity=1)
        assert queue.put("a", timeout=0.0)
        started = time.perf_counter()
        assert not queue.put("b", timeout=0.05)
        assert time.perf_counter() - started < 1.0

    def test_put_waits_for_space(self):
        queue = IngressQueue(capacity=1)
        queue.put("a", timeout=0.0)

        def drain():
            time.sleep(0.02)
            queue.get()

        thread = threading.Thread(target=drain)
        thread.start()
        assert queue.put("b", timeout=1.0)  # blocked, then admitted
        thread.join()

    def test_push_front_preserves_order_and_ignores_capacity(self):
        queue = IngressQueue(capacity=1)
        queue.put("second", timeout=0.0)
        queue.push_front("first")  # the crashed worker's in-hand packet
        assert len(queue) == 2  # over capacity, deliberately
        assert queue.get() == "first"
        assert queue.get() == "second"

    def test_reject_drops_pending_and_fails_future_puts(self):
        queue = IngressQueue(capacity=4)
        queue.put("a", timeout=0.0)
        queue.put("b", timeout=0.0)
        assert queue.reject() == ["a", "b"]
        assert len(queue) == 0
        assert not queue.put("c", timeout=0.0)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            IngressQueue(capacity=0)


class TestSupervisedServe:
    def test_healthy_run_matches_plain_serve(self, filter_policy,
                                             filter_blobs, small_trace):
        plain = _runtime(filter_policy)
        for name, blob in filter_blobs.items():
            plain.attach(name, blob)
        plain_report = plain.serve(small_trace)

        supervised = _runtime(filter_policy)
        for name, blob in filter_blobs.items():
            supervised.attach(name, blob)
        report = supervised.serve_supervised(small_trace)

        assert report.healthy
        assert report.dispatched == report.packets == plain_report.packets
        assert report.shed == 0 and report.crashes == 0
        # supervision is host-side machinery: zero modeled cycles, and
        # per-shard clocks identical because assignment order matches
        assert report.shard_cycles == plain_report.shard_cycles
        plain_accepts = {ext.name: ext.accepted
                         for ext in plain.snapshot().extensions}
        sup_accepts = {ext.name: ext.accepted
                       for ext in supervised.snapshot().extensions}
        assert sup_accepts == plain_accepts

    def test_crash_recovers_without_losing_packets(self, filter_policy,
                                                   filter_blobs,
                                                   small_trace):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        crashed = []

        def hook(shard_index, sequence):
            if sequence in (7, 120, 121) and sequence not in crashed:
                crashed.append(sequence)
                raise InjectedCrash(f"boom at {sequence}")

        report = runtime.serve_supervised(small_trace, fault_hook=hook)
        assert report.crashes == 3
        assert report.restarts == 3
        assert report.dispatched == report.packets
        assert report.shed == 0
        assert not report.failed_shards
        assert len(report.mttr_seconds) == 3
        assert all(mttr > 0 for mttr in report.mttr_seconds)
        # the crashed-on packets were requeued and dispatched: totals
        # match an undisturbed run exactly
        ext = runtime.snapshot().extensions[0]
        assert ext.packets_in == report.packets

    def test_crash_recovery_is_bit_identical(self, filter_policy,
                                             filter_blobs, small_trace):
        """Per-shard verdict order survives a mid-stream crash (the
        in-hand packet goes back to the *front* of the queue)."""
        plain = _runtime(filter_policy)
        for name, blob in filter_blobs.items():
            plain.attach(name, blob)
        plain.serve(small_trace)
        expected = {ext.name: (ext.accepted, ext.packets_in)
                    for ext in plain.snapshot().extensions}

        # ~16 crashes over the trace: budget restarts for the storm
        runtime = _runtime(filter_policy, max_restarts=32)
        for name, blob in filter_blobs.items():
            runtime.attach(name, blob)
        fired = set()

        def hook(shard_index, sequence):
            if sequence % 97 == 3 and sequence not in fired:
                fired.add(sequence)
                raise InjectedCrash("crash storm")

        report = runtime.serve_supervised(small_trace, fault_hook=hook)
        assert report.crashes == len(fired) > 1
        assert report.dispatched == report.packets
        got = {ext.name: (ext.accepted, ext.packets_in)
               for ext in runtime.snapshot().extensions}
        assert got == expected

    def test_hopeless_shard_fails_loudly(self, filter_policy,
                                         filter_blobs, small_trace):
        runtime = _runtime(filter_policy, max_restarts=2)
        runtime.attach("filter1", filter_blobs["filter1"])

        def hook(shard_index, sequence):
            if shard_index == 1:
                raise InjectedCrash("shard 1 always dies")

        report = runtime.serve_supervised(small_trace, fault_hook=hook)
        assert report.failed_shards == (1,)
        assert report.restarts == 2  # the budget, exactly
        assert report.shed > 0  # the failed shard's residue, counted
        assert report.dispatched + report.shed == report.packets
        assert not report.healthy
        # shard 0 was untouched
        worker0 = next(worker for worker in report.workers
                       if worker["shard"] == 0)
        assert worker0["state"] == "done"
        assert worker0["dispatched"] > 0

    def test_saturation_sheds_with_accounting(self, filter_policy,
                                              filter_blobs, small_trace):
        """A wedged worker with a tiny queue forces the feeder to shed;
        every shed is counted, never silent."""
        runtime = _runtime(filter_policy, max_restarts=0,
                           ingress_capacity=4, shed_timeout=0.0)
        runtime.attach("filter1", filter_blobs["filter1"])

        def hook(shard_index, sequence):
            if shard_index == 0:
                raise InjectedCrash("shard 0 dies instantly")

        report = runtime.serve_supervised(small_trace[:200],
                                          fault_hook=hook)
        assert report.failed_shards == (0,)
        assert report.shed > 0
        assert report.dispatched + report.shed == report.packets

    def test_report_rides_in_snapshot(self, filter_policy, filter_blobs,
                                      small_trace):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        assert runtime.snapshot().supervisor is None
        runtime.serve_supervised(small_trace[:100])
        snapshot = runtime.snapshot()
        assert snapshot.supervisor is not None
        assert snapshot.supervisor["healthy"]
        assert snapshot.supervisor["dispatched"] == 100
        snapshot.to_json()  # stays JSON-serializable

    def test_config_validation(self):
        with pytest.raises(ValueError, match="ingress"):
            RuntimeConfig(ingress_capacity=0)
        with pytest.raises(ValueError, match="restarts"):
            RuntimeConfig(max_restarts=-1)
        with pytest.raises(ValueError, match="backoff"):
            RuntimeConfig(restart_backoff=-0.1)
        with pytest.raises(ValueError, match="health"):
            RuntimeConfig(health_interval=0.0)
        with pytest.raises(ValueError, match="shed"):
            RuntimeConfig(shed_timeout=-1.0)
