"""The write-capable family under the dispatch runtime.

Admission (auto WCET budgets, clean batch-compiler fallback), and the
acceptance property of the whole PR: a runtime dispatching the
adversarial trace leaves per-shard persistent state *bit-identical* to
the pure-Python oracle, alongside every verdict and packet rewrite.
"""

import pytest

from repro.alpha.batch import FramePlan, batch_capability, compile_batch
from repro.analysis import context_for_policy, estimate_wcet
from repro.filters.kv import (
    KV_INSERT,
    KV_PROGRAMS,
    STATE_SIZE,
    kv_packet_policy,
    kv_registers,
    oracle_run,
    reusable_kv_memory,
)
from repro.filters.policy import PACKET_BASE, SCRATCH_BASE, SCRATCH_SIZE
from repro.filters.trace import KvTraceConfig, generate_adversarial_trace, \
    generate_kv_trace
from repro.pcc import certify
from repro.perf.cost import ALPHA_175
from repro.runtime import PacketRuntime, RuntimeConfig

PACKETS = 600


@pytest.fixture(scope="module")
def kv_policy():
    return kv_packet_policy()


@pytest.fixture(scope="module")
def kv_blobs(kv_policy):
    return {spec.name: certify(spec.source, kv_policy,
                               invariants=spec.invariants()
                               ).binary.to_bytes()
            for spec in KV_PROGRAMS}


def _kv_runtime(kv_policy, **overrides):
    defaults = dict(shards=1, cycle_budget="auto",
                    memory_factory=reusable_kv_memory,
                    registers_fn=kv_registers)
    defaults.update(overrides)
    return PacketRuntime(kv_policy, RuntimeConfig(**defaults))


def _contract_frames(trace, config=None):
    config = config or RuntimeConfig()
    return [frame for frame in trace
            if config.min_frame_bytes <= len(frame)
            <= config.max_frame_bytes]


# -- admission ----------------------------------------------------------


def test_admission_with_auto_wcet_budget(kv_policy, kv_blobs):
    runtime = _kv_runtime(kv_policy)
    context = context_for_policy(kv_policy)
    for spec in KV_PROGRAMS:
        extension = runtime.attach(spec.name, kv_blobs[spec.name])
        assert not extension.checked          # proof-carrying fast tier
        report = estimate_wcet(extension.program, context)
        assert report.bound is not None       # every loop is bounded
        assert extension.wcet_bound == report.bound
        assert extension.cycle_budget == report.budget(0.0)


def test_store_bearing_admission_never_raises_on_batch_path(kv_policy,
                                                            kv_blobs):
    """Satellite: the batch compiler's capability probe routes the
    store-bearing family to the generic engine — admission completes,
    no mid-admission surprise."""
    runtime = _kv_runtime(kv_policy)
    for name, blob in kv_blobs.items():
        extension = runtime.attach(name, blob)
        assert extension.batch_runner is None
        assert extension.engine is not None


def test_batch_capability_names_the_reason():
    for spec in KV_PROGRAMS:
        reason = batch_capability(spec.program)
        assert reason is not None
        assert "store" in reason or "loop" in reason

    from repro.filters.programs import FILTERS
    for filter_spec in FILTERS:
        assert batch_capability(filter_spec.program) is None, \
            filter_spec.name


def test_compile_batch_agrees_with_capability_probe():
    """compile_batch returns None exactly when the probe gives a
    reason (checked over both families)."""
    from repro.filters.programs import FILTERS
    plan = FramePlan(PACKET_BASE, SCRATCH_BASE, SCRATCH_SIZE)
    programs = [spec.program for spec in KV_PROGRAMS]
    programs += [filter_spec.program for filter_spec in FILTERS]
    for program in programs:
        runner = compile_batch(program, ALPHA_175, plan)
        assert (runner is None) == (batch_capability(program) is not None)


def test_unproven_store_blob_rejected_without_downgrade(kv_policy,
                                                        rogue_blob):
    from repro.errors import ValidationError
    runtime = _kv_runtime(kv_policy)
    with pytest.raises(ValidationError):
        runtime.attach("rogue", rogue_blob)


# -- dispatch: verdicts, rewrites, and persistent state -----------------


def _dispatch_differential(kv_policy, kv_blobs, name, trace):
    """One extension, one shard: dispatch must equal the serial oracle
    in verdict stream, fault count, and final state bytes."""
    frames = _contract_frames(trace)
    runtime = _kv_runtime(kv_policy)
    runtime.attach(name, kv_blobs[name])
    report = runtime.dispatch(trace, collect=True)
    assert report.packets == len(frames)
    assert report.contract_drops == len(trace) - len(frames)

    verdicts, __, state = oracle_run(name, frames)
    got = [record[name] for record in report.records]
    assert None not in got                    # zero faults
    assert got == verdicts
    want_state = b"".join(word.to_bytes(8, "little") for word in state)
    shard_state = bytes(runtime.shards[0].memory.region("state"))
    assert shard_state == want_state
    assert len(shard_state) == STATE_SIZE


@pytest.mark.parametrize("spec", KV_PROGRAMS, ids=lambda s: s.name)
def test_zipf_trace_state_differential(kv_policy, kv_blobs, spec):
    trace = generate_kv_trace(KvTraceConfig(packets=PACKETS, hosts=24))
    _dispatch_differential(kv_policy, kv_blobs, spec.name, trace)


@pytest.mark.parametrize("spec", KV_PROGRAMS, ids=lambda s: s.name)
def test_adversarial_trace_state_differential(kv_policy, kv_blobs, spec):
    """The acceptance criterion: runtime post-state bit-identical to
    the oracle across the adversarial trace."""
    trace = generate_adversarial_trace(PACKETS)
    _dispatch_differential(kv_policy, kv_blobs, spec.name, trace)


def test_state_persists_across_dispatch_calls(kv_policy, kv_blobs):
    """The table survives between dispatch batches — per-shard state is
    persistent, unlike the per-invocation BPF scratch."""
    trace = generate_kv_trace(KvTraceConfig(packets=200, hosts=8))
    half = len(trace) // 2
    split_runtime = _kv_runtime(kv_policy)
    split_runtime.attach(KV_INSERT.name, kv_blobs[KV_INSERT.name])
    split_runtime.dispatch(trace[:half])
    split_runtime.dispatch(trace[half:])

    whole_runtime = _kv_runtime(kv_policy)
    whole_runtime.attach(KV_INSERT.name, kv_blobs[KV_INSERT.name])
    whole_runtime.dispatch(trace)

    assert bytes(split_runtime.shards[0].memory.region("state")) \
        == bytes(whole_runtime.shards[0].memory.region("state"))
    assert any(bytes(whole_runtime.shards[0].memory.region("state")))


def test_auto_budget_never_faults_on_kv_workload(kv_policy, kv_blobs):
    """The WCET budget is a sound bound: budgeted dispatch completes the
    whole trace with zero faults and the same telemetry as unbudgeted."""
    trace = _contract_frames(generate_adversarial_trace(300))
    snapshots = []
    for budget in ("auto", None):
        runtime = _kv_runtime(kv_policy, cycle_budget=budget)
        for name, blob in sorted(kv_blobs.items()):
            runtime.attach(name, blob)
        runtime.dispatch(trace)
        snapshots.append(runtime.snapshot())
    budgeted, unbudgeted = snapshots
    assert budgeted.faults == unbudgeted.faults == 0
    for left, right in zip(budgeted.extensions, unbudgeted.extensions):
        assert left.name == right.name
        assert left.accepted == right.accepted
