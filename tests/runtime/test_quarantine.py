"""Quarantine: a faulting extension is isolated, its neighbours are not.

The acceptance scenario for the runtime layer: attach a good filter, a
rogue downgraded extension, and another good filter; the rogue faults on
every packet, crosses the consecutive-fault threshold, and is
quarantined — while the good filters' verdict streams stay bit-identical
to a runtime that never hosted the rogue at all.
"""

import pytest

from repro.errors import ValidationError
from repro.runtime import ExtensionState, PacketRuntime, RuntimeConfig

THRESHOLD = 3


def _downgrading_config(**overrides):
    defaults = dict(downgrade_unproven=True, fault_threshold=THRESHOLD)
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


def test_faulting_extension_is_isolated(filter_policy, filter_blobs,
                                        rogue_blob, small_trace):
    frames = small_trace[:200]

    infected = PacketRuntime(filter_policy, _downgrading_config())
    infected.attach("filter1", filter_blobs["filter1"])
    infected.attach("rogue", rogue_blob)
    infected.attach("filter3", filter_blobs["filter3"])
    records = infected.dispatch(frames, collect=True).records

    clean = PacketRuntime(filter_policy, RuntimeConfig())
    clean.attach("filter1", filter_blobs["filter1"])
    clean.attach("filter3", filter_blobs["filter3"])
    reference = clean.dispatch(frames, collect=True).records

    # The rogue faulted on exactly its first THRESHOLD packets, was
    # quarantined on the last of them, and saw nothing afterwards.
    rogue = infected.extension("rogue")
    assert rogue.state is ExtensionState.QUARANTINED
    assert not rogue.active
    snapshot = rogue.snapshot()
    assert snapshot.packets_in == THRESHOLD
    assert snapshot.faults == THRESHOLD
    assert snapshot.quarantines == 1
    for verdicts in records[:THRESHOLD]:
        assert verdicts["rogue"] is None
    for verdicts in records[THRESHOLD:]:
        assert "rogue" not in verdicts

    # The quarantine reason names the faulting pc and address precisely.
    assert "wr violation" in rogue.last_fault
    assert "pc=0" in rogue.last_fault
    assert "address=0x" in rogue.last_fault

    # The good filters never noticed: bit-identical verdict streams.
    stripped = [{name: verdict for name, verdict in verdicts.items()
                 if name != "rogue"} for verdicts in records]
    assert stripped == reference
    for name in ("filter1", "filter3"):
        extension = infected.extension(name)
        assert extension.state is ExtensionState.ACTIVE
        assert extension.snapshot().packets_in == 200
        assert extension.snapshot().faults == 0


def test_quarantine_is_runtime_wide_across_shards(filter_policy, rogue_blob,
                                                  small_trace):
    """Consecutive-fault accounting is global: with 4 shards each seeing
    the rogue once, the threshold still trips after THRESHOLD total
    dispatches, not THRESHOLD per shard."""
    runtime = PacketRuntime(filter_policy,
                            _downgrading_config(shards=4))
    runtime.attach("rogue", rogue_blob)
    runtime.dispatch(small_trace[:40])
    snapshot = runtime.extension("rogue").snapshot()
    assert snapshot.packets_in == THRESHOLD
    assert snapshot.faults == THRESHOLD


def test_budget_overrun_quarantines_certified_code(filter_policy,
                                                   filter_blobs,
                                                   small_trace):
    """Safety proofs say nothing about termination time, so even a
    certified filter can trip a (here: absurdly small) cycle budget."""
    runtime = PacketRuntime(filter_policy, RuntimeConfig(
        cycle_budget=5, fault_threshold=2))
    runtime.attach("filter1", filter_blobs["filter1"])
    runtime.dispatch(small_trace[:20])
    extension = runtime.extension("filter1")
    assert extension.state is ExtensionState.QUARANTINED
    assert "cycle budget exceeded" in extension.last_fault
    assert extension.snapshot().packets_in == 2


def test_reinstate_requires_quarantine(filter_policy, filter_blobs):
    runtime = PacketRuntime(filter_policy)
    runtime.attach("filter1", filter_blobs["filter1"])
    with pytest.raises(ValueError, match="not quarantined"):
        runtime.reinstate("filter1")


def test_reinstated_extension_serves_again(filter_policy, filter_blobs,
                                           rogue_blob, small_trace):
    runtime = PacketRuntime(filter_policy, _downgrading_config())
    runtime.attach("rogue", rogue_blob)
    runtime.attach("filter1", filter_blobs["filter1"])
    runtime.dispatch(small_trace[:10])
    assert runtime.extension("rogue").state is ExtensionState.QUARANTINED

    extension = runtime.reinstate("rogue")
    assert extension.state is ExtensionState.REINSTATED
    assert extension.active
    assert extension.consecutive_faults == 0
    # Its bytes still carry no proof, so it stays on the checked tier —
    # and promptly faults its way back into quarantine.
    assert extension.checked
    runtime.dispatch(small_trace[10:20])
    assert extension.state is ExtensionState.QUARANTINED
    assert extension.quarantines == 2


def test_reinstatement_promotes_newly_proven_bytes(filter_policy,
                                                   filter_blobs, rogue_blob,
                                                   small_trace):
    """If a quarantined extension's bytes validate at reinstatement, it
    is promoted to the unchecked fast path.  We model the producer
    shipping a proven replacement by swapping the stored blob before the
    operator reinstates (white-box: the promotion decision only looks at
    what the loader says about ``extension.blob``)."""
    runtime = PacketRuntime(filter_policy, _downgrading_config())
    runtime.attach("rogue", rogue_blob)
    runtime.dispatch(small_trace[:10])
    extension = runtime.extension("rogue")
    assert extension.state is ExtensionState.QUARANTINED
    assert extension.checked

    extension.blob = filter_blobs["filter2"]
    runtime.reinstate("rogue")
    assert extension.state is ExtensionState.REINSTATED
    assert not extension.checked
    assert extension.engine is not None
    assert extension.report is not None

    faults_before = extension.snapshot().faults
    report = runtime.dispatch(small_trace[:50], collect=True)
    after = extension.snapshot()
    assert after.faults == faults_before  # no new faults on the fast path
    assert after.packets_in == faults_before + 50
    assert all(verdicts["rogue"] is not None for verdicts in report.records)


def test_proven_bytes_failing_revalidation_refuse_reinstatement(
        filter_policy, filter_blobs, small_trace):
    """A proven extension whose stored bytes no longer validate (bit rot,
    tampering) must not come back at all."""
    runtime = PacketRuntime(filter_policy, RuntimeConfig(
        cycle_budget=5, fault_threshold=1))
    runtime.attach("filter1", filter_blobs["filter1"])
    runtime.dispatch(small_trace[:5])
    extension = runtime.extension("filter1")
    assert extension.state is ExtensionState.QUARANTINED

    blob = bytearray(extension.blob)
    blob[-1] ^= 0xFF
    extension.blob = bytes(blob)
    with pytest.raises(ValidationError):
        runtime.reinstate("filter1")
    assert extension.state is ExtensionState.QUARANTINED
    assert not extension.active


def test_reinstatement_reresolves_the_cycle_budget(filter_policy,
                                                   filter_blobs,
                                                   small_trace):
    """Regression: ``reinstate()`` must re-run budget resolution rather
    than keep whatever stale budget drove the extension into quarantine
    (an operator fat-fingering a live budget, or a promotion changing
    the WCET).  The reinstated extension gets a fresh ``auto`` budget
    and serves cleanly."""
    runtime = PacketRuntime(filter_policy, RuntimeConfig(
        cycle_budget="auto", fault_threshold=1))
    runtime.attach("filter1", filter_blobs["filter1"])
    extension = runtime.extension("filter1")
    healthy_budget = extension.cycle_budget
    assert healthy_budget > 1

    extension.cycle_budget = 1  # the operator breaks the live budget
    runtime.dispatch(small_trace[:5])
    assert extension.state is ExtensionState.QUARANTINED

    runtime.reinstate("filter1")
    assert extension.cycle_budget == healthy_budget
    faults_before = extension.snapshot().faults
    runtime.dispatch(small_trace[5:50])
    assert extension.snapshot().faults == faults_before
    assert extension.state is ExtensionState.REINSTATED
