"""Versioned hot-swap: shadow canaries, auto-promotion, auto-rollback.

The invariants under test are the control plane's contract: the live
version stays authoritative for every packet while a candidate shadows,
promotion is atomic and bumps the version, and rollback restores
bit-identical behaviour because the shadow never perturbed anything in
the first place.
"""

import pytest

from repro.errors import PatchError, UnknownExtensionError, ValidationError
from repro.pcc import certify, certify_incremental
from repro.runtime import (
    CanaryConfig,
    PacketRuntime,
    RuntimeConfig,
    VersionState,
)

#: filter1 with a harmless extra instruction: different bytes (and one
#: extra cycle), identical verdicts — the benign upgrade.
BENIGN_VARIANT = """
    LDQ    r4, 8(r1)
    EXTWL  r4, 4, r4
    CMPEQ  r4, 8, r0
    ADDQ   r3, 0, r3
    RET
"""

#: filter1 with the verdict inverted — diverges on the first packet.
DIVERGENT_VARIANT = """
    LDQ    r4, 8(r1)
    EXTWL  r4, 4, r4
    CMPEQ  r4, 8, r0
    CMPEQ  r0, 0, r0
    RET
"""


@pytest.fixture(scope="module")
def benign_blob(filter_policy):
    return certify(BENIGN_VARIANT, filter_policy).binary.to_bytes()


@pytest.fixture(scope="module")
def divergent_blob(filter_policy):
    return certify(DIVERGENT_VARIANT, filter_policy).binary.to_bytes()


def _runtime(filter_policy, **overrides):
    defaults = dict(shards=2, cycle_budget="auto")
    defaults.update(overrides)
    return PacketRuntime(filter_policy, RuntimeConfig(**defaults))


def _records(report):
    return report.records


class TestUpgradeAdmission:
    def test_upgrade_goes_through_the_loader(self, filter_policy,
                                             filter_blobs, rogue_blob):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        with pytest.raises(ValidationError):
            runtime.upgrade("filter1", rogue_blob)
        assert runtime.extension("filter1").canary is None

    def test_byte_identical_upgrade_rejected(self, filter_policy,
                                             filter_blobs):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        with pytest.raises(ValueError, match="byte-identical"):
            runtime.upgrade("filter1", filter_blobs["filter1"])

    def test_unknown_extension_rejected(self, filter_policy, benign_blob):
        runtime = _runtime(filter_policy)
        with pytest.raises(UnknownExtensionError):
            runtime.upgrade("ghost", benign_blob)

    def test_double_upgrade_rejected(self, filter_policy, filter_blobs,
                                     benign_blob, divergent_blob):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        runtime.upgrade("filter1", benign_blob)
        with pytest.raises(ValueError, match="already in flight"):
            runtime.upgrade("filter1", divergent_blob)

    def test_quarantined_extension_cannot_upgrade(self, filter_policy,
                                                  filter_blobs, benign_blob,
                                                  small_trace):
        runtime = _runtime(filter_policy, cycle_budget=2,
                           fault_threshold=1)
        runtime.attach("filter1", filter_blobs["filter1"])
        runtime.dispatch(small_trace[:5])
        with pytest.raises(ValueError, match="quarantined"):
            runtime.upgrade("filter1", benign_blob)


class TestPromotion:
    def test_clean_canary_promotes(self, filter_policy, filter_blobs,
                                   benign_blob, small_trace):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        live = runtime.extension("filter1")
        old_budget = live.cycle_budget
        old_digest = live.digest

        shadow = runtime.upgrade(
            "filter1", benign_blob,
            CanaryConfig(sample_fraction=1.0, promote_after=50))
        runtime.dispatch(small_trace[:200])

        assert shadow.state is VersionState.PROMOTED
        assert live.version == 2
        assert live.digest != old_digest
        assert live.canary is None
        # the benign variant costs one extra cycle: promotion must carry
        # the candidate's freshly resolved WCET budget, not the old one
        assert live.cycle_budget == old_budget + 1
        record = runtime.upgrade_log[-1]
        assert record.state == "promoted"
        assert record.clean == 50
        assert record.from_version == 1 and record.to_version == 2

    def test_verdicts_bit_identical_across_promotion(
            self, filter_policy, filter_blobs, benign_blob, small_trace):
        baseline = _runtime(filter_policy)
        baseline.attach("filter1", filter_blobs["filter1"])
        expected = _records(baseline.dispatch(small_trace, collect=True))

        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        runtime.upgrade("filter1", benign_blob,
                        CanaryConfig(sample_fraction=1.0,
                                     promote_after=100))
        got = _records(runtime.dispatch(small_trace, collect=True))
        assert got == expected
        assert runtime.extension("filter1").version == 2

    def test_operator_promote(self, filter_policy, filter_blobs,
                              benign_blob):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        runtime.upgrade("filter1", benign_blob)
        record = runtime.promote("filter1")
        assert record.state == "promoted"
        assert record.reason == "operator promote"
        assert runtime.extension("filter1").version == 2

    def test_promote_without_canary_raises(self, filter_policy,
                                           filter_blobs):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        with pytest.raises(ValueError, match="no upgrade in flight"):
            runtime.promote("filter1")


class TestRollback:
    def test_divergence_rolls_back_immediately(self, filter_policy,
                                               filter_blobs, divergent_blob,
                                               small_trace):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        live = runtime.extension("filter1")
        old_digest = live.digest

        shadow = runtime.upgrade(
            "filter1", divergent_blob,
            CanaryConfig(sample_fraction=1.0, promote_after=10 ** 6))
        runtime.dispatch(small_trace[:50])

        assert shadow.state is VersionState.ROLLED_BACK
        assert shadow.divergences == 1  # the first one decided it
        assert "divergence" in shadow.reason
        assert live.version == 1
        assert live.digest == old_digest
        assert live.canary is None
        assert runtime.upgrade_log[-1].state == "rolled-back"

    def test_rollback_restores_bit_identical_verdicts(
            self, filter_policy, filter_blobs, divergent_blob, small_trace):
        baseline = _runtime(filter_policy)
        baseline.attach("filter1", filter_blobs["filter1"])
        expected = _records(baseline.dispatch(small_trace, collect=True))

        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        runtime.upgrade("filter1", divergent_blob,
                        CanaryConfig(sample_fraction=1.0,
                                     promote_after=10 ** 6))
        half = len(small_trace) // 2
        first = _records(runtime.dispatch(small_trace[:half], collect=True))
        second = _records(runtime.dispatch(small_trace[half:],
                                           collect=True))
        assert first + second == expected

    def test_candidate_fault_rolls_back(self, filter_policy, filter_blobs,
                                        benign_blob, small_trace):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        shadow = runtime.upgrade(
            "filter1", benign_blob,
            CanaryConfig(sample_fraction=1.0, promote_after=10 ** 6))
        # sabotage the candidate's budget: its first shadow invocation
        # overruns, and a candidate fault must roll the upgrade back
        shadow.candidate.cycle_budget = 1
        runtime.dispatch(small_trace[:10])
        assert shadow.state is VersionState.ROLLED_BACK
        assert shadow.faults == 1
        assert shadow.reason.startswith("candidate fault")
        live = runtime.extension("filter1")
        assert live.version == 1
        assert live.snapshot().faults == 0  # the live side never faulted

    def test_operator_rollback(self, filter_policy, filter_blobs,
                               benign_blob):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        runtime.upgrade("filter1", benign_blob)
        record = runtime.rollback("filter1")
        assert record.state == "rolled-back"
        assert runtime.extension("filter1").version == 1

    def test_detach_kills_inflight_canary(self, filter_policy,
                                          filter_blobs, benign_blob):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        runtime.upgrade("filter1", benign_blob)
        runtime.detach("filter1")
        with pytest.raises(UnknownExtensionError):
            runtime.promote("filter1")


class TestShadowIsolation:
    def test_canary_cycles_never_move_the_live_clock(
            self, filter_policy, filter_blobs, benign_blob, small_trace):
        baseline = _runtime(filter_policy)
        baseline.attach("filter1", filter_blobs["filter1"])
        base_report = baseline.dispatch(small_trace)

        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        runtime.upgrade("filter1", benign_blob,
                        CanaryConfig(sample_fraction=1.0,
                                     promote_after=10 ** 6))
        report = runtime.dispatch(small_trace)
        assert report.shard_cycles == base_report.shard_cycles
        assert sum(shard.canary_cycles for shard in runtime.shards) > 0

    def test_sampling_fraction_is_respected_and_seeded(
            self, filter_policy, filter_blobs, benign_blob, small_trace):
        def sampled(seed):
            runtime = _runtime(filter_policy)
            runtime.attach("filter1", filter_blobs["filter1"])
            shadow = runtime.upgrade(
                "filter1", benign_blob,
                CanaryConfig(sample_fraction=0.25,
                             promote_after=10 ** 6, seed=seed))
            runtime.dispatch(small_trace)
            return shadow.sampled

        first = sampled(7)
        assert 0 < first < len(small_trace) // 2  # ~25%, not everything
        assert sampled(7) == first  # seeded: exactly reproducible

    def test_config_validation(self):
        with pytest.raises(ValueError, match="sample fraction"):
            CanaryConfig(sample_fraction=0.0)
        with pytest.raises(ValueError, match="promote_after"):
            CanaryConfig(promote_after=0)


class TestIncrementalUpgrade:
    """The cheap upgrade path: a proof patch against the serving bytes
    is applied, fully revalidated, and canaried exactly like a full
    container — with fallback to full certification on any patch
    problem and bit-identical restoration on rollback."""

    def test_patch_canary_promotes_with_identical_verdicts(
            self, filter_policy, filter_blobs, small_trace):
        baseline = _runtime(filter_policy)
        baseline.attach("filter1", filter_blobs["filter1"])
        expected = _records(baseline.dispatch(small_trace, collect=True))

        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        result = certify_incremental(
            filter_blobs["filter1"], BENIGN_VARIANT, filter_policy,
            store=runtime.loader.proof_store)
        # The wire patch is smaller than the container it reconstructs.
        assert result.patch_bytes < len(result.binary.to_bytes())
        shadow = runtime.upgrade(
            "filter1", patch=result.patch,
            canary=CanaryConfig(sample_fraction=1.0, promote_after=100))
        got = _records(runtime.dispatch(small_trace, collect=True))

        assert shadow.state is VersionState.PROMOTED
        assert runtime.extension("filter1").version == 2
        assert got == expected
        stats = runtime.loader.stats()
        assert stats.patch_loads == 1
        assert stats.patch_hits == 1
        assert stats.patch_rejects == 0
        assert stats.patch_bytes_saved > 0

    def test_bad_patch_falls_back_to_full_container(
            self, filter_policy, filter_blobs, benign_blob):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        # A patch built against the candidate's own bytes, not the
        # serving version: its base digest cannot match the live blob.
        stale = certify_incremental(benign_blob, BENIGN_VARIANT,
                                    filter_policy)
        runtime.upgrade("filter1", benign_blob, patch=stale.patch)
        assert runtime.loader.stats().patch_rejects == 1
        assert runtime.loader.stats().patch_hits == 0
        record = runtime.promote("filter1")
        assert record.state == "promoted"
        assert runtime.extension("filter1").version == 2

    def test_bad_patch_without_fallback_raises(
            self, filter_policy, filter_blobs, benign_blob):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        stale = certify_incremental(benign_blob, BENIGN_VARIANT,
                                    filter_policy)
        with pytest.raises(PatchError):
            runtime.upgrade("filter1", patch=stale.patch)
        live = runtime.extension("filter1")
        assert live.version == 1
        assert live.canary is None
        assert runtime.loader.stats().patch_rejects == 1

    def test_patch_rollback_restores_prior_proof_bit_identically(
            self, filter_policy, filter_blobs, small_trace):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        result = certify_incremental(
            filter_blobs["filter1"], DIVERGENT_VARIANT, filter_policy,
            store=runtime.loader.proof_store)
        shadow = runtime.upgrade(
            "filter1", patch=result.patch,
            canary=CanaryConfig(sample_fraction=1.0,
                                promote_after=10 ** 6))
        runtime.dispatch(small_trace[:50])

        assert shadow.state is VersionState.ROLLED_BACK
        live = runtime.extension("filter1")
        assert live.version == 1
        # Rollback keeps the prior container — code *and* proof — byte
        # for byte: the canary never replaced anything.
        assert live.blob == filter_blobs["filter1"]


class TestTelemetry:
    def test_snapshot_carries_canary_and_upgrade_log(
            self, filter_policy, filter_blobs, benign_blob, small_trace):
        runtime = _runtime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        runtime.upgrade("filter1", benign_blob,
                        CanaryConfig(sample_fraction=1.0, promote_after=20))

        inflight = runtime.snapshot()
        ext = inflight.extensions[0]
        assert ext.version == 1
        assert ext.canary is not None
        assert ext.canary["state"] == "shadow"
        assert ext.canary["to_version"] == 2

        runtime.dispatch(small_trace[:100])
        settled = runtime.snapshot()
        ext = settled.extensions[0]
        assert ext.version == 2
        assert ext.canary is None
        assert len(settled.upgrades) == 1
        assert settled.upgrades[0]["state"] == "promoted"
        assert settled.canary_cycles and sum(settled.canary_cycles) > 0
        settled.to_json()  # must stay JSON-serializable
