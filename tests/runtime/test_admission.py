"""Admission: the only way into the runtime is through the loader.

Proven binaries land on the unchecked fast path; unproven binaries are
rejected, or — only with the operator's explicit opt-in — downgraded to
the checked abstract-machine tier.  Garbage is rejected regardless.
"""

import pytest

from repro.errors import UnknownExtensionError, ValidationError
from repro.runtime import ExtensionState, PacketRuntime, RuntimeConfig


def test_proven_binary_gets_unchecked_fast_path(filter_policy, filter_blobs):
    runtime = PacketRuntime(filter_policy)
    extension = runtime.attach("filter1", filter_blobs["filter1"])
    assert extension.state is ExtensionState.ACTIVE
    assert extension.active
    assert not extension.checked
    assert extension.engine is not None
    assert extension.shard_engines is None
    assert extension.report is not None
    assert runtime.extension("filter1") is extension


def test_unproven_binary_rejected_by_default(filter_policy, rogue_blob):
    runtime = PacketRuntime(filter_policy)
    with pytest.raises(ValidationError):
        runtime.attach("rogue", rogue_blob)
    assert runtime.extensions == []


def test_downgrade_admits_onto_checked_tier(filter_policy, rogue_blob):
    config = RuntimeConfig(shards=2, downgrade_unproven=True)
    runtime = PacketRuntime(filter_policy, config)
    extension = runtime.attach("rogue", rogue_blob)
    assert extension.checked
    assert extension.report is None
    assert extension.engine is None
    assert len(extension.shard_engines) == 2


def test_undecodable_binary_rejected_even_with_downgrade(
        filter_policy, undecodable_blob):
    config = RuntimeConfig(downgrade_unproven=True)
    runtime = PacketRuntime(filter_policy, config)
    with pytest.raises(ValidationError, match="undecodable"):
        runtime.attach("garbage", undecodable_blob)


def test_duplicate_name_rejected(filter_policy, filter_blobs):
    runtime = PacketRuntime(filter_policy)
    runtime.attach("filter1", filter_blobs["filter1"])
    with pytest.raises(ValueError, match="already attached"):
        runtime.attach("filter1", filter_blobs["filter2"])


def test_detach_removes_extension(filter_policy, filter_blobs):
    runtime = PacketRuntime(filter_policy)
    runtime.attach("filter1", filter_blobs["filter1"])
    runtime.detach("filter1")
    assert runtime.extensions == []
    runtime.attach("filter1", filter_blobs["filter1"])


def test_admission_shares_the_content_addressed_cache(
        filter_policy, filter_blobs):
    """Byte-identical submissions under different names revalidate in
    O(hash): the second attach is a loader cache hit."""
    runtime = PacketRuntime(filter_policy)
    runtime.attach("a", filter_blobs["filter1"])
    runtime.attach("b", filter_blobs["filter1"])
    stats = runtime.loader.stats()
    assert stats.loads == 2
    assert stats.hits == 1
    assert stats.misses == 1
    assert runtime.extension("a").digest == runtime.extension("b").digest


class TestFriendlyUnknownExtensionErrors:
    def test_detach_unknown_names_the_missing_and_the_present(
            self, filter_policy, filter_blobs):
        runtime = PacketRuntime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        runtime.attach("filter2", filter_blobs["filter2"])
        with pytest.raises(UnknownExtensionError) as excinfo:
            runtime.detach("fitler1")  # the classic typo
        message = str(excinfo.value)
        assert "fitler1" in message
        assert "filter1" in message and "filter2" in message
        assert excinfo.value.name == "fitler1"
        assert excinfo.value.attached == ("filter1", "filter2")

    def test_lookup_unknown_is_a_keyerror_with_a_real_message(
            self, filter_policy):
        runtime = PacketRuntime(filter_policy)
        with pytest.raises(KeyError):  # mapping-style callers keep working
            runtime.extension("ghost")
        with pytest.raises(UnknownExtensionError,
                           match="attached: none"):
            runtime.extension("ghost")

    def test_control_plane_calls_share_the_error(self, filter_policy,
                                                 filter_blobs):
        runtime = PacketRuntime(filter_policy)
        runtime.attach("filter1", filter_blobs["filter1"])
        for call in (runtime.detach, runtime.reinstate, runtime.promote,
                     runtime.rollback):
            with pytest.raises(UnknownExtensionError):
                call("ghost")
