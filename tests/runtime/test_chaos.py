"""The chaos harness itself: every scenario's invariants must hold.

These tests run the campaign small (quick-mode sized) but real — the
same scenario code the ``pcc chaos`` CLI and CI smoke job execute.
"""

import json

import pytest

from repro.runtime.chaos import SCENARIOS, ChaosConfig, run_chaos


@pytest.fixture(scope="module")
def quick_report():
    return run_chaos(ChaosConfig(packets=150, seed=0xC4405, shards=2,
                                 mutation_rounds=2))


class TestConfig:
    def test_defaults_are_valid(self):
        config = ChaosConfig()
        assert config.packets >= 50
        assert config.scenarios is None

    def test_packet_floor(self):
        with pytest.raises(ValueError, match="packets"):
            ChaosConfig(packets=10)

    def test_shard_floor(self):
        with pytest.raises(ValueError, match="shard"):
            ChaosConfig(shards=0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            ChaosConfig(scenarios=("no-such-drill",))


class TestCampaign:
    def test_all_invariants_hold(self, quick_report):
        broken = [check
                  for scenario in quick_report.scenarios
                  for check in scenario.failures()]
        assert quick_report.passed, f"broken invariants: {broken}"

    def test_every_scenario_ran(self, quick_report):
        assert {s.name for s in quick_report.scenarios} == set(SCENARIOS)

    def test_mttr_was_measured(self, quick_report):
        assert quick_report.mttr_seconds, \
            "recovery scenarios must record MTTR"
        assert all(mttr > 0 for mttr in quick_report.mttr_seconds)

    def test_report_is_json_serializable(self, quick_report):
        payload = json.loads(json.dumps(quick_report.to_dict()))
        assert payload["passed"] is True
        assert payload["seed"] == 0xC4405
        assert len(payload["scenarios"]) == len(SCENARIOS)
        for scenario in payload["scenarios"]:
            assert scenario["checks"], "every scenario must assert things"

    def test_scenario_subset_runs_only_requested(self):
        report = run_chaos(ChaosConfig(
            packets=100, mutation_rounds=1,
            scenarios=("shard-crash", "upgrade-rollback")))
        assert [s.name for s in report.scenarios] == \
            ["shard-crash", "upgrade-rollback"]
        assert report.passed

    def test_campaign_is_deterministic(self):
        config = ChaosConfig(packets=100, seed=99, mutation_rounds=1,
                             scenarios=("admission-mutants",
                                        "adversarial-packets"))
        first = run_chaos(config).to_dict()
        second = run_chaos(config).to_dict()
        for scenario in (*first["scenarios"], *second["scenarios"]):
            scenario.pop("wall_seconds")
            scenario.get("details", {}).pop("mttr_seconds", None)
        first.pop("wall_seconds")
        second.pop("wall_seconds")
        assert first == second
