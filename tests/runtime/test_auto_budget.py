"""Auto cycle budgets: config validation, WCET-derived budgets at
admission, and the load-bearing acceptance property — budgeted dispatch
is bit-identical to unbudgeted dispatch on the Figure 8 trace, because
the budget is a sound upper bound on every successful run."""

import pytest

from repro.alpha.encoding import encode_program
from repro.alpha.parser import parse_program
from repro.analysis import context_for_policy, estimate_wcet
from repro.pcc.container import PccBinary
from repro.runtime import PacketRuntime, RuntimeConfig


def _attach_all(runtime, filter_blobs):
    for name, blob in sorted(filter_blobs.items()):
        runtime.attach(name, blob)


# -- config validation --------------------------------------------------


@pytest.mark.parametrize("budget", ["AUTO", "none", "", "7"])
def test_rejects_non_auto_strings(budget):
    with pytest.raises(ValueError, match="cycle budget"):
        RuntimeConfig(cycle_budget=budget)


@pytest.mark.parametrize("budget", [True, False])
def test_rejects_bool_budget(budget):
    # bool is an int subclass; True would silently mean "1 cycle".
    with pytest.raises(ValueError, match="bool"):
        RuntimeConfig(cycle_budget=budget)


@pytest.mark.parametrize("budget", [0, -5])
def test_rejects_non_positive_budget(budget):
    with pytest.raises(ValueError, match="positive"):
        RuntimeConfig(cycle_budget=budget)


@pytest.mark.parametrize("budget", [3.5, [100], {}])
def test_rejects_non_int_budget(budget):
    with pytest.raises(ValueError, match="cycle budget"):
        RuntimeConfig(cycle_budget=budget)


@pytest.mark.parametrize("budget", [None, 1, 10_000, "auto"])
def test_accepts_valid_budgets(budget):
    assert RuntimeConfig(cycle_budget=budget).cycle_budget == budget


@pytest.mark.parametrize("slack", [-0.1, -1, "lots", True, None])
def test_rejects_bad_slack(slack):
    with pytest.raises(ValueError, match="slack"):
        RuntimeConfig(cycle_budget="auto", budget_slack=slack)


@pytest.mark.parametrize("slack", [0, 0.0, 0.25, 3])
def test_accepts_valid_slack(slack):
    assert RuntimeConfig(budget_slack=slack).budget_slack == slack


# -- admission-time budget resolution -----------------------------------


def test_auto_budget_set_from_wcet_at_admission(filter_policy,
                                                filter_blobs):
    runtime = PacketRuntime(filter_policy,
                            RuntimeConfig(cycle_budget="auto",
                                          budget_slack=0.25))
    _attach_all(runtime, filter_blobs)
    context = context_for_policy(filter_policy)
    by_name = {ext.name: ext for ext in runtime.snapshot().extensions}
    for name, extension in runtime._extensions.items():
        report = estimate_wcet(extension.program, context)
        assert extension.wcet_bound == report.bound
        assert extension.cycle_budget == report.budget(0.25)
        assert extension.cycle_budget > report.bound  # slack applied
        # The telemetry snapshot carries both numbers.
        snap = by_name[name]
        assert snap.cycle_budget == extension.cycle_budget
        assert snap.wcet_cycles == extension.wcet_bound


def test_fixed_budget_unchanged_by_resolution(filter_policy, filter_blobs):
    runtime = PacketRuntime(filter_policy, RuntimeConfig(cycle_budget=500))
    _attach_all(runtime, filter_blobs)
    for extension in runtime._extensions.values():
        assert extension.cycle_budget == 500
        assert extension.wcet_bound is None


def test_unbounded_extension_falls_back_to_unbudgeted(filter_policy):
    """A loop the analyzer cannot bound admits (on the checked tier)
    without a budget — WCET is never an admission criterion."""
    source = """
 loop:  ADDQ r4, 1, r4
        BR   loop
        RET
    """
    blob = PccBinary(encode_program(parse_program(source)),
                     b"", b"", b"").to_bytes()
    runtime = PacketRuntime(filter_policy,
                            RuntimeConfig(cycle_budget="auto",
                                          downgrade_unproven=True))
    runtime.attach("spinner", blob)
    extension = runtime._extensions["spinner"]
    assert extension.wcet_bound is None
    assert extension.cycle_budget is None


# -- the acceptance property --------------------------------------------


def test_auto_budget_dispatch_bit_identical(filter_policy, filter_blobs,
                                            small_trace):
    """Same trace, same filters: auto-budgeted dispatch produces the
    exact verdict stream and fault count of unbudgeted dispatch."""
    frames = small_trace
    records, faults = {}, {}
    for budget in (None, "auto"):
        runtime = PacketRuntime(filter_policy,
                                RuntimeConfig(cycle_budget=budget))
        _attach_all(runtime, filter_blobs)
        records[budget] = runtime.dispatch(frames, collect=True).records
        faults[budget] = runtime.snapshot().faults
    assert records["auto"] == records[None]
    assert faults["auto"] == faults[None] == 0


def test_exact_budget_no_slack_never_trips(filter_policy, filter_blobs,
                                           small_trace):
    """slack=0 sets the budget to the exact WCET bound; the engine's
    block-granular accounting never exceeds it on a successful run."""
    runtime = PacketRuntime(filter_policy,
                            RuntimeConfig(cycle_budget="auto",
                                          budget_slack=0.0))
    _attach_all(runtime, filter_blobs)
    runtime.dispatch(small_trace[:500])
    snapshot = runtime.snapshot()
    assert snapshot.faults == 0
    for extension in snapshot.extensions:
        assert extension.state == "active"
        assert extension.cycles > 0
