"""Ablation (§4): invariants as a proof-size control, even without loops.

"For sections of programs that do not contain loops, it may be beneficial
to introduce invariants, as a way of controlling the growth of the PCC
binaries" — invariants cut the program into fragments whose proofs are
independent.

We take conditional-chain filters and insert a mid-point invariant
(restating the packet-filter precondition, which is what the second half
needs), then compare safety-predicate size, proof nodes, and binary size
against the uncut version.
"""

from repro.alpha.parser import parse_program
from repro.filters.policy import packet_filter_precondition
from repro.logic.formulas import formula_size
from repro.pcc import certify, validate
from repro.proof.proofs import proof_size


def _chain(depth: int) -> str:
    lines = []
    for index in range(depth):
        label = f"skip{index}"
        lines.append(f"    LDQ  r4, {8 * (index % 8)}(r1)")
        lines.append(f"    BEQ  r4, {label}")
        lines.append(f"    LDQ  r5, {8 * ((index + 1) % 8)}(r1)")
        lines.append(f"{label}: ADDQ r5, 1, r5")
    lines.append("    ADDQ r5, 0, r0")
    lines.append("    RET")
    return "\n".join(lines)


def test_invariant_cutting(benchmark, filter_policy, record):
    depth = 12
    source = _chain(depth)
    program = parse_program(source)
    # cut at the start of the middle block (each block is 4 instructions)
    midpoint = (depth // 2) * 4
    invariant = packet_filter_precondition()

    def certify_both():
        whole = certify(source, filter_policy)
        cut = certify(source, filter_policy,
                      invariants={midpoint: invariant})
        return whole, cut

    whole, cut = benchmark.pedantic(certify_both, rounds=1, iterations=1)
    whole_report = validate(whole.binary.to_bytes(), filter_policy)
    cut_report = validate(cut.binary.to_bytes(), filter_policy)

    lines = [
        f"chain depth {depth}, invariant inserted at pc {midpoint}",
        "",
        f"{'':24}{'no invariant':>14}{'with invariant':>15}",
        f"{'SP formula nodes':24}"
        f"{formula_size(whole.predicate):>14}"
        f"{formula_size(cut.predicate):>15}",
        f"{'proof nodes':24}{proof_size(whole.proof):>14}"
        f"{proof_size(cut.proof):>15}",
        f"{'binary bytes':24}{whole.binary.size:>14}"
        f"{cut.binary.size:>15}",
        f"{'validation ms':24}"
        f"{whole_report.validation_seconds * 1000:>14.1f}"
        f"{cut_report.validation_seconds * 1000:>15.1f}",
        "",
        "the invariant slashes the SP's tree size (the metric the",
        "paper's unshared representation pays); with this repo's DAG-",
        "sharing optimizations the uncut chain stays cheap end to end,",
        "so §4's workaround is only *needed* by a 1996-style validator —",
        "measured evidence that 'optimizations in the representation of",
        "the proofs' subsume invariant-cutting for straight-line code.",
    ]
    record("ablation_invariants", lines)

    # the cut SP's *tree* is smaller even though it proves strictly more
    assert formula_size(cut.predicate) < formula_size(whole.predicate)
