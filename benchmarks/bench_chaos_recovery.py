"""Supervised control plane: recovery latency and steady-state cost.

The robustness machinery (shard supervisor, shadow canaries, quarantine)
only earns its keep if it is effectively free when nothing is wrong and
fast when something is.  This benchmark measures both sides:

* **steady-state overhead** — the same trace through the same filters,
  plain ``serve()`` versus ``serve_supervised()`` with no faults.  The
  supervisor is host-side machinery (queues, threads, health checks):
  it must cost **zero modeled cycles** — the acceptance bar is <2%
  modeled-cycle overhead, and the expected value is exactly 0.  Wall
  time is reported as the usual informational column (queue hand-off
  costs real Python time; modeled cycles are the figure of merit);
* **verdict stability** — accept counts under supervision must be
  bit-identical to plain dispatch (supervision may never change
  semantics);
* **crash recovery** — the same trace with seeded worker crashes
  injected mid-stream: every packet still dispatched, and the measured
  MTTR (crash detection -> restarted worker) is reported per incident;
* **control-plane decision latency** — how long a shadow canary takes
  to roll back a divergent candidate and to promote a clean one (wall
  time from upgrade to decision, driven by sampled packets).

Scale comes from the shared ``--packets`` / ``PCC_BENCH_PACKETS`` quick
mode.  Results land in ``results/chaos_recovery.txt`` and
``results/BENCH_chaos.json``.
"""

import random

from repro.pcc import certify
from repro.runtime import (
    CanaryConfig,
    InjectedCrash,
    PacketRuntime,
    RuntimeConfig,
)

SHARDS = 4
#: Modeled-cycle overhead bar for supervision (expected: exactly 0).
OVERHEAD_BAR = 0.02


def _runtime(filter_policy, **overrides) -> PacketRuntime:
    defaults = dict(shards=SHARDS, cycle_budget="auto", fault_threshold=3,
                    restart_backoff=0.002, restart_backoff_cap=0.02,
                    health_interval=0.001)
    defaults.update(overrides)
    return PacketRuntime(filter_policy, RuntimeConfig(**defaults))


def _attach_filters(runtime, certified_filters) -> None:
    for name, certified in certified_filters.items():
        runtime.attach(name, certified.binary.to_bytes())


def test_chaos_recovery(benchmark, filter_policy, certified_filters,
                        trace, record, record_json):
    results = {}

    def campaign():
        # -- steady state: plain vs supervised, no faults ----------------
        plain = _runtime(filter_policy)
        _attach_filters(plain, certified_filters)
        plain_report = plain.serve(trace)
        plain_cycles = max(plain_report.shard_cycles)

        supervised = _runtime(filter_policy)
        _attach_filters(supervised, certified_filters)
        sup_report = supervised.serve_supervised(trace)
        sup_cycles = max(sup_report.shard_cycles)

        assert sup_report.healthy, "clean supervised run must be healthy"
        overhead = (sup_cycles - plain_cycles) / plain_cycles
        plain_accepts = {ext.name: ext.accepted
                         for ext in plain.snapshot().extensions}
        sup_accepts = {ext.name: ext.accepted
                       for ext in supervised.snapshot().extensions}
        assert sup_accepts == plain_accepts, \
            "supervision changed verdicts"

        # -- crash recovery ---------------------------------------------
        rng = random.Random(0xC4A54)
        schedule = set(rng.sample(range(len(trace)),
                                  max(3, len(trace) // 200)))
        # Every crash must be recoverable: budget restarts to the worst
        # case of the whole schedule landing on one shard.
        crashed = _runtime(filter_policy, max_restarts=len(schedule))
        _attach_filters(crashed, certified_filters)
        fired = set()

        def hook(shard_index, sequence):
            if sequence in schedule and sequence not in fired:
                fired.add(sequence)
                raise InjectedCrash(f"bench crash at packet {sequence}")

        crash_report = crashed.serve_supervised(trace, fault_hook=hook)
        assert crash_report.dispatched == crash_report.packets, \
            "a crash lost packets"
        assert not crash_report.failed_shards

        # -- control-plane decision latency ------------------------------
        from repro.filters.programs import FILTER1
        base = FILTER1.source.rstrip().rsplit("RET", 1)[0]
        benign = certify(base + "        ADDQ   r3, 0, r3\n        RET\n",
                         filter_policy).binary.to_bytes()
        divergent = certify(
            base + "        CMPEQ  r0, 0, r0\n        RET\n",
            filter_policy).binary.to_bytes()

        canary_host = _runtime(filter_policy)
        _attach_filters(canary_host, certified_filters)
        shadow = canary_host.upgrade(
            "filter1", divergent,
            CanaryConfig(sample_fraction=1.0, promote_after=10 ** 9))
        canary_host.dispatch(trace[:64])
        rollback = shadow.record()
        assert rollback.state == "rolled-back"

        shadow = canary_host.upgrade(
            "filter1", benign,
            CanaryConfig(sample_fraction=1.0, promote_after=128))
        canary_host.dispatch(trace)
        promotion = shadow.record()
        assert promotion.state == "promoted"

        results.update({
            "packets": plain_report.packets,
            "shards": SHARDS,
            "plain_cycles": plain_cycles,
            "supervised_cycles": sup_cycles,
            "overhead": overhead,
            "plain_wall_seconds": plain_report.wall_seconds,
            "supervised_wall_seconds": sup_report.wall_seconds,
            "accepts": plain_accepts,
            "crashes": crash_report.crashes,
            "restarts": crash_report.restarts,
            "mttr_seconds": list(crash_report.mttr_seconds),
            "mean_mttr_seconds": crash_report.mean_mttr_seconds,
            "rollback_decision_seconds": rollback.decision_seconds,
            "promotion_decision_seconds": promotion.decision_seconds,
            "promotion_clean_packets": promotion.clean,
        })

    benchmark.pedantic(campaign, rounds=1, iterations=1)

    mttr = results["mttr_seconds"]
    lines = [
        f"{len(certified_filters)} extensions, {results['packets']} "
        f"packets, {SHARDS} shards, auto budgets, fault threshold 3",
        "",
        "steady state (no faults):",
        f"  modeled cycles  plain {results['plain_cycles']:>12,}   "
        f"supervised {results['supervised_cycles']:>12,}   "
        f"overhead {results['overhead']:+.3%} "
        f"(bar: <{OVERHEAD_BAR:.0%})",
        f"  python wall     plain "
        f"{results['plain_wall_seconds'] * 1e3:>10.1f} ms  "
        f"supervised {results['supervised_wall_seconds'] * 1e3:>10.1f} ms "
        f"(informational; supervision is host-side)",
        "  verdicts bit-identical under supervision",
        "",
        f"crash recovery ({results['crashes']} injected crashes, "
        f"{results['restarts']} restarts, 0 packets lost):",
    ]
    if mttr:
        lines.append(
            f"  MTTR mean {results['mean_mttr_seconds'] * 1e3:.1f} ms, "
            f"min {min(mttr) * 1e3:.1f} ms, max {max(mttr) * 1e3:.1f} ms")
    lines += [
        "",
        "control-plane decisions (sample 100%):",
        f"  divergent candidate rolled back in "
        f"{results['rollback_decision_seconds'] * 1e3:.1f} ms "
        f"(first divergent packet)",
        f"  clean candidate promoted in "
        f"{results['promotion_decision_seconds'] * 1e3:.1f} ms "
        f"({results['promotion_clean_packets']} clean packets)",
    ]
    record("chaos_recovery", lines)
    record_json("chaos", results)

    assert results["overhead"] < OVERHEAD_BAR, \
        f"supervision cost {results['overhead']:.3%} modeled cycles"
