"""Ablation (§4): proof-size growth on long conditional chains.

"In principle, the proofs can be exponentially large (in the size of the
program).  The blowup would tend to occur in programs that contain long
sequences of conditionals, with no intervening loops."

We synthesize filters that are k consecutive data-dependent conditionals,
each guarding a packet load, and measure how the PCC binary grows with k —
once with the DAG-sharing proof representation (our default; one of the
"several optimizations in the representation of the proofs") and once with
the naive tree encoding.  Sharing is what keeps the growth polynomial.
"""

from repro.alpha.parser import parse_program
from repro.lf.binary import serialize_lf
from repro.lf.encode import encode_proof
from repro.pcc import certify, validate


def _conditional_chain(depth: int) -> str:
    lines = []
    for index in range(depth):
        label = f"skip{index}"
        lines.append(f"    LDQ  r4, {8 * (index % 8)}(r1)")
        lines.append(f"    BEQ  r4, {label}")
        lines.append(f"    LDQ  r5, {8 * ((index + 1) % 8)}(r1)")
        lines.append(f"{label}: ADDQ r5, 1, r5")
    lines.append("    ADDQ r5, 0, r0")
    lines.append("    RET")
    return "\n".join(lines)


def test_proof_growth(benchmark, filter_policy, record):
    depths = (2, 4, 8, 16, 32, 64)

    def certify_all():
        return {depth: certify(_conditional_chain(depth), filter_policy)
                for depth in depths}

    certified = benchmark.pedantic(certify_all, rounds=1, iterations=1)

    lines = [f"{'depth':>6} {'instr':>6} {'shared-proof':>13} "
             f"{'naive-proof':>12} {'gain':>7} {'validate':>9}"]
    shared_sizes = []
    for depth in depths:
        result = certified[depth]
        lf_proof = encode_proof(result.proof, result.predicate)
        __, shared = serialize_lf(lf_proof, share=True)
        if depth <= 16:
            __, naive = serialize_lf(lf_proof, share=False)
            naive_size = str(len(naive))
            gain = f"{len(naive) / len(shared):6.1f}x"
        else:
            naive_size = "(skipped)"  # tree expansion too large to emit
            gain = "   huge"
        shared_sizes.append(len(shared))
        report = validate(result.binary.to_bytes(), filter_policy)
        lines.append(f"{depth:6} {len(result.program):6} "
                     f"{len(shared):13} {naive_size:>12} {gain:>7} "
                     f"{report.validation_seconds:8.2f}s")
    lines.append("")
    growth = shared_sizes[-1] / shared_sizes[0]
    depth_ratio = depths[-1] / depths[0]
    lines.append(
        f"shared-proof growth {growth:.1f}x over a {depth_ratio:.0f}x "
        f"deeper chain — polynomial, not the paper's feared exponential")
    record("ablation_proof_growth", lines)

    # Sharing must defeat the exponential: size grows sub-quadratically
    # in depth.
    assert growth < depth_ratio ** 2
