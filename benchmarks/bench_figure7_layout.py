"""Figure 7: the PCC binary layout for the resource-access example.

The paper's figure shows three sections at byte offsets::

    0 .. 45      native code
    45 .. 220    relocation (symbol table)
    220 .. 340   proof

Ours follows the same order with different absolute offsets (our code
section holds 7 x 4-byte genuine Alpha words = 28 bytes; the paper's 45
bytes suggest padding/metadata we do not replicate).  Also reproduces the
in-text §2.3 measurements: validation time for SP_r and the observation
that the relocation section grows with the number of distinct proof rules.
"""

from repro.pcc import certify, validate
from repro.proof.proofs import proof_rules_used
from repro.vcgen.policy import resource_access_policy

RESOURCE_ACCESS = """
    ADDQ r0, 8, r1
    LDQ  r0, 8(r0)
    LDQ  r2, -8(r1)
    ADDQ r0, 1, r0
    BEQ  r2, L1
    STQ  r0, 0(r1)
L1: RET
"""


def test_figure7(benchmark, record):
    policy = resource_access_policy()
    certified = certify(RESOURCE_ACCESS, policy)
    blob = certified.binary.to_bytes()
    report = benchmark(lambda: validate(blob, policy))

    layout = certified.binary.layout()
    lines = ["section layout (byte offsets, header excluded):"]
    paper_rows = {"native code": (0, 45), "relocation": (45, 220),
                  "proof": (220, 340)}
    for name, start, end in layout.rows():
        paper = paper_rows.get(name)
        suffix = f"   (paper: {paper[0]} .. {paper[1]})" if paper else ""
        lines.append(f"  {name:12} {start:5} .. {end:<5}{suffix}")
    lines.append("")
    rules = proof_rules_used(certified.proof)
    lines.append(f"distinct proof rules used: {len(rules)} "
                 f"(drives relocation size — paper §2.3)")
    lines.append(f"validation time: {report.validation_seconds * 1000:.1f} "
                 f"ms   (paper: 1.4 ms for SP_r on a 175 MHz Alpha in C)")
    record("figure7_layout", lines)

    rows = dict((name, (start, end))
                for name, start, end in layout.rows())
    assert rows["native code"][0] == 0
    assert rows["native code"][1] == 28  # 7 genuine Alpha words
    assert rows["relocation"][1] == rows["proof"][0]
    # proof section dominates, as in the figure
    proof_size = rows["proof"][1] - rows["proof"][0]
    code_size = rows["native code"][1]
    assert proof_size > 2 * code_size
