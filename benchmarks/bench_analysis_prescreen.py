"""Cold-reject latency: static pre-screen vs full PCC validation.

The loader's opt-in pre-screen (:mod:`repro.analysis.prescreen`) exists
to turn away certain-to-fail binaries before the VCGen + LF pipeline
spins up.  This benchmark measures the cold per-blob rejection latency
both ways over a corpus of canonical reject classes:

* ``rogue-store``        — STQ through the read-only frame base
* ``wild-load``          — LDQ through an uninitialised (null) pointer
* ``unaligned-load``     — provably 4-mod-8 address
* ``no-invariant-loop``  — backward branch with no loop invariant
* ``undecodable-code``   — garbage code section
* ``proof-stripped``     — structurally fine, memory-safe code whose
  proof was stripped; the pre-screen has *no opinion* here (it can
  never admit), so the row shows the class the fast path cannot catch

Acceptance: on the classes only the interval analysis can catch (the
``memory`` stage — validation must compute the full safety predicate
before its proof check fails), the pre-screen rejects >= 2x faster
(~3x in practice); on classes both paths reject structurally (garbage
code, missing invariants) neither path does real work and the times are
comparable.  Verdict agreement holds throughout: everything the
pre-screen rejects, validation rejects too.

Scale comes from the shared ``--packets`` / ``PCC_BENCH_PACKETS`` quick
mode (see ``conftest.analysis_workload``): CI runs e.g.
``pytest benchmarks/bench_analysis_prescreen.py --packets 2000``.
"""

import time

from repro.alpha.encoding import encode_program
from repro.alpha.parser import parse_program
from repro.analysis import prescreen_blob
from repro.errors import ValidationError
from repro.pcc import validate
from repro.pcc.container import PccBinary


def _container(source: str) -> bytes:
    return PccBinary(encode_program(parse_program(source)),
                     b"", b"", b"").to_bytes()


def _corpus() -> dict[str, bytes]:
    return {
        "rogue-store": _container("STQ r2, 0(r1)\nADDQ r1, 1, r0\nRET"),
        "wild-load": _container("LDQ r4, 0(r5)\nCMPEQ r4, 7, r0\nRET"),
        "unaligned-load": _container(
            "LDA r4, 4(r1)\nLDQ r5, 0(r4)\nRET"),
        "no-invariant-loop": _container("""
            LDA  r4, 5(r4)
     loop:  SUBQ r4, 1, r4
            BNE  r4, loop
            RET
        """),
        "undecodable-code":
            PccBinary(b"\xff\xee\xdd\xcc" * 3, b"", b"", b"").to_bytes(),
        "proof-stripped": _container(
            "LDQ r4, 8(r1)\nEXTWL r4, 4, r4\nCMPEQ r4, 8, r0\nRET"),
    }


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_prescreen_cold_reject_latency(benchmark, filter_policy,
                                       analysis_workload, record,
                                       record_json):
    corpus = _corpus()
    repeats = analysis_workload["repeats"]

    def validate_rejects(blob) -> bool:
        try:
            validate(blob, filter_policy)
            return False
        except ValidationError:
            return True

    rows = []

    def measure_all():
        for name, blob in corpus.items():
            verdict = prescreen_blob(blob, filter_policy)
            prescreen_seconds = _best_of(
                lambda b=blob: prescreen_blob(b, filter_policy), repeats)
            validate_seconds = _best_of(
                lambda b=blob: validate_rejects(b), repeats)
            # Agreement: the pre-screen never rejects what validation
            # would admit (here, validation rejects the whole corpus —
            # nothing carries a proof).
            assert validate_rejects(blob), name
            rows.append({
                "name": name,
                "prescreen_rejects": not verdict.ok,
                "stage": verdict.stage,
                "prescreen_us": prescreen_seconds * 1e6,
                "validate_us": validate_seconds * 1e6,
                "speedup": validate_seconds / prescreen_seconds,
            })

    benchmark.pedantic(measure_all, rounds=1, iterations=1)

    caught = [row for row in rows if row["prescreen_rejects"]]
    assert len(caught) == len(corpus) - 1  # all but proof-stripped
    for row in caught:
        if row["stage"] == "memory":
            # The analysis-only classes: validation pays VCGen before
            # its proof check can fail, the pre-screen does not.
            assert row["speedup"] >= 2.0, \
                (row["name"], round(row["speedup"], 1))
        else:
            # Structural classes: both paths bail early; the pre-screen
            # must at least not be meaningfully slower.
            assert row["prescreen_us"] <= row["validate_us"] * 2.0, \
                (row["name"], round(row["speedup"], 1))

    lines = [f"{'class':20} {'prescreen':>12} {'validate':>12} "
             f"{'speedup':>8}  verdict",
             "-" * 68]
    for row in rows:
        verdict = (f"reject[{row['stage']}]" if row["prescreen_rejects"]
                   else "no opinion")
        lines.append(f"{row['name']:20} {row['prescreen_us']:10.1f}us "
                     f"{row['validate_us']:10.1f}us "
                     f"{row['speedup']:7.1f}x  {verdict}")
    lines.append("")
    lines.append(f"(cold rejects, best of {repeats}; the pre-screen "
                 "never admits — 'no opinion' rows fall through to "
                 "full validation)")
    record("analysis_prescreen_latency", lines)
    record_json("analysis", {"repeats": repeats, "rows": rows})
