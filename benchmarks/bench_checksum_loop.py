"""§4 in-text experiment: the certified IP-header checksum loop.

Paper measurements: 39 instructions (8-instruction core loop), PCC binary
1610 bytes, proof validation 3.6 ms, and the optimized routine "beating
the standard C version in the OSF/1 kernel by a factor of two".

We regenerate: instruction counts, binary size (invariant table
included), validation time, and the optimized-vs-naive cycle ratio on
IP-header-sized and MTU-sized buffers.
"""

import random

from repro.alpha.machine import Machine
from repro.alpha.parser import parse_program
from repro.filters.checksum import (
    CHECKSUM_LOOP_PC,
    CHECKSUM_SOURCE,
    NAIVE_CHECKSUM_SOURCE,
    NAIVE_LOOP_PC,
    checksum_invariant,
    checksum_memory,
    checksum_policy,
    checksum_registers,
    naive_invariant,
    reference_checksum,
)
from repro.pcc import certify, validate
from repro.perf.cost import ALPHA_175


def _cycles(source: str, data: bytes) -> int:
    program = parse_program(source)
    machine = Machine(program, checksum_memory(data),
                      checksum_registers(data), cost_model=ALPHA_175)
    result = machine.run()
    assert result.value == reference_checksum(data)
    return result.cycles


def test_checksum_loop(benchmark, record):
    policy = checksum_policy()
    certified = certify(CHECKSUM_SOURCE, policy,
                        invariants={CHECKSUM_LOOP_PC: checksum_invariant()})
    certify(NAIVE_CHECKSUM_SOURCE, policy,
            invariants={NAIVE_LOOP_PC: naive_invariant()})
    blob = certified.binary.to_bytes()
    report = benchmark(lambda: validate(blob, policy))

    rng = random.Random(20)
    lines = [
        f"instructions: {report.instructions}   (paper: 39, with an "
        f"8-instruction core loop)",
        f"binary size: {certified.binary.size} bytes, of which invariant "
        f"table {len(certified.binary.invariants)}   (paper: 1610 bytes)",
        f"validation: {report.validation_seconds * 1000:.1f} ms   "
        f"(paper: 3.6 ms)",
        "",
        f"{'buffer':>8} {'optimized':>10} {'naive-C':>9} {'speedup':>8}",
    ]
    ratios = []
    for length in (20, 40, 60, 576, 1500):
        data = bytes(rng.randrange(256) for __ in range(length))
        fast = _cycles(CHECKSUM_SOURCE, data)
        slow = _cycles(NAIVE_CHECKSUM_SOURCE, data)
        ratios.append(slow / fast)
        lines.append(f"{length:8} {fast:9}c {slow:8}c {slow / fast:7.2f}x")
    lines.append("")
    lines.append(f"speedup at MTU size: {ratios[-1]:.2f}x "
                 f"(paper: 'a factor of two')")
    record("checksum_loop", lines)

    assert 1.6 < ratios[-1] < 2.6
    assert report.instructions < 45
