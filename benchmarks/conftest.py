"""Shared benchmark fixtures and the result recorder.

Every benchmark regenerates one of the paper's tables or figures and
prints it next to the paper's numbers; the same rows are appended to
``benchmarks/results/`` so EXPERIMENTS.md can reference a concrete run.

Scale knobs: ``--packets N`` (quick mode, e.g. ``pytest benchmarks
--packets 2000``) or the ``PCC_BENCH_PACKETS`` environment variable
(default 10,000; the paper used a 200,000-packet trace — set either to
reproduce at full scale).  The command-line option wins.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.filters.kv import kv_packet_policy  # noqa: E402
from repro.filters.policy import packet_filter_policy  # noqa: E402
from repro.filters.programs import FILTERS  # noqa: E402
from repro.filters.trace import (  # noqa: E402
    KvTraceConfig,
    TraceConfig,
    generate_adversarial_trace,
    generate_kv_trace,
    generate_trace,
)
from repro.pcc import certify  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_PACKETS_OVERRIDE: int | None = None


def pytest_addoption(parser):
    parser.addoption(
        "--packets", type=int, default=None, metavar="N",
        help="trace length for the figure-8/figure-9 benchmarks "
             "(quick mode; overrides PCC_BENCH_PACKETS)")


def pytest_configure(config):
    global _PACKETS_OVERRIDE
    _PACKETS_OVERRIDE = config.getoption("--packets", default=None)


def bench_packets() -> int:
    if _PACKETS_OVERRIDE:
        return _PACKETS_OVERRIDE
    return int(os.environ.get("PCC_BENCH_PACKETS", "10000"))


@pytest.fixture(scope="session")
def trace():
    return generate_trace(TraceConfig(packets=bench_packets()))


@pytest.fixture(scope="session")
def loader_workload():
    """Scale knobs for ``bench_loader_throughput``, derived from the
    same ``--packets`` / ``PCC_BENCH_PACKETS`` quick-mode setting."""
    packets = bench_packets()
    return {
        "warm_loads": max(200, packets),
        "distinct_programs": min(16, max(4, packets // 1000)),
        "batch_copies": min(64, max(4, packets // 500)),
    }


@pytest.fixture(scope="session")
def kv_trace():
    """The Zipf key-popularity trace for the KV workload benchmark."""
    return generate_kv_trace(KvTraceConfig(packets=bench_packets()))


@pytest.fixture(scope="session")
def adversarial_trace():
    """The hostile mix for the KV post-state differential (a tenth of
    the main trace is plenty: it is a correctness gate, not a timing)."""
    return generate_adversarial_trace(max(1000, bench_packets() // 10))


@pytest.fixture(scope="session")
def kv_policy():
    return kv_packet_policy()


@pytest.fixture(scope="session")
def filter_policy():
    return packet_filter_policy()


@pytest.fixture(scope="session")
def certified_filters(filter_policy):
    return {spec.name: certify(spec.source, filter_policy)
            for spec in FILTERS}


@pytest.fixture(scope="session")
def record():
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def writer(name: str, lines: list[str]) -> None:
        text = "\n".join(lines)
        print(f"\n===== {name} =====\n{text}\n", flush=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return writer


@pytest.fixture(scope="session")
def record_json():
    """Persist a benchmark's rows as ``BENCH_<name>.json`` next to the
    text report, so downstream tooling can diff numbers structurally."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def writer(name: str, payload) -> None:
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    return writer


@pytest.fixture(scope="session")
def proof_store_workload():
    """Scale knobs for ``bench_proof_store``: upgrade-chain length and
    fleet size, derived from the shared quick-mode setting.  The pass
    count stays fixed — the >=3x speedup bar is about subproof reuse
    within one program, not about workload size."""
    packets = bench_packets()
    quick = packets <= 2000
    return {
        "passes": 8,
        "chain_rounds": 3 if quick else 8,
        "fleet": 4 if quick else 8,
    }


@pytest.fixture(scope="session")
def analysis_workload():
    """Scale knob for ``bench_analysis_prescreen``: how many timed
    repetitions per corpus blob, derived from the shared quick-mode
    setting (more packets => more repeats => tighter minima)."""
    packets = bench_packets()
    return {"repeats": min(50, max(10, packets // 1000))}
