"""Shared benchmark fixtures and the result recorder.

Every benchmark regenerates one of the paper's tables or figures and
prints it next to the paper's numbers; the same rows are appended to
``benchmarks/results/`` so EXPERIMENTS.md can reference a concrete run.

Scale knob: ``PCC_BENCH_PACKETS`` (default 10,000; the paper used a
200,000-packet trace — set the variable to reproduce at full scale).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.filters.policy import packet_filter_policy  # noqa: E402
from repro.filters.programs import FILTERS  # noqa: E402
from repro.filters.trace import TraceConfig, generate_trace  # noqa: E402
from repro.pcc import certify  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_packets() -> int:
    return int(os.environ.get("PCC_BENCH_PACKETS", "10000"))


@pytest.fixture(scope="session")
def trace():
    return generate_trace(TraceConfig(packets=bench_packets()))


@pytest.fixture(scope="session")
def filter_policy():
    return packet_filter_policy()


@pytest.fixture(scope="session")
def certified_filters(filter_policy):
    return {spec.name: certify(spec.source, filter_policy)
            for spec in FILTERS}


@pytest.fixture(scope="session")
def record():
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def writer(name: str, lines: list[str]) -> None:
        text = "\n".join(lines)
        print(f"\n===== {name} =====\n{text}\n", flush=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return writer
