"""Table 1: proof size and validation cost for the four PCC filters.

The paper's table:

    Packet Filter            1     2     3     4
    Instructions             8    15    47    28
    Binary Size (bytes)    385   516  1024   814
    Validation Time (us)   780  1070  2350  1710
    Cost Space (KB)        5.5   8.7  24.6  15.1

Our implementations are shorter (richer byte-extraction idioms) and the
binaries somewhat larger (explicit LF arguments); validation runs in
Python rather than 5 pages of C on an Alpha, so absolute times are
milliseconds, not microseconds.  The *shape* to check: validation cost
and binary size grow with filter complexity, and filter 1 is the
cheapest on every column.
"""

from repro.pcc import validate


def test_table1(benchmark, certified_filters, filter_policy, record,
                record_json):
    order = ("filter1", "filter2", "filter3", "filter4")
    blobs = {name: certified_filters[name].binary.to_bytes()
             for name in order}

    def validate_all():
        return {name: validate(blobs[name], filter_policy)
                for name in order}

    benchmark(validate_all)
    # best-of-5 per filter for the reported numbers (first runs pay
    # import/JIT-warming noise)
    reports = {name: min((validate(blobs[name], filter_policy)
                          for __ in range(5)),
                         key=lambda report: report.validation_seconds)
               for name in order}
    memory = {name: validate(blobs[name], filter_policy,
                             measure_memory=True).peak_memory_bytes
              for name in order}

    record_json("table1", {
        name: {
            "instructions": reports[name].instructions,
            "binary_bytes": reports[name].binary_bytes,
            "code_bytes": reports[name].code_bytes,
            "relocation_bytes": reports[name].relocation_bytes,
            "proof_bytes": reports[name].proof_bytes,
            "validation_ms": reports[name].validation_seconds * 1000,
            "validation_heap_kb": memory[name] / 1024,
        }
        for name in order
    })

    paper = {
        "filter1": (8, 385, 780, 5.5),
        "filter2": (15, 516, 1070, 8.7),
        "filter3": (47, 1024, 2350, 24.6),
        "filter4": (28, 814, 1710, 15.1),
    }
    lines = [f"{'':22}" + "".join(f"{name:>12}" for name in order)]

    def row(label, values, fmt="{}"):
        lines.append(f"{label:22}" + "".join(
            f"{fmt.format(value):>12}" for value in values))

    row("instructions", [reports[n].instructions for n in order])
    row("  (paper)", [paper[n][0] for n in order])
    row("binary bytes", [reports[n].binary_bytes for n in order])
    row("  (paper)", [paper[n][1] for n in order])
    row("code bytes", [reports[n].code_bytes for n in order])
    row("relocation bytes", [reports[n].relocation_bytes for n in order])
    row("proof bytes", [reports[n].proof_bytes for n in order])
    row("validation ms", [reports[n].validation_seconds * 1000
                          for n in order], "{:.1f}")
    row("  (paper, us)", [paper[n][2] for n in order])
    row("validation heap KB", [memory[n] / 1024 for n in order], "{:.1f}")
    row("  (paper, KB)", [paper[n][3] for n in order])
    proof_ratio = [reports[n].proof_bytes / reports[n].code_bytes
                   for n in order]
    row("proof/code ratio", proof_ratio, "{:.1f}")
    lines.append("")
    lines.append("paper: 'proof about 3 times larger than the code'; "
                 "binaries 400-1200 bytes; validation heap < 25 KB")
    record("table1_validation", lines)

    # Shape assertions (Table 1's orderings).
    sizes = [reports[n].binary_bytes for n in order]
    times = [reports[n].validation_seconds for n in order]
    assert sizes[0] == min(sizes)
    assert times[0] <= 1.25 * min(times)  # filter1 cheapest (with jitter)
    assert times[2] > times[0]            # filter3 dearer than filter1
    assert sizes[2] > 2 * sizes[0]        # and much bigger
    for name in order:
        assert reports[name].proof_bytes > reports[name].code_bytes
