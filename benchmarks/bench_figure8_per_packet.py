"""Figure 8: average per-packet run time, Filters 1-4 x {BPF, M3, M3-VIEW,
SFI, PCC}.

The paper's figure (microseconds on a 175 MHz Alpha 3000/600):

    Filter 1:  BPF 1.46?  M3-VIEW 0.33  SFI 0.11-ish  PCC 0.08-0.11
    (exact bar heights vary; the *claims* are: PCC fastest on every
    filter, PCC ~25% faster than SFI, VIEW ~20% faster than plain M3,
    BPF about 10x slower than PCC.)

We regenerate the same series on the synthetic trace: cost-model cycles
converted to microseconds at 175 MHz, with Python wall time as a sanity
column.  Verdicts are oracle-checked for every packet of every approach.
"""

from repro.perf import ALPHA_175, run_figure8
from repro.perf.harness import APPROACHES


def test_figure8(benchmark, trace, record, record_json):
    benchmarks = benchmark.pedantic(
        run_figure8, args=(trace,), rounds=1, iterations=1)

    rows = []
    for bench in benchmarks:
        for approach in APPROACHES:
            result = bench.results[approach]
            rows.append({
                "filter": result.filter_name,
                "approach": approach,
                "packets": result.packets,
                "accepted": result.accepted,
                "cycles": result.cycles,
                "instructions": result.instructions,
                "cycles_per_packet": result.cycles_per_packet,
                "us_per_packet_175mhz": result.us_per_packet(ALPHA_175),
                "python_us_per_packet": result.python_us_per_packet,
                "wall_seconds": result.wall_seconds,
            })
    record_json("figure8", {"packets": len(trace), "rows": rows})

    lines = [
        f"packets: {len(trace)} (paper: 200,000 from a busy CMU Ethernet)",
        f"{'filter':10} {'approach':9} {'cycles/pkt':>11} "
        f"{'us@175MHz':>10} {'py-us/pkt':>10} {'vs PCC':>7}",
    ]
    claims = []
    for bench in benchmarks:
        pcc = bench.results["pcc"].cycles_per_packet
        for approach in APPROACHES:
            result = bench.results[approach]
            lines.append(
                f"{result.filter_name:10} {approach:9} "
                f"{result.cycles_per_packet:11.1f} "
                f"{result.us_per_packet(ALPHA_175):10.3f} "
                f"{result.python_us_per_packet:10.1f} "
                f"{result.cycles_per_packet / pcc:6.2f}x")
        lines.append("")
        claims.append((bench.filter_name,
                       bench.results["bpf"].cycles_per_packet / pcc,
                       bench.results["sfi"].cycles_per_packet / pcc,
                       bench.results["m3"].cycles_per_packet
                       / bench.results["m3-view"].cycles_per_packet))

    lines.append("paper claims vs measured:")
    for name, bpf_ratio, sfi_ratio, view_gain in claims:
        lines.append(
            f"  {name}: BPF/PCC {bpf_ratio:4.1f}x (paper ~10x)   "
            f"SFI/PCC {sfi_ratio:4.2f}x (paper ~1.33x)   "
            f"M3/M3-VIEW {view_gain:4.2f}x (paper ~1.2x)")
    record("figure8_per_packet", lines)

    for bench in benchmarks:
        results = bench.results
        assert results["pcc"].cycles_per_packet == min(
            r.cycles_per_packet for r in results.values())
        assert results["bpf"].cycles_per_packet > \
            4 * results["pcc"].cycles_per_packet
