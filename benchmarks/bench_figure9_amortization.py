"""Figure 9: startup-cost amortization for Filter 4.

The paper plots cumulative cost (validation startup + per-packet time)
against packets processed and reads off the crossover points: PCC
overtakes BPF after ~1,200 packets, Modula-3 after ~10,500, and SFI after
~28,000 — "at about 1000 Ethernet packets per second", under half a
minute of traffic.

Unit discipline: per-packet costs come from the cycle model (as in
Figure 8).  Validation is a real computation we can only measure in
Python wall time, so it is converted into model microseconds with the
*measured Python-to-model ratio of native filter execution on this very
trace* — i.e. we assume the consumer's validator, like the filters,
runs natively on the modeled machine.  The paper's qualitative content is
the crossover ordering (BPF earliest, then Modula-3, then SFI) plus
PCC's startup being amortized within seconds of realistic traffic;
both are asserted below.
"""

import time

from repro.baselines.bpf.programs import BPF_FILTERS
from repro.baselines.bpf.verify import verify_bpf
from repro.baselines.m3.compile import compile_view
from repro.baselines.m3.programs import M3_VIEW_FILTERS
from repro.baselines.sfi.rewrite import sfi_rewrite
from repro.filters.programs import FILTERS
from repro.pcc import validate
from repro.pcc.loader import ExtensionLoader
from repro.perf import ALPHA_175, amortization_series, crossover, run_approach


def _startup_wall(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_figure9(benchmark, trace, certified_filters, filter_policy,
                 record, record_json):
    spec = FILTERS[3]  # filter4, as in the paper
    blob = certified_filters["filter4"].binary.to_bytes()

    def measure_per_packet():
        return {approach: run_approach(spec, approach, trace)
                for approach in ("pcc", "bpf", "sfi", "m3-view")}

    results = benchmark.pedantic(measure_per_packet, rounds=1,
                                 iterations=1)
    per_packet_us = {name: result.us_per_packet(ALPHA_175)
                     for name, result in results.items()}

    # Python-to-model scale factor, measured on the native PCC run.
    pcc = results["pcc"]
    scale = pcc.python_us_per_packet / pcc.us_per_packet(ALPHA_175)

    startup_wall = {
        "pcc": min(_startup_wall(lambda: validate(blob, filter_policy))
                   for __ in range(3)),
        "bpf": _startup_wall(lambda: verify_bpf(BPF_FILTERS["filter4"])),
        "sfi": _startup_wall(lambda: sfi_rewrite(spec.program)),
        "m3-view": _startup_wall(
            lambda: compile_view(M3_VIEW_FILTERS["filter4"])),
    }
    startup_us = {name: wall * 1e6 / scale
                  for name, wall in startup_wall.items()}

    # Warm load: the kernel reloading an already-validated filter pays
    # O(hash) against the loader's content-addressed cache, not the full
    # validation startup.
    loader = ExtensionLoader(filter_policy)
    loader.load(blob)
    warm_wall = min(_startup_wall(lambda: loader.load(blob))
                    for __ in range(5))
    warm_us = warm_wall * 1e6 / scale
    warm_speedup = startup_wall["pcc"] / warm_wall if warm_wall else 0.0

    lines = [
        f"python-to-model scale: {scale:.0f}x "
        f"(native filter wall vs modeled time)",
        "startup (modeled us):  " + "  ".join(
            f"{name}={startup_us[name]:.0f}" for name in startup_us),
        f"  (paper: PCC validation 1710 us for filter 4)",
        f"warm load (cache hit): {warm_us:.3f} modeled us — "
        f"{warm_speedup:,.0f}x below cold validation",
        "per packet (modeled us): " + "  ".join(
            f"{name}={per_packet_us[name]:.3f}" for name in startup_us),
        "",
        f"{'packets':>9}" + "".join(f"{name:>12}" for name in startup_us),
    ]
    horizon = 30000
    series = {name: amortization_series(startup_us[name],
                                        per_packet_us[name],
                                        horizon, points=9)
              for name in startup_us}
    for index in range(9):
        row = f"{series['pcc'][index].packets:>9}"
        for name in startup_us:
            row += f"{series[name][index].cumulative / 1000:12.2f}"
        lines.append(row + "   (modeled ms)")

    crossings = {}
    for rival in ("bpf", "m3-view", "sfi"):
        crossings[rival] = crossover(startup_us["pcc"],
                                     per_packet_us["pcc"],
                                     startup_us[rival],
                                     per_packet_us[rival])
    lines.append("")
    lines.append("crossover vs PCC (packets):")
    paper = {"bpf": 1200, "m3-view": 10500, "sfi": 28000}
    for rival, value in crossings.items():
        shown = f"{value:,.0f}" if value is not None else "never"
        lines.append(f"  {rival:8} measured {shown:>10}   "
                     f"(paper: {paper[rival]:,})")
    lines.append("")
    lines.append("at the paper's ~1000 packets/second, every crossover "
                 "lands within seconds of traffic")
    record("figure9_amortization", lines)
    record_json("figure9", {
        "packets": len(trace),
        "scale": scale,
        "startup_modeled_us": startup_us,
        "warm_load_modeled_us": warm_us,
        "warm_load_wall_seconds": warm_wall,
        "cold_startup_wall_seconds": startup_wall["pcc"],
        "warm_load_speedup": warm_speedup,
        "per_packet_modeled_us": per_packet_us,
        "crossover_packets": crossings,
    })

    # The paper's ordering: the bigger the per-packet gap, the earlier
    # the crossover.
    assert crossings["bpf"] is not None
    assert crossings["sfi"] is not None
    assert crossings["bpf"] < crossings["m3-view"] < crossings["sfi"]
