"""Ablation (§3.1): SFI write-only vs read+write sandboxing.

"If the entire code runs in a single protection domain ... and if only
memory writes are checked, then the run-time cost of SFI is relatively
small.  If ... the read operations must be checked also, the overhead of
the run-time checks can amount to 20%."

Packet filters are read-heavy, so checking reads is where SFI's cost
lives; we measure both modes against the unsandboxed (PCC) baseline.
"""

from repro.alpha.machine import Machine
from repro.baselines.sfi import SfiConfig, sfi_memory, sfi_registers, sfi_rewrite
from repro.filters.oracle import ORACLES
from repro.filters.programs import FILTERS
from repro.perf.cost import ALPHA_175


def _run(program, trace, name):
    cycles = 0
    oracle = ORACLES[name]
    for frame in trace:
        machine = Machine(program, sfi_memory(frame),
                          sfi_registers(len(frame)), cost_model=ALPHA_175)
        result = machine.run()
        assert bool(result.value) == oracle(frame)
        cycles += result.cycles
    return cycles / len(trace)


def test_sfi_modes(benchmark, trace, record):
    sample = trace[:max(1, len(trace) // 5)]

    def measure():
        rows = []
        for spec in FILTERS:
            bare = _run(spec.program, sample, spec.name)
            write_only = _run(
                sfi_rewrite(spec.program, SfiConfig(sandbox_reads=False)),
                sample, spec.name)
            full = _run(sfi_rewrite(spec.program), sample, spec.name)
            rows.append((spec.name, bare, write_only, full))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'filter':10} {'bare':>8} {'write-only':>11} "
             f"{'read+write':>11} {'wo-ovh':>8} {'rw-ovh':>8}"]
    for name, bare, write_only, full in rows:
        lines.append(
            f"{name:10} {bare:8.1f} {write_only:11.1f} {full:11.1f} "
            f"{write_only / bare - 1:7.0%} {full / bare - 1:7.0%}")
    lines.append("")
    lines.append("paper: write-only SFI is cheap; checking reads too "
                 "'can amount to 20%' (our read-heavy filters pay more, "
                 "since nearly every instruction is a checked load)")
    record("ablation_sfi_modes", lines)

    for name, bare, write_only, full in rows:
        assert bare <= write_only <= full