"""Dispatch-runtime throughput: packets/sec scaling across shards.

The paper stops at "validated code runs at native speed"; a kernel
actually *serving* traffic runs many extensions over many packets on
many cores.  This benchmark drives the full trace through
:class:`repro.runtime.PacketRuntime` with all four paper filters
attached and a cycle budget armed, at 1/2/4/8 shards, and reports

* **modeled aggregate throughput** — packets over the busiest shard's
  cycle clock at the Alpha's 175 MHz.  Shards are modeled cores, so
  this is the number that must scale: the acceptance bar is >= 2x
  going from 1 shard to 4 shards (near-linear in practice; the only
  loss is packet-mix imbalance between shards);
* **Python wall time** — the usual sanity column.  On CPython with a
  GIL the worker threads serialize, so wall time stays roughly flat
  across shard counts; on a free-threaded build it tracks the modeled
  scaling.  Either way the modeled metric is the figure of merit,
  exactly as in every other benchmark in this reproduction;
* **verdict stability** — per-extension accept counts must be
  bit-identical at every shard count (sharding may never change
  semantics), enforced here, with zero faults and zero quarantines.

Scale comes from the shared ``--packets`` / ``PCC_BENCH_PACKETS`` quick
mode; run with ``--packets 200000`` to reproduce at the paper's trace
length.  Results land in ``results/runtime_throughput.txt`` and
``results/BENCH_runtime.json``.
"""

from repro.runtime import PacketRuntime, RuntimeConfig

SHARD_COUNTS = (1, 2, 4, 8)

#: Generous per-invocation cycle budget: enforcement is *on* (every
#: dispatch pays the budget check, so the numbers include it) but no
#: paper filter comes near it on any frame.
CYCLE_BUDGET = 100_000


def test_runtime_throughput(benchmark, filter_policy, certified_filters,
                            trace, record, record_json):
    blobs = {name: certified.binary.to_bytes()
             for name, certified in certified_filters.items()
             if name.startswith("filter")}

    rows = []
    baseline_accepts: dict[str, int] | None = None

    def serve_all():
        for shards in SHARD_COUNTS:
            runtime = PacketRuntime(filter_policy, RuntimeConfig(
                shards=shards, cycle_budget=CYCLE_BUDGET,
                fault_threshold=3))
            for name, blob in blobs.items():
                runtime.attach(name, blob)
            report = runtime.serve(trace)
            snapshot = runtime.snapshot()
            accepts = {ext.name: ext.accepted
                       for ext in snapshot.extensions}
            nonlocal baseline_accepts
            if baseline_accepts is None:
                baseline_accepts = accepts
            # sharding may never change semantics
            assert accepts == baseline_accepts, \
                f"verdicts drifted at {shards} shards"
            assert snapshot.faults == 0
            assert all(ext.state == "active"
                       for ext in snapshot.extensions)
            rows.append({
                "shards": shards,
                "packets": report.packets,
                "modeled_pps": report.modeled_packets_per_second,
                "modeled_seconds": report.modeled_seconds,
                "wall_seconds": report.wall_seconds,
                "wall_pps": report.wall_packets_per_second,
                "shard_cycles": list(report.shard_cycles),
                "p99_cycles": {ext.name: ext.p99_cycles
                               for ext in snapshot.extensions},
            })

    benchmark.pedantic(serve_all, rounds=1, iterations=1)

    by_shards = {row["shards"]: row for row in rows}
    scaling_4x = by_shards[4]["modeled_pps"] / by_shards[1]["modeled_pps"]
    scaling_8x = by_shards[8]["modeled_pps"] / by_shards[1]["modeled_pps"]

    lines = [
        f"{len(blobs)} extensions (paper filters), "
        f"{rows[0]['packets']} packets, cycle budget {CYCLE_BUDGET}, "
        "fault threshold 3",
        "",
        f"{'shards':>6} {'modeled pkts/s':>15} {'modeled ms':>11} "
        f"{'python ms':>10} {'busiest-shard cycles':>21}",
    ]
    for row in rows:
        lines.append(
            f"{row['shards']:>6} {row['modeled_pps']:>15,.0f} "
            f"{row['modeled_seconds'] * 1e3:>11.2f} "
            f"{row['wall_seconds'] * 1e3:>10.1f} "
            f"{max(row['shard_cycles']):>21,}")
    lines += [
        "",
        f"scaling 1 -> 4 shards: {scaling_4x:.2f}x modeled aggregate "
        f"(acceptance bar: 2x)",
        f"scaling 1 -> 8 shards: {scaling_8x:.2f}x",
        "verdicts bit-identical across all shard counts; "
        "0 faults, 0 quarantines",
    ]
    record("runtime_throughput", lines)
    record_json("runtime", {
        "extensions": sorted(blobs),
        "cycle_budget": CYCLE_BUDGET,
        "rows": rows,
        "scaling_1_to_4": scaling_4x,
        "scaling_1_to_8": scaling_8x,
        "accepts": baseline_accepts,
    })

    assert scaling_4x >= 2.0, \
        f"1 -> 4 shards scaled only {scaling_4x:.2f}x"
