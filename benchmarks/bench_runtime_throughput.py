"""Dispatch-runtime throughput: packets/sec scaling across shards and
backends.

The paper stops at "validated code runs at native speed"; a kernel
actually *serving* traffic runs many extensions over many packets on
many cores.  This benchmark drives the full trace through
:class:`repro.runtime.PacketRuntime` with all four paper filters
attached and a cycle budget armed, at 1/2/4/8 shards under **both**
shard backends (in-process threads and shared-nothing forked worker
processes), and reports

* **modeled aggregate throughput** — packets over the busiest shard's
  cycle clock at the Alpha's 175 MHz.  Shards are modeled cores, so
  this is the number that must scale: the acceptance bar is >= 2x
  going from 1 shard to 4 shards (near-linear in practice; the only
  loss is packet-mix imbalance between shards);
* **wall throughput per backend** — no longer just a sanity column:
  the batch-compiled hot path (:mod:`repro.alpha.batch`) must deliver
  >= 10x the pre-batch ~48k pps single-shard baseline at full trace
  length, and the process backend must actually scale on wall clocks
  (>= 2x from 1 to 4 shards) when the host has the cores for it —
  threads stay GIL-flat on CPython, which is the regression this
  bench now documents per row instead of averaging away;
* **verdict stability** — per-extension accept counts must be
  bit-identical at every shard count *and on every backend* (neither
  sharding nor the worker vehicle may change semantics), enforced
  here, with zero faults and zero quarantines.

Scale comes from the shared ``--packets`` / ``PCC_BENCH_PACKETS`` quick
mode; run with ``--packets 200000`` to reproduce at the paper's trace
length.  Results land in ``results/runtime_throughput.txt`` and
``results/BENCH_runtime.json``.
"""

import os

from repro.runtime import PacketRuntime, RuntimeConfig

BACKENDS = ("thread", "process")
SHARD_COUNTS = (1, 2, 4, 8)

#: Generous per-invocation cycle budget: enforcement is *on* (every
#: dispatch pays the budget check, so the numbers include it) but no
#: paper filter comes near it on any frame.
CYCLE_BUDGET = 100_000

#: Single-shard wall pps of the pre-batching per-packet dispatch loop on
#: the reference 200k-packet trace (BENCH_runtime.json before the batch
#: path landed: 48,425 pps, flat across shard counts).  The tentpole
#: acceptance bar is 10x this.
BASELINE_WALL_PPS = 48_000

#: Wall-clock assertions only make sense at full trace length (startup
#: noise dominates quick mode) and, for parallel scaling, when the host
#: actually has cores to scale onto.
FULL_TRACE = 200_000


def test_runtime_throughput(benchmark, filter_policy, certified_filters,
                            trace, record, record_json):
    blobs = {name: certified.binary.to_bytes()
             for name, certified in certified_filters.items()
             if name.startswith("filter")}

    rows = []
    baseline_accepts: dict[str, int] | None = None

    def serve_all():
        for backend in BACKENDS:
            for shards in SHARD_COUNTS:
                runtime = PacketRuntime(filter_policy, RuntimeConfig(
                    shards=shards, backend=backend,
                    cycle_budget=CYCLE_BUDGET, fault_threshold=3))
                for name, blob in blobs.items():
                    runtime.attach(name, blob)
                report = runtime.serve(trace)
                snapshot = runtime.snapshot()
                accepts = {ext.name: ext.accepted
                           for ext in snapshot.extensions}
                nonlocal baseline_accepts
                if baseline_accepts is None:
                    baseline_accepts = accepts
                # neither sharding nor the backend may change semantics
                assert accepts == baseline_accepts, \
                    f"verdicts drifted at {shards} shards ({backend})"
                assert snapshot.faults == 0
                assert all(ext.state == "active"
                           for ext in snapshot.extensions)
                rows.append({
                    "backend": report.backend,
                    "shards": shards,
                    "packets": report.packets,
                    "modeled_pps": report.modeled_packets_per_second,
                    "modeled_seconds": report.modeled_seconds,
                    "wall_seconds": report.wall_seconds,
                    "wall_pps": report.wall_packets_per_second,
                    "shard_cycles": list(report.shard_cycles),
                    "p99_cycles": {ext.name: ext.p99_cycles
                                   for ext in snapshot.extensions},
                })

    benchmark.pedantic(serve_all, rounds=1, iterations=1)

    by_key = {(row["backend"], row["shards"]): row for row in rows}
    packets = rows[0]["packets"]
    # Modeled scaling is backend-independent (same cycle clocks); keep
    # the historical key computed from the thread rows.
    scaling_4x = (by_key["thread", 4]["modeled_pps"]
                  / by_key["thread", 1]["modeled_pps"])
    scaling_8x = (by_key["thread", 8]["modeled_pps"]
                  / by_key["thread", 1]["modeled_pps"])
    wall_scaling = {
        backend: {
            f"wall_scaling_1_to_{shards}":
                (by_key[backend, shards]["wall_pps"]
                 / by_key[backend, 1]["wall_pps"])
            for shards in SHARD_COUNTS[1:]
        }
        for backend in BACKENDS
    }
    best = max(rows, key=lambda row: row["wall_pps"])

    lines = [
        f"{len(blobs)} extensions (paper filters), "
        f"{packets} packets, cycle budget {CYCLE_BUDGET}, "
        "fault threshold 3",
        "",
        f"{'backend':>8} {'shards':>6} {'modeled pkts/s':>15} "
        f"{'modeled ms':>11} {'wall pkts/s':>12} {'wall ms':>9} "
        f"{'busiest-shard cycles':>21}",
    ]
    for row in rows:
        lines.append(
            f"{row['backend']:>8} {row['shards']:>6} "
            f"{row['modeled_pps']:>15,.0f} "
            f"{row['modeled_seconds'] * 1e3:>11.2f} "
            f"{row['wall_pps']:>12,.0f} "
            f"{row['wall_seconds'] * 1e3:>9.1f} "
            f"{max(row['shard_cycles']):>21,}")
    lines += [
        "",
        f"modeled scaling 1 -> 4 shards: {scaling_4x:.2f}x "
        f"(acceptance bar: 2x); 1 -> 8: {scaling_8x:.2f}x",
    ]
    for backend in BACKENDS:
        ratios = wall_scaling[backend]
        lines.append(
            f"wall scaling ({backend}): " + ", ".join(
                f"1->{shards}: "
                f"{ratios[f'wall_scaling_1_to_{shards}']:.2f}x"
                for shards in SHARD_COUNTS[1:]))
    lines += [
        f"best wall: {best['wall_pps']:,.0f} pps "
        f"({best['backend']}, {best['shards']} shard(s)) vs "
        f"{BASELINE_WALL_PPS:,} pps pre-batch baseline "
        f"({best['wall_pps'] / BASELINE_WALL_PPS:.1f}x)",
        f"host cores: {os.cpu_count()}",
        "verdicts bit-identical across all shard counts and backends; "
        "0 faults, 0 quarantines",
    ]
    record("runtime_throughput", lines)
    record_json("runtime", {
        "extensions": sorted(blobs),
        "cycle_budget": CYCLE_BUDGET,
        "host_cores": os.cpu_count(),
        "baseline_wall_pps": BASELINE_WALL_PPS,
        "rows": rows,
        "scaling_1_to_4": scaling_4x,
        "scaling_1_to_8": scaling_8x,
        "wall_scaling": wall_scaling,
        "best_wall_pps": best["wall_pps"],
        "accepts": baseline_accepts,
    })

    assert scaling_4x >= 2.0, \
        f"1 -> 4 shards scaled only {scaling_4x:.2f}x"
    if packets >= FULL_TRACE:
        # The tentpole bar: the batch-compiled hot path must beat the
        # pre-batch per-packet dispatch loop by an order of magnitude.
        assert best["wall_pps"] >= 10 * BASELINE_WALL_PPS, \
            f"best wall pps {best['wall_pps']:,.0f} < 10x baseline"
    if packets >= FULL_TRACE and (os.cpu_count() or 1) >= 4:
        # True-parallel scaling needs true cores; a 1-core container
        # cannot (and should not pretend to) scale on wall clocks.
        process_4x = wall_scaling["process"]["wall_scaling_1_to_4"]
        assert process_4x >= 2.0, \
            f"process backend wall scaling 1->4 only {process_4x:.2f}x"
