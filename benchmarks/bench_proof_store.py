"""Proof-store economics: incremental certification and shared bytes.

Table 1's proofs dwarf the code they certify (814-2190 B of proof for
16-172 B of code), and both costs repeat: an upgraded extension used to
re-prove every obligation its edit did not touch, and a fleet certified
under one policy used to carry the same subproofs once per extension.
The content-addressed store plus block-level proof patches
(`repro.proof.store`, `repro.pcc.incremental`) attack both.  Two
experiments over the multi-pass checksum workload
(`repro.filters.checksum.multipass_checksum_source`, one independent
obligation per pass):

* **upgrade chain** — each round commutes one more pass's address add
  (exactly one changed obligation) and certifies the result both from
  scratch and incrementally against the serving version; the acceptance
  bar is a >= 3x mean speedup on the warm single-block upgrades, and
  every reconstruction must pass full validation before it becomes the
  next serving version;
* **fleet sharing** — N single-pass variants certified into one shared
  store; stored bytes must stay sublinear in N, because each variant
  contributes one fresh subproof instead of a whole proof.  The
  baseline is what the same subproof blobs would occupy *without*
  content addressing (one copy per extension that carries them).

Results go to ``benchmarks/results/BENCH_proofstore.json`` (and a text
report next to it).  Quick mode: ``--packets 2000`` shrinks the chain
and the fleet, not the program (see ``conftest.proof_store_workload``).
"""

import time

from repro.filters.checksum import (
    checksum_policy,
    multipass_checksum_source,
    multipass_invariants,
)
from repro.pcc import certify, validate
from repro.pcc.container import PccBinary
from repro.pcc.incremental import (
    apply_patch,
    certify_incremental,
    harvest_subproofs,
)
from repro.proof.store import ProofStore

SPEEDUP_BAR = 3.0


def _wall(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def test_proof_store(benchmark, record, record_json, proof_store_workload):
    passes = proof_store_workload["passes"]
    policy = checksum_policy()
    invariants = multipass_invariants(passes)

    def source(commuted=()):
        return multipass_checksum_source(passes, commuted=commuted)

    base, base_seconds = _wall(
        lambda: certify(source(), policy, invariants=invariants))
    base_blob = base.binary.to_bytes()

    # -- upgrade chain: full vs incremental, one changed block/round ---
    def run_chain():
        store = ProofStore()
        rounds = []
        current = base_blob
        commuted = set()
        for round_index in range(proof_store_workload["chain_rounds"]):
            commuted.add(round_index % passes)
            upgraded = source(tuple(sorted(commuted)))
            __, full_seconds = _wall(
                lambda: certify(upgraded, policy, invariants=invariants))
            result, incremental_seconds = _wall(
                lambda: certify_incremental(current, upgraded, policy,
                                            invariants=invariants,
                                            store=store))
            assert result.proved_parts == 1  # single-block upgrade
            rebuilt = apply_patch(result.patch, current, policy,
                                  store=store)
            validate(rebuilt, policy)  # admission, not trust in the patch
            rounds.append({
                "round": round_index + 1,
                "full_seconds": full_seconds,
                "incremental_seconds": incremental_seconds,
                "speedup": full_seconds / incremental_seconds,
                "reused_parts": result.reused_parts,
                "proved_parts": result.proved_parts,
                "patch_bytes": result.patch_bytes,
                "full_proof_bytes": result.full_proof_bytes,
            })
            current = rebuilt.to_bytes()
        return rounds

    rounds = benchmark.pedantic(run_chain, rounds=1, iterations=1)
    # Round 1 pays the one-time harvest (unpack + split the base proof);
    # later rounds hit warm bindings — that is the steady upgrade state.
    warm = rounds[1:] or rounds
    warm_speedup = (sum(row["speedup"] for row in warm) / len(warm))

    # -- fleet sharing: N single-pass variants, one store --------------
    fleet_store = ProofStore()
    base_bindings = harvest_subproofs(PccBinary.from_bytes(base_blob),
                                      policy, fleet_store)

    def _blob_bytes(digests):
        return sum(len(fleet_store.get_blob(digest)) for digest in digests)

    unshared_bytes = _blob_bytes(base_bindings.values())
    fleet_rows = []
    for index in range(proof_store_workload["fleet"]):
        variant = source((index % passes,))
        result = certify_incremental(base_blob, variant, policy,
                                     invariants=invariants,
                                     store=fleet_store)
        unshared_bytes += _blob_bytes(result.patch.part_digests)
        stats = fleet_store.stats()
        fleet_rows.append({
            "extensions": index + 2,  # the base plus index+1 variants
            "store_bytes": stats.bytes_stored,
            "unshared_bytes": unshared_bytes,
            "shared_ratio": stats.bytes_stored / unshared_bytes,
        })

    lines = [f"{passes}-pass checksum, base certification "
             f"{base_seconds * 1000:7.1f} ms",
             "",
             f"{'round':>5} {'full ms':>9} {'incr ms':>9} {'speedup':>8} "
             f"{'reused':>6} {'patch B':>8} {'proof B':>8}"]
    for row in rounds:
        lines.append(
            f"{row['round']:>5} {row['full_seconds'] * 1000:>9.1f} "
            f"{row['incremental_seconds'] * 1000:>9.1f} "
            f"{row['speedup']:>7.1f}x "
            f"{row['reused_parts']:>4}/{row['reused_parts'] + row['proved_parts']} "
            f"{row['patch_bytes']:>8} {row['full_proof_bytes']:>8}")
    lines += ["",
              f"warm single-block upgrade speedup: {warm_speedup:.1f}x "
              f"(bar: >= {SPEEDUP_BAR:.0f}x)",
              "",
              f"{'exts':>5} {'store B':>9} {'unshared B':>11} "
              f"{'shared':>7}"]
    for row in fleet_rows:
        lines.append(f"{row['extensions']:>5} {row['store_bytes']:>9} "
                     f"{row['unshared_bytes']:>11} "
                     f"{row['shared_ratio']:>6.0%}")
    record("proof_store", lines)
    record_json("proofstore", {
        "passes": passes,
        "base_seconds": base_seconds,
        "chain": rounds,
        "warm_speedup": warm_speedup,
        "speedup_bar": SPEEDUP_BAR,
        "fleet": fleet_rows,
    })

    assert warm_speedup >= SPEEDUP_BAR
    for row in rounds:
        assert row["patch_bytes"] < row["full_proof_bytes"]
    # Sublinear shared bytes: the whole store is far smaller than the
    # proofs it replaces, and each extra extension dilutes the ratio.
    assert fleet_rows[-1]["shared_ratio"] < 0.5
    assert fleet_rows[-1]["shared_ratio"] < fleet_rows[0]["shared_ratio"]
