"""The write-capable extension family end to end: certification cost,
WCET-derived budgets, dispatch throughput, and the oracle differential.

The paper's Figure 8 measures read-only filters; this benchmark is the
same story for the store-bearing KV/NAT/LB family — certification is a
one-time cost (proof sizes and times per program), validation admits
each program onto the unbudgeted fast tier with an ``auto`` WCET
budget, and dispatch then runs at native engine speed with *zero*
run-time safety checks despite every program writing packet and
persistent-state memory on the hot path.

Two traces drive it: the Zipf key-popularity steady-state workload
(throughput rows) and the adversarial mix (a correctness gate — the
runtime's verdicts, rewrites, and final per-shard state must be
bit-identical to the pure-Python oracles; out-of-contract frames must
be shed at the boundary, never reach a certified program).

Scale comes from the shared ``--packets`` / ``PCC_BENCH_PACKETS``
quick mode.  Results land in ``results/kv_workload.txt`` and
``results/BENCH_kv.json``.
"""

import time

from repro.analysis import context_for_policy, estimate_wcet
from repro.filters.kv import (
    KV_PROGRAMS,
    kv_registers,
    oracle_run,
    reusable_kv_memory,
)
from repro.pcc import certify
from repro.runtime import PacketRuntime, RuntimeConfig


def _kv_runtime(kv_policy):
    return PacketRuntime(kv_policy, RuntimeConfig(
        shards=1, cycle_budget="auto",
        memory_factory=reusable_kv_memory, registers_fn=kv_registers))


def _contract_frames(trace):
    config = RuntimeConfig()
    return [frame for frame in trace
            if config.min_frame_bytes <= len(frame)
            <= config.max_frame_bytes]


def test_kv_workload(benchmark, kv_policy, kv_trace, adversarial_trace,
                     record, record_json):
    rows = []
    context = context_for_policy(kv_policy)

    def workload():
        rows.clear()
        for spec in KV_PROGRAMS:
            started = time.perf_counter()
            certified = certify(spec.source, kv_policy,
                                invariants=spec.invariants())
            certify_seconds = time.perf_counter() - started
            blob = certified.binary.to_bytes()

            # Steady state: the Zipf trace through a one-shard runtime.
            runtime = _kv_runtime(kv_policy)
            extension = runtime.attach(spec.name, blob)
            assert extension.batch_runner is None  # generic-engine path
            report = runtime.serve(kv_trace)
            snapshot = runtime.snapshot()
            ext = snapshot.extensions[0]

            # Correctness gate: the adversarial trace, against the
            # oracle, down to the final persistent-state bytes.
            hostile = _kv_runtime(kv_policy)
            hostile.attach(spec.name, blob)
            hostile_report = hostile.dispatch(adversarial_trace,
                                              collect=True)
            kept = _contract_frames(adversarial_trace)
            verdicts, __, state = oracle_run(spec.name, kept)
            got = [record_[spec.name] for record_ in
                   hostile_report.records]
            assert got == verdicts, spec.name
            want_state = b"".join(word.to_bytes(8, "little")
                                  for word in state)
            state_identical = bytes(
                hostile.shards[0].memory.region("state")) == want_state
            assert state_identical, spec.name
            assert hostile_report.contract_drops \
                == len(adversarial_trace) - len(kept)

            wcet = estimate_wcet(extension.program, context)
            rows.append({
                "name": spec.name,
                "description": spec.description,
                "instructions": len(extension.program),
                "invariants": len(spec.invariants()),
                "proof_bytes": len(certified.binary.proof),
                "certify_seconds": certify_seconds,
                "wcet_cycles": wcet.bound,
                "cycle_budget": extension.cycle_budget,
                "packets": report.packets,
                "accepted": ext.accepted,
                "accept_rate": ext.accepted / report.packets,
                "mean_cycles": ext.cycles / report.packets,
                "p99_cycles": ext.p99_cycles,
                "modeled_pps": report.modeled_packets_per_second,
                "wall_pps": report.wall_packets_per_second,
                "faults": snapshot.faults,
                "adversarial_packets": hostile_report.packets,
                "adversarial_drops": hostile_report.contract_drops,
                "state_identical": state_identical,
            })

    benchmark.pedantic(workload, rounds=1, iterations=1)

    assert len(rows) >= 4
    assert all(row["invariants"] >= 1 for row in rows)
    assert all(row["faults"] == 0 for row in rows)
    assert all(row["state_identical"] for row in rows)
    assert all(row["cycle_budget"] == row["wcet_cycles"] for row in rows)

    lines = [
        f"{len(rows)} store-bearing extensions, "
        f"{rows[0]['packets']} Zipf packets, "
        f"{rows[0]['adversarial_packets']} adversarial packets kept "
        f"({rows[0]['adversarial_drops']} shed by contract), "
        "1 shard, cycle budget auto (= WCET)",
        "",
        f"{'program':>12} {'insns':>5} {'proof B':>8} {'cert ms':>8} "
        f"{'WCET cyc':>8} {'mean cyc':>9} {'p99 cyc':>8} "
        f"{'accept':>7} {'modeled pkts/s':>15} {'wall pkts/s':>12}",
    ]
    for row in rows:
        lines.append(
            f"{row['name']:>12} {row['instructions']:>5} "
            f"{row['proof_bytes']:>8,} "
            f"{row['certify_seconds'] * 1e3:>8.1f} "
            f"{row['wcet_cycles']:>8} {row['mean_cycles']:>9.1f} "
            f"{row['p99_cycles']:>8} {row['accept_rate']:>6.1%} "
            f"{row['modeled_pps']:>15,.0f} {row['wall_pps']:>12,.0f}")
    lines += [
        "",
        "all programs: >= 1 loop invariant, 0 faults, auto budget == "
        "WCET bound,",
        "adversarial post-state (packet rewrites + persistent table) "
        "bit-identical to the pure-Python oracle",
    ]
    record("kv_workload", lines)
    record_json("kv", {
        "programs": [row["name"] for row in rows],
        "zipf_packets": rows[0]["packets"],
        "adversarial_packets": rows[0]["adversarial_packets"],
        "adversarial_drops": rows[0]["adversarial_drops"],
        "rows": rows,
    })
