"""Extension-loader throughput: warm admission and batch validation.

The paper's Figure 9 amortizes validation against *execution*; a kernel
serving heavy traffic also reloads the same few extensions constantly,
so the loader amortizes validation across *reloads*: a warm (cache-hit)
load is an SHA-256 plus a dict probe.  This benchmark measures

* cold ``validate()`` vs warm ``loader.load()`` per admission — the
  acceptance bar is a >= 50x speedup (in practice it is thousands);
* batch admission throughput, sequential vs ``multiprocessing`` pool,
  with verdict-identity checked item for item;
* steady-state reload throughput (loads/second against a warm cache).

Scale comes from the shared ``--packets`` / ``PCC_BENCH_PACKETS`` quick
mode (see ``conftest.loader_workload``), so CI can run a reduced
workload with e.g. ``pytest benchmarks/bench_loader_throughput.py
--packets 2000``.
"""

import time

from repro.errors import ValidationError
from repro.pcc import certify, validate
from repro.pcc.loader import ExtensionLoader
from repro.perf import effective_startup


def _wall(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _distinct_sources(count: int) -> list[str]:
    """Tiny, distinct, certifiable filter programs."""
    return [f"LDQ r4, {8 * (index % 8)}(r1)\n"
            f"ADDQ r4, {index + 1}, r0\nRET"
            for index in range(count)]


def test_loader_throughput(benchmark, filter_policy, certified_filters,
                           loader_workload, record, record_json):
    blobs = {name: certified.binary.to_bytes()
             for name, certified in certified_filters.items()}

    # -- cold vs warm single admission (filter4, as in Figure 9) -------
    cold_seconds = {name: min(_wall(lambda b=blob:
                                    validate(b, filter_policy))
                              for __ in range(3))
                    for name, blob in blobs.items()}
    loader = ExtensionLoader(filter_policy)
    for blob in blobs.values():
        loader.load(blob)

    warm_loads = loader_workload["warm_loads"]
    items = list(blobs.values())

    def reload_storm():
        for index in range(warm_loads):
            loader.load(items[index % len(items)])

    storm_seconds = benchmark.pedantic(lambda: _wall(reload_storm),
                                       rounds=1, iterations=1)
    warm_per_load = storm_seconds / warm_loads
    cold_mean = sum(cold_seconds.values()) / len(cold_seconds)
    speedup = cold_mean / warm_per_load
    # per-admission startup once one cold validation is amortized over
    # the reload storm (the loader's analogue of Figure 9)
    effective = effective_startup(cold_mean, warm_per_load, warm_loads)

    # -- batch admission: sequential vs process pool -------------------
    sources = _distinct_sources(loader_workload["distinct_programs"])
    distinct = [certify(source, filter_policy).binary.to_bytes()
                for source in sources]
    corrupt = [blob[:-4] for blob in distinct[:2]]
    submissions = (distinct + corrupt) * loader_workload["batch_copies"]

    # explicit processes=2 so the fork pool really engages even on a
    # single-core machine (processes=None resolves to cpu_count there,
    # which falls back to the serial path)
    sequential_loader = ExtensionLoader(filter_policy, capacity=256)
    sequential_seconds = _wall(
        lambda: sequential_loader.validate_batch(submissions,
                                                 processes=0))
    parallel_loader = ExtensionLoader(filter_policy, capacity=256)
    parallel_seconds = _wall(
        lambda: parallel_loader.validate_batch(submissions, processes=2))

    sequential_items = sequential_loader.validate_batch(submissions,
                                                        processes=0)
    parallel_items = parallel_loader.validate_batch(submissions,
                                                    processes=2)
    assert [item.ok for item in sequential_items] \
        == [item.ok for item in parallel_items]
    rejected = sum(1 for item in sequential_items if not item.ok)
    assert rejected == 2 * loader_workload["batch_copies"]

    stats = loader.stats()
    lines = [
        f"cold validate (s):   " + "  ".join(
            f"{name}={seconds * 1e3:.1f}ms"
            for name, seconds in cold_seconds.items()),
        f"warm load:           {warm_per_load * 1e6:.1f} us/load over "
        f"{warm_loads} reloads "
        f"({warm_loads / storm_seconds:,.0f} loads/s)",
        f"warm speedup:        {speedup:,.0f}x vs cold validation "
        f"(acceptance bar: 50x)",
        f"effective startup:   {effective * 1e6:.1f} us/admission after "
        f"{warm_loads} reloads (cold: {cold_mean * 1e6:,.0f} us)",
        "",
        f"batch of {len(submissions)} submissions "
        f"({len(distinct)} distinct valid, {len(corrupt)} distinct "
        f"corrupt, x{loader_workload['batch_copies']} copies):",
        f"  sequential:        {sequential_seconds * 1e3:.1f} ms "
        f"({len(submissions) / sequential_seconds:,.0f} items/s)",
        f"  process pool:      {parallel_seconds * 1e3:.1f} ms "
        f"({len(submissions) / parallel_seconds:,.0f} items/s)",
        f"  per-item isolation: {rejected} corrupt items rejected, "
        f"all others admitted",
        "",
        f"reload-storm cache:  {stats.hits} hits / {stats.misses} "
        f"misses / {stats.evictions} evictions "
        f"({stats.hit_rate:.1%} hit rate)",
    ]
    record("loader_throughput", lines)
    record_json("loader", {
        "cold_validate_seconds": cold_seconds,
        "warm_load_seconds": warm_per_load,
        "warm_loads": warm_loads,
        "warm_loads_per_second": warm_loads / storm_seconds,
        "warm_speedup": speedup,
        "effective_startup_seconds": effective,
        "batch_items": len(submissions),
        "batch_sequential_seconds": sequential_seconds,
        "batch_parallel_seconds": parallel_seconds,
        "batch_rejected_items": rejected,
        "cache": {
            "loads": stats.loads,
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
        },
    })

    # the acceptance bar: warm admission must be at least 50x cheaper
    assert speedup >= 50, f"warm load only {speedup:.1f}x faster"

    # sanity: the loader's own verdicts agree with cold validation
    for blob in distinct:
        assert loader.load(blob).program == \
            validate(blob, filter_policy).program
    for blob in corrupt:
        try:
            validate(blob, filter_policy)
            raise AssertionError("corrupt blob validated cold")
        except ValidationError:
            pass
