"""Startup-cost amortization (Figure 9).

PCC pays a one-time proof-validation cost and then runs checkless; the
other approaches start (almost) immediately but pay per packet.  Figure 9
plots cumulative cost against packets processed for Filter 4; the
interesting numbers are the *crossover points* — the paper reports
roughly 1,200 packets against BPF, 10,500 against Modula-3, and 28,000
against SFI, and notes the trace source averaged ~1000 packets/second,
so even the largest crossover is under half a minute of traffic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AmortizationPoint:
    packets: int
    cumulative: float  # same unit as the inputs (seconds or cycles)


def amortization_series(startup: float, per_packet: float,
                        max_packets: int,
                        points: int = 50) -> list[AmortizationPoint]:
    """Cumulative cost at evenly spaced packet counts."""
    if points < 2:
        raise ValueError("need at least two points")
    series = []
    for step in range(points):
        packets = round(step * max_packets / (points - 1))
        series.append(AmortizationPoint(
            packets, startup + packets * per_packet))
    return series


def crossover(startup_a: float, per_packet_a: float,
              startup_b: float, per_packet_b: float) -> float | None:
    """Packets after which approach *a* (higher startup, cheaper packets)
    becomes cheaper than approach *b*; None if it never does."""
    if per_packet_a >= per_packet_b:
        return None
    return (startup_a - startup_b) / (per_packet_b - per_packet_a)


def effective_startup(cold_startup: float, warm_startup: float,
                      reloads: int) -> float:
    """Average per-admission startup when one cold validation is followed
    by cache-hit reloads (the extension loader's amortization axis:
    Figure 9 amortizes validation against *packets*, this amortizes it
    against *reloads* of the same binary)."""
    if reloads < 1:
        raise ValueError("need at least one load")
    return (cold_startup + (reloads - 1) * warm_startup) / reloads


def reload_series(cold_startup: float, warm_startup: float,
                  max_reloads: int,
                  points: int = 50) -> list[AmortizationPoint]:
    """Cumulative admission cost against reload count — the warm-cache
    analogue of :func:`amortization_series` (``packets`` counts reloads;
    the first admission is cold, the rest hit the cache)."""
    if points < 2:
        raise ValueError("need at least two points")
    series = []
    for step in range(points):
        reloads = round(step * max_reloads / (points - 1))
        cumulative = 0.0 if reloads == 0 else \
            cold_startup + (reloads - 1) * warm_startup
        series.append(AmortizationPoint(reloads, cumulative))
    return series
