"""The cycle cost model standing in for the DEC Alpha 3000/600.

Per-instruction charges approximate a 21064 (EV4) with warm caches:

====================  ======  ==========================================
instruction class     cycles  rationale
====================  ======  ==========================================
integer operate            1  single-issue ALU
LDA / LDAH                 1  ALU add
LDQ                        3  D-cache hit latency
STQ                        1  write buffer absorbs it
conditional branch         2  average over predicted/mispredicted
BR / RET                   2  taken control transfer
MULQ                      23  EV4 integer multiply latency
====================  ======  ==========================================

The BPF interpreter charges :data:`BPF_DISPATCH_CYCLES` per VM
instruction on top of the operation's own work — fetch, decode, bounds
setup and the switch dispatch of the OSF/1 C interpreter, roughly 15-20
machine instructions.  This single constant is the only calibrated value
in the model; the paper observes BPF filters "about 10 times slower" than
PCC and the default lands in that regime without per-filter tuning.

Cycles convert to microseconds at 175 MHz for presentation next to the
paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alpha.isa import (
    Br,
    Branch,
    Instruction,
    Lda,
    Ldah,
    Ldq,
    Operate,
    Ret,
    Stq,
)

#: Interpreter overhead per BPF VM instruction (see module docstring).
BPF_DISPATCH_CYCLES = 22

#: Extra cycles the BPF interpreter spends on a checked packet load
#: (bounds comparison + byte assembly from an unaligned buffer).
BPF_LOAD_CHECK_CYCLES = 8


@dataclass(frozen=True)
class AlphaCostModel:
    """Cycle charges per instruction class; override fields to explore."""

    operate: int = 1
    multiply: int = 23
    load: int = 3
    store: int = 1
    load_address: int = 1
    branch: int = 2
    jump: int = 2
    clock_mhz: float = 175.0

    def cycles(self, instruction: Instruction) -> int:
        if isinstance(instruction, Operate):
            if instruction.name == "MULQ":
                return self.multiply
            return self.operate
        if isinstance(instruction, Ldq):
            return self.load
        if isinstance(instruction, Stq):
            return self.store
        if isinstance(instruction, (Lda, Ldah)):
            return self.load_address
        if isinstance(instruction, Branch):
            return self.branch
        if isinstance(instruction, (Br, Ret)):
            return self.jump
        raise TypeError(f"no cost for {instruction!r}")  # pragma: no cover

    def microseconds(self, cycles: int) -> float:
        """Convert cycles to microseconds at the modelled clock."""
        return cycles / self.clock_mhz


#: The default model used throughout the benchmarks.
ALPHA_175 = AlphaCostModel()
