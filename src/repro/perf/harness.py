"""Measurement pipelines for the paper's evaluation (Figure 8, Table 1).

Each *approach* turns a filter into something executable and then filters
the whole trace, counting cost-model cycles and wall time:

==========  ===============================================================
pcc         the validated native program on the concrete machine
            (zero run-time checks — this is the whole point)
sfi         the same program after SFI rewriting (sandboxing instructions)
m3          the safe-language filter compiled byte-at-a-time with checks
m3-view     the safe-language filter compiled with VIEW word access
bpf         the BPF program under the checked interpreter
bpf-jit     the BPF program compiled to (certifiable) native code — the
            "replace the interpreter with a compiler" variant of §3.1
==========  ===============================================================

Every approach's verdict is cross-checked against the Python oracle for
every packet, so a benchmark run is also a correctness run; a mismatch
raises immediately rather than producing a pretty but wrong table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.alpha.engine import ExecutionEngine
from repro.baselines.bpf.interp import BpfInterpreter
from repro.baselines.bpf.programs import BPF_FILTERS
from repro.baselines.bpf.verify import verify_bpf
from repro.baselines.m3.compile import compile_plain, compile_view
from repro.baselines.m3.programs import M3_FILTERS, M3_VIEW_FILTERS
from repro.baselines.sfi.policy import reusable_sfi_memory, sfi_registers
from repro.baselines.sfi.rewrite import sfi_rewrite
from repro.errors import PccError
from repro.filters.oracle import ORACLES
from repro.filters.policy import filter_registers, reusable_packet_memory
from repro.filters.programs import FILTERS, FilterSpec
from repro.perf.cost import ALPHA_175, AlphaCostModel

APPROACHES = ("bpf", "bpf-jit", "m3", "m3-view", "sfi", "pcc")


@dataclass(frozen=True)
class ApproachResult:
    """Per-(filter, approach) measurements over one trace."""

    filter_name: str
    approach: str
    packets: int
    accepted: int
    cycles: int
    instructions: int
    wall_seconds: float

    @property
    def cycles_per_packet(self) -> float:
        return self.cycles / self.packets

    def us_per_packet(self, model: AlphaCostModel = ALPHA_175) -> float:
        """Modeled microseconds per packet at the Alpha's clock."""
        return model.microseconds(self.cycles) / self.packets

    @property
    def python_us_per_packet(self) -> float:
        return self.wall_seconds * 1e6 / self.packets


@dataclass(frozen=True)
class FilterBenchmark:
    """All approaches for one filter."""

    filter_name: str
    results: dict[str, ApproachResult]


def _run_alpha(spec: FilterSpec, program, trace, memory_factory,
               registers_fn, model: AlphaCostModel) -> ApproachResult:
    """Run one native program over the trace on the threaded-code engine.

    The program is translated once (the engine's code cache makes repeat
    benchmarks free) and one kernel-side memory is reused across frames:
    the per-packet work is rebinding the packet region, resetting the
    registers, and the engine's closure loop.
    """
    oracle = ORACLES[spec.name]
    engine = ExecutionEngine(program, cost_model=model)
    memory, rebind = memory_factory()
    run = engine.run
    cycles = 0
    instructions = 0
    accepted = 0
    started = time.perf_counter()
    for frame in trace:
        rebind(frame)
        result = run(memory, registers_fn(len(frame)))
        verdict = bool(result.value)
        cycles += result.cycles
        instructions += result.instructions
        accepted += verdict
        if verdict != oracle(frame):
            raise PccError(
                f"{spec.name}: verdict mismatch against the oracle")
    wall = time.perf_counter() - started
    return ApproachResult(spec.name, "?", len(trace), accepted, cycles,
                          instructions, wall)


def run_approach(spec: FilterSpec, approach: str, trace: list[bytes],
                 model: AlphaCostModel = ALPHA_175) -> ApproachResult:
    """Filter ``trace`` with one approach; oracle-checked throughout."""
    if approach == "pcc":
        result = _run_alpha(spec, spec.program, trace,
                            reusable_packet_memory, filter_registers, model)
    elif approach == "sfi":
        rewritten = sfi_rewrite(spec.program)
        result = _run_alpha(spec, rewritten, trace, reusable_sfi_memory,
                            sfi_registers, model)
    elif approach == "bpf-jit":
        from repro.baselines.bpf.compile import compile_bpf
        program = compile_bpf(BPF_FILTERS[spec.name])
        result = _run_alpha(spec, program, trace, reusable_packet_memory,
                            filter_registers, model)
    elif approach == "m3":
        program = compile_plain(M3_FILTERS[spec.name])
        result = _run_alpha(spec, program, trace, reusable_packet_memory,
                            filter_registers, model)
    elif approach == "m3-view":
        program = compile_view(M3_VIEW_FILTERS[spec.name])
        result = _run_alpha(spec, program, trace, reusable_packet_memory,
                            filter_registers, model)
    elif approach == "bpf":
        program = BPF_FILTERS[spec.name]
        verify_bpf(program)
        interpreter = BpfInterpreter(program)
        oracle = ORACLES[spec.name]
        cycles = 0
        instructions = 0
        accepted = 0
        started = time.perf_counter()
        for frame in trace:
            stats = interpreter.run(frame)
            verdict = bool(stats.verdict)
            cycles += stats.cycles
            instructions += stats.instructions
            accepted += verdict
            if verdict != oracle(frame):
                raise PccError(
                    f"{spec.name}: BPF verdict mismatch against the oracle")
        wall = time.perf_counter() - started
        result = ApproachResult(spec.name, approach, len(trace), accepted,
                                cycles, instructions, wall)
    else:
        raise ValueError(f"unknown approach {approach!r}")
    return ApproachResult(spec.name, approach, result.packets,
                          result.accepted, result.cycles,
                          result.instructions, result.wall_seconds)


def run_figure8(trace: list[bytes],
                filters: tuple[FilterSpec, ...] = FILTERS,
                approaches: tuple[str, ...] = APPROACHES,
                model: AlphaCostModel = ALPHA_175,
                ) -> list[FilterBenchmark]:
    """Average per-packet run time, every filter x every approach."""
    benchmarks = []
    for spec in filters:
        results = {approach: run_approach(spec, approach, trace, model)
                   for approach in approaches}
        benchmarks.append(FilterBenchmark(spec.name, results))
    return benchmarks


def run_table1(filters: tuple[FilterSpec, ...] = FILTERS,
               repeats: int = 3) -> list[dict]:
    """Instruction counts, PCC binary sizes, validation times and peak
    validation memory — the rows of Table 1.

    The container blob is parsed once and reused, and the memory
    measurement rides the first of the ``repeats`` timed validations
    instead of a fourth full run (tracemalloc slows that run down, so
    ``min`` over the remaining repeats still reports an unperturbed
    time; with ``repeats=1`` the measured run is all there is).
    """
    from repro.filters.policy import packet_filter_policy
    from repro.pcc import certify, validate
    from repro.pcc.container import PccBinary

    policy = packet_filter_policy()
    rows = []
    for spec in filters:
        certified = certify(spec.source, policy)
        blob = certified.binary.to_bytes()
        binary = PccBinary.from_bytes(blob)
        reports = [validate(binary, policy, measure_memory=(index == 0))
                   for index in range(max(repeats, 1))]
        timed = reports[1:] if len(reports) > 1 else reports
        rows.append({
            "filter": spec.name,
            "instructions": len(certified.program),
            "binary_bytes": certified.binary.size,
            "code_bytes": len(certified.binary.code),
            "relocation_bytes": len(certified.binary.relocation),
            "proof_bytes": len(certified.binary.proof),
            "validation_seconds": min(report.validation_seconds
                                      for report in timed),
            "peak_memory_kb": reports[0].peak_memory_bytes / 1024,
        })
    return rows
