"""Performance harness: cost model, per-approach pipelines, amortization.

The paper measures wall-clock microseconds on a 175 MHz DEC Alpha
3000/600.  Our substrate is a simulator, so the primary metric is
*cost-model cycles* (converted to microseconds at 175 MHz for
presentation), with Python wall time reported alongside as a sanity
check.  The model is deliberately simple — per-instruction-class cycle
charges plus an interpreter dispatch charge for BPF — because the paper's
claims are structural: PCC runs the bare hand-tuned code, SFI runs the
same code plus sandboxing instructions, M3 runs compiled code plus bounds
checks, and BPF pays dispatch on every VM instruction.

(The harness symbols are loaded lazily: the baselines import the cost
model from here, and the harness imports the baselines.)
"""

from repro.perf.cost import AlphaCostModel, ALPHA_175, BPF_DISPATCH_CYCLES
from repro.perf.amortize import (
    AmortizationPoint,
    amortization_series,
    crossover,
    effective_startup,
    reload_series,
)

__all__ = [
    "AlphaCostModel",
    "ALPHA_175",
    "BPF_DISPATCH_CYCLES",
    "ApproachResult",
    "FilterBenchmark",
    "run_figure8",
    "run_table1",
    "run_approach",
    "APPROACHES",
    "AmortizationPoint",
    "amortization_series",
    "crossover",
    "effective_startup",
    "reload_series",
]

_HARNESS_NAMES = ("ApproachResult", "FilterBenchmark", "run_figure8",
                  "run_table1", "run_approach", "APPROACHES")


def __getattr__(name: str):
    if name in _HARNESS_NAMES:
        from repro.perf import harness
        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
