"""The LF signature: first-order logic + the rule set Delta.

The signature is the consumer's *published safety-policy logic* (paper
§2.1: "a set of axioms that can be used to validate the safety predicate").
It declares:

* the syntactic classes ``tm`` (individuals), ``mem`` (memory states) and
  ``form`` (formulas), with one constructor per logic operator/predicate;
* the judgement ``pf : form -> type``;
* one constant per inference rule.  Purely logical rules (and the
  arithmetic rules whose premises fully constrain them, like
  ``add64_exact``) are ordinary LF constants.  Schemas whose soundness
  depends on *literal* values (mask disjointness, ground evaluation,
  Fourier-Motzkin) carry a side condition: a decidable predicate on the
  application spine, run by the type checker at every full application.

Side conditions delegate to the same rule functions the Delta checker
uses (:mod:`repro.proof.rules`), decoding the LF arguments back into logic
terms first — one implementation of the arithmetic, two proof formats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import LfError, ProofError
from repro.lf.encode import decode_logic_formula, decode_logic_term
from repro.lf.syntax import (
    KIND,
    LfApp,
    LfConst,
    LfInt,
    LfLam,
    LfPi,
    LfTerm,
    LfVar,
    TYPE,
)
from repro.logic.formulas import Atom, Truth, conjuncts
from repro.logic.terms import App, OPS, WORD_MOD
from repro.proof.rules import RULES

SideCondition = Callable[[Sequence[LfTerm]], bool]


@dataclass(frozen=True)
class SigEntry:
    """One signature declaration."""

    name: str
    ty: LfTerm
    side_condition: SideCondition | None = None
    side_arity: int = 0


@dataclass(frozen=True)
class Signature:
    entries: dict[str, SigEntry]


# -- a tiny named-binder builder (converted to de Bruijn below) -------------

@dataclass(frozen=True)
class _Ref:
    """A named variable reference inside a signature type skeleton."""

    name: str


def _to_db(term, stack: tuple[str, ...]) -> LfTerm:
    if isinstance(term, _Ref):
        for distance, name in enumerate(reversed(stack)):
            if name == term.name:
                return LfVar(distance)
        raise LfError(f"unbound reference {term.name!r} in signature")
    if isinstance(term, (LfConst, LfInt)):
        return term
    if isinstance(term, LfApp):
        return LfApp(_to_db(term.fn, stack), _to_db(term.arg, stack))
    if isinstance(term, LfPi):
        return LfPi(_to_db(term.dom, stack),
                    _to_db(term.cod, stack + (term.hint,)), term.hint)
    if isinstance(term, LfLam):
        return LfLam(_to_db(term.ty, stack),
                     _to_db(term.body, stack + (term.hint,)), term.hint)
    raise LfError(f"bad signature skeleton node: {term!r}")


def _pi(name: str, dom, cod) -> LfPi:
    return LfPi(dom, cod, hint=name)


def _arrow(dom, cod) -> LfPi:
    # Non-dependent function space; the codomain ignores the binder, and
    # because references are named, no shifting is needed at build time.
    return LfPi(dom, cod, hint="_")


def _app(fn, *args):
    result = fn
    for arg in args:
        result = LfApp(result, arg)
    return result


_TM = LfConst("tm")
_MEM = LfConst("mem")
_FORM = LfConst("form")
_PF = LfConst("pf")


def _pf(formula) -> LfTerm:
    return LfApp(_PF, formula)


def _arrows(*types) -> LfTerm:
    result = types[-1]
    for dom in reversed(types[:-1]):
        result = _arrow(dom, result)
    return result


# -- side conditions ---------------------------------------------------------

def _delegate(rule: str, goal_builder) -> SideCondition:
    """Build a side condition that decodes the spine and re-checks the
    corresponding Delta rule (ignoring its premise obligations, which the
    LF type already enforces)."""

    def condition(args: Sequence[LfTerm]) -> bool:
        try:
            goal = goal_builder(args)
            RULES[rule](goal, (), {})
        except (LfError, ProofError):
            return False
        return True

    return condition


def _dt(term: LfTerm):
    return decode_logic_term(term)


def _sc_arith_eval(args: Sequence[LfTerm]) -> bool:
    try:
        goal = decode_logic_formula(args[0])
        RULES["arith_eval"](goal, (), {})
    except (LfError, ProofError):
        return False
    return True


def _sc_linarith(args: Sequence[LfTerm]) -> bool:
    try:
        premises_formula = decode_logic_formula(args[0])
        goal = decode_logic_formula(args[1])
        if isinstance(premises_formula, Truth):
            premises: tuple = ()
        else:
            parts = conjuncts(premises_formula)
            if not all(isinstance(part, Atom) for part in parts):
                return False
            premises = tuple(parts)
        RULES["linarith"](goal, premises, {})
    except (LfError, ProofError):
        return False
    return True


def _mk_eq(a, b) -> Atom:
    return Atom("eq", (a, b))


_SC = {
    "arith_eval": (_sc_arith_eval, 1),
    "mod_word": (_delegate(
        "mod_word",
        lambda a: _mk_eq(App("mod64", (_dt(a[0]),)), _dt(a[0]))), 1),
    "norm_mod_eq": (_delegate(
        "norm_mod_eq",
        lambda a: _mk_eq(App("mod64", (_dt(a[0]),)),
                         App("mod64", (_dt(a[1]),)))), 2),
    "word_ge0": (_delegate(
        "word_ge0",
        lambda a: Atom("ge", (_dt(a[0]), _int(0)))), 1),
    "word_lt_mod": (_delegate(
        "word_lt_mod",
        lambda a: Atom("lt", (_dt(a[0]), _int(WORD_MOD)))), 1),
    "and_ubound": (_delegate(
        "and_ubound",
        lambda a: Atom("le", (App("and64", (_dt(a[0]), _dt(a[1]))),
                              _dt(a[1])))), 2),
    "and_mask_disjoint": (_delegate(
        "and_mask_disjoint",
        lambda a: _mk_eq(App("and64", (App("and64", (_dt(a[0]), _dt(a[1]))),
                                       _dt(a[2]))), _int(0))), 3),
    "add_align": (_delegate(
        "add_align",
        lambda a: _mk_eq(App("and64", (App("add64", (_dt(a[0]), _dt(a[1]))),
                                       _dt(a[2]))), _int(0))), 5),
    "srl_bound": (_delegate(
        "srl_bound",
        lambda a: Atom("lt", (App("srl64", (_dt(a[0]), _dt(a[1]))),
                              _dt(a[2])))), 3),
    "sll_align": (_delegate(
        "sll_align",
        lambda a: _mk_eq(App("and64", (App("sll64", (_dt(a[0]), _dt(a[1]))),
                                       _dt(a[2]))), _int(0))), 3),
    "extbl_bound": (_delegate(
        "ext_bound",
        lambda a: Atom("lt", (App("extbl", (_dt(a[0]), _dt(a[1]))),
                              _dt(a[2])))), 3),
    "extwl_bound": (_delegate(
        "ext_bound",
        lambda a: Atom("lt", (App("extwl", (_dt(a[0]), _dt(a[1]))),
                              _dt(a[2])))), 3),
    "extll_bound": (_delegate(
        "ext_bound",
        lambda a: Atom("lt", (App("extll", (_dt(a[0]), _dt(a[1]))),
                              _dt(a[2])))), 3),
    "or_disjoint": (_delegate(
        "or_disjoint",
        lambda a: _mk_eq(
            App("or64", (App("and64", (_dt(a[0]), _dt(a[1]))), _dt(a[2]))),
            App("add64", (App("and64", (_dt(a[0]), _dt(a[1]))),
                          _dt(a[2]))))), 4),
    "linarith": (_sc_linarith, 3),
}


def _sc_sll_ubound(args: Sequence[LfTerm]) -> bool:
    try:
        a = _dt(args[0])
        k = _dt(args[1])
        m = _dt(args[2])
        c = _dt(args[3])
        goal = Atom("le", (App("sll64", (a, k)), c))
        RULES["sll_ubound"](goal, (m,), {})
    except (LfError, ProofError):
        return False
    return True


_SC["sll_ubound"] = (_sc_sll_ubound, 6)


def _sc_shift_trunc_le(args: Sequence[LfTerm]) -> bool:
    try:
        a = _dt(args[0])
        k = _dt(args[1])
        inner = App("srl64", (a, k))
        goal = Atom("le", (App("sll64", (inner, k)), App("mod64", (a,))))
        RULES["shift_trunc_le"](goal, (), {})
    except (LfError, ProofError):
        return False
    return True


def _sc_sll_lt_of_srl(args: Sequence[LfTerm]) -> bool:
    try:
        a = _dt(args[0])
        k = _dt(args[1])
        b = _dt(args[2])
        goal = Atom("lt", (App("sll64", (a, k)), App("mod64", (b,))))
        RULES["sll_lt_of_srl"](goal, (b,), {})
    except (LfError, ProofError):
        return False
    return True


_SC["shift_trunc_le"] = (_sc_shift_trunc_le, 2)
_SC["sll_lt_of_srl"] = (_sc_sll_lt_of_srl, 4)


def _sc_and_submask(args: Sequence[LfTerm]) -> bool:
    """and_submask carries its wide mask as a rule *parameter*, so the
    delegate pattern does not fit; re-check the literal condition here."""
    try:
        goal = _mk_eq(App("and64", (_dt(args[0]), _dt(args[2]))), _int(0))
        RULES["and_submask"](goal, (_dt(args[1]),), {})
    except (LfError, ProofError):
        return False
    return True


_SC["and_submask"] = (_sc_and_submask, 4)


def _int(value: int):
    from repro.logic.terms import Int
    return Int(value)


# -- the signature -----------------------------------------------------------

def _build_signature() -> Signature:
    entries: dict[str, SigEntry] = {}

    def declare(name: str, ty, side: str | None = None) -> None:
        converted = _to_db(ty, ())
        if side is not None:
            condition, arity = _SC[side]
            entries[name] = SigEntry(name, converted, condition, arity)
        else:
            entries[name] = SigEntry(name, converted)

    # Syntactic classes.
    declare("tm", TYPE)
    declare("mem", TYPE)
    declare("form", TYPE)
    declare("pf", _arrow(_FORM, TYPE))

    # Term constructors, straight from the logic operator table.
    for op, spec in OPS.items():
        if op == "sel":
            declare(op, _arrows(_MEM, _TM, _TM))
        elif op == "upd":
            declare(op, _arrows(_MEM, _TM, _TM, _MEM))
        else:
            declare(op, _arrows(*([_TM] * spec.arity), _TM))

    # Machine-state constants: free registers in loop invariants encode as
    # these (the VC generator closes over them when building the SP).
    for index in range(11):
        declare(f"r{index}", _TM)
    declare("rm", _MEM)

    # Formula constructors.
    declare("true", _FORM)
    declare("false", _FORM)
    for connective in ("and", "or", "imp"):
        declare(connective, _arrows(_FORM, _FORM, _FORM))
    for pred in ("eq", "ne", "lt", "le", "gt", "ge"):
        declare(pred, _arrows(_TM, _TM, _FORM))
    for pred in ("rd", "wr"):
        declare(pred, _arrow(_TM, _FORM))
    declare("all", _arrow(_arrow(_TM, _FORM), _FORM))
    declare("allm", _arrow(_arrow(_MEM, _FORM), _FORM))

    a, b, c = _Ref("a"), _Ref("b"), _Ref("c")
    t, m = _Ref("t"), _Ref("m")
    p = _Ref("p")

    # Predicate calculus.
    declare("truei", _pf(LfConst("true")))
    declare("andi", _pi("a", _FORM, _pi("b", _FORM, _arrows(
        _pf(a), _pf(b), _pf(_app(LfConst("and"), a, b))))))
    declare("andel", _pi("a", _FORM, _pi("b", _FORM, _arrow(
        _pf(_app(LfConst("and"), a, b)), _pf(a)))))
    declare("ander", _pi("a", _FORM, _pi("b", _FORM, _arrow(
        _pf(_app(LfConst("and"), a, b)), _pf(b)))))
    declare("impi", _pi("a", _FORM, _pi("b", _FORM, _arrow(
        _arrow(_pf(a), _pf(b)), _pf(_app(LfConst("imp"), a, b))))))
    declare("impe", _pi("a", _FORM, _pi("b", _FORM, _arrows(
        _pf(_app(LfConst("imp"), a, b)), _pf(a), _pf(b)))))
    declare("alli", _pi("p", _arrow(_TM, _FORM), _arrow(
        _pi("x", _TM, _pf(_app(p, _Ref("x")))),
        _pf(_app(LfConst("all"), p)))))
    declare("alle", _pi("p", _arrow(_TM, _FORM), _pi("t", _TM, _arrow(
        _pf(_app(LfConst("all"), p)), _pf(_app(p, t))))))
    declare("alli_m", _pi("p", _arrow(_MEM, _FORM), _arrow(
        _pi("x", _MEM, _pf(_app(p, _Ref("x")))),
        _pf(_app(LfConst("allm"), p)))))
    declare("alle_m", _pi("p", _arrow(_MEM, _FORM), _pi("t", _MEM, _arrow(
        _pf(_app(LfConst("allm"), p)), _pf(_app(p, t))))))
    declare("ori1", _pi("a", _FORM, _pi("b", _FORM, _arrow(
        _pf(a), _pf(_app(LfConst("or"), a, b))))))
    declare("ori2", _pi("a", _FORM, _pi("b", _FORM, _arrow(
        _pf(b), _pf(_app(LfConst("or"), a, b))))))
    declare("ore", _pi("a", _FORM, _pi("b", _FORM, _pi("c", _FORM, _arrows(
        _pf(_app(LfConst("or"), a, b)),
        _pf(_app(LfConst("imp"), a, c)),
        _pf(_app(LfConst("imp"), b, c)),
        _pf(c))))))
    declare("falsee", _pi("a", _FORM, _arrow(
        _pf(LfConst("false")), _pf(a))))

    def eq_f(x, y):
        return _app(LfConst("eq"), x, y)

    declare("eqrefl", _pi("t", _TM, _pf(eq_f(t, t))))
    declare("eqsym", _pi("a", _TM, _pi("b", _TM, _arrow(
        _pf(eq_f(a, b)), _pf(eq_f(b, a))))))
    declare("eqtrans", _pi("a", _TM, _pi("m", _TM, _pi("b", _TM, _arrows(
        _pf(eq_f(a, m)), _pf(eq_f(m, b)), _pf(eq_f(a, b)))))))
    declare("eqsub", _pi("p", _arrow(_TM, _FORM),
                         _pi("a", _TM, _pi("b", _TM, _arrows(
                             _pf(eq_f(a, b)), _pf(_app(p, a)),
                             _pf(_app(p, b)))))))

    # Arithmetic schemas.
    def mod64_t(x):
        return _app(LfConst("mod64"), x)

    declare("arith_eval", _pi("f", _FORM, _pf(_Ref("f"))),
            side="arith_eval")
    declare("mod_word", _pi("t", _TM, _pf(eq_f(mod64_t(t), t))),
            side="mod_word")
    declare("norm_mod_eq", _pi("a", _TM, _pi("b", _TM, _pf(
        eq_f(mod64_t(a), mod64_t(b))))), side="norm_mod_eq")
    declare("word_ge0", _pi("t", _TM, _pf(
        _app(LfConst("ge"), t, LfInt(0)))), side="word_ge0")
    declare("word_lt_mod", _pi("t", _TM, _pf(
        _app(LfConst("lt"), t, LfInt(WORD_MOD)))), side="word_lt_mod")

    for name, (op, flag_pred, conclusion_pred) in (
            ("cmpult_true", ("cmpult", "ne", "lt")),
            ("cmpult_false", ("cmpult", "eq", "ge")),
            ("cmpule_true", ("cmpule", "ne", "le")),
            ("cmpule_false", ("cmpule", "eq", "gt")),
            ("cmpeq_true", ("cmpeq", "ne", "eq")),
            ("cmpeq_false", ("cmpeq", "eq", "ne"))):
        flag = _app(LfConst(op), a, b)
        declare(name, _pi("a", _TM, _pi("b", _TM, _arrow(
            _pf(_app(LfConst(flag_pred), flag, LfInt(0))),
            _pf(_app(LfConst(conclusion_pred), mod64_t(a), mod64_t(b)))))))

    declare("add64_exact", _pi("a", _TM, _pi("b", _TM, _arrows(
        _pf(_app(LfConst("ge"), a, LfInt(0))),
        _pf(_app(LfConst("ge"), b, LfInt(0))),
        _pf(_app(LfConst("lt"), _app(LfConst("add"), a, b),
                 LfInt(WORD_MOD))),
        _pf(eq_f(_app(LfConst("add64"), a, b),
                 _app(LfConst("add"), a, b)))))))
    declare("sub64_exact", _pi("a", _TM, _pi("b", _TM, _arrows(
        _pf(_app(LfConst("ge"), b, LfInt(0))),
        _pf(_app(LfConst("le"), b, a)),
        _pf(_app(LfConst("lt"), a, LfInt(WORD_MOD))),
        _pf(eq_f(_app(LfConst("sub64"), a, b),
                 _app(LfConst("sub"), a, b)))))))

    declare("and_ubound", _pi("a", _TM, _pi("c", _TM, _pf(
        _app(LfConst("le"), _app(LfConst("and64"), a, c), c)))),
        side="and_ubound")
    declare("and_mask_disjoint", _pi("a", _TM, _pi("b", _TM, _pi(
        "c", _TM, _pf(eq_f(
            _app(LfConst("and64"), _app(LfConst("and64"), a, b), c),
            LfInt(0)))))), side="and_mask_disjoint")
    declare("add_align", _pi("a", _TM, _pi("b", _TM, _pi("m", _TM, _arrows(
        _pf(eq_f(_app(LfConst("and64"), a, m), LfInt(0))),
        _pf(eq_f(_app(LfConst("and64"), b, m), LfInt(0))),
        _pf(eq_f(_app(LfConst("and64"), _app(LfConst("add64"), a, b), m),
                 LfInt(0))))))), side="add_align")
    declare("srl_bound", _pi("a", _TM, _pi("b", _TM, _pi("c", _TM, _pf(
        _app(LfConst("lt"), _app(LfConst("srl64"), a, b), c))))),
        side="srl_bound")
    declare("sll_align", _pi("a", _TM, _pi("b", _TM, _pi("c", _TM, _pf(
        eq_f(_app(LfConst("and64"), _app(LfConst("sll64"), a, b), c),
             LfInt(0)))))), side="sll_align")
    for ext_op in ("extbl", "extwl", "extll"):
        declare(f"{ext_op}_bound",
                _pi("a", _TM, _pi("b", _TM, _pi("c", _TM, _pf(
                    _app(LfConst("lt"), _app(LfConst(ext_op), a, b),
                         c))))), side=f"{ext_op}_bound")

    declare("sel_upd_same", _pi("m", _MEM, _pi("a", _TM, _pi(
        "v", _TM, _pi("b", _TM, _arrow(
            _pf(eq_f(mod64_t(a), mod64_t(b))),
            _pf(eq_f(_app(LfConst("sel"),
                          _app(LfConst("upd"), m, a, _Ref("v")), b),
                     mod64_t(_Ref("v"))))))))))
    declare("sel_upd_other", _pi("m", _MEM, _pi("a", _TM, _pi(
        "v", _TM, _pi("b", _TM, _arrow(
            _pf(_app(LfConst("ne"), mod64_t(a), mod64_t(b))),
            _pf(eq_f(_app(LfConst("sel"),
                          _app(LfConst("upd"), m, a, _Ref("v")), b),
                     _app(LfConst("sel"), m, b)))))))))

    def mod64_ref(x):
        return _app(LfConst("mod64"), x)

    declare("sll_ubound", _pi("a", _TM, _pi("k", _TM, _pi(
        "m", _TM, _pi("c", _TM, _arrows(
            _pf(_app(LfConst("ge"), a, LfInt(0))),
            _pf(_app(LfConst("le"), a, _Ref("m"))),
            _pf(_app(LfConst("le"),
                     _app(LfConst("sll64"), a, _Ref("k")),
                     _Ref("c")))))))), side="sll_ubound")

    declare("shift_trunc_le", _pi("a", _TM, _pi("k", _TM, _pf(
        _app(LfConst("le"),
             _app(LfConst("sll64"),
                  _app(LfConst("srl64"), a, _Ref("k")), _Ref("k")),
             mod64_ref(a))))), side="shift_trunc_le")
    declare("sll_lt_of_srl", _pi("a", _TM, _pi("k", _TM, _pi(
        "b", _TM, _arrow(
            _pf(_app(LfConst("lt"), mod64_ref(a),
                     mod64_ref(_app(LfConst("srl64"), b, _Ref("k"))))),
            _pf(_app(LfConst("lt"),
                     _app(LfConst("sll64"), a, _Ref("k")),
                     mod64_ref(b))))))), side="sll_lt_of_srl")

    declare("or_disjoint", _pi("x", _TM, _pi("c", _TM, _pi("b", _TM, _arrow(
        _pf(eq_f(_app(LfConst("and64"), b, c), LfInt(0))),
        _pf(eq_f(
            _app(LfConst("or64"),
                 _app(LfConst("and64"), _Ref("x"), c), b),
            _app(LfConst("add64"),
                 _app(LfConst("and64"), _Ref("x"), c), b))))))),
        side="or_disjoint")
    declare("and_submask", _pi("a", _TM, _pi("c1", _TM, _pi(
        "c2", _TM, _arrow(
            _pf(eq_f(_app(LfConst("and64"), a, _Ref("c1")), LfInt(0))),
            _pf(eq_f(_app(LfConst("and64"), a, _Ref("c2")),
                     LfInt(0))))))), side="and_submask")

    for cmp_op in ("cmpeq", "cmpult", "cmpule"):
        flag = _app(LfConst(cmp_op), a, b)
        declare(f"{cmp_op}_bool", _pi("a", _TM, _pi("b", _TM, _pf(
            _app(LfConst("or"),
                 eq_f(flag, LfInt(0)), eq_f(flag, LfInt(1)))))))

    declare("linarith", _pi("a", _FORM, _pi("c", _FORM, _arrow(
        _pf(a), _pf(c)))), side="linarith")

    return Signature(entries)


#: The published signature — part of the consumer's safety policy.
SIGNATURE = _build_signature()
