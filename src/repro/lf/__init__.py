"""The Edinburgh Logical Framework (LF) layer — proof representation and
validation by type checking (paper §2.3).

The paper represents predicates and proofs in LF so that "the validity of a
proof is implied by the well-typedness of the proof representation[;] proof
validation amounts to typechecking".  This package implements that stack:

* :mod:`repro.lf.syntax` — the dependently typed lambda calculus (de Bruijn
  terms, substitution, beta normalization),
* :mod:`repro.lf.typecheck` — the type checker, the consumer's trusted core,
* :mod:`repro.lf.signature` — first-order logic plus the rule set Delta as
  an LF signature; arithmetic schemas carry *computational side conditions*
  (the analogue of the paper's "predicate calculus extended with
  two's-complement integer arithmetic"),
* :mod:`repro.lf.encode` — encoding of formulas, terms and natural-deduction
  proofs into LF objects (and the decoding used by side conditions),
* :mod:`repro.lf.binary` — the binary wire format with its symbol table
  (the PCC binary's relocation + proof sections, Figure 7).
"""

from repro.lf.syntax import (
    LfApp,
    LfConst,
    LfInt,
    LfLam,
    LfPi,
    LfTerm,
    LfVar,
    TYPE,
    KIND,
    lf_app,
    lf_size,
    normalize,
)
from repro.lf.typecheck import infer_type, check_proof_term
from repro.lf.signature import SIGNATURE, Signature, SigEntry
from repro.lf.encode import (
    encode_term,
    encode_formula,
    encode_proof,
    decode_logic_term,
    decode_logic_formula,
)
from repro.lf.binary import serialize_lf, deserialize_lf

__all__ = [
    "LfApp",
    "LfConst",
    "LfInt",
    "LfLam",
    "LfPi",
    "LfTerm",
    "LfVar",
    "TYPE",
    "KIND",
    "lf_app",
    "lf_size",
    "normalize",
    "infer_type",
    "check_proof_term",
    "SIGNATURE",
    "Signature",
    "SigEntry",
    "encode_term",
    "encode_formula",
    "encode_proof",
    "decode_logic_term",
    "decode_logic_formula",
    "serialize_lf",
    "deserialize_lf",
]
