"""Binary wire format for LF objects — the PCC binary's proof encoding.

The paper (§2.3): "we have designed a binary encoding of LF
representations ... a typical PCC binary contains a section with the native
code ..., followed by a symbol table used to reconstruct the LF
representation at the code consumer site, and the binary encoding of the LF
representation of the safety proof."

This module implements exactly that split:

* the **symbol table** interns every distinct constant name used by the
  proof (it is what the paper calls the *relocation section*: its size
  "increases linearly with the number of distinct proof rules used");
* the **term stream** is a compact prefix encoding, one tag byte per node,
  with varint-coded integers and symbol references.

Deserialization is fully validating: truncated input, unknown tags, or
out-of-range symbol indices raise :class:`repro.errors.LfError` — a
tampered proof section cannot crash the consumer.
"""

from __future__ import annotations

from repro.errors import LfError
from repro.lf.syntax import (
    LfApp,
    LfConst,
    LfInt,
    LfLam,
    LfPi,
    LfTerm,
    LfVar,
)

_TAG_CONST = 0x01
_TAG_VAR = 0x02
_TAG_INT = 0x03
_TAG_APP = 0x04
_TAG_LAM = 0x05
_TAG_PI = 0x06
_TAG_REF = 0x07  # back-reference to an earlier compound node (DAG sharing)


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise LfError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise LfError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 1024:
            raise LfError("varint too long")


def _collect_symbols(term: LfTerm, symbols: dict[str, int]) -> None:
    stack = [term]
    seen: set[int] = set()  # proof objects are DAGs; visit nodes once
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, LfConst):
            if node.name not in symbols:
                symbols[node.name] = len(symbols)
        elif isinstance(node, LfApp):
            stack.append(node.fn)
            stack.append(node.arg)
        elif isinstance(node, LfLam):
            stack.append(node.ty)
            stack.append(node.body)
        elif isinstance(node, LfPi):
            stack.append(node.dom)
            stack.append(node.cod)


def serialize_lf(term: LfTerm, share: bool = True) -> tuple[bytes, bytes]:
    """Serialize to ``(symbol_table, term_stream)``.

    The two sections are returned separately because the PCC container
    places them at different offsets (Figure 7) and reports their sizes
    separately (Table 1's discussion of relocation-section growth).

    With ``share`` (the default), repeated compound subterms are emitted
    once and back-referenced afterwards — safety-predicate proofs repeat
    the same formula encodings constantly, so this is the optimization
    that makes PCC binaries small (the paper: "we have implemented several
    optimizations in the representation of the proofs").  ``share=False``
    is the naive tree encoding, kept for the ablation benchmark.
    """
    symbols: dict[str, int] = {}
    _collect_symbols(term, symbols)

    table = bytearray()
    _write_varint(table, len(symbols))
    for name in symbols:  # insertion order == index order
        encoded = name.encode("utf-8")
        _write_varint(table, len(encoded))
        table.extend(encoded)

    stream = bytearray()
    emitted: dict[LfTerm, int] = {}
    compound_count = 0

    def emit(node: LfTerm) -> None:
        nonlocal compound_count
        if isinstance(node, LfConst):
            stream.append(_TAG_CONST)
            _write_varint(stream, symbols[node.name])
            return
        if isinstance(node, LfVar):
            stream.append(_TAG_VAR)
            _write_varint(stream, node.index)
            return
        if isinstance(node, LfInt):
            stream.append(_TAG_INT)
            # Zigzag so the (rare) negative literal still encodes.
            value = node.value
            if value >= 0:
                _write_varint(stream, value << 1)
            else:
                _write_varint(stream, ((-value) << 1) | 1)
            return
        if share:
            reference = emitted.get(node)
            if reference is not None:
                stream.append(_TAG_REF)
                _write_varint(stream, reference)
                return
        if isinstance(node, LfApp):
            stream.append(_TAG_APP)
            emit(node.fn)
            emit(node.arg)
        elif isinstance(node, LfLam):
            stream.append(_TAG_LAM)
            emit(node.ty)
            emit(node.body)
        elif isinstance(node, LfPi):
            stream.append(_TAG_PI)
            emit(node.dom)
            emit(node.cod)
        else:
            raise LfError(f"cannot serialize {node!r}")
        if share:
            # Registered *after* children so references are to completed
            # nodes; ids are assigned in completion order, matching the
            # decoder.
            emitted[node] = compound_count
            compound_count += 1

    emit(term)
    return bytes(table), bytes(stream)


def deserialize_lf(table: bytes, stream: bytes,
                   max_nodes: int = 5_000_000) -> LfTerm:
    """Rebuild an LF term from its two sections, validating as it goes."""
    count, offset = _read_varint(table, 0)
    if count > len(table):
        raise LfError("symbol table length is implausible")
    names: list[str] = []
    for __ in range(count):
        length, offset = _read_varint(table, offset)
        if offset + length > len(table):
            raise LfError("truncated symbol table")
        try:
            names.append(table[offset:offset + length].decode("utf-8"))
        except UnicodeDecodeError as error:
            raise LfError("symbol table is not valid UTF-8") from error
        offset += length
    if offset != len(table):
        raise LfError("trailing bytes in symbol table")

    position = 0
    nodes = 0
    compounds: list[LfTerm] = []

    def read() -> LfTerm:
        nonlocal position, nodes
        nodes += 1
        if nodes > max_nodes:
            raise LfError("proof term too large")
        if position >= len(stream):
            raise LfError("truncated term stream")
        tag = stream[position]
        position += 1
        if tag == _TAG_CONST:
            index, pos = _read_varint(stream, position)
            position = pos
            if index >= len(names):
                raise LfError(f"symbol index {index} out of range")
            return LfConst(names[index])
        if tag == _TAG_VAR:
            index, pos = _read_varint(stream, position)
            position = pos
            return LfVar(index)
        if tag == _TAG_INT:
            raw, pos = _read_varint(stream, position)
            position = pos
            value = -(raw >> 1) if raw & 1 else raw >> 1
            return LfInt(value)
        if tag == _TAG_REF:
            index, pos = _read_varint(stream, position)
            position = pos
            if index >= len(compounds):
                raise LfError(f"back-reference {index} out of range")
            return compounds[index]
        if tag == _TAG_APP:
            fn = read()
            arg = read()
            result: LfTerm = LfApp(fn, arg)
        elif tag == _TAG_LAM:
            ty = read()
            body = read()
            result = LfLam(ty, body)
        elif tag == _TAG_PI:
            dom = read()
            cod = read()
            result = LfPi(dom, cod)
        else:
            raise LfError(f"unknown term tag {tag:#x}")
        # Completion order mirrors the encoder's id assignment, and the
        # shared node becomes a shared Python object — the type checker's
        # memoization relies on exactly this.
        compounds.append(result)
        return result

    term = read()
    if position != len(stream):
        raise LfError("trailing bytes in term stream")
    return term
