"""The LF type checker — the consumer's trusted proof validator.

Standard LF checking specialized to inference: every term's type (or kind)
is synthesized, applications substitute into Pi codomains, and definitional
equality is beta conversion.  The paper stresses that "typechecking is
decidable and is described by a few simple rules ... so simple that any
programmers who do not trust the publicly available implementation can
implement it easily themselves"; :class:`_Checker` is the whole algorithm.

Performance notes (they do not affect what is accepted):

* proof terms arrive from the wire as DAGs — identical subterms are the
  same Python object — so inference and normalization are memoized by
  object identity plus context identity;
* contexts are cons-lists, so extending a context preserves the identity
  of the shared tail.

One extension (documented in :mod:`repro.lf.signature`): signature
constants may carry a *side condition*, a decidable predicate on the
argument spine that is checked at every full application.  This implements
the paper's "predicate calculus extended with two's-complement integer
arithmetic" — the logical skeleton is pure LF, the arithmetic literals are
checked computationally.
"""

from __future__ import annotations

from repro.errors import LfError
from repro.lf.signature import Signature
from repro.lf.syntax import (
    KIND,
    LfApp,
    LfConst,
    LfInt,
    LfLam,
    LfPi,
    LfTerm,
    LfVar,
    TYPE,
    normalize,
    shift,
    spine,
    subst,
    whnf,
)

#: Context as a cons-list: None or (type, parent).  Sharing the tail keeps
#: context identity stable for memoization.
Ctx = tuple | None


def _free_indices(term: LfTerm, cache: dict) -> frozenset:
    """Free de Bruijn indices of ``term`` (DAG-cached by identity)."""
    if isinstance(term, LfVar):
        return frozenset((term.index,))
    if isinstance(term, (LfConst, LfInt)):
        return frozenset()
    cached = cache.get(id(term))
    if cached is not None:
        return cached[1]
    if isinstance(term, LfApp):
        result = (_free_indices(term.fn, cache)
                  | _free_indices(term.arg, cache))
    elif isinstance(term, LfLam):
        result = (_free_indices(term.ty, cache)
                  | frozenset(i - 1
                              for i in _free_indices(term.body, cache)
                              if i > 0))
    elif isinstance(term, LfPi):
        result = (_free_indices(term.dom, cache)
                  | frozenset(i - 1
                              for i in _free_indices(term.cod, cache)
                              if i > 0))
    else:
        raise LfError(f"not an LF term: {term!r}")
    cache[id(term)] = (term, result)
    return result



class _Checker:
    def __init__(self, signature: Signature, max_depth: int) -> None:
        self.signature = signature
        self.max_depth = max_depth
        # Memo tables hold strong references to their keys, so ids stay
        # valid for the checker's lifetime.
        self._infer_memo: dict[tuple, tuple] = {}
        self._norm_memo: dict[int, tuple] = {}
        self._free_memo: dict[int, tuple] = {}

    def normalized(self, term: LfTerm) -> LfTerm:
        # The memo is shared across calls (normalize stores
        # (original, normal-form) pairs keyed by node identity), so
        # repeated comparisons over the proof DAG stay linear.
        return normalize(term, self._norm_memo)

    def equal(self, a: LfTerm, b: LfTerm) -> bool:
        if a == b:
            return True
        return self.normalized(a) == self.normalized(b)

    def _lookup(self, ctx: Ctx, index: int) -> LfTerm:
        walked = 0
        while ctx is not None:
            ty, parent = ctx
            if walked == index:
                return shift(ty, index + 1)
            walked += 1
            ctx = parent
        raise LfError(f"unbound de Bruijn index {index}")

    def infer(self, term: LfTerm, ctx: Ctx, depth: int) -> LfTerm:
        if depth > self.max_depth:
            raise LfError("type checking exceeded maximum depth")
        # The inferred type depends only on the context entries the term's
        # free variables resolve to — keying on those (instead of the
        # whole context chain) lets join-point subterms shared across
        # branch arms type-check once instead of once per path.
        key = (id(term), self._ctx_fingerprint(term, ctx))
        memo = self._infer_memo.get(key)
        if memo is not None:
            return memo[2]
        result = self._infer(term, ctx, depth)
        self._infer_memo[key] = (term, ctx, result)
        return result

    def _ctx_fingerprint(self, term: LfTerm, ctx: Ctx) -> tuple:
        indices = _free_indices(term, self._free_memo)
        if not indices:
            return ()
        fingerprint = []
        position = 0
        node = ctx
        for index in sorted(indices):
            while node is not None and position < index:
                node = node[1]
                position += 1
            if node is None:
                # Unbound index: let _infer raise the proper error; an
                # impossible fingerprint avoids false cache hits.
                fingerprint.append((index, -1))
            else:
                fingerprint.append((index, id(node[0])))
        return tuple(fingerprint)

    def _infer(self, term: LfTerm, ctx: Ctx, depth: int) -> LfTerm:
        if isinstance(term, LfConst):
            if term == TYPE:
                return KIND
            entry = self.signature.entries.get(term.name)
            if entry is None:
                raise LfError(f"undeclared constant {term.name!r}")
            return entry.ty
        if isinstance(term, LfVar):
            return self._lookup(ctx, term.index)
        if isinstance(term, LfInt):
            return LfConst("tm")
        if isinstance(term, LfPi):
            dom_sort = whnf(self.infer(term.dom, ctx, depth + 1))
            if dom_sort != TYPE:
                raise LfError("Pi domain is not a type")
            cod_sort = whnf(self.infer(term.cod, (term.dom, ctx),
                                       depth + 1))
            if cod_sort not in (TYPE, KIND):
                raise LfError("Pi codomain is neither a type nor a kind")
            return cod_sort
        if isinstance(term, LfLam):
            dom_sort = whnf(self.infer(term.ty, ctx, depth + 1))
            if dom_sort != TYPE:
                raise LfError("lambda annotation is not a type")
            body_ty = self.infer(term.body, (term.ty, ctx), depth + 1)
            return LfPi(term.ty, body_ty, term.hint)
        if isinstance(term, LfApp):
            fn_ty = whnf(self.infer(term.fn, ctx, depth + 1))
            if not isinstance(fn_ty, LfPi):
                raise LfError("application of a non-function")
            arg_ty = self.infer(term.arg, ctx, depth + 1)
            if not self.equal(arg_ty, fn_ty.dom):
                raise LfError("argument type mismatch")
            self._side_condition(term)
            return subst(fn_ty.cod, term.arg)
        raise LfError(f"not an LF term: {term!r}")

    def _side_condition(self, application: LfApp) -> None:
        head, args = spine(application)
        if not isinstance(head, LfConst):
            return
        entry = self.signature.entries.get(head.name)
        if entry is None or entry.side_condition is None:
            return
        if len(args) != entry.side_arity:
            return
        if not entry.side_condition(args):
            raise LfError(
                f"side condition of {head.name!r} failed — the proof "
                f"instantiates an arithmetic schema unsoundly")


def infer_type(term: LfTerm, signature: Signature,
               context: list[LfTerm] | None = None,
               max_depth: int = 10_000) -> LfTerm:
    """Synthesize the type (or kind) of ``term``.

    ``context`` lists binder types innermost-first.  Raises
    :class:`LfError` if the term is ill-typed or a side condition fails.
    """
    ctx: Ctx = None
    for ty in reversed(context or []):  # push outermost first
        ctx = (ty, ctx)
    return _Checker(signature, max_depth).infer(term, ctx, 0)


def check_proof_term(proof_term: LfTerm, expected_type: LfTerm,
                     signature: Signature,
                     max_depth: int = 10_000) -> None:
    """Validate a proof: ``proof_term`` must have exactly ``expected_type``
    (up to beta).  This is the paper's whole validation step — the expected
    type is ``pf (encoding of the consumer-computed safety predicate)``.
    """
    checker = _Checker(signature, max_depth)
    actual = checker.infer(proof_term, None, 0)
    if not checker.equal(actual, expected_type):
        raise LfError(
            "proof term does not prove the safety predicate: its type "
            "differs from pf(SP)")
