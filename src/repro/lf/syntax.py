"""LF term syntax: a dependently typed lambda calculus with de Bruijn
indices, plus primitive integer literals.

The object language is standard LF (objects, families, kinds collapsed into
one term type, sorted by the checker), with one documented extension: the
constructor :class:`LfInt` embeds an arbitrary-precision integer literal of
LF type ``tm``.  Real LF would represent numerals as constructor chains;
implementations used in practice (e.g. Twelf's constraint domains) add a
primitive integer sort exactly like this, and the paper's own rule set is
"first-order predicate calculus extended with two's-complement integer
arithmetic", which is only checkable with some computation on literals.

De Bruijn indices make alpha-equivalence structural; binder ``hint`` names
are carried only for printing and never affect equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import LfError
from repro.logic.eqcache import dag_equal


@dataclass(frozen=True, slots=True)
class LfConst:
    """A constant declared in the signature."""

    name: str


@dataclass(frozen=True, slots=True)
class LfVar:
    """A bound variable (de Bruijn index, innermost binder = 0)."""

    index: int


@dataclass(frozen=True, slots=True)
class LfInt:
    """A primitive integer literal of LF type ``tm``."""

    value: int


@dataclass(frozen=True, slots=True)
class LfApp:
    fn: "LfTerm"
    arg: "LfTerm"
    _hash: int | None = field(default=None, init=False, compare=False,
                              repr=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("app", self.fn, self.arg))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other) -> bool:
        if not isinstance(other, LfApp):
            return NotImplemented
        return dag_equal(self, other,
                         lambda node: (node.fn, node.arg))



@dataclass(frozen=True, slots=True)
class LfLam:
    """``\\x:ty. body`` — ``hint`` is a display name only."""

    ty: "LfTerm"
    body: "LfTerm"
    hint: str = field(default="x", compare=False)
    _hash: int | None = field(default=None, init=False, compare=False,
                              repr=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("lam", self.ty, self.body))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other) -> bool:
        if not isinstance(other, LfLam):
            return NotImplemented
        return dag_equal(self, other,
                         lambda node: (node.ty, node.body))



@dataclass(frozen=True, slots=True)
class LfPi:
    """``{x:dom} cod`` — dependent function type; ``hint`` display-only."""

    dom: "LfTerm"
    cod: "LfTerm"
    hint: str = field(default="x", compare=False)
    _hash: int | None = field(default=None, init=False, compare=False,
                              repr=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("pi", self.dom, self.cod))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other) -> bool:
        if not isinstance(other, LfPi):
            return NotImplemented
        return dag_equal(self, other,
                         lambda node: (node.dom, node.cod))



LfTerm = Union[LfConst, LfVar, LfInt, LfApp, LfLam, LfPi]

#: The sort of types and the sort of kinds.
TYPE = LfConst("%type")
KIND = LfConst("%kind")


def lf_app(fn: LfTerm, *args: LfTerm) -> LfTerm:
    """Left-nested application of ``fn`` to ``args``."""
    result = fn
    for arg in args:
        result = LfApp(result, arg)
    return result


def spine(term: LfTerm) -> tuple[LfTerm, list[LfTerm]]:
    """Decompose nested applications into (head, arguments)."""
    args: list[LfTerm] = []
    while isinstance(term, LfApp):
        args.append(term.arg)
        term = term.fn
    args.reverse()
    return term, args


def shift(term: LfTerm, amount: int, cutoff: int = 0,
          _memo: dict | None = None) -> LfTerm:
    """Shift free de Bruijn indices >= cutoff by ``amount``.

    Identity-memoized per (node, cutoff) and sharing-preserving: decoded
    proof objects are DAGs, and naive structural recursion would be
    exponential in their unshared size.
    """
    memo = _memo if _memo is not None else {}
    if isinstance(term, LfVar):
        if term.index >= cutoff:
            new_index = term.index + amount
            if new_index < 0:
                raise LfError("negative de Bruijn index after shift")
            return LfVar(new_index)
        return term
    if isinstance(term, (LfConst, LfInt)):
        return term
    key = (id(term), cutoff)
    cached = memo.get(key)
    if cached is not None:
        return cached
    if isinstance(term, LfApp):
        fn = shift(term.fn, amount, cutoff, memo)
        arg = shift(term.arg, amount, cutoff, memo)
        result = term if fn is term.fn and arg is term.arg \
            else LfApp(fn, arg)
    elif isinstance(term, LfLam):
        ty = shift(term.ty, amount, cutoff, memo)
        body = shift(term.body, amount, cutoff + 1, memo)
        result = term if ty is term.ty and body is term.body \
            else LfLam(ty, body, term.hint)
    elif isinstance(term, LfPi):
        dom = shift(term.dom, amount, cutoff, memo)
        cod = shift(term.cod, amount, cutoff + 1, memo)
        result = term if dom is term.dom and cod is term.cod \
            else LfPi(dom, cod, term.hint)
    else:
        raise LfError(f"not an LF term: {term!r}")
    memo[key] = result
    return result


def subst(term: LfTerm, replacement: LfTerm, index: int = 0,
          _memo: dict | None = None) -> LfTerm:
    """Substitute ``replacement`` for variable ``index`` in ``term``
    (identity-memoized and sharing-preserving, like :func:`shift`)."""
    memo = _memo if _memo is not None else {}
    if isinstance(term, LfVar):
        if term.index == index:
            return shift(replacement, index)
        if term.index > index:
            return LfVar(term.index - 1)
        return term
    if isinstance(term, (LfConst, LfInt)):
        return term
    key = (id(term), index)
    cached = memo.get(key)
    if cached is not None:
        return cached
    if isinstance(term, LfApp):
        fn = subst(term.fn, replacement, index, memo)
        arg = subst(term.arg, replacement, index, memo)
        result = term if fn is term.fn and arg is term.arg \
            else LfApp(fn, arg)
    elif isinstance(term, LfLam):
        ty = subst(term.ty, replacement, index, memo)
        body = subst(term.body, replacement, index + 1, memo)
        result = term if ty is term.ty and body is term.body \
            else LfLam(ty, body, term.hint)
    elif isinstance(term, LfPi):
        dom = subst(term.dom, replacement, index, memo)
        cod = subst(term.cod, replacement, index + 1, memo)
        result = term if dom is term.dom and cod is term.cod \
            else LfPi(dom, cod, term.hint)
    else:
        raise LfError(f"not an LF term: {term!r}")
    memo[key] = result
    return result


def whnf(term: LfTerm) -> LfTerm:
    """Weak-head beta normalization."""
    while isinstance(term, LfApp):
        fn = whnf(term.fn)
        if isinstance(fn, LfLam):
            term = subst(fn.body, term.arg)
        else:
            if fn is not term.fn:
                term = LfApp(fn, term.arg)
            return term
    return term


def normalize(term: LfTerm, _memo: dict | None = None) -> LfTerm:
    """Full beta normalization (LF is strongly normalizing for well-typed
    terms; ill-typed input is guarded by a step budget).

    A term's normal form depends only on the term itself (de Bruijn
    indices are binder-relative), so memoizing on node identity is sound
    and keeps normalization linear in the *shared* size of proof DAGs.
    """
    budget = [1_000_000]
    memo = _memo if _memo is not None else {}

    def go(t: LfTerm) -> LfTerm:
        if isinstance(t, (LfConst, LfInt, LfVar)):
            return t
        cached = memo.get(id(t))
        if cached is not None:
            return cached[1]
        if budget[0] <= 0:
            raise LfError("normalization budget exhausted")
        budget[0] -= 1
        original = t
        t = whnf(t)
        if isinstance(t, LfApp):
            fn = go(t.fn)
            arg = go(t.arg)
            result: LfTerm = t if fn is t.fn and arg is t.arg \
                else LfApp(fn, arg)
        elif isinstance(t, LfLam):
            ty = go(t.ty)
            body = go(t.body)
            result = t if ty is t.ty and body is t.body \
                else LfLam(ty, body, t.hint)
        elif isinstance(t, LfPi):
            dom = go(t.dom)
            cod = go(t.cod)
            result = t if dom is t.dom and cod is t.cod \
                else LfPi(dom, cod, t.hint)
        else:
            result = t
        memo[id(original)] = (original, result)
        return result

    return go(term)


def alpha_beta_equal(a: LfTerm, b: LfTerm) -> bool:
    """Definitional equality: beta-normalize and compare structurally
    (alpha handled by de Bruijn representation)."""
    if a == b:
        return True
    return normalize(a) == normalize(b)


def lf_size(term: LfTerm) -> int:
    """Node count of an LF term."""
    if isinstance(term, (LfConst, LfVar, LfInt)):
        return 1
    if isinstance(term, LfApp):
        return 1 + lf_size(term.fn) + lf_size(term.arg)
    if isinstance(term, (LfLam, LfPi)):
        first = term.ty if isinstance(term, LfLam) else term.dom
        second = term.body if isinstance(term, LfLam) else term.cod
        return 1 + lf_size(first) + lf_size(second)
    raise LfError(f"not an LF term: {term!r}")
