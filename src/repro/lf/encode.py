"""Encoding between the logic/proof layer and LF objects.

Three jobs:

* :func:`encode_term` / :func:`encode_formula` — map logic terms and
  formulas to LF objects (registers and eigenvariables become LF bound
  variables; there are two quantifiers, ``all`` over individuals and
  ``allm`` over memory states, selected by the variable's sort);
* :func:`encode_proof` — map a natural-deduction proof to an LF object
  whose type is ``pf (encoding of the goal)``; the encoder replays the
  rule functions from :mod:`repro.proof.rules` to learn each premise's
  goal, so it stays mechanically in sync with the checker;
* :func:`decode_logic_term` / :func:`decode_logic_formula` — the partial
  inverse used by the signature's side conditions (bound LF variables
  decode to synthetic ``%i`` logic variables, which is sufficient because
  side conditions only compare structure and literals).
"""

from __future__ import annotations

from repro.errors import LfError, ProofError
from repro.logic.formulas import (
    And,
    Atom,
    Falsity,
    Forall,
    Formula,
    Implies,
    Or,
    Truth,
    conj,
)
from repro.logic.terms import App, Int, OPS, Term, Var
from repro.lf.syntax import (
    LfApp,
    LfConst,
    LfInt,
    LfLam,
    LfTerm,
    LfVar,
    lf_app,
    spine,
)
from repro.proof.proofs import Proof
from repro.proof.rules import RULES

_TM = LfConst("tm")
_MEM = LfConst("mem")
_PF = LfConst("pf")

_CONNECTIVES = {"and": And, "or": Or, "imp": Implies}
_PREDICATES = ("eq", "ne", "lt", "le", "gt", "ge", "rd", "wr")

#: Machine-state variables encodable as LF constants when free.  Loop
#: invariants are *open* formulas over the registers (they are closed by
#: the VC generator, not by the invariant itself), so the wire encoding
#: maps a free register to the corresponding signature constant.
STATE_CONSTANTS = tuple(f"r{i}" for i in range(11)) + ("rm",)


def is_memory_var(name: str) -> bool:
    """Our convention: the memory pseudo-register and eigenvariables derived
    from it are named ``rm`` or ``rm$<n>``."""
    return name == "rm" or name.startswith("rm$")


Env = dict[str, int]  # variable name -> binder level


def _var_ref(name: str, env: Env, depth: int) -> LfTerm:
    if name in env:
        return LfVar(depth - env[name] - 1)
    if name in STATE_CONSTANTS:
        return LfConst(name)
    raise LfError(f"free variable {name!r} has no LF binding")


#: Encoding caches: logic formulas/terms are DAGs (join-point predicates
#: shared across control-flow arms); re-encoding shared nodes per path
#: builds exponentially large LF trees.  The key captures everything the
#: encoding depends on: node identity, binder depth, and the de Bruijn
#: levels of the node's free variables.  Values keep their nodes alive.
_TERM_ENC_CACHE: dict[tuple, tuple] = {}
_FORMULA_ENC_CACHE: dict[tuple, tuple] = {}
_ENC_CACHE_LIMIT = 500_000


def _enc_key(node, names, env: Env, depth: int) -> tuple:
    positions = tuple(sorted((name, env[name]) for name in names
                             if name in env))
    return (id(node), depth, positions)


def encode_term(term: Term, env: Env, depth: int) -> LfTerm:
    """Encode a logic term; ``env``/``depth`` track LF binders in scope.
    Memoized and sharing-preserving (see the cache note above)."""
    if isinstance(term, Int):
        return LfInt(term.value)
    if isinstance(term, Var):
        return _var_ref(term.name, env, depth)
    if isinstance(term, App):
        from repro.logic.terms import term_vars
        key = _enc_key(term, term_vars(term), env, depth)
        cached = _TERM_ENC_CACHE.get(key)
        if cached is not None:
            return cached[1]
        head = LfConst(term.op)
        result = lf_app(head, *(encode_term(arg, env, depth)
                                for arg in term.args))
        if len(_TERM_ENC_CACHE) >= _ENC_CACHE_LIMIT:
            _TERM_ENC_CACHE.clear()
        _TERM_ENC_CACHE[key] = (term, result)
        return result
    raise LfError(f"not a logic term: {term!r}")


def encode_formula(formula: Formula, env: Env, depth: int) -> LfTerm:
    """Encode a formula as an LF object of type ``form`` (memoized)."""
    if isinstance(formula, Truth):
        return LfConst("true")
    if isinstance(formula, Falsity):
        return LfConst("false")
    from repro.logic.formulas import formula_vars
    key = _enc_key(formula, formula_vars(formula), env, depth)
    cached = _FORMULA_ENC_CACHE.get(key)
    if cached is not None:
        return cached[1]
    result = _encode_formula_node(formula, env, depth)
    if len(_FORMULA_ENC_CACHE) >= _ENC_CACHE_LIMIT:
        _FORMULA_ENC_CACHE.clear()
    _FORMULA_ENC_CACHE[key] = (formula, result)
    return result


def _encode_formula_node(formula: Formula, env: Env, depth: int) -> LfTerm:
    if isinstance(formula, And):
        return lf_app(LfConst("and"),
                      encode_formula(formula.left, env, depth),
                      encode_formula(formula.right, env, depth))
    if isinstance(formula, Or):
        return lf_app(LfConst("or"),
                      encode_formula(formula.left, env, depth),
                      encode_formula(formula.right, env, depth))
    if isinstance(formula, Implies):
        return lf_app(LfConst("imp"),
                      encode_formula(formula.left, env, depth),
                      encode_formula(formula.right, env, depth))
    if isinstance(formula, Forall):
        memory = is_memory_var(formula.var)
        quantifier = "allm" if memory else "all"
        sort = _MEM if memory else _TM
        inner_env = dict(env)
        inner_env[formula.var] = depth
        body = encode_formula(formula.body, inner_env, depth + 1)
        return LfApp(LfConst(quantifier), LfLam(sort, body,
                                                hint=formula.var))
    if isinstance(formula, Atom):
        return lf_app(LfConst(formula.pred),
                      *(encode_term(arg, env, depth)
                        for arg in formula.args))
    raise LfError(f"not a formula: {formula!r}")


def _pf(formula_lf: LfTerm) -> LfTerm:
    return LfApp(_PF, formula_lf)


def decode_logic_term(term: LfTerm) -> Term:
    """Partial inverse of :func:`encode_term` for side conditions.

    Bound LF variables become logic variables named ``%<index>`` — a
    consistent renaming within a single side-condition call, which is all
    structural checks need.  Raises :class:`LfError` on lambdas or unknown
    heads, which a side condition treats as failure (conservative).
    """
    if isinstance(term, LfInt):
        return Int(term.value)
    if isinstance(term, LfVar):
        return Var(f"%{term.index}")
    head, args = spine(term)
    if isinstance(head, LfConst):
        if head.name in STATE_CONSTANTS and not args:
            return Var(head.name)
        if head.name in OPS:
            expected = OPS[head.name].arity
            if len(args) != expected:
                raise LfError(
                    f"operator {head.name!r} applied to {len(args)} "
                    f"arguments, expected {expected}")
            return App(head.name,
                       tuple(decode_logic_term(arg) for arg in args))
    raise LfError(f"cannot decode LF term {term!r} as a logic term")


def decode_logic_formula(term: LfTerm, depth: int = 0,
                         env: dict[int, str] | None = None) -> Formula:
    """Partial inverse of :func:`encode_formula`.

    Quantifiers decode with *canonical* bound-variable names derived from
    the binder depth (``v<depth>`` for individuals, ``rm$<depth>`` for
    memories); certification round-trips invariants through this decoder
    so producer and consumer compute structurally identical safety
    predicates regardless of the names the producer originally used.
    """
    bound = env or {}

    def term_in_scope(lf: LfTerm) -> Term:
        return _decode_term_scoped(lf, depth, bound)

    if term == LfConst("true"):
        return Truth()
    if term == LfConst("false"):
        return Falsity()
    head, args = spine(term)
    if isinstance(head, LfConst):
        if head.name in _CONNECTIVES and len(args) == 2:
            ctor = _CONNECTIVES[head.name]
            return ctor(decode_logic_formula(args[0], depth, bound),
                        decode_logic_formula(args[1], depth, bound))
        if head.name in _PREDICATES:
            return Atom(head.name, tuple(term_in_scope(a) for a in args))
        if head.name in ("all", "allm") and len(args) == 1:
            body_lam = args[0]
            if not isinstance(body_lam, LfLam):
                raise LfError("quantifier body must be a lambda")
            name = f"rm${depth}" if head.name == "allm" else f"v{depth}"
            inner = dict(bound)
            inner[depth] = name
            body = decode_logic_formula(body_lam.body, depth + 1, inner)
            return Forall(name, body)
    raise LfError(f"cannot decode LF term {term!r} as a formula")


def _decode_term_scoped(term: LfTerm, depth: int,
                        env: dict[int, str]) -> Term:
    """Decode a term that may mention quantifier-bound variables; ``env``
    maps binder *level* to the canonical variable name."""
    if isinstance(term, LfVar):
        level = depth - term.index - 1
        if level in env:
            return Var(env[level])
        return Var(f"%{term.index}")
    if isinstance(term, LfInt):
        return Int(term.value)
    head, args = spine(term)
    if isinstance(head, LfConst):
        if head.name in STATE_CONSTANTS and not args:
            return Var(head.name)
        if head.name in OPS and len(args) == OPS[head.name].arity:
            return App(head.name,
                       tuple(_decode_term_scoped(arg, depth, env)
                             for arg in args))
    raise LfError(f"cannot decode LF term {term!r} as a logic term")


def _proof_references(proof: Proof, cache: dict) -> tuple:
    """(hypothesis labels, variable names) referenced anywhere in
    ``proof`` — from hyp rules and from rule parameters (witness terms,
    templates, premise atoms).  DAG-aware and cached per node."""
    from repro.logic.formulas import (
        And as _And, Atom as _Atom, Falsity as _F, Forall as _Fa,
        Implies as _Imp, Or as _Or, Truth as _T, formula_vars,
    )
    from repro.logic.terms import App as _App, Int as _Int, Var as _Var
    from repro.logic.terms import term_vars

    cached = cache.get(id(proof))
    if cached is not None:
        return cached
    labels: set[str] = set()
    names: set[str] = set()
    seen: set[int] = set()
    stack = [proof]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node.rule == "hyp" and node.params:
            labels.add(node.params[0])
        for param in node.params:
            if isinstance(param, (_Int, _Var, _App)):
                names |= term_vars(param)
            elif isinstance(param, (_T, _F, _And, _Or, _Imp, _Fa, _Atom)):
                names |= formula_vars(param)
        stack.extend(node.premises)
    result = (frozenset(labels), frozenset(names))
    cache[id(proof)] = result
    return result


class _ProofEncoder:
    """Encodes a checked proof tree bottom-up, replaying the rule functions
    to learn premise goals (exactly what the Delta checker does).

    Encoding is memoized per (proof identity, goal, binder depth, and the
    de Bruijn positions of the hypotheses and variables the subproof
    references): proofs are DAGs (join-point subproofs shared across
    branch arms), and re-encoding per path would be exponential.
    """

    def __init__(self) -> None:
        self._memo: dict = {}
        self._labels: dict = {}

    def encode(self, proof: Proof, goal: Formula, env: Env,
               hyp_env: Env, hyp_forms: dict[str, Formula],
               depth: int) -> LfTerm:
        from repro.logic.formulas import formula_vars

        used_labels, used_names = _proof_references(proof, self._labels)
        hyp_positions = tuple(sorted(
            (label, hyp_env[label]) for label in used_labels
            if label in hyp_env))
        relevant = used_names | formula_vars(goal)
        var_positions = tuple(sorted(
            (name, env[name]) for name in relevant if name in env))
        key = (id(proof), goal, depth, hyp_positions, var_positions)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._encode(proof, goal, env, hyp_env, hyp_forms, depth)
        self._memo[key] = result
        return result

    def _encode(self, proof: Proof, goal: Formula, env: Env,
                hyp_env: Env, hyp_forms: dict[str, Formula],
                depth: int) -> LfTerm:
        rule = proof.rule
        try:
            obligations = RULES[rule](goal, proof.params, hyp_forms)
        except ProofError as error:
            raise LfError(f"cannot encode invalid proof: {error}") from error
        if len(obligations) != len(proof.premises):
            raise LfError(f"rule {rule!r}: premise count mismatch")

        def F(formula: Formula) -> LfTerm:
            return encode_formula(formula, env, depth)

        def T(term: Term) -> LfTerm:
            return encode_term(term, env, depth)

        def P(index: int) -> LfTerm:
            subgoal, extra = obligations[index]
            if extra:
                raise LfError(f"rule {rule!r}: unexpected hypothetical "
                              f"premise in plain position")
            return self.encode(proof.premises[index], subgoal, env,
                               hyp_env, hyp_forms, depth)

        if rule == "truei":
            return LfConst("truei")
        if rule == "hyp":
            label = proof.params[0]
            return _var_ref(label, hyp_env, depth)
        if rule == "andi":
            assert isinstance(goal, And)
            return lf_app(LfConst("andi"), F(goal.left), F(goal.right),
                          P(0), P(1))
        if rule == "andel":
            right = proof.params[0]
            return lf_app(LfConst("andel"), F(goal), F(right), P(0))
        if rule == "ander":
            left = proof.params[0]
            return lf_app(LfConst("ander"), F(left), F(goal), P(0))
        if rule == "impi":
            assert isinstance(goal, Implies)
            label = proof.params[0]
            inner_hyp_env = dict(hyp_env)
            inner_hyp_env[label] = depth
            inner_forms = dict(hyp_forms)
            inner_forms[label] = goal.left
            body = self.encode(proof.premises[0], goal.right, env,
                               inner_hyp_env, inner_forms, depth + 1)
            return lf_app(LfConst("impi"), F(goal.left), F(goal.right),
                          LfLam(_pf(F(goal.left)), body, hint=label))
        if rule == "impe":
            antecedent = proof.params[0]
            return lf_app(LfConst("impe"), F(antecedent), F(goal),
                          P(0), P(1))
        if rule == "alli":
            assert isinstance(goal, Forall)
            eigen = proof.params[0]
            memory = is_memory_var(goal.var)
            quantifier = "alli_m" if memory else "alli"
            sort = _MEM if memory else _TM
            body_env = dict(env)
            body_env[goal.var] = depth
            predicate = LfLam(
                sort, encode_formula(goal.body, body_env, depth + 1),
                hint=goal.var)
            subgoal, __ = obligations[0]
            inner_env = dict(env)
            inner_env[eigen] = depth
            body = self.encode(proof.premises[0], subgoal, inner_env,
                               hyp_env, hyp_forms, depth + 1)
            return lf_app(LfConst(quantifier), predicate,
                          LfLam(sort, body, hint=eigen))
        if rule == "alle":
            source, witness = proof.params
            assert isinstance(source, Forall)
            memory = is_memory_var(source.var)
            quantifier = "alle_m" if memory else "alle"
            sort = _MEM if memory else _TM
            body_env = dict(env)
            body_env[source.var] = depth
            predicate = LfLam(
                sort, encode_formula(source.body, body_env, depth + 1),
                hint=source.var)
            return lf_app(LfConst(quantifier), predicate, T(witness), P(0))
        if rule == "ori1":
            assert isinstance(goal, Or)
            return lf_app(LfConst("ori1"), F(goal.left), F(goal.right),
                          P(0))
        if rule == "ori2":
            assert isinstance(goal, Or)
            return lf_app(LfConst("ori2"), F(goal.left), F(goal.right),
                          P(0))
        if rule == "ore":
            left, right = proof.params
            return lf_app(LfConst("ore"), F(left), F(right), F(goal),
                          P(0), P(1), P(2))
        if rule == "falsee":
            return lf_app(LfConst("falsee"), F(goal), P(0))
        if rule == "eqrefl":
            assert isinstance(goal, Atom)
            return lf_app(LfConst("eqrefl"), T(goal.args[0]))
        if rule == "eqsym":
            assert isinstance(goal, Atom)
            a, b = goal.args
            return lf_app(LfConst("eqsym"), T(b), T(a), P(0))
        if rule == "eqtrans":
            assert isinstance(goal, Atom)
            middle = proof.params[0]
            a, b = goal.args
            return lf_app(LfConst("eqtrans"), T(a), T(middle), T(b),
                          P(0), P(1))
        if rule == "eqsub":
            template, hole, a, b = proof.params
            body_env = dict(env)
            body_env[hole] = depth
            predicate = LfLam(
                _TM, encode_formula(template, body_env, depth + 1),
                hint=hole)
            return lf_app(LfConst("eqsub"), predicate, T(a), T(b),
                          P(0), P(1))
        if rule == "arith_eval":
            return lf_app(LfConst("arith_eval"), F(goal))
        if rule == "mod_word":
            assert isinstance(goal, Atom)
            return lf_app(LfConst("mod_word"), T(goal.args[1]))
        if rule == "norm_mod_eq":
            assert isinstance(goal, Atom)
            left, right = goal.args
            assert isinstance(left, App) and isinstance(right, App)
            return lf_app(LfConst("norm_mod_eq"), T(left.args[0]),
                          T(right.args[0]))
        if rule == "word_ge0":
            assert isinstance(goal, Atom)
            return lf_app(LfConst("word_ge0"), T(goal.args[0]))
        if rule == "word_lt_mod":
            assert isinstance(goal, Atom)
            return lf_app(LfConst("word_lt_mod"), T(goal.args[0]))
        if rule in ("cmpult_true", "cmpult_false", "cmpule_true",
                    "cmpule_false", "cmpeq_true", "cmpeq_false"):
            a, b = proof.params
            return lf_app(LfConst(rule), T(a), T(b), P(0))
        if rule in ("add64_exact", "sub64_exact"):
            assert isinstance(goal, Atom)
            machine = goal.args[0]
            assert isinstance(machine, App)
            a, b = machine.args
            return lf_app(LfConst(rule), T(a), T(b), P(0), P(1), P(2))
        if rule == "and_ubound":
            assert isinstance(goal, Atom)
            masked = goal.args[0]
            assert isinstance(masked, App)
            return lf_app(LfConst(rule), T(masked.args[0]),
                          T(masked.args[1]))
        if rule == "and_mask_disjoint":
            assert isinstance(goal, Atom)
            outer = goal.args[0]
            assert isinstance(outer, App)
            inner = outer.args[0]
            assert isinstance(inner, App)
            return lf_app(LfConst(rule), T(inner.args[0]),
                          T(inner.args[1]), T(outer.args[1]))
        if rule == "add_align":
            assert isinstance(goal, Atom)
            masked = goal.args[0]
            assert isinstance(masked, App)
            summed = masked.args[0]
            assert isinstance(summed, App)
            return lf_app(LfConst(rule), T(summed.args[0]),
                          T(summed.args[1]), T(masked.args[1]), P(0), P(1))
        if rule == "srl_bound":
            assert isinstance(goal, Atom)
            shifted = goal.args[0]
            assert isinstance(shifted, App)
            return lf_app(LfConst(rule), T(shifted.args[0]),
                          T(shifted.args[1]), T(goal.args[1]))
        if rule == "ext_bound":
            assert isinstance(goal, Atom)
            extracted = goal.args[0]
            assert isinstance(extracted, App)
            constant = LfConst(f"{extracted.op}_bound")
            return lf_app(constant, T(extracted.args[0]),
                          T(extracted.args[1]), T(goal.args[1]))
        if rule == "sll_align":
            assert isinstance(goal, Atom)
            masked = goal.args[0]
            assert isinstance(masked, App)
            shifted = masked.args[0]
            assert isinstance(shifted, App)
            return lf_app(LfConst(rule), T(shifted.args[0]),
                          T(shifted.args[1]), T(masked.args[1]))
        if rule == "sll_ubound":
            assert isinstance(goal, Atom)
            shifted = goal.args[0]
            assert isinstance(shifted, App)
            a, k = shifted.args
            m = proof.params[0]
            return lf_app(LfConst(rule), T(a), T(k), T(m),
                          T(goal.args[1]), P(0), P(1))
        if rule == "shift_trunc_le":
            assert isinstance(goal, Atom)
            shifted = goal.args[0]
            assert isinstance(shifted, App)
            inner, k = shifted.args
            assert isinstance(inner, App)
            return lf_app(LfConst(rule), T(inner.args[0]), T(k))
        if rule == "sll_lt_of_srl":
            assert isinstance(goal, Atom)
            shifted = goal.args[0]
            assert isinstance(shifted, App)
            a, k = shifted.args
            b = proof.params[0]
            return lf_app(LfConst(rule), T(a), T(k), T(b), P(0))
        if rule == "or_disjoint":
            assert isinstance(goal, Atom)
            ored = goal.args[0]
            assert isinstance(ored, App)
            masked, b = ored.args
            assert isinstance(masked, App)
            x, c = masked.args
            return lf_app(LfConst(rule), T(x), T(c), T(b), P(0))
        if rule == "and_submask":
            assert isinstance(goal, Atom)
            masked = goal.args[0]
            assert isinstance(masked, App)
            a, narrow = masked.args
            wide = proof.params[0]
            return lf_app(LfConst(rule), T(a), T(wide), T(narrow), P(0))
        if rule in ("sel_upd_same", "sel_upd_other"):
            assert isinstance(goal, Atom)
            read = goal.args[0]
            assert isinstance(read, App)
            updated, read_addr = read.args
            assert isinstance(updated, App)
            memory, write_addr, value = updated.args
            return lf_app(LfConst(rule), encode_term(memory, env, depth),
                          T(write_addr), T(value), T(read_addr), P(0))
        if rule == "cmp_bool":
            assert isinstance(goal, Or)
            zero_side = goal.left
            assert isinstance(zero_side, Atom)
            flag = zero_side.args[0]
            assert isinstance(flag, App)
            return lf_app(LfConst(f"{flag.op}_bool"),
                          T(flag.args[0]), T(flag.args[1]))
        if rule == "linarith":
            premises = proof.params
            premise_conj = conj(list(premises))
            conj_lf = F(premise_conj)
            conj_proof = self._conjunction_proof(
                list(premises), [P(i) for i in range(len(premises))],
                env, depth)
            return lf_app(LfConst("linarith"), conj_lf, F(goal),
                          conj_proof)
        raise LfError(f"no LF encoding for rule {rule!r}")

    def _conjunction_proof(self, formulas: list[Formula],
                           proofs: list[LfTerm], env: Env,
                           depth: int) -> LfTerm:
        """Combine proofs of each formula into a proof of their right-nested
        conjunction, mirroring :func:`repro.logic.formulas.conj`."""
        if not formulas:
            return LfConst("truei")
        if len(formulas) == 1:
            return proofs[0]
        rest = conj(formulas[1:])
        rest_proof = self._conjunction_proof(formulas[1:], proofs[1:],
                                             env, depth)
        return lf_app(LfConst("andi"),
                      encode_formula(formulas[0], env, depth),
                      encode_formula(rest, env, depth),
                      proofs[0], rest_proof)


def encode_proof(proof: Proof, goal: Formula) -> LfTerm:
    """Encode a closed proof of ``goal`` as an LF object.

    The proof must be valid (the encoder replays the rule functions and
    fails otherwise) — run :func:`repro.proof.check_proof` first if in
    doubt.  The result's LF type is ``pf (encode_formula(goal))``.
    """
    return _ProofEncoder().encode(proof, goal, {}, {}, {}, 0)
