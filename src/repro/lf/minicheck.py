"""A deliberately minimal, independent LF type checker.

The paper (§2.3): "typechecking is so simple that any programmers who do
not trust the publicly available implementation can implement it easily
themselves.  Our implementation has about five pages of C code."

This module is that exercise, performed on our own validator: a second,
from-scratch implementation of LF type inference in under two hundred
lines, sharing nothing with :mod:`repro.lf.typecheck` except the term
syntax and the signature's declarations (including side conditions, which
are part of the published policy, not of the checker).  The test suite
cross-checks it against the primary checker on every shipped proof — a
disagreement would mean one of the two trusted cores is wrong.

It is written for obviousness, not speed: no memoization beyond what
soundness requires, plain recursion, and a step budget standing in for
the strong-normalization argument.  Use the primary checker in anything
performance-sensitive.
"""

from __future__ import annotations

from repro.errors import LfError
from repro.lf.signature import Signature
from repro.lf.syntax import (
    KIND,
    LfApp,
    LfConst,
    LfInt,
    LfLam,
    LfPi,
    LfTerm,
    LfVar,
    TYPE,
)


class MiniChecker:
    """Five-pages-of-C, in Python."""

    def __init__(self, signature: Signature,
                 step_budget: int = 5_000_000) -> None:
        self.signature = signature
        self.steps = step_budget

    # -- de Bruijn plumbing --------------------------------------------------

    def _tick(self) -> None:
        self.steps -= 1
        if self.steps <= 0:
            raise LfError("minicheck: step budget exhausted")

    def shift(self, term: LfTerm, amount: int, cutoff: int = 0) -> LfTerm:
        self._tick()
        if isinstance(term, LfVar):
            if term.index >= cutoff:
                return LfVar(term.index + amount)
            return term
        if isinstance(term, (LfConst, LfInt)):
            return term
        if isinstance(term, LfApp):
            return LfApp(self.shift(term.fn, amount, cutoff),
                         self.shift(term.arg, amount, cutoff))
        if isinstance(term, LfLam):
            return LfLam(self.shift(term.ty, amount, cutoff),
                         self.shift(term.body, amount, cutoff + 1))
        if isinstance(term, LfPi):
            return LfPi(self.shift(term.dom, amount, cutoff),
                        self.shift(term.cod, amount, cutoff + 1))
        raise LfError("minicheck: not a term")

    def subst(self, term: LfTerm, value: LfTerm,
              index: int = 0) -> LfTerm:
        self._tick()
        if isinstance(term, LfVar):
            if term.index == index:
                return self.shift(value, index)
            if term.index > index:
                return LfVar(term.index - 1)
            return term
        if isinstance(term, (LfConst, LfInt)):
            return term
        if isinstance(term, LfApp):
            return LfApp(self.subst(term.fn, value, index),
                         self.subst(term.arg, value, index))
        if isinstance(term, LfLam):
            return LfLam(self.subst(term.ty, value, index),
                         self.subst(term.body, value, index + 1))
        if isinstance(term, LfPi):
            return LfPi(self.subst(term.dom, value, index),
                        self.subst(term.cod, value, index + 1))
        raise LfError("minicheck: not a term")

    # -- conversion ----------------------------------------------------------

    def normalize(self, term: LfTerm) -> LfTerm:
        self._tick()
        if isinstance(term, LfApp):
            fn = self.normalize(term.fn)
            arg = self.normalize(term.arg)
            if isinstance(fn, LfLam):
                return self.normalize(self.subst(fn.body, arg))
            return LfApp(fn, arg)
        if isinstance(term, LfLam):
            return LfLam(self.normalize(term.ty),
                         self.normalize(term.body))
        if isinstance(term, LfPi):
            return LfPi(self.normalize(term.dom),
                        self.normalize(term.cod))
        return term

    def equal(self, a: LfTerm, b: LfTerm) -> bool:
        return self.normalize(a) == self.normalize(b)

    # -- inference -----------------------------------------------------------

    def infer(self, term: LfTerm, context: tuple = ()) -> LfTerm:
        """``context`` is a plain tuple, innermost binder first."""
        self._tick()
        if isinstance(term, LfConst):
            if term == TYPE:
                return KIND
            entry = self.signature.entries.get(term.name)
            if entry is None:
                raise LfError(f"minicheck: undeclared {term.name!r}")
            return entry.ty
        if isinstance(term, LfVar):
            if term.index >= len(context):
                raise LfError(f"minicheck: unbound index {term.index}")
            return self.shift(context[term.index], term.index + 1)
        if isinstance(term, LfInt):
            return LfConst("tm")
        if isinstance(term, LfPi):
            if self.normalize(self.infer(term.dom, context)) != TYPE:
                raise LfError("minicheck: Pi domain not a type")
            sort = self.normalize(
                self.infer(term.cod, (term.dom,) + context))
            if sort not in (TYPE, KIND):
                raise LfError("minicheck: Pi codomain not a sort")
            return sort
        if isinstance(term, LfLam):
            if self.normalize(self.infer(term.ty, context)) != TYPE:
                raise LfError("minicheck: lambda annotation not a type")
            body = self.infer(term.body, (term.ty,) + context)
            return LfPi(term.ty, body)
        if isinstance(term, LfApp):
            fn_ty = self.normalize(self.infer(term.fn, context))
            if not isinstance(fn_ty, LfPi):
                raise LfError("minicheck: applying a non-function")
            arg_ty = self.infer(term.arg, context)
            if not self.equal(arg_ty, fn_ty.dom):
                raise LfError("minicheck: argument type mismatch")
            self._check_side_condition(term)
            return self.subst(fn_ty.cod, term.arg)
        raise LfError("minicheck: not a term")

    def _check_side_condition(self, application: LfApp) -> None:
        head: LfTerm = application
        args: list[LfTerm] = []
        while isinstance(head, LfApp):
            args.append(head.arg)
            head = head.fn
        args.reverse()
        if not isinstance(head, LfConst):
            return
        entry = self.signature.entries.get(head.name)
        if (entry is not None and entry.side_condition is not None
                and len(args) == entry.side_arity
                and not entry.side_condition(args)):
            raise LfError(f"minicheck: side condition of "
                          f"{head.name!r} failed")


def minicheck_proof(proof_term: LfTerm, expected_type: LfTerm,
                    signature: Signature) -> None:
    """Validate a proof with the independent checker."""
    checker = MiniChecker(signature)
    actual = checker.infer(proof_term)
    if not checker.equal(actual, expected_type):
        raise LfError("minicheck: proof does not prove the expected "
                      "formula")
