"""Runtime telemetry: latency reservoirs and stats snapshots.

A kernel dispatch plane is only operable if it can answer "which
extension is slow / faulting / quarantined" without perturbing the hot
path.  Counters here are therefore *per shard per extension* — each
worker bumps plain integers it exclusively owns — and aggregation
happens only when a snapshot is taken.

Latency percentiles come from **exact per-cycle histograms**: an Alpha
filter has only a handful of distinct root-to-leaf path costs, so a
``{cycles: count}`` dict records the full latency distribution in a few
entries, merges across shards (and across worker *processes*) by plain
addition — associative, order-independent, deterministic — and costs the
hot path one dict bump instead of a reservoir's per-packet RNG draw.
:class:`LatencyReservoir` (algorithm R with a seeded RNG) remains for
consumers sampling genuinely high-cardinality streams.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field


class LatencyReservoir:
    """Fixed-size uniform sample of per-packet cycle latencies.

    Algorithm R: the first ``capacity`` observations are kept verbatim;
    afterwards observation ``n`` replaces a random slot with probability
    ``capacity / n``.  The RNG is seeded per reservoir so the sample —
    and hence every reported percentile — is reproducible.
    """

    __slots__ = ("capacity", "count", "samples", "_rng")

    def __init__(self, capacity: int = 512, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self.samples: list[int] = []
        self._rng = random.Random(seed)

    def add(self, value: int) -> None:
        self.count += 1
        if len(self.samples) < self.capacity:
            self.samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self.samples[slot] = value

    def __len__(self) -> int:
        return self.count


def percentile(values: list[int], fraction: float) -> float:
    """Linear-interpolation percentile of ``values`` (need not be
    sorted); 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def hist_percentile(hist: dict[int, int], fraction: float) -> float:
    """:func:`percentile` of the multiset a ``{value: count}`` histogram
    denotes, computed from cumulative counts without expanding it.

    Bit-equal to ``percentile(expanded, fraction)`` for any expansion
    order; 0.0 for an empty histogram.
    """
    total = sum(hist.values())
    if total == 0:
        return 0.0
    ordered = sorted(hist.items())
    if total == 1:
        return float(ordered[0][0])
    rank = fraction * (total - 1)
    low = int(rank)
    weight = rank - low
    # The values at positions ``low`` and ``low + 1`` of the sorted
    # expansion (clamped to the last element, as percentile() does).
    low_value = high_value = None
    seen = 0
    for value, count in ordered:
        if low_value is None and seen + count > low:
            low_value = value
        if seen + count > min(low + 1, total - 1):
            high_value = value
            break
        seen += count
    return low_value * (1.0 - weight) + high_value * weight


@dataclass(frozen=True)
class ExtensionSnapshot:
    """Point-in-time counters for one attached extension."""

    name: str
    state: str
    checked: bool
    packets_in: int
    accepted: int
    rejected: int
    faults: int
    consecutive_faults: int
    quarantines: int
    cycles: int
    p50_cycles: float
    p99_cycles: float
    last_fault: str | None
    #: The resolved per-invocation budget (None = unbudgeted) and the
    #: static WCET bound it came from when ``cycle_budget="auto"``.
    cycle_budget: int | None = None
    wcet_cycles: int | None = None
    #: Hot-swap state: the serving version number and, while an upgrade
    #: is in flight, the shadow canary's ledger (None otherwise).
    version: int = 1
    canary: dict | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "checked": self.checked,
            "packets_in": self.packets_in,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "faults": self.faults,
            "consecutive_faults": self.consecutive_faults,
            "quarantines": self.quarantines,
            "cycles": self.cycles,
            "p50_cycles": self.p50_cycles,
            "p99_cycles": self.p99_cycles,
            "last_fault": self.last_fault,
            "cycle_budget": self.cycle_budget,
            "wcet_cycles": self.wcet_cycles,
            "version": self.version,
            "canary": self.canary,
        }


@dataclass(frozen=True)
class RuntimeSnapshot:
    """Point-in-time view of the whole dispatch runtime.

    ``modeled_seconds`` is the simulated wall time: the busiest shard's
    cycle clock divided by the modeled core frequency.  Shards are
    modeled cores running in parallel, so runtime-wide throughput is
    ``packets_in / modeled_seconds`` — the metric the shard-scaling
    benchmark reports (Python wall time rides along as a sanity check,
    exactly as in :mod:`repro.perf`).
    """

    shards: int
    extensions: tuple[ExtensionSnapshot, ...]
    packets_in: int
    dispatches: int
    faults: int
    contract_drops: int
    shard_cycles: tuple[int, ...]
    clock_mhz: float
    extra: dict = field(default_factory=dict)
    #: Shadow-canary work, kept off the live shard clocks so modeled
    #: throughput and rollback verdict streams stay bit-identical to a
    #: canary-free run (shadow cycles are reported, never charged).
    canary_cycles: tuple[int, ...] = ()
    #: Decided upgrades, oldest first (UpgradeRecord.to_dict() payloads).
    upgrades: tuple = ()
    #: The last supervised-serve report (SupervisorReport.to_dict()),
    #: or None if this runtime never served under the supervisor.
    supervisor: dict | None = None

    @property
    def modeled_seconds(self) -> float:
        if not self.shard_cycles:
            return 0.0
        return max(self.shard_cycles) / (self.clock_mhz * 1e6)

    @property
    def modeled_packets_per_second(self) -> float:
        seconds = self.modeled_seconds
        return self.packets_in / seconds if seconds else 0.0

    def extension(self, name: str) -> ExtensionSnapshot:
        for snapshot in self.extensions:
            if snapshot.name == name:
                return snapshot
        raise KeyError(f"no extension named {name!r}")

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "packets_in": self.packets_in,
            "dispatches": self.dispatches,
            "faults": self.faults,
            "contract_drops": self.contract_drops,
            "shard_cycles": list(self.shard_cycles),
            "clock_mhz": self.clock_mhz,
            "modeled_seconds": self.modeled_seconds,
            "modeled_packets_per_second": self.modeled_packets_per_second,
            "extensions": [ext.to_dict() for ext in self.extensions],
            "canary_cycles": list(self.canary_cycles),
            "upgrades": list(self.upgrades),
            "supervisor": self.supervisor,
            **self.extra,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
