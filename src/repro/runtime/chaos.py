"""The chaos harness: seeded fault injection at every layer.

The PR's robustness claims are cheap to state and easy to regress, so
this module makes them executable.  Each **scenario** wires a real
:class:`~repro.runtime.PacketRuntime` (no mocks — the same loader,
shards, supervisor and canary machinery production uses), injects one
class of seeded fault, and asserts the recovery invariants:

====================  ==================================================
scenario              injected fault → asserted invariant
====================  ==================================================
admission-mutants     corrupted containers (code stomp, proof/relocation
                      bit-flips, truncation, header garble) → the loader
                      rejects every mutant; nothing reaches dispatch
adversarial-packets   contract-violating + adversarial-IHL frames → out
                      -of-contract frames drop at the boundary (counted),
                      in-contract corruption never faults a proven
                      filter, and verdicts on clean frames are
                      bit-identical to an uncorrupted run
budget-overrun        an operator-broken 1-cycle budget → quarantine
                      after ``fault_threshold`` overruns, neighbours'
                      verdict streams untouched; reinstatement re-derives
                      the WCET budget and the extension serves
                      bit-identically again (MTTR recorded)
shard-crash           injected worker-thread crashes mid-stream → every
                      packet dispatched (none lost, none reordered),
                      restarts bounded, MTTR recorded, verdict counters
                      identical to an unsupervised run
shard-failure         a shard that crashes on every restart → declared
                      failed after ``max_restarts``; its residual ingress
                      is shed *and counted*, other shards unaffected
pool-wedge            validation pool workers hang → per-item timeouts
                      fire, the batch degrades to in-process validation,
                      verdicts unchanged, ``validate_batch`` returns
pool-kill             validation pool workers die (``os._exit``) → same
                      degradation, no hang, verdicts unchanged
writer-fault          a store-bearing (KV) extension faulted mid-loop
                      by a broken budget → quarantine after
                      ``fault_threshold`` aborts, *no half-written
                      table slots* (aborted invocations leave the
                      persistent state exactly as the oracle over the
                      completed frames alone), and reinstatement
                      revalidates the proof, re-derives the WCET
                      budget, and serves on with oracle-identical
                      verdicts and state
upgrade-rollback      a hot-swap candidate that diverges → automatic
                      rollback on the first divergence; the post-rollback
                      verdict stream is bit-identical to pre-upgrade
upgrade-promotion     a benign candidate → auto-promotion after
                      ``promote_after`` clean packets; verdicts
                      bit-identical throughout, version bumped, budget
                      re-resolved for the new program
====================  ==================================================

Everything is seeded (trace, samplers, mutants, crash schedule), so a
failing run replays exactly.  ``pcc chaos`` drives :func:`run_chaos`
from the command line; CI runs the ``--quick`` profile.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.filters.packets import (
    adversarial_ihl_frame,
    oversize_frame,
    truncate_frame,
)
from repro.filters.programs import FILTERS
from repro.filters.trace import TraceConfig, generate_trace
from repro.pcc import certify
from repro.pcc.mutate import mutants
from repro.runtime.config import RuntimeConfig
from repro.runtime.extension import ExtensionState
from repro.runtime.runtime import PacketRuntime
from repro.runtime.supervisor import InjectedCrash
from repro.runtime.versions import CanaryConfig

__all__ = [
    "SCENARIOS",
    "ChaosConfig",
    "ChaosReport",
    "ScenarioResult",
    "run_chaos",
]

#: Appended to filter1 to build a benign upgrade candidate: different
#: bytes (and one extra cycle), identical verdicts.
_BENIGN_SUFFIX = "        ADDQ   r3, 0, r3\n        RET\n"
#: Appended to build a divergent candidate: logical-not of the verdict.
_DIVERGENT_SUFFIX = "        CMPEQ  r0, 0, r0\n        RET\n"


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos campaign: how much traffic, which seed, which shards."""

    packets: int = 600
    seed: int = 0xC4405
    shards: int = 2
    mutation_rounds: int = 4
    scenarios: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.packets < 50:
            raise ValueError("chaos needs at least 50 packets")
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.mutation_rounds < 1:
            raise ValueError("mutation rounds must be positive")
        if self.scenarios is not None:
            unknown = [name for name in self.scenarios
                       if name not in SCENARIOS]
            if unknown:
                raise ValueError(f"unknown scenarios {unknown}; "
                                 f"choose from {list(SCENARIOS)}")


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's verdict: every invariant, individually."""

    name: str
    passed: bool
    checks: tuple[tuple[str, bool, str], ...]
    wall_seconds: float
    details: dict = field(default_factory=dict)

    def failures(self) -> list[str]:
        return [f"{check}: {detail}"
                for check, ok, detail in self.checks if not ok]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "checks": [{"check": check, "passed": ok, "detail": detail}
                       for check, ok, detail in self.checks],
            "wall_seconds": self.wall_seconds,
            "details": self.details,
        }


@dataclass(frozen=True)
class ChaosReport:
    """The campaign outcome ``pcc chaos`` prints/serializes."""

    seed: int
    packets: int
    shards: int
    scenarios: tuple[ScenarioResult, ...]
    wall_seconds: float

    @property
    def passed(self) -> bool:
        return all(scenario.passed for scenario in self.scenarios)

    @property
    def mttr_seconds(self) -> list[float]:
        """Every recovery latency measured across the campaign."""
        out: list[float] = []
        for scenario in self.scenarios:
            out.extend(scenario.details.get("mttr_seconds", ()))
        return out

    def to_dict(self) -> dict:
        mttr = self.mttr_seconds
        return {
            "seed": self.seed,
            "packets": self.packets,
            "shards": self.shards,
            "passed": self.passed,
            "wall_seconds": self.wall_seconds,
            "mttr_seconds": mttr,
            "mean_mttr_seconds": (sum(mttr) / len(mttr)) if mttr else 0.0,
            "scenarios": [scenario.to_dict()
                          for scenario in self.scenarios],
        }


class _Checks:
    """Accumulates (name, passed, detail) rows for one scenario."""

    def __init__(self) -> None:
        self.rows: list[tuple[str, bool, str]] = []

    def add(self, name: str, passed, detail: str = "") -> bool:
        self.rows.append((name, bool(passed), detail))
        return bool(passed)

    def equal(self, name: str, got, want) -> bool:
        return self.add(name, got == want,
                        f"got {got!r}, want {want!r}" if got != want else "")


class _Campaign:
    """Shared, certified-once material every scenario draws from."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        from repro.filters.policy import packet_filter_policy

        self.policy = packet_filter_policy()
        self.certified = {
            spec.name: certify(spec.source, self.policy).binary.to_bytes()
            for spec in FILTERS
        }
        self.trace = generate_trace(
            TraceConfig(packets=config.packets, seed=config.seed & 0xFFFF))
        spec = FILTERS[0]
        base = spec.source.rstrip().rsplit("RET", 1)[0]
        self.benign_upgrade = certify(
            base + _BENIGN_SUFFIX, self.policy).binary.to_bytes()
        self.divergent_upgrade = certify(
            base + _DIVERGENT_SUFFIX, self.policy).binary.to_bytes()

    def runtime(self, **overrides) -> PacketRuntime:
        defaults = dict(shards=self.config.shards, cycle_budget="auto",
                        fault_threshold=3,
                        restart_backoff=0.002, restart_backoff_cap=0.02,
                        health_interval=0.001)
        defaults.update(overrides)
        return PacketRuntime(self.policy, RuntimeConfig(**defaults))

    def attach_all(self, runtime: PacketRuntime) -> None:
        for name, blob in self.certified.items():
            runtime.attach(name, blob)


def _verdict_stream(report) -> list[dict]:
    return report.records or []


# -- scenarios --------------------------------------------------------------


def _scenario_admission_mutants(campaign: _Campaign,
                                checks: _Checks) -> dict:
    config = campaign.config
    runtime = campaign.runtime()
    total = rejected = 0
    survivors: list[str] = []
    for name, blob in campaign.certified.items():
        for kind, mutant in mutants(blob, seed=config.seed,
                                    rounds=config.mutation_rounds):
            total += 1
            try:
                runtime.attach(f"mutant-{total}", mutant)
                survivors.append(f"{name}/{kind}")
            except ValidationError:
                rejected += 1
    checks.add("every mutant rejected", not survivors,
               f"accepted: {survivors}" if survivors else "")
    checks.equal("nothing attached", len(runtime.extensions), 0)
    checks.add("mutants were generated", total > 0, f"total={total}")
    return {"mutants": total, "rejected": rejected,
            "accepted": survivors}


def _scenario_adversarial_packets(campaign: _Campaign,
                                  checks: _Checks) -> dict:
    import random

    config = campaign.config
    baseline = campaign.runtime()
    campaign.attach_all(baseline)
    clean = campaign.trace
    base_records = _verdict_stream(baseline.dispatch(clean, collect=True))

    rng = random.Random(config.seed ^ 0xADF)
    corrupted = list(clean)
    touched = sorted(rng.sample(range(len(corrupted)),
                                max(4, len(corrupted) // 20)))
    out_of_contract = 0
    in_contract: list[int] = []
    for index in touched:
        kind = rng.choice(("truncated", "oversized", "adversarial-ihl"))
        if kind == "truncated":
            corrupted[index] = truncate_frame(corrupted[index],
                                              rng.randrange(8, 64))
            out_of_contract += 1
        elif kind == "oversized":
            corrupted[index] = oversize_frame(corrupted[index])
            out_of_contract += 1
        else:
            corrupted[index] = adversarial_ihl_frame(
                corrupted[index], rng.randrange(6, 16))
            in_contract.append(index)

    victim = campaign.runtime()
    campaign.attach_all(victim)
    report = victim.dispatch(corrupted, collect=True)
    records = _verdict_stream(report)

    checks.equal("out-of-contract frames dropped at the boundary",
                 report.contract_drops, out_of_contract)
    checks.equal("surviving frames all dispatched",
                 report.packets, len(clean) - out_of_contract)
    faults = sum(ext.faults for ext in victim.snapshot().extensions)
    checks.equal("no proven filter faulted", faults, 0)

    # Per-packet records align with the *kept* stream; rebuild the kept
    # index list so clean frames compare against their baseline slot.
    dropped = {index for index in touched
               if not (64 <= len(corrupted[index]) <= 1518)}
    kept_indices = [index for index in range(len(clean))
                    if index not in dropped]
    mismatches = [index for slot, index in enumerate(kept_indices)
                  if index not in in_contract
                  and records[slot] != base_records[index]]
    checks.add("clean-frame verdicts bit-identical", not mismatches,
               f"diverged at {mismatches[:5]}" if mismatches else "")
    return {"corrupted": len(touched), "dropped": out_of_contract,
            "adversarial_in_contract": len(in_contract)}


def _scenario_budget_overrun(campaign: _Campaign, checks: _Checks) -> dict:
    runtime = campaign.runtime(fault_threshold=3)
    campaign.attach_all(runtime)
    trace = campaign.trace
    third = len(trace) // 3

    baseline = campaign.runtime(fault_threshold=3)
    campaign.attach_all(baseline)
    base_records = _verdict_stream(baseline.dispatch(trace, collect=True))

    victim = runtime.extension("filter3")
    sane_budget = victim.cycle_budget
    victim.cycle_budget = 1   # operator fat-fingers the budget
    records_a = _verdict_stream(runtime.dispatch(trace[:third],
                                                 collect=True))
    quarantined_at = time.perf_counter()
    checks.equal("overruns quarantine the extension",
                 victim.state, ExtensionState.QUARANTINED)
    overruns = victim.snapshot().faults
    checks.add("budget overruns were counted", overruns >= 3,
               f"faults={overruns}")
    neighbours_ok = all(
        {k: v for k, v in record.items() if k != "filter3"}
        == {k: v for k, v in base.items() if k != "filter3"}
        for record, base in zip(records_a, base_records))
    checks.add("neighbour verdicts untouched during the incident",
               neighbours_ok)

    restored = runtime.reinstate("filter3")
    mttr = time.perf_counter() - quarantined_at
    checks.equal("reinstated", restored.state, ExtensionState.REINSTATED)
    checks.equal("reinstatement re-resolved the WCET budget",
                 restored.cycle_budget, sane_budget)

    records_b = _verdict_stream(runtime.dispatch(trace[third:],
                                                 collect=True))
    checks.equal("post-recovery verdicts bit-identical to baseline",
                 records_b, base_records[third:])
    return {"mttr_seconds": [mttr], "overruns": overruns}


def _crash_schedule(config: ChaosConfig, packets: int) -> set:
    """Packet sequence numbers at which the handling worker crashes
    (whichever shard that is — assignment is ``sequence % shards``)."""
    import random

    rng = random.Random(config.seed ^ 0x5A5A)
    crashes = max(2, packets // 100)
    return set(rng.sample(range(packets), crashes))


def _scenario_shard_crash(campaign: _Campaign, checks: _Checks) -> dict:
    config = campaign.config
    runtime = campaign.runtime()
    campaign.attach_all(runtime)
    schedule = _crash_schedule(config, len(campaign.trace))
    fired = set()

    def hook(shard_index: int, sequence: int) -> None:
        if sequence in schedule and sequence not in fired:
            fired.add(sequence)
            raise InjectedCrash(f"chaos crash on shard {shard_index} "
                                f"at packet {sequence}")

    report = runtime.serve_supervised(campaign.trace, fault_hook=hook)
    checks.add("crashes were injected", report.crashes >= len(schedule),
               f"crashes={report.crashes}, scheduled={len(schedule)}")
    checks.equal("no packet lost",
                 report.dispatched, report.packets)
    checks.equal("nothing shed", report.shed, 0)
    checks.equal("no shard failed", report.failed_shards, ())
    checks.equal("every crash recovered",
                 report.restarts, report.crashes)
    checks.add("MTTR recorded per restart",
               len(report.mttr_seconds) == report.restarts,
               f"{len(report.mttr_seconds)} samples for "
               f"{report.restarts} restarts")

    reference = campaign.runtime()
    campaign.attach_all(reference)
    reference.dispatch(campaign.trace)
    ref = {ext.name: ext.accepted for ext in reference.snapshot().extensions}
    got = {ext.name: ext.accepted for ext in runtime.snapshot().extensions}
    checks.equal("accept counts identical to unsupervised dispatch",
                 got, ref)
    return {"mttr_seconds": list(report.mttr_seconds),
            "crashes": report.crashes, "restarts": report.restarts}


def _scenario_shard_failure(campaign: _Campaign, checks: _Checks) -> dict:
    runtime = campaign.runtime(max_restarts=2)
    campaign.attach_all(runtime)

    def hook(shard_index: int, sequence: int) -> None:
        if shard_index == 0:
            raise InjectedCrash("shard 0 is cursed")

    report = runtime.serve_supervised(campaign.trace, fault_hook=hook)
    checks.equal("cursed shard declared failed",
                 report.failed_shards, (0,))
    checks.equal("restart budget honoured", report.restarts, 2)
    checks.add("residual ingress shed and counted", report.shed > 0,
               f"shed={report.shed}")
    checks.equal("no packet silently vanished",
                 report.dispatched + report.shed, report.packets)
    healthy = [worker for worker in report.workers if worker["shard"] != 0]
    checks.add("other shards kept serving",
               all(worker["dispatched"] > 0 for worker in healthy))
    return {"shed": report.shed, "failed_shards": list(report.failed_shards),
            "mttr_seconds": list(report.mttr_seconds)}


def _pool_scenario(campaign: _Campaign, checks: _Checks,
                   saboteur) -> dict:
    import repro.pcc.loader as loader_module
    from repro.pcc.loader import ExtensionLoader

    blobs = list(campaign.certified.values())
    healthy = ExtensionLoader(campaign.policy, capacity=16)
    expected = [item.report.digest if hasattr(item.report, "digest")
                else True
                for item in healthy.validate_batch(blobs, processes=0)]

    original = loader_module._pool_validate
    loader_module._pool_validate = saboteur
    try:
        loader = ExtensionLoader(campaign.policy, capacity=16)
        started = time.perf_counter()
        results = loader.validate_batch(blobs, processes=2, timeout=0.5,
                                        retries=1, retry_backoff=0.01)
        wall = time.perf_counter() - started
    finally:
        loader_module._pool_validate = original

    checks.add("validate_batch returned (no hang)", wall < 30.0,
               f"wall={wall:.2f}s")
    checks.add("every item validated despite the pool",
               all(item.report is not None for item in results))
    checks.equal("verdict count matches the healthy run",
                 len(results), len(expected))
    stats = loader.stats()
    checks.add("degradation was counted, not silent",
               stats.pool_fallbacks == len(blobs)
               and stats.pool_retries >= 1,
               f"timeouts={stats.pool_timeouts} retries={stats.pool_retries} "
               f"fallbacks={stats.pool_fallbacks}")
    return {"wall_seconds": wall, "pool_timeouts": stats.pool_timeouts,
            "pool_retries": stats.pool_retries,
            "pool_fallbacks": stats.pool_fallbacks,
            "mttr_seconds": [wall]}


def _scenario_pool_wedge(campaign: _Campaign, checks: _Checks) -> dict:
    def wedged(job):   # never returns within any per-item timeout
        time.sleep(3600)

    return _pool_scenario(campaign, checks, wedged)


def _scenario_pool_kill(campaign: _Campaign, checks: _Checks) -> dict:
    def killed(job):   # the worker process dies mid-job
        os._exit(1)

    return _pool_scenario(campaign, checks, killed)


def _scenario_writer_fault(campaign: _Campaign, checks: _Checks) -> dict:
    """A write-capable extension is cut off mid-loop, repeatedly.

    The victim is ``kv-insert`` from the store-bearing family — unlike
    the read-only filters, a faulted invocation here could in principle
    leave a half-written table.  It must not: the budget check fires
    *before* a block executes, so an aborted invocation performs either
    all of its stores or none, and the persistent state must equal the
    pure-Python oracle run over only the frames that completed.
    """
    from repro.filters.kv import (
        KV_INSERT,
        kv_packet_policy,
        kv_registers,
        oracle_run,
        reusable_kv_memory,
    )
    from repro.filters.trace import KvTraceConfig, generate_kv_trace

    config = campaign.config
    policy = kv_packet_policy()
    blob = certify(KV_INSERT.source, policy,
                   invariants=KV_INSERT.invariants()).binary.to_bytes()
    trace = generate_kv_trace(KvTraceConfig(packets=config.packets,
                                            seed=config.seed & 0xFFFF))
    third = len(trace) // 3

    def state_bytes(words: list[int]) -> bytes:
        return b"".join(word.to_bytes(8, "little") for word in words)

    runtime = PacketRuntime(policy, RuntimeConfig(
        shards=1, cycle_budget="auto", fault_threshold=3,
        memory_factory=reusable_kv_memory, registers_fn=kv_registers))
    writer = runtime.attach(KV_INSERT.name, blob)
    sane_budget = writer.cycle_budget

    writer.cycle_budget = 40   # fires inside the table-scan loop
    records = _verdict_stream(runtime.dispatch(trace[:third],
                                               collect=True))
    checks.equal("mid-loop aborts quarantine the writer",
                 writer.state, ExtensionState.QUARANTINED)
    quarantined_at = time.perf_counter()
    overruns = writer.snapshot().faults
    checks.add("aborts were counted", overruns >= 3,
               f"faults={overruns}")
    checks.add("the fault ledger names the budget",
               writer.last_fault and "budget" in writer.last_fault,
               repr(writer.last_fault))
    aborted = [index for index, record in enumerate(records)
               if record.get(KV_INSERT.name, "gone") is None]
    checks.add("aborted invocations are visible in the records",
               len(aborted) >= 3, f"aborted={len(aborted)}")

    completed = [trace[index] for index, record in enumerate(records)
                 if record.get(KV_INSERT.name) is not None]
    __, __, oracle_state = oracle_run(KV_INSERT.name, completed)
    checks.equal("no half-written slots: state is the completed-frames "
                 "oracle's", bytes(runtime.shards[0].memory.region("state")),
                 state_bytes(oracle_state))

    restored = runtime.reinstate(KV_INSERT.name)
    mttr = time.perf_counter() - quarantined_at
    checks.equal("revalidated and reinstated",
                 restored.state, ExtensionState.REINSTATED)
    checks.equal("reinstatement re-derived the WCET budget",
                 restored.cycle_budget, sane_budget)

    after = _verdict_stream(runtime.dispatch(trace[third:], collect=True))
    verdicts, __, oracle_state = oracle_run(KV_INSERT.name,
                                            completed + trace[third:])
    checks.equal("post-recovery verdicts oracle-identical",
                 [record.get(KV_INSERT.name) for record in after],
                 verdicts[len(completed):])
    checks.equal("post-recovery state bit-identical to the oracle",
                 bytes(runtime.shards[0].memory.region("state")),
                 state_bytes(oracle_state))
    checks.equal("no further faults after recovery",
                 runtime.snapshot().faults - overruns, 0)
    return {"mttr_seconds": [mttr], "overruns": overruns,
            "aborted": len(aborted), "completed": len(completed)}


def _scenario_upgrade_rollback(campaign: _Campaign,
                               checks: _Checks) -> dict:
    runtime = campaign.runtime()
    campaign.attach_all(runtime)
    trace = campaign.trace
    half = len(trace) // 2
    baseline = campaign.runtime()
    campaign.attach_all(baseline)
    base_records = _verdict_stream(baseline.dispatch(trace, collect=True))

    live = runtime.extension("filter1")
    pre_digest, pre_version = live.digest, live.version
    shadow = runtime.upgrade(
        "filter1", campaign.divergent_upgrade,
        CanaryConfig(sample_fraction=1.0, promote_after=10 ** 6,
                     seed=campaign.config.seed))
    records_a = _verdict_stream(runtime.dispatch(trace[:half],
                                                 collect=True))
    record = shadow.record()
    checks.equal("divergence rolled the canary back",
                 record.state, "rolled-back")
    checks.add("rollback reason names the divergence",
               record.reason and "divergence" in record.reason,
               repr(record.reason))
    checks.equal("first divergence decided it (no lingering shadow)",
                 record.divergences, 1)
    checks.equal("live identity untouched",
                 (live.digest, live.version), (pre_digest, pre_version))
    checks.equal("canary slot cleared", live.canary, None)
    checks.equal("verdicts during the canary bit-identical to baseline",
                 records_a, base_records[:half])
    records_b = _verdict_stream(runtime.dispatch(trace[half:],
                                                 collect=True))
    checks.equal("post-rollback verdicts bit-identical to baseline",
                 records_b, base_records[half:])
    checks.equal("upgrade recorded in the audit log",
                 [entry.state for entry in runtime.upgrade_log],
                 ["rolled-back"])
    return {"rollback_reason": record.reason,
            "decision_seconds": record.decision_seconds,
            "mttr_seconds": [record.decision_seconds]}


def _scenario_upgrade_promotion(campaign: _Campaign,
                                checks: _Checks) -> dict:
    runtime = campaign.runtime()
    campaign.attach_all(runtime)
    trace = campaign.trace
    baseline = campaign.runtime()
    campaign.attach_all(baseline)
    base_records = _verdict_stream(baseline.dispatch(trace, collect=True))

    live = runtime.extension("filter1")
    old_budget = live.cycle_budget
    promote_after = min(64, len(trace) // 4)
    runtime.upgrade("filter1", campaign.benign_upgrade,
                    CanaryConfig(sample_fraction=1.0,
                                 promote_after=promote_after,
                                 seed=campaign.config.seed))
    records = _verdict_stream(runtime.dispatch(trace, collect=True))
    checks.equal("canary promoted", live.version, 2)
    checks.equal("audit log shows the promotion",
                 [entry.state for entry in runtime.upgrade_log],
                 ["promoted"])
    record = runtime.upgrade_log[0]
    checks.equal("promotion took exactly promote_after clean packets",
                 record.clean, promote_after)
    checks.equal("verdicts bit-identical across the swap",
                 records, base_records)
    checks.add("budget re-resolved for the new program",
               live.cycle_budget is not None
               and old_budget is not None
               and live.cycle_budget > old_budget,
               f"{old_budget} -> {live.cycle_budget}")
    checks.equal("canary slot cleared", live.canary, None)
    return {"promote_after": promote_after,
            "decision_seconds": record.decision_seconds,
            "budget": {"old": old_budget, "new": live.cycle_budget}}


def _scenario_upgrade_patch_corruption(campaign: _Campaign,
                                       checks: _Checks) -> dict:
    """A corrupted proof patch arrives mid-upgrade.

    Three invariants: a corrupted patch with no fallback is rejected
    outright and leaves the live version untouched; a corrupted patch
    *with* full container bytes falls back to full certification and the
    upgrade still lands with bit-identical verdicts; and a clean patch
    admits through the cheap path (so the fallback is not the only path
    that ever works).
    """
    from repro.errors import PatchError
    from repro.pcc.incremental import certify_incremental

    runtime = campaign.runtime()
    campaign.attach_all(runtime)
    trace = campaign.trace
    baseline = campaign.runtime()
    campaign.attach_all(baseline)
    base_records = _verdict_stream(baseline.dispatch(trace, collect=True))

    spec = FILTERS[0]
    benign_source = (spec.source.rstrip().rsplit("RET", 1)[0]
                     + _BENIGN_SUFFIX)
    base_blob = campaign.certified[spec.name]
    result = certify_incremental(base_blob, benign_source, campaign.policy,
                                 store=runtime.loader.proof_store)
    wire = result.patch.to_bytes()
    # Flip a byte inside the 32-byte base-digest field (offset 5..36):
    # the patch no longer matches the serving container.
    wrong_base = wire[:10] + bytes([wire[10] ^ 0x5A]) + wire[11:]
    truncated = wire[:-1]

    live = runtime.extension(spec.name)
    promote_after = min(64, len(trace) // 4)
    canary = CanaryConfig(sample_fraction=1.0, promote_after=promote_after,
                          seed=campaign.config.seed)

    try:
        runtime.upgrade(spec.name, canary=canary, patch=wrong_base)
        checks.add("patch-only corrupted upgrade rejected", False,
                   "a tampered patch was admitted")
    except (PatchError, ValidationError):
        checks.add("patch-only corrupted upgrade rejected", True)
    checks.equal("live version untouched by the rejected patch",
                 live.version, 1)
    checks.equal("no canary left in flight", live.canary, None)

    # Corrupted patch + full container: the fallback path carries it.
    runtime.upgrade(spec.name, campaign.benign_upgrade, canary,
                    patch=truncated)
    records = _verdict_stream(runtime.dispatch(trace, collect=True))
    checks.equal("fallback upgrade promoted", live.version, 2)
    checks.equal("verdicts bit-identical across the fallback swap",
                 records, base_records)
    stats = runtime.loader.stats()
    checks.equal("both corrupted patches counted as rejects",
                 stats.patch_rejects, 2)

    # A clean patch admits through the cheap path on a fresh runtime.
    fresh = campaign.runtime()
    campaign.attach_all(fresh)
    fresh.upgrade(spec.name, canary=canary, patch=wire)
    fresh_records = _verdict_stream(fresh.dispatch(trace, collect=True))
    checks.equal("clean patch promoted",
                 fresh.extension(spec.name).version, 2)
    checks.equal("clean-patch verdicts bit-identical", fresh_records,
                 records)
    fresh_stats = fresh.loader.stats()
    checks.equal("clean patch counted as a patch hit",
                 fresh_stats.patch_hits, 1)
    return {"patch_bytes": len(wire),
            "full_bytes": len(campaign.benign_upgrade),
            "reused_parts": result.reused_parts,
            "proved_parts": result.proved_parts,
            "patch_rejects": stats.patch_rejects}


#: Scenario registry, in execution order.
SCENARIOS = {
    "admission-mutants": _scenario_admission_mutants,
    "adversarial-packets": _scenario_adversarial_packets,
    "budget-overrun": _scenario_budget_overrun,
    "shard-crash": _scenario_shard_crash,
    "shard-failure": _scenario_shard_failure,
    "pool-wedge": _scenario_pool_wedge,
    "pool-kill": _scenario_pool_kill,
    "writer-fault": _scenario_writer_fault,
    "upgrade-rollback": _scenario_upgrade_rollback,
    "upgrade-promotion": _scenario_upgrade_promotion,
    "upgrade-patch-corruption": _scenario_upgrade_patch_corruption,
}


def run_chaos(config: ChaosConfig | None = None) -> ChaosReport:
    """Run the chaos campaign and return the full report.

    Scenarios are independent (each builds its own runtimes) and run in
    registry order; a failing invariant marks its scenario failed but
    never aborts the campaign — the report shows every broken invariant
    at once.
    """
    config = config or ChaosConfig()
    campaign = _Campaign(config)
    names = config.scenarios or tuple(SCENARIOS)
    results = []
    started = time.perf_counter()
    for name in names:
        checks = _Checks()
        scenario_start = time.perf_counter()
        try:
            details = SCENARIOS[name](campaign, checks) or {}
        except Exception as error:   # an invariant crash is a failure
            checks.add("scenario completed", False,
                       f"{type(error).__name__}: {error}")
            details = {}
        results.append(ScenarioResult(
            name=name,
            passed=all(ok for __, ok, __unused in checks.rows),
            checks=tuple(checks.rows),
            wall_seconds=time.perf_counter() - scenario_start,
            details=details,
        ))
    return ChaosReport(
        seed=config.seed, packets=config.packets, shards=config.shards,
        scenarios=tuple(results),
        wall_seconds=time.perf_counter() - started,
    )
