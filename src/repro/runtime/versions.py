"""Versioned hot-swap: shadow canaries, auto-promotion, auto-rollback.

The paper's guarantee is per-binary: *these* bytes, once validated, are
safe forever.  A fleet replacing an extension under live traffic needs
more — the new version must prove itself against real packets before it
is trusted, and backing out must be instant and exact.  This module is
that upgrade path:

* :meth:`repro.runtime.PacketRuntime.upgrade` admits the replacement
  bytes through the loader (same front door as :meth:`attach` — there is
  no way to smuggle an unvalidated version in) and installs them as a
  **shadow canary**: the live version keeps serving every packet and its
  verdicts remain authoritative; the candidate additionally runs on a
  configurable sample of the stream, its verdicts compared but never
  used.  Shadow execution rebinds the shard memory per invocation
  exactly like live dispatch, so the candidate cannot perturb the live
  stream — rollback therefore restores bit-identical verdicts *by
  construction*, not by replay.
* After ``promote_after`` sampled packets with agreeing verdicts and no
  faults, the canary **auto-promotes**: the candidate's program, engine,
  digest and freshly resolved cycle budget are swapped into the live
  slot between invocations (one attribute publication under the
  extension lock; in-flight packets finish on whichever version they
  started with).
* Any divergence, machine fault, or cycle-budget overrun in the shadow
  **auto-rolls-back**: the candidate is discarded, the live version
  never having missed a packet.

Sampling is per shard with seeded RNGs (derived from the canary seed and
the shard index), so a given trace through a given shard layout always
samples the same packets — chaos runs and tests are reproducible.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from dataclasses import dataclass

from repro.errors import MachineError
from repro.runtime.shard import fault_reason

__all__ = [
    "CanaryConfig",
    "ShadowCanary",
    "UpgradeRecord",
    "VersionState",
]


class VersionState(enum.Enum):
    """The version-lifecycle state machine (one canary per upgrade).

    SHADOW        candidate runs on sampled packets; live verdicts rule
    PROMOTED      candidate swapped into the live slot (terminal)
    ROLLED_BACK   candidate discarded after divergence/fault/overrun or
                  operator action (terminal)
    """

    SHADOW = "shadow"
    PROMOTED = "promoted"
    ROLLED_BACK = "rolled-back"


@dataclass(frozen=True)
class CanaryConfig:
    """Knobs for one shadow-canary upgrade.

    ``sample_fraction``  fraction of the live stream also dispatched to
                         the candidate (1.0 = every packet)
    ``promote_after``    clean (agreeing, fault-free) sampled packets
                         before auto-promotion
    ``seed``             base seed for the per-shard sampling RNGs
    """

    sample_fraction: float = 1.0
    promote_after: int = 128
    seed: int = 0xCA9A27

    def __post_init__(self) -> None:
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError(f"sample fraction must be in (0, 1], got "
                             f"{self.sample_fraction}")
        if self.promote_after < 1:
            raise ValueError("promote_after must be positive")


@dataclass(frozen=True)
class UpgradeRecord:
    """The outcome of one upgrade attempt (telemetry / audit log)."""

    name: str
    from_version: int
    to_version: int
    from_digest: str
    to_digest: str
    state: str
    sampled: int
    clean: int
    divergences: int
    faults: int
    reason: str | None
    decision_seconds: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "from_version": self.from_version,
            "to_version": self.to_version,
            "from_digest": self.from_digest,
            "to_digest": self.to_digest,
            "state": self.state,
            "sampled": self.sampled,
            "clean": self.clean,
            "divergences": self.divergences,
            "faults": self.faults,
            "reason": self.reason,
            "decision_seconds": self.decision_seconds,
        }


class ShadowCanary:
    """One in-flight upgrade: the candidate version running in shadow.

    Thread-safety: :meth:`consider` is called from shard worker threads.
    Sampling RNGs are per shard (each touched only by its own worker);
    the clean/divergence ledger and the state transition sit behind one
    lock, and the decision (promote or roll back) fires exactly once, in
    whichever worker observed the deciding packet.  The runtime-supplied
    ``decide`` callback runs *outside* the canary lock.
    """

    def __init__(self, name: str, live, candidate, config: CanaryConfig,
                 shards: int, decide) -> None:
        self.name = name
        self.live = live
        self.candidate = candidate
        self.config = config
        self.state = VersionState.SHADOW
        self.reason: str | None = None
        self.sampled = 0
        self.clean = 0
        self.divergences = 0
        self.faults = 0
        self.skipped = 0   # live invocation faulted: nothing to compare
        self._decide = decide
        # Captured now: promotion rewrites the live extension in place,
        # so the pre-upgrade identity must be pinned for the audit log.
        self._from_version = live.version
        self._from_digest = live.digest
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self.decision_seconds: float | None = None
        self._rngs = [random.Random((config.seed * 0x9E3779B1) ^ index)
                      for index in range(shards)]

    # -- the shadow hot path (called from Shard.dispatch) ----------------

    def consider(self, shard, frame: bytes, live_verdict: bool | None,
                 policy) -> None:
        """Maybe run the candidate on ``frame`` and weigh the outcome.

        ``live_verdict`` is the authoritative verdict the live version
        just produced (``None`` if the live invocation faulted — such
        packets are skipped: there is no verdict to agree with, and the
        live fault is the quarantine machinery's problem, not the
        canary's).
        """
        if self.state is not VersionState.SHADOW:
            return
        fraction = self.config.sample_fraction
        if fraction < 1.0 and self._rngs[shard.index].random() >= fraction:
            return
        if live_verdict is None:
            with self._lock:
                self.skipped += 1
            return

        candidate = self.candidate
        shard.rebind(frame)
        registers = shard.registers_fn(len(frame))
        if candidate.checked:
            shard.bind_checkers(policy, registers)
            engine = candidate.shard_engines[shard.index]
        else:
            engine = candidate.engine
        counters = candidate.shard_counters[shard.index]
        counters.packets_in += 1
        budget = candidate.cycle_budget
        try:
            if budget is None:
                result = engine.run(shard.memory, registers)
            else:
                result = engine.run_budgeted(shard.memory, registers,
                                             budget)
        except MachineError as error:
            counters.faults += 1
            self._observe(clean=False,
                          reason=f"candidate fault: {fault_reason(error)}")
            return
        counters.cycles += result.cycles
        hist = counters.cycle_hist
        hist[result.cycles] = hist.get(result.cycles, 0) + 1
        shard.canary_cycles += result.cycles
        verdict = bool(result.value)
        counters.accepted += verdict
        if verdict != live_verdict:
            self._observe(clean=False,
                          reason=f"verdict divergence (live={live_verdict}, "
                                 f"candidate={verdict})")
        else:
            self._observe(clean=True, reason=None)

    def _observe(self, clean: bool, reason: str | None) -> None:
        """Record one sampled outcome; fire the decision at most once."""
        decision: bool | None = None
        with self._lock:
            if self.state is not VersionState.SHADOW:
                return
            self.sampled += 1
            if clean:
                self.clean += 1
                if self.clean >= self.config.promote_after:
                    self.state = VersionState.PROMOTED
                    decision = True
            else:
                if reason and reason.startswith("candidate fault"):
                    self.faults += 1
                else:
                    self.divergences += 1
                self.state = VersionState.ROLLED_BACK
                self.reason = reason
                decision = False
            if decision is not None:
                self.decision_seconds = time.perf_counter() - self._started
        if decision is not None:
            self._decide(self, decision)

    # -- operator overrides ----------------------------------------------

    def force(self, promote: bool, reason: str | None = None) -> bool:
        """Operator-initiated promote/rollback; False if already decided."""
        with self._lock:
            if self.state is not VersionState.SHADOW:
                return False
            self.state = (VersionState.PROMOTED if promote
                          else VersionState.ROLLED_BACK)
            self.reason = reason
            self.decision_seconds = time.perf_counter() - self._started
        self._decide(self, promote)
        return True

    # -- reporting --------------------------------------------------------

    def record(self) -> UpgradeRecord:
        with self._lock:
            return UpgradeRecord(
                name=self.name,
                from_version=self._from_version,
                to_version=self.candidate.version,
                from_digest=self._from_digest,
                to_digest=self.candidate.digest,
                state=self.state.value,
                sampled=self.sampled,
                clean=self.clean,
                divergences=self.divergences,
                faults=self.faults,
                reason=self.reason,
                decision_seconds=(self.decision_seconds
                                  if self.decision_seconds is not None
                                  else time.perf_counter() - self._started),
            )

    def snapshot(self) -> dict:
        """A JSON-ready view for the extension's telemetry snapshot."""
        with self._lock:
            return {
                "state": self.state.value,
                "to_version": self.candidate.version,
                "to_digest": self.candidate.digest,
                "sample_fraction": self.config.sample_fraction,
                "promote_after": self.config.promote_after,
                "sampled": self.sampled,
                "clean": self.clean,
                "divergences": self.divergences,
                "faults": self.faults,
                "reason": self.reason,
            }
