"""Dispatch-runtime configuration.

The defaults encode the paper's packet-filter invocation contract: a
reusable kernel memory with packet + scratch regions and the r1/r2/r3
register convention.  Both are swappable callables, so the runtime can
host any policy whose invocation contract can be expressed as "build a
memory once, rebind it per packet, derive entry registers from the
frame".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.filters.packets import MAX_FRAME, MIN_FRAME
from repro.filters.policy import filter_registers, reusable_packet_memory
from repro.perf.cost import ALPHA_175, AlphaCostModel
from repro.runtime.versions import CanaryConfig


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs for :class:`repro.runtime.PacketRuntime`.

    ``shards``            modeled cores (worker threads or processes in
                          :meth:`serve`, per ``backend``)
    ``backend``           how :meth:`serve` hosts its shard workers:
                          ``"thread"`` (default; in-process, shares the
                          GIL) or ``"process"`` (shared-nothing forked
                          workers, one per shard, merged deterministically
                          on join — see :mod:`repro.runtime.backends`)
    ``batch_size``        frames per dispatch chunk on the batched hot
                          path; also the process backend's quarantine-
                          relay granularity (a worker drains remote
                          deactivations between chunks)
    ``cycle_budget``      per-invocation cycle cap; ``None`` disables —
                          overruns fault the extension (liveness policy);
                          the string ``"auto"`` derives each extension's
                          budget from its static WCET bound at admission
                          (:mod:`repro.analysis.wcet`), falling back to
                          unbudgeted for extensions the analysis cannot
                          bound
    ``budget_slack``      headroom on auto budgets: the budget is
                          ``ceil(wcet * (1 + budget_slack))``; 0.0 sets
                          the budget to the exact bound, which is still
                          verdict-preserving (the bound is sound for the
                          engine's block-granular accounting)
    ``prescreen``         run the static-analysis fast-reject pass in
                          the loader before full PCC validation
    ``fault_threshold``   consecutive faults before quarantine; ``None``
                          never quarantines
    ``downgrade_unproven``  admit proof-less binaries onto the *checked*
                          abstract-machine path instead of rejecting
    ``enforce_contract``  drop frames outside [min_frame_bytes,
                          max_frame_bytes] at the boundary — the kernel's
                          half of the precondition bargain (r2 >= 64)
    ``canary``            default :class:`~repro.runtime.versions
                          .CanaryConfig` for :meth:`PacketRuntime
                          .upgrade` (overridable per upgrade)

    Supervisor knobs (the :class:`~repro.runtime.supervisor
    .ShardSupervisor` behind :meth:`PacketRuntime.serve_supervised`):

    ``ingress_capacity``  bounded per-shard ingress queue depth
    ``shed_timeout``      how long the feeder waits for queue space
                          before shedding a frame (0 = shed immediately
                          on saturation); sheds are always counted
    ``max_restarts``      crash-restarts per shard worker before the
                          shard is declared failed (its remaining
                          ingress is shed, counted, never silent)
    ``restart_backoff``   base of the exponential restart backoff
                          (seconds; doubles per restart, capped at
                          ``restart_backoff_cap``)
    ``health_interval``   supervisor health-check poll period (seconds)
    """

    shards: int = 1
    backend: str = "thread"
    batch_size: int = 8192
    cycle_budget: int | str | None = None
    budget_slack: float = 0.0
    prescreen: bool = False
    fault_threshold: int | None = 3
    downgrade_unproven: bool = False
    enforce_contract: bool = True
    min_frame_bytes: int = MIN_FRAME
    max_frame_bytes: int = MAX_FRAME
    cost_model: AlphaCostModel = field(default_factory=lambda: ALPHA_175)
    max_steps: int = 1_000_000
    cache_capacity: int = 64
    memory_factory: Callable = reusable_packet_memory
    registers_fn: Callable[[int], dict] = filter_registers
    canary: CanaryConfig = field(default_factory=CanaryConfig)
    ingress_capacity: int = 4096
    shed_timeout: float = 0.25
    max_restarts: int = 3
    restart_backoff: float = 0.01
    restart_backoff_cap: float = 0.5
    health_interval: float = 0.002

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")
        if self.backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process'; "
                f"got {self.backend!r}")
        if self.batch_size < 1:
            raise ValueError("batch size must be positive")
        if self.ingress_capacity < 1:
            raise ValueError("ingress capacity must be positive")
        if self.shed_timeout < 0:
            raise ValueError("shed timeout must be non-negative")
        if self.max_restarts < 0:
            raise ValueError("max restarts must be non-negative")
        if self.restart_backoff < 0 or self.restart_backoff_cap < 0:
            raise ValueError("restart backoff must be non-negative")
        if self.health_interval <= 0:
            raise ValueError("health interval must be positive")
        budget = self.cycle_budget
        if isinstance(budget, str):
            if budget != "auto":
                raise ValueError(
                    f"cycle budget must be a positive int, None, or "
                    f"'auto'; got {budget!r}")
        elif isinstance(budget, bool):
            # bool is an int subclass; True would silently mean "1 cycle".
            raise ValueError("cycle budget must be a positive int, None, "
                             "or 'auto'; got a bool")
        elif budget is not None:
            if not isinstance(budget, int):
                raise ValueError(
                    f"cycle budget must be a positive int, None, or "
                    f"'auto'; got {type(budget).__name__}")
            if budget < 1:
                raise ValueError("cycle budget must be positive")
        if not isinstance(self.budget_slack, (int, float)) \
                or isinstance(self.budget_slack, bool) \
                or self.budget_slack < 0:
            raise ValueError("budget slack must be a non-negative number")
        if self.fault_threshold is not None and self.fault_threshold < 1:
            raise ValueError("fault threshold must be positive")
