"""The kernel packet-dispatch runtime (the layer above admission).

PR 2 built the admission path — :class:`repro.pcc.loader.ExtensionLoader`
turns untrusted bytes into validated programs.  This module is the
*dispatch* path: what the kernel does with admitted extensions while
traffic is flowing, and what happens when one of them misbehaves.

Admission (:meth:`PacketRuntime.attach`) goes only through the loader.
A submission that validates runs on the raw threaded-code engine with
**zero per-packet checks** — the paper's whole point.  A submission that
fails validation is rejected, or — when the operator opts in with
``downgrade_unproven`` — admitted onto the *checked* abstract-machine
path (Figure 3 semantics), paying rd()/wr() hooks on every memory
instruction.  That downgrade tier is exactly the world PCC removes; the
runtime keeps it around both as a fairness baseline and because a kernel
fleet mid-rollout realistically hosts a mix.

Dispatch fans the packet stream across :class:`~repro.runtime.shard
.Shard` workers — modeled cores with private memories and cycle clocks
— and each shard runs every active extension over each of its packets.
Robustness is policy, not hope:

* **cycle budgets** — an invocation that overruns its budget faults
  (liveness is not covered by the safety proof);
* **fault thresholds** — ``fault_threshold`` *consecutive* faults flip
  an extension ACTIVE → QUARANTINED: every shard skips it from the next
  packet on, and the remaining extensions' verdicts are untouched
  (dispatch is per-extension independent, so isolation is exact);
* **reinstatement** — :meth:`reinstate` re-admits a quarantined
  extension through the loader (content-addressed, so revalidation of
  unchanged bytes is O(hash)); success moves it to REINSTATED.  An
  unproven extension stays on the checked tier unless its bytes now
  validate, in which case reinstatement *promotes* it to the unchecked
  fast path.

Telemetry is first-class: per-extension counters and latency
percentiles, per-shard cycle clocks, and a JSON-serializable snapshot
(surfaced by ``pcc serve --json``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.alpha.batch import FramePlan, compile_batch
from repro.alpha.encoding import decode_program
from repro.alpha.engine import ExecutionEngine
from repro.alpha.abstract import make_check_hooks
from repro.errors import (
    PatchError,
    PccError,
    UnknownExtensionError,
    ValidationError,
)
from repro.filters.policy import (
    PACKET_BASE,
    SCRATCH_BASE,
    SCRATCH_SIZE,
    filter_registers,
    reusable_packet_memory,
)
from repro.pcc.container import PccBinary
from repro.pcc.loader import ExtensionLoader
from repro.proof.store import ProofStore
from repro.runtime.config import RuntimeConfig
from repro.runtime.extension import ExtensionState, RuntimeExtension
from repro.runtime.shard import Shard
from repro.runtime.telemetry import RuntimeSnapshot
from repro.runtime.versions import CanaryConfig, ShadowCanary, UpgradeRecord
from repro.vcgen.policy import SafetyPolicy


@dataclass(frozen=True)
class DispatchReport:
    """Outcome of one :meth:`PacketRuntime.dispatch`/:meth:`serve` call."""

    packets: int
    contract_drops: int
    wall_seconds: float
    shard_cycles: tuple[int, ...]
    clock_mhz: float
    records: list[dict] | None = None
    #: Which execution vehicle produced this report: "serial"
    #: (:meth:`dispatch`), "thread", or "process" (:meth:`serve`).
    backend: str = "serial"

    @property
    def modeled_seconds(self) -> float:
        if not self.shard_cycles:
            return 0.0
        return max(self.shard_cycles) / (self.clock_mhz * 1e6)

    @property
    def modeled_packets_per_second(self) -> float:
        seconds = self.modeled_seconds
        return self.packets / seconds if seconds else 0.0

    @property
    def wall_packets_per_second(self) -> float:
        return self.packets / self.wall_seconds if self.wall_seconds else 0.0


class PacketRuntime:
    """A simulated in-kernel dispatch plane over PCC-admitted extensions.

    Concurrency contract: the control plane (:meth:`attach`,
    :meth:`detach`, :meth:`reinstate`, :meth:`upgrade`, :meth:`promote`,
    :meth:`rollback`) serializes every mutation of the extension table
    behind ``self._lock`` — concurrent control-plane calls are safe.
    Validation itself (the slow part) runs outside the lock, so a long
    admission never blocks telemetry or other control calls.  The
    dispatch paths (:meth:`dispatch`, :meth:`serve`,
    :meth:`serve_supervised`) snapshot the extension *list* once at
    entry: an extension attached mid-serve joins on the next call, and a
    detached one finishes the in-flight call — the hot loop itself takes
    no locks (quarantine flips and canary promotion publish single
    attributes the loop reads once per invocation).
    """

    def __init__(self, policy: SafetyPolicy,
                 config: RuntimeConfig | None = None) -> None:
        self.policy = policy
        self.config = config or RuntimeConfig()
        self.loader = ExtensionLoader(policy, self.config.cache_capacity,
                                      prescreen=self.config.prescreen,
                                      proof_store=ProofStore())
        self.shards = [Shard(index, self.config)
                       for index in range(self.config.shards)]
        self._extensions: dict[str, RuntimeExtension] = {}
        self._lock = threading.Lock()
        self.contract_drops = 0
        self.upgrade_log: list[UpgradeRecord] = []
        self.last_supervisor_report = None
        # Batch compilation specializes against the *standard* packet-
        # filter invocation contract; a runtime configured with custom
        # memory/register callables gets no frame plan and every
        # extension batches through the generic engine loop instead.
        if (self.config.memory_factory is reusable_packet_memory
                and self.config.registers_fn is filter_registers):
            self._frame_plan = FramePlan(PACKET_BASE, SCRATCH_BASE,
                                         SCRATCH_SIZE)
        else:
            self._frame_plan = None

    # -- admission (the only way in is through the loader) ---------------

    def attach(self, name: str, data: bytes | PccBinary
               ) -> RuntimeExtension:
        """Admit ``data`` as extension ``name``.

        PCC-validated submissions get the unchecked fast path.  On
        :class:`ValidationError`, the submission is rejected unless
        ``config.downgrade_unproven`` — then it is admitted onto the
        checked abstract-machine tier (a decodable code section is still
        required; garbage is rejected regardless).
        """
        with self._lock:
            if name in self._extensions:
                raise ValueError(f"extension {name!r} already attached")
        extension = self._admit(name, data)
        self._resolve_budget(extension)
        with self._lock:
            if name in self._extensions:  # lost a race to another attach
                raise ValueError(f"extension {name!r} already attached")
            self._extensions[name] = extension
        return extension

    def _admit(self, name: str, data: bytes | PccBinary
               ) -> RuntimeExtension:
        """Build a RuntimeExtension from ``data`` via the loader — the
        shared admission step behind :meth:`attach` and :meth:`upgrade`
        (nothing reaches dispatch without passing through here)."""
        blob = data.to_bytes() if isinstance(data, PccBinary) else bytes(data)
        digest = self.loader.cache_key(blob)[0]
        config = self.config
        try:
            report = self.loader.load(blob)
        except ValidationError:
            if not config.downgrade_unproven:
                raise
            return self._attach_checked(name, blob, digest)
        extension = RuntimeExtension(
            name, blob, digest, report.program, report,
            checked=False, shards=config.shards)
        extension.engine = ExecutionEngine(
            report.program, config.cost_model, config.max_steps)
        extension.batch_runner = self._batch_runner_for(report.program)
        return extension

    def _batch_runner_for(self, program):
        """The specialized whole-batch driver for an unchecked program,
        or None when the program (loops, stores, size) or this runtime's
        invocation contract falls outside the fast path."""
        if self._frame_plan is None:
            return None
        return compile_batch(program, self.config.cost_model,
                             self._frame_plan, self.config.max_steps)

    def _resolve_budget(self, extension: RuntimeExtension) -> None:
        """Fix the extension's per-invocation budget at admission.

        ``cycle_budget="auto"`` asks the static analyzer for the
        extension's WCET under this runtime's policy and cost model.
        The bound is sound for the engine's block-granular accounting,
        so an auto budget can never fire on a run the unbudgeted engine
        would complete — verdicts are bit-identical.  Extensions the
        analysis cannot bound (irreducible flow, unprovable loops) fall
        back to unbudgeted dispatch; ``wcet_bound`` stays None and the
        operator can see that in telemetry.
        """
        config = self.config
        if config.cycle_budget != "auto":
            extension.cycle_budget = config.cycle_budget
            return
        from repro.analysis.intervals import context_for_policy
        from repro.analysis.wcet import estimate_wcet

        report = estimate_wcet(extension.program,
                               context_for_policy(self.policy),
                               config.cost_model)
        extension.wcet_bound = report.bound
        extension.cycle_budget = report.budget(config.budget_slack)

    def _attach_checked(self, name: str, blob: bytes,
                        digest: str) -> RuntimeExtension:
        """The downgrade tier: decode the code section and bake this
        runtime's per-shard rd()/wr() hooks into a checked engine per
        shard (Figure 3 semantics at dispatch time)."""
        try:
            program = decode_program(PccBinary.from_bytes(blob).code)
        except PccError as error:
            raise ValidationError(
                f"cannot downgrade {name!r}: undecodable code section "
                f"({error})") from error
        extension = RuntimeExtension(
            name, blob, digest, program, report=None, checked=True,
            shards=self.config.shards)
        extension.shard_engines = [
            ExecutionEngine(program, self.config.cost_model,
                            self.config.max_steps,
                            *make_check_hooks(shard.can_read,
                                              shard.can_write))
            for shard in self.shards
        ]
        return extension

    def detach(self, name: str) -> None:
        with self._lock:
            extension = self._extensions.pop(name, None)
            if extension is None:
                raise UnknownExtensionError(name, list(self._extensions))
            extension.canary = None  # any in-flight upgrade dies with it

    def extension(self, name: str) -> RuntimeExtension:
        with self._lock:
            extension = self._extensions.get(name)
            if extension is None:
                raise UnknownExtensionError(name, list(self._extensions))
            return extension

    @property
    def extensions(self) -> list[RuntimeExtension]:
        with self._lock:
            return list(self._extensions.values())

    # -- quarantine control ----------------------------------------------

    def reinstate(self, name: str) -> RuntimeExtension:
        """Revalidate and re-admit a quarantined extension.

        The bytes go back through the loader: unchanged proven bytes hit
        the content-addressed cache (O(hash)); an unproven extension
        whose bytes *now* validate is promoted to the unchecked fast
        path; an unproven extension that still fails validation returns
        to the checked tier (it was admissible there to begin with).

        Reinstatement is re-admission, so the cycle budget is resolved
        afresh exactly as :meth:`attach` would: a promoted extension's
        WCET is recomputed for the program it will actually run (the old
        checked-tier bound — or a hand-tweaked one — would be stale),
        and a fixed config budget is re-applied.
        """
        extension = self.extension(name)
        if extension.state is not ExtensionState.QUARANTINED:
            raise ValueError(f"extension {name!r} is not quarantined "
                             f"(state: {extension.state.value})")
        try:
            report = self.loader.load(extension.blob)
        except ValidationError:
            if not extension.checked:
                raise  # proven bytes failing revalidation: refuse
        else:
            if extension.checked:
                extension.checked = False
                extension.shard_engines = None
                extension.report = report
                extension.program = report.program
                extension.engine = ExecutionEngine(
                    report.program, self.config.cost_model,
                    self.config.max_steps)
                extension.batch_runner = self._batch_runner_for(
                    report.program)
        self._resolve_budget(extension)
        extension.reinstate()
        return extension

    # -- versioned hot swap ----------------------------------------------

    def upgrade(self, name: str, data: bytes | PccBinary | None = None,
                canary: CanaryConfig | None = None, *,
                patch=None) -> ShadowCanary:
        """Admit the next version of ``name`` and start it as a shadow
        canary (see :mod:`repro.runtime.versions`).

        The candidate arrives either as full container bytes (``data``),
        as an incremental :class:`~repro.pcc.incremental.ProofPatch`
        against the serving version's exact bytes (``patch``), or both.
        The patch path is tried first — it reassembles the container via
        :meth:`~repro.pcc.loader.ExtensionLoader.load_patch`, so the full
        validation pipeline still runs — and any *patch* problem (wrong
        base, tampered subproof, stale fingerprint) falls back to full
        certification of ``data`` when provided, or re-raises
        :class:`~repro.errors.PatchError` when not.  A candidate that is
        genuinely unsafe is rejected identically by both paths.

        The live version keeps serving — and stays authoritative — for
        every packet; the candidate runs on a sampled shadow of the
        stream until it either earns promotion (``promote_after`` clean
        packets) or triggers rollback (any divergence, fault, or budget
        overrun).  Raises :class:`ValidationError` if the new bytes do
        not pass admission (under ``downgrade_unproven`` the candidate
        shadows on the checked tier, like any other unproven code).
        """
        if data is None and patch is None:
            raise ValueError("upgrade needs container bytes, a proof "
                             "patch, or both")
        extension = self.extension(name)
        if not extension.active:
            raise ValueError(
                f"extension {name!r} is {extension.state.value}; "
                f"reinstate or detach it before upgrading")
        if patch is not None:
            try:
                __, reassembled = self.loader.load_patch(
                    patch, extension.blob)
            except PatchError:
                if data is None:
                    raise
                # Fall back to the full path: the patch was unusable
                # (corrupted, wrong base, stale policy) but the full
                # container can still earn admission on its own merits.
            else:
                data = reassembled
        blob = data.to_bytes() if isinstance(data, PccBinary) else bytes(data)
        digest = self.loader.cache_key(blob)[0]
        if digest == extension.digest:
            raise ValueError(
                f"upgrade for {name!r} is byte-identical to the serving "
                f"version (digest {digest[:12]})")
        candidate = self._admit(name, blob)
        candidate.version = extension.version + 1
        self._resolve_budget(candidate)
        shadow = ShadowCanary(name, extension, candidate,
                              canary or self.config.canary,
                              shards=len(self.shards),
                              decide=self._decide_canary)
        with self._lock:
            if self._extensions.get(name) is not extension:
                raise UnknownExtensionError(name, list(self._extensions))
            if extension.canary is not None:
                raise ValueError(
                    f"an upgrade for {name!r} is already in flight "
                    f"(to v{extension.canary.candidate.version})")
            extension.canary = shadow
        return shadow

    def promote(self, name: str) -> UpgradeRecord:
        """Operator override: promote the in-flight canary now."""
        shadow = self._require_canary(name)
        shadow.force(True, reason="operator promote")
        return shadow.record()

    def rollback(self, name: str) -> UpgradeRecord:
        """Operator override: discard the in-flight canary now."""
        shadow = self._require_canary(name)
        shadow.force(False, reason="operator rollback")
        return shadow.record()

    def _require_canary(self, name: str) -> ShadowCanary:
        shadow = self.extension(name).canary
        if shadow is None:
            raise ValueError(f"no upgrade in flight for {name!r}")
        return shadow

    def _decide_canary(self, shadow: ShadowCanary, promoted: bool) -> None:
        """Finish an upgrade (called once per canary, possibly from a
        shard worker thread): clear the shadow slot, adopt the candidate
        on promotion, and append the audit record."""
        with self._lock:
            live = self._extensions.get(shadow.name)
            if live is shadow.live:
                live.canary = None
                if promoted:
                    live.adopt(shadow.candidate)
            self.upgrade_log.append(shadow.record())

    # -- dispatch ---------------------------------------------------------

    def dispatch(self, frames, collect: bool = False) -> DispatchReport:
        """Serial dispatch (deterministic round-robin shard assignment).

        The semantics reference for :meth:`serve`: identical verdicts
        and counters, packet order preserved in the collected records.
        """
        frames = list(frames)
        kept, drops = self._apply_contract(frames)
        self.contract_drops += drops
        extensions = self.extensions
        shards = self.shards
        count = len(shards)
        before = [shard.cycles for shard in shards]
        started = time.perf_counter()
        if collect:
            records = []
            for index, frame in enumerate(kept):
                shard = shards[index % count]
                records.extend(shard.dispatch([frame], extensions,
                                              self.policy, collect=True))
        else:
            records = None
            for index in range(count):
                shards[index].dispatch(kept[index::count], extensions,
                                       self.policy)
        wall = time.perf_counter() - started
        return DispatchReport(
            packets=len(kept), contract_drops=drops, wall_seconds=wall,
            shard_cycles=tuple(shard.cycles - prior for shard, prior
                               in zip(shards, before)),
            clock_mhz=self.config.cost_model.clock_mhz, records=records)

    def serve(self, frames) -> DispatchReport:
        """Parallel dispatch: one worker per shard, frames interleaved
        round-robin so the modeled cores stay balanced.

        ``config.backend`` picks the worker vehicle: ``"thread"`` (one
        in-process thread per shard, GIL-bound wall clock) or
        ``"process"`` (shared-nothing forked workers whose counters are
        merged deterministically on join) — see
        :mod:`repro.runtime.backends`.  Verdicts, cycle clocks, and
        per-extension counters are bit-identical across backends and to
        :meth:`dispatch`; only ``wall_seconds`` depends on the vehicle.
        """
        from repro.runtime.backends import get_backend

        return get_backend(self.config.backend).serve(self, frames)

    def serve_supervised(self, frames, fault_hook=None):
        """Dispatch under the shard supervisor: bounded per-shard
        ingress queues, crash-restarted workers, load shedding.

        Same semantics as :meth:`serve` when nothing goes wrong (same
        round-robin assignment, same per-shard packet order — verdicts
        and counters are bit-identical); under worker crashes the
        supervisor restarts the shard with exponential backoff and no
        packet is lost or reordered, and under sustained saturation
        frames are shed *with* accounting (never silently).  Returns a
        :class:`~repro.runtime.supervisor.SupervisorReport`; the most
        recent report also rides along in :meth:`snapshot`.

        ``fault_hook(shard_index, sequence)`` — chaos-injection point,
        called before each dispatch; an exception it raises kills that
        worker thread mid-stream (the packet is requeued, not lost).
        """
        from repro.runtime.supervisor import ShardSupervisor

        supervisor = ShardSupervisor(self, fault_hook=fault_hook)
        report = supervisor.run(frames)
        self.last_supervisor_report = report
        return report

    def _apply_contract(self, frames: list) -> tuple[list, int]:
        config = self.config
        if not config.enforce_contract:
            return frames, 0
        low = config.min_frame_bytes
        high = config.max_frame_bytes
        kept = [frame for frame in frames if low <= len(frame) <= high]
        return kept, len(frames) - len(kept)

    # -- telemetry --------------------------------------------------------

    def snapshot(self, extra: dict | None = None) -> RuntimeSnapshot:
        extensions = tuple(extension.snapshot()
                           for extension in self.extensions)
        return RuntimeSnapshot(
            shards=len(self.shards),
            extensions=extensions,
            packets_in=sum(shard.packets for shard in self.shards),
            dispatches=sum(ext.packets_in for ext in extensions),
            faults=sum(ext.faults for ext in extensions),
            contract_drops=self.contract_drops,
            shard_cycles=tuple(shard.cycles for shard in self.shards),
            clock_mhz=self.config.cost_model.clock_mhz,
            extra=extra or {},
            canary_cycles=tuple(shard.canary_cycles
                                for shard in self.shards),
            upgrades=tuple(record.to_dict()
                           for record in self.upgrade_log),
            supervisor=(self.last_supervisor_report.to_dict()
                        if self.last_supervisor_report is not None
                        else None),
        )

    def stats_json(self, indent: int | None = 2) -> str:
        return self.snapshot().to_json(indent)
