"""The kernel packet-dispatch runtime (the layer above admission).

PR 2 built the admission path — :class:`repro.pcc.loader.ExtensionLoader`
turns untrusted bytes into validated programs.  This module is the
*dispatch* path: what the kernel does with admitted extensions while
traffic is flowing, and what happens when one of them misbehaves.

Admission (:meth:`PacketRuntime.attach`) goes only through the loader.
A submission that validates runs on the raw threaded-code engine with
**zero per-packet checks** — the paper's whole point.  A submission that
fails validation is rejected, or — when the operator opts in with
``downgrade_unproven`` — admitted onto the *checked* abstract-machine
path (Figure 3 semantics), paying rd()/wr() hooks on every memory
instruction.  That downgrade tier is exactly the world PCC removes; the
runtime keeps it around both as a fairness baseline and because a kernel
fleet mid-rollout realistically hosts a mix.

Dispatch fans the packet stream across :class:`~repro.runtime.shard
.Shard` workers — modeled cores with private memories and cycle clocks
— and each shard runs every active extension over each of its packets.
Robustness is policy, not hope:

* **cycle budgets** — an invocation that overruns its budget faults
  (liveness is not covered by the safety proof);
* **fault thresholds** — ``fault_threshold`` *consecutive* faults flip
  an extension ACTIVE → QUARANTINED: every shard skips it from the next
  packet on, and the remaining extensions' verdicts are untouched
  (dispatch is per-extension independent, so isolation is exact);
* **reinstatement** — :meth:`reinstate` re-admits a quarantined
  extension through the loader (content-addressed, so revalidation of
  unchanged bytes is O(hash)); success moves it to REINSTATED.  An
  unproven extension stays on the checked tier unless its bytes now
  validate, in which case reinstatement *promotes* it to the unchecked
  fast path.

Telemetry is first-class: per-extension counters and latency
percentiles, per-shard cycle clocks, and a JSON-serializable snapshot
(surfaced by ``pcc serve --json``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.alpha.encoding import decode_program
from repro.alpha.engine import ExecutionEngine
from repro.alpha.abstract import make_check_hooks
from repro.errors import PccError, ValidationError
from repro.pcc.container import PccBinary
from repro.pcc.loader import ExtensionLoader
from repro.runtime.config import RuntimeConfig
from repro.runtime.extension import ExtensionState, RuntimeExtension
from repro.runtime.shard import Shard
from repro.runtime.telemetry import RuntimeSnapshot
from repro.vcgen.policy import SafetyPolicy


@dataclass(frozen=True)
class DispatchReport:
    """Outcome of one :meth:`PacketRuntime.dispatch`/:meth:`serve` call."""

    packets: int
    contract_drops: int
    wall_seconds: float
    shard_cycles: tuple[int, ...]
    clock_mhz: float
    records: list[dict] | None = None

    @property
    def modeled_seconds(self) -> float:
        if not self.shard_cycles:
            return 0.0
        return max(self.shard_cycles) / (self.clock_mhz * 1e6)

    @property
    def modeled_packets_per_second(self) -> float:
        seconds = self.modeled_seconds
        return self.packets / seconds if seconds else 0.0

    @property
    def wall_packets_per_second(self) -> float:
        return self.packets / self.wall_seconds if self.wall_seconds else 0.0


class PacketRuntime:
    """A simulated in-kernel dispatch plane over PCC-admitted extensions.

    Thread-safety contract: :meth:`attach`, :meth:`detach` and
    :meth:`reinstate` are control-plane calls — make them while no
    :meth:`serve` is in flight.  :meth:`serve` itself runs one worker
    thread per shard; all hot-path state is shard-private.
    """

    def __init__(self, policy: SafetyPolicy,
                 config: RuntimeConfig | None = None) -> None:
        self.policy = policy
        self.config = config or RuntimeConfig()
        self.loader = ExtensionLoader(policy, self.config.cache_capacity,
                                      prescreen=self.config.prescreen)
        self.shards = [Shard(index, self.config)
                       for index in range(self.config.shards)]
        self._extensions: dict[str, RuntimeExtension] = {}
        self._lock = threading.Lock()
        self.contract_drops = 0

    # -- admission (the only way in is through the loader) ---------------

    def attach(self, name: str, data: bytes | PccBinary
               ) -> RuntimeExtension:
        """Admit ``data`` as extension ``name``.

        PCC-validated submissions get the unchecked fast path.  On
        :class:`ValidationError`, the submission is rejected unless
        ``config.downgrade_unproven`` — then it is admitted onto the
        checked abstract-machine tier (a decodable code section is still
        required; garbage is rejected regardless).
        """
        if name in self._extensions:
            raise ValueError(f"extension {name!r} already attached")
        blob = data.to_bytes() if isinstance(data, PccBinary) else bytes(data)
        digest = self.loader.cache_key(blob)[0]
        config = self.config
        try:
            report = self.loader.load(blob)
        except ValidationError:
            if not config.downgrade_unproven:
                raise
            extension = self._attach_checked(name, blob, digest)
        else:
            extension = RuntimeExtension(
                name, blob, digest, report.program, report,
                checked=False, shards=config.shards,
                reservoir_capacity=config.reservoir_capacity)
            extension.engine = ExecutionEngine(
                report.program, config.cost_model, config.max_steps)
        self._resolve_budget(extension)
        self._extensions[name] = extension
        return extension

    def _resolve_budget(self, extension: RuntimeExtension) -> None:
        """Fix the extension's per-invocation budget at admission.

        ``cycle_budget="auto"`` asks the static analyzer for the
        extension's WCET under this runtime's policy and cost model.
        The bound is sound for the engine's block-granular accounting,
        so an auto budget can never fire on a run the unbudgeted engine
        would complete — verdicts are bit-identical.  Extensions the
        analysis cannot bound (irreducible flow, unprovable loops) fall
        back to unbudgeted dispatch; ``wcet_bound`` stays None and the
        operator can see that in telemetry.
        """
        config = self.config
        if config.cycle_budget != "auto":
            extension.cycle_budget = config.cycle_budget
            return
        from repro.analysis.intervals import context_for_policy
        from repro.analysis.wcet import estimate_wcet

        report = estimate_wcet(extension.program,
                               context_for_policy(self.policy),
                               config.cost_model)
        extension.wcet_bound = report.bound
        extension.cycle_budget = report.budget(config.budget_slack)

    def _attach_checked(self, name: str, blob: bytes,
                        digest: str) -> RuntimeExtension:
        """The downgrade tier: decode the code section and bake this
        runtime's per-shard rd()/wr() hooks into a checked engine per
        shard (Figure 3 semantics at dispatch time)."""
        try:
            program = decode_program(PccBinary.from_bytes(blob).code)
        except PccError as error:
            raise ValidationError(
                f"cannot downgrade {name!r}: undecodable code section "
                f"({error})") from error
        extension = RuntimeExtension(
            name, blob, digest, program, report=None, checked=True,
            shards=self.config.shards,
            reservoir_capacity=self.config.reservoir_capacity)
        extension.shard_engines = [
            ExecutionEngine(program, self.config.cost_model,
                            self.config.max_steps,
                            *make_check_hooks(shard.can_read,
                                              shard.can_write))
            for shard in self.shards
        ]
        return extension

    def detach(self, name: str) -> None:
        del self._extensions[name]

    def extension(self, name: str) -> RuntimeExtension:
        return self._extensions[name]

    @property
    def extensions(self) -> list[RuntimeExtension]:
        return list(self._extensions.values())

    # -- quarantine control ----------------------------------------------

    def reinstate(self, name: str) -> RuntimeExtension:
        """Revalidate and re-admit a quarantined extension.

        The bytes go back through the loader: unchanged proven bytes hit
        the content-addressed cache (O(hash)); an unproven extension
        whose bytes *now* validate is promoted to the unchecked fast
        path; an unproven extension that still fails validation returns
        to the checked tier (it was admissible there to begin with).
        """
        extension = self._extensions[name]
        if extension.state is not ExtensionState.QUARANTINED:
            raise ValueError(f"extension {name!r} is not quarantined "
                             f"(state: {extension.state.value})")
        try:
            report = self.loader.load(extension.blob)
        except ValidationError:
            if not extension.checked:
                raise  # proven bytes failing revalidation: refuse
        else:
            if extension.checked:
                extension.checked = False
                extension.shard_engines = None
                extension.report = report
                extension.program = report.program
                extension.engine = ExecutionEngine(
                    report.program, self.config.cost_model,
                    self.config.max_steps)
        extension.reinstate()
        return extension

    # -- dispatch ---------------------------------------------------------

    def dispatch(self, frames, collect: bool = False) -> DispatchReport:
        """Serial dispatch (deterministic round-robin shard assignment).

        The semantics reference for :meth:`serve`: identical verdicts
        and counters, packet order preserved in the collected records.
        """
        frames = list(frames)
        kept, drops = self._apply_contract(frames)
        self.contract_drops += drops
        extensions = self.extensions
        shards = self.shards
        count = len(shards)
        before = [shard.cycles for shard in shards]
        started = time.perf_counter()
        if collect:
            records = []
            for index, frame in enumerate(kept):
                shard = shards[index % count]
                records.extend(shard.dispatch([frame], extensions,
                                              self.policy, collect=True))
        else:
            records = None
            for index in range(count):
                shards[index].dispatch(kept[index::count], extensions,
                                       self.policy)
        wall = time.perf_counter() - started
        return DispatchReport(
            packets=len(kept), contract_drops=drops, wall_seconds=wall,
            shard_cycles=tuple(shard.cycles - prior for shard, prior
                               in zip(shards, before)),
            clock_mhz=self.config.cost_model.clock_mhz, records=records)

    def serve(self, frames) -> DispatchReport:
        """Threaded dispatch: one worker per shard, frames interleaved
        round-robin so the modeled cores stay balanced.

        Wall time is the host's (GIL-bound on CPython); the modeled
        throughput — packets over the busiest shard clock — is the
        figure of merit, as everywhere else in this reproduction.
        """
        frames = list(frames)
        kept, drops = self._apply_contract(frames)
        self.contract_drops += drops
        extensions = self.extensions
        shards = self.shards
        count = len(shards)
        before = [shard.cycles for shard in shards]
        workers = [
            threading.Thread(
                target=shard.dispatch,
                args=(kept[index::count], extensions, self.policy),
                name=f"pcc-shard-{index}", daemon=True)
            for index, shard in enumerate(shards)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        wall = time.perf_counter() - started
        return DispatchReport(
            packets=len(kept), contract_drops=drops, wall_seconds=wall,
            shard_cycles=tuple(shard.cycles - prior for shard, prior
                               in zip(shards, before)),
            clock_mhz=self.config.cost_model.clock_mhz)

    def _apply_contract(self, frames: list) -> tuple[list, int]:
        config = self.config
        if not config.enforce_contract:
            return frames, 0
        low = config.min_frame_bytes
        high = config.max_frame_bytes
        kept = [frame for frame in frames if low <= len(frame) <= high]
        return kept, len(frames) - len(kept)

    # -- telemetry --------------------------------------------------------

    def snapshot(self, extra: dict | None = None) -> RuntimeSnapshot:
        extensions = tuple(extension.snapshot()
                           for extension in self.extensions)
        return RuntimeSnapshot(
            shards=len(self.shards),
            extensions=extensions,
            packets_in=sum(shard.packets for shard in self.shards),
            dispatches=sum(ext.packets_in for ext in extensions),
            faults=sum(ext.faults for ext in extensions),
            contract_drops=self.contract_drops,
            shard_cycles=tuple(shard.cycles for shard in self.shards),
            clock_mhz=self.config.cost_model.clock_mhz,
            extra=extra or {},
        )

    def stats_json(self, indent: int | None = 2) -> str:
        return self.snapshot().to_json(indent)
