"""The kernel packet-dispatch runtime (the layer above admission).

The paper's bargain is one-time validation, then native speed forever —
but "forever" happens inside a kernel that is serving traffic from many
extensions at once, replacing them under load, and surviving its own
machinery failing.  This package is that kernel's dispatch plane and
its supervised control plane:

* :mod:`repro.runtime.runtime` — :class:`PacketRuntime`: admission only
  through the PR 2 extension loader (proven code runs unchecked;
  unproven code is rejected or, opt-in, downgraded to the checked
  Figure 3 tier), sharded dispatch, quarantine, reinstatement, and the
  versioned hot-swap entry points (``upgrade``/``promote``/``rollback``);
* :mod:`repro.runtime.versions` — shadow canaries: a new version runs on
  a sampled shadow of the live stream, auto-promotes after N clean
  packets, auto-rolls-back on any divergence/fault/overrun — rollback
  restores bit-identical verdicts by construction;
* :mod:`repro.runtime.supervisor` — :class:`ShardSupervisor`: bounded
  per-shard ingress queues, crash-restarted workers (bounded restarts,
  exponential backoff), counted load shedding, measured MTTR;
* :mod:`repro.runtime.chaos` — the fault-injection harness behind
  ``pcc chaos``: seeded faults at every layer, recovery invariants
  asserted (healthy verdict streams bit-identical under all faults);
* :mod:`repro.runtime.backends` — shard execution backends for
  :meth:`PacketRuntime.serve`: in-process threads or shared-nothing
  forked worker processes with deterministic state merge — semantically
  invisible either way;
* :mod:`repro.runtime.shard` — one modeled core: private reusable
  memory, private cycle clock, the batched extension-major hot loop;
* :mod:`repro.runtime.extension` — per-extension state machine
  (ACTIVE → QUARANTINED → REINSTATED) and lock-free sharded counters;
* :mod:`repro.runtime.telemetry` — exact latency histograms,
  percentiles and the JSON stats snapshot behind ``pcc serve --json``;
* :mod:`repro.runtime.config` — :class:`RuntimeConfig` knobs (shards,
  cycle budgets, fault thresholds, contract enforcement, canary and
  supervisor policy).
"""

from repro.runtime.backends import (
    ProcessBackend,
    ShardBackend,
    ThreadBackend,
    get_backend,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.extension import ExtensionState, RuntimeExtension
from repro.runtime.runtime import DispatchReport, PacketRuntime
from repro.runtime.shard import Shard, fault_reason
from repro.runtime.supervisor import (
    IngressQueue,
    InjectedCrash,
    ShardSupervisor,
    SupervisorReport,
)
from repro.runtime.telemetry import (
    ExtensionSnapshot,
    LatencyReservoir,
    RuntimeSnapshot,
    hist_percentile,
    percentile,
)
from repro.runtime.versions import (
    CanaryConfig,
    ShadowCanary,
    UpgradeRecord,
    VersionState,
)

__all__ = [
    "CanaryConfig",
    "DispatchReport",
    "ExtensionSnapshot",
    "ExtensionState",
    "IngressQueue",
    "InjectedCrash",
    "LatencyReservoir",
    "PacketRuntime",
    "ProcessBackend",
    "RuntimeConfig",
    "RuntimeExtension",
    "RuntimeSnapshot",
    "Shard",
    "ShardBackend",
    "ShadowCanary",
    "ShardSupervisor",
    "SupervisorReport",
    "ThreadBackend",
    "UpgradeRecord",
    "VersionState",
    "fault_reason",
    "get_backend",
    "hist_percentile",
    "percentile",
]
