"""The kernel packet-dispatch runtime (the layer above admission).

The paper's bargain is one-time validation, then native speed forever —
but "forever" happens inside a kernel that is serving traffic from many
extensions at once.  This package is that kernel's dispatch plane:

* :mod:`repro.runtime.runtime` — :class:`PacketRuntime`: admission only
  through the PR 2 extension loader (proven code runs unchecked;
  unproven code is rejected or, opt-in, downgraded to the checked
  Figure 3 tier), sharded dispatch, quarantine, reinstatement;
* :mod:`repro.runtime.shard` — one modeled core: private reusable
  memory, private cycle clock, the per-packet hot loop;
* :mod:`repro.runtime.extension` — per-extension state machine
  (ACTIVE → QUARANTINED → REINSTATED) and lock-free sharded counters;
* :mod:`repro.runtime.telemetry` — latency reservoirs, percentiles and
  the JSON stats snapshot behind ``pcc serve --json``;
* :mod:`repro.runtime.config` — :class:`RuntimeConfig` knobs (shards,
  cycle budgets, fault thresholds, contract enforcement).
"""

from repro.runtime.config import RuntimeConfig
from repro.runtime.extension import ExtensionState, RuntimeExtension
from repro.runtime.runtime import DispatchReport, PacketRuntime
from repro.runtime.shard import Shard, fault_reason
from repro.runtime.telemetry import (
    ExtensionSnapshot,
    LatencyReservoir,
    RuntimeSnapshot,
    percentile,
)

__all__ = [
    "DispatchReport",
    "ExtensionSnapshot",
    "ExtensionState",
    "LatencyReservoir",
    "PacketRuntime",
    "RuntimeConfig",
    "RuntimeExtension",
    "RuntimeSnapshot",
    "Shard",
    "fault_reason",
    "percentile",
]
