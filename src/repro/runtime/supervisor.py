"""The shard supervisor: crash-restart, bounded ingress, load shedding.

:meth:`PacketRuntime.serve` trusts its worker threads absolutely — a
worker that dies takes its packet slice with it, and an unbounded frame
list is handed to each shard up front.  This module is the production
posture: each shard gets a **bounded ingress queue** and a worker thread
that drains it, while a supervisor thread health-checks the workers and
**restarts crashed ones** (bounded restarts, exponential backoff).  The
recovery invariants, enforced by the chaos suite:

* a crash loses no packets and reorders none — the packet a worker died
  on is pushed back to the *front* of its queue, and per-shard order is
  queue order, so a fault-free extension's verdict stream is
  bit-identical to a crash-free run;
* a shard that exhausts its restart budget is declared **failed**: its
  remaining ingress is shed and *counted* (never silent), and the other
  shards are untouched;
* when a queue saturates, the feeder waits up to ``shed_timeout`` for
  space and then sheds the frame, again counted — bounded memory,
  graceful degradation, honest telemetry;
* mean time to recovery is measured, not guessed: every restart records
  crash-detection-to-running latency.

The supervisor never touches dispatch semantics: round-robin assignment
and per-shard packet order match :meth:`PacketRuntime.serve` exactly, so
a healthy supervised run produces bit-identical verdicts and counters
(and identical modeled cycles — supervision is host-side machinery and
costs zero modeled time).

Supervised serve is **thread-only** by design: crash-restart works by
re-running the dispatch callable on a fresh worker thread against
shared queues and a shared extension table, none of which can span a
forked worker.  ``serve_supervised`` therefore ignores
``RuntimeConfig.backend`` — the process backend
(:mod:`repro.runtime.backends`) applies to plain :meth:`PacketRuntime
.serve` only, where a worker's whole slice is handed over up front and
merged on join.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "IngressQueue",
    "InjectedCrash",
    "ShardSupervisor",
    "SupervisorReport",
]

#: Returned by :meth:`IngressQueue.get` when the stream is closed and
#: drained — the worker's signal to exit cleanly.
CLOSE = object()


class InjectedCrash(RuntimeError):
    """A chaos-injected worker-thread crash (see ``fault_hook``)."""


class IngressQueue:
    """A bounded FIFO with front-requeue, shed-fast rejection, and a
    close-when-drained end-of-stream signal.

    ``put`` blocks up to ``timeout`` for space (the backpressure path)
    and returns False when the caller should shed instead.  A failed
    shard's queue is flipped to *rejecting*: every put fails fast and
    blocked putters wake immediately.  ``push_front`` re-queues the
    packet a crashed worker was holding ahead of everything else —
    capacity is deliberately ignored there, because dropping or
    reordering it would break the bit-identical recovery invariant.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._rejecting = False

    def put(self, item, timeout: float = 0.0) -> bool:
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if self._rejecting:
                    return False
                if len(self._items) < self.capacity:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            self._items.append(item)
            self._cond.notify_all()
            return True

    def push_front(self, item) -> None:
        with self._cond:
            self._items.appendleft(item)
            self._cond.notify_all()

    def get(self):
        """The next item, blocking; :data:`CLOSE` once closed + drained."""
        with self._cond:
            while not self._items:
                if self._closed:
                    return CLOSE
                self._cond.wait()
            item = self._items.popleft()
            self._cond.notify_all()
            return item

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def reject(self) -> list:
        """Fail the queue: drop + return pending items, fail-fast puts."""
        with self._cond:
            self._rejecting = True
            pending = list(self._items)
            self._items.clear()
            self._cond.notify_all()
            return pending

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)


class _Worker:
    """One shard's worker slot: the live thread plus its ledger."""

    def __init__(self, shard) -> None:
        self.shard = shard
        self.thread: threading.Thread | None = None
        self.queue: IngressQueue | None = None
        self.state = "idle"   # idle|running|crashed|failed|done
        self.dispatched = 0
        self.sheds = 0
        self.crashes = 0
        self.restarts = 0
        self.crash_time = 0.0
        self.last_error: str | None = None

    def note_crash(self, error: BaseException) -> None:
        self.crashes += 1
        self.last_error = f"{type(error).__name__}: {error}"
        self.crash_time = time.perf_counter()
        self.state = "crashed"   # written last: the monitor's trigger

    def health(self) -> dict:
        return {
            "shard": self.shard.index,
            "state": self.state,
            "dispatched": self.dispatched,
            "shed": self.sheds,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "queue_depth": len(self.queue) if self.queue else 0,
            "last_error": self.last_error,
        }


@dataclass(frozen=True)
class SupervisorReport:
    """Outcome of one :meth:`ShardSupervisor.run` (≈ DispatchReport plus
    the recovery ledger)."""

    packets: int
    dispatched: int
    shed: int
    contract_drops: int
    crashes: int
    restarts: int
    failed_shards: tuple[int, ...]
    mttr_seconds: tuple[float, ...]
    wall_seconds: float
    shard_cycles: tuple[int, ...]
    clock_mhz: float
    workers: tuple[dict, ...] = field(default_factory=tuple)

    @property
    def healthy(self) -> bool:
        """No packets lost, no shard abandoned."""
        return not self.failed_shards and self.shed == 0 \
            and self.dispatched == self.packets

    @property
    def mean_mttr_seconds(self) -> float:
        if not self.mttr_seconds:
            return 0.0
        return sum(self.mttr_seconds) / len(self.mttr_seconds)

    @property
    def modeled_seconds(self) -> float:
        if not self.shard_cycles:
            return 0.0
        return max(self.shard_cycles) / (self.clock_mhz * 1e6)

    def to_dict(self) -> dict:
        return {
            "packets": self.packets,
            "dispatched": self.dispatched,
            "shed": self.shed,
            "contract_drops": self.contract_drops,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "failed_shards": list(self.failed_shards),
            "mttr_seconds": list(self.mttr_seconds),
            "mean_mttr_seconds": self.mean_mttr_seconds,
            "wall_seconds": self.wall_seconds,
            "shard_cycles": list(self.shard_cycles),
            "clock_mhz": self.clock_mhz,
            "healthy": self.healthy,
            "workers": list(self.workers),
        }


class ShardSupervisor:
    """Supervised dispatch over a :class:`PacketRuntime`'s shards.

    ``fault_hook(shard_index, sequence)`` is the chaos-injection point:
    called before every dispatch, anything it raises kills that worker
    thread exactly as an unexpected dispatch error would (the in-hand
    packet is requeued first, so recovery is exact).  Hooks are expected
    to be stateful — a hook that raises unconditionally for a shard will
    burn through the restart budget and fail it, which is itself a
    scenario the chaos suite exercises.
    """

    def __init__(self, runtime, fault_hook=None) -> None:
        self.runtime = runtime
        self.config = runtime.config
        self.fault_hook = fault_hook
        self.extensions = ()
        self.policy = runtime.policy
        self.workers = [_Worker(shard) for shard in runtime.shards]
        self.mttr: list[float] = []
        self._stop = threading.Event()

    # -- worker + monitor loops ------------------------------------------

    def _work(self, worker: _Worker) -> None:
        queue = worker.queue
        shard = worker.shard
        hook = self.fault_hook
        extensions = self.extensions
        policy = self.policy
        while True:
            item = queue.get()
            if item is CLOSE:
                worker.state = "done"
                return
            sequence, frame = item
            try:
                if hook is not None:
                    hook(shard.index, sequence)
                shard.dispatch([frame], extensions, policy)
            except BaseException as error:
                queue.push_front(item)   # exact recovery: nothing lost
                worker.note_crash(error)
                return
            worker.dispatched += 1

    def _spawn(self, worker: _Worker) -> None:
        worker.state = "running"
        worker.thread = threading.Thread(
            target=self._work, args=(worker,),
            name=f"pcc-supervised-shard-{worker.shard.index}", daemon=True)
        worker.thread.start()

    def _monitor(self) -> None:
        config = self.config
        while not self._stop.is_set():
            for worker in self.workers:
                if worker.state != "crashed":
                    continue
                if worker.restarts >= config.max_restarts:
                    worker.state = "failed"
                    worker.sheds += len(worker.queue.reject())
                    continue
                backoff = min(
                    config.restart_backoff_cap,
                    config.restart_backoff * (2 ** worker.restarts))
                time.sleep(backoff)
                worker.restarts += 1
                self.mttr.append(time.perf_counter() - worker.crash_time)
                self._spawn(worker)
            self._stop.wait(config.health_interval)

    # -- the run ----------------------------------------------------------

    def run(self, frames) -> SupervisorReport:
        runtime = self.runtime
        config = self.config
        kept, drops = runtime._apply_contract(list(frames))
        runtime.contract_drops += drops
        self.extensions = runtime.extensions
        count = len(self.workers)
        before = [worker.shard.cycles for worker in self.workers]

        for worker in self.workers:
            worker.queue = IngressQueue(config.ingress_capacity)
            self._spawn(worker)
        monitor = threading.Thread(target=self._monitor,
                                   name="pcc-supervisor", daemon=True)
        monitor.start()

        started = time.perf_counter()
        try:
            for sequence, frame in enumerate(kept):
                worker = self.workers[sequence % count]
                if worker.state == "failed" or not worker.queue.put(
                        (sequence, frame), timeout=config.shed_timeout):
                    worker.sheds += 1
            for worker in self.workers:
                worker.queue.close()
            # Workers exit when closed + drained; crashed ones are
            # revived (or failed) by the monitor until none is left
            # mid-stream.
            while any(worker.state in ("running", "crashed")
                      for worker in self.workers):
                time.sleep(config.health_interval)
        finally:
            self._stop.set()
            monitor.join()
            for worker in self.workers:
                if worker.thread is not None:
                    worker.thread.join(timeout=1.0)
        wall = time.perf_counter() - started

        return SupervisorReport(
            packets=len(kept),
            dispatched=sum(worker.dispatched for worker in self.workers),
            shed=sum(worker.sheds for worker in self.workers),
            contract_drops=drops,
            crashes=sum(worker.crashes for worker in self.workers),
            restarts=sum(worker.restarts for worker in self.workers),
            failed_shards=tuple(worker.shard.index
                                for worker in self.workers
                                if worker.state == "failed"),
            mttr_seconds=tuple(self.mttr),
            wall_seconds=wall,
            shard_cycles=tuple(worker.shard.cycles - prior
                               for worker, prior in zip(self.workers,
                                                        before)),
            clock_mhz=config.cost_model.clock_mhz,
            workers=tuple(worker.health() for worker in self.workers),
        )

    def health(self) -> list[dict]:
        """Point-in-time worker health (state, depth, ledger)."""
        return [worker.health() for worker in self.workers]
