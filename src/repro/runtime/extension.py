"""Per-extension runtime state: counters, fault ledger, quarantine.

An attached extension carries two kinds of state with very different
access patterns:

* **hot counters** (packets, verdicts, cycles, and an exact per-cycle
  latency histogram) are bumped on every dispatch.  They are sharded:
  each worker owns one :class:`ShardCounters` and touches nothing else,
  so the hot path takes no locks.  A snapshot merges the shards — and
  because histogram merge is plain addition, the merge is associative
  and deterministic regardless of worker interleaving or whether the
  shards lived in threads or in forked worker processes.
* **the state machine** (ACTIVE → QUARANTINED → REINSTATED) changes only
  on faults and operator action, so transitions sit behind a lock and
  the dispatch loop reads a single ``active`` boolean.

Consecutive-fault accounting is global across shards — "this extension
faulted N times in a row, runtime-wide" — because quarantine is a
runtime-wide decision.  The counter is only *written* on the fault path
and on the first success after a fault, so steady-state dispatch never
touches it.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from repro.alpha.engine import ExecutionEngine
from repro.alpha.isa import Program
from repro.pcc.validate import ValidationReport
from repro.runtime.telemetry import ExtensionSnapshot, hist_percentile


class ExtensionState(enum.Enum):
    """The quarantine state machine.

    ACTIVE        serving packets (initial state after admission)
    QUARANTINED   isolated after ``fault_threshold`` consecutive faults;
                  skipped by every shard until reinstated
    REINSTATED    serving again after revalidation — behaviourally
                  ACTIVE, kept distinct so telemetry shows the history
    """

    ACTIVE = "active"
    QUARANTINED = "quarantined"
    REINSTATED = "reinstated"


@dataclass
class ShardCounters:
    """One shard's private counters for one extension (no locking).

    ``cycle_hist`` maps an invocation's modeled cycle count to how many
    invocations cost exactly that — filters have a handful of distinct
    root-to-leaf path costs, so the dict stays tiny while recording the
    latency distribution *exactly* (reservoir sampling would add a
    per-packet RNG draw to the hot path and make merged percentiles
    depend on sampling order)."""

    packets_in: int = 0
    accepted: int = 0
    faults: int = 0
    cycles: int = 0
    cycle_hist: dict[int, int] = field(default_factory=dict)


class RuntimeExtension:
    """A loaded extension as the dispatch runtime sees it.

    ``engine`` is the shared unchecked fast-path engine (PCC-proven code
    needs no checks, so one stateless engine serves every shard).
    ``checked`` extensions instead carry one engine *per shard* — the
    rd()/wr() hooks consult shard-local predicates — installed by the
    runtime via :meth:`bind_shard_engines`.
    """

    def __init__(self, name: str, blob: bytes, digest: str,
                 program: Program, report: ValidationReport | None,
                 checked: bool, shards: int) -> None:
        self.name = name
        self.blob = blob
        self.digest = digest
        self.program = program
        self.report = report
        self.checked = checked
        self.engine: ExecutionEngine | None = None
        self.shard_engines: list[ExecutionEngine] | None = None
        #: The specialized whole-batch driver from
        #: :func:`repro.alpha.batch.compile_batch`, or None when the
        #: program (or the runtime's invocation contract) falls outside
        #: the fast path — dispatch then batches through the generic
        #: :meth:`ExecutionEngine.run_batch` instead.
        self.batch_runner = None
        # Per-extension invocation budget, resolved at admission: a
        # fixed config value, a WCET-derived bound (cycle_budget="auto"),
        # or None for unbudgeted dispatch.  ``wcet_bound`` records the
        # raw static bound when one was computed (telemetry).
        self.cycle_budget: int | None = None
        self.wcet_bound: int | None = None
        self.state = ExtensionState.ACTIVE
        self.active = True
        #: Monotone version counter; bumped only by canary promotion.
        self.version = 1
        #: The in-flight :class:`repro.runtime.versions.ShadowCanary`,
        #: or None.  Written only by the runtime's control plane (under
        #: its lock); the dispatch hot loop reads it once per invocation.
        self.canary = None
        self.quarantines = 0
        self.consecutive_faults = 0
        self.last_fault: str | None = None
        self._lock = threading.Lock()
        self.shard_counters = [ShardCounters() for _ in range(shards)]

    # -- fault ledger ----------------------------------------------------

    def record_fault(self, reason: str, threshold: int | None) -> bool:
        """Count one fault; returns True when this fault crossed the
        quarantine threshold (the caller logs the transition)."""
        with self._lock:
            self.consecutive_faults += 1
            self.last_fault = reason
            if (threshold is not None and self.active
                    and self.consecutive_faults >= threshold):
                self.state = ExtensionState.QUARANTINED
                self.active = False
                self.quarantines += 1
                return True
            return False

    def record_success(self) -> None:
        """Reset the consecutive-fault run (called only when nonzero)."""
        with self._lock:
            self.consecutive_faults = 0

    def reinstate(self) -> None:
        with self._lock:
            self.state = ExtensionState.REINSTATED
            self.active = True
            self.consecutive_faults = 0
            self.last_fault = None

    # -- hot swap ---------------------------------------------------------

    def adopt(self, candidate: "RuntimeExtension") -> None:
        """Swap ``candidate``'s admitted identity into this live slot
        (canary promotion).

        Everything that defines *which* program serves — bytes, digest,
        program, engines, tier, budget — is republished atomically under
        the state lock.  Cumulative traffic counters are deliberately
        kept: telemetry tracks the extension *name* across versions.
        The dispatch loop reads ``engine``/``cycle_budget`` once per
        invocation, so a packet in flight finishes on whichever version
        it started with and the next invocation sees the new one.
        """
        with self._lock:
            self.blob = candidate.blob
            self.digest = candidate.digest
            self.program = candidate.program
            self.report = candidate.report
            self.checked = candidate.checked
            self.engine = candidate.engine
            self.shard_engines = candidate.shard_engines
            self.batch_runner = candidate.batch_runner
            self.cycle_budget = candidate.cycle_budget
            self.wcet_bound = candidate.wcet_bound
            self.version = candidate.version
            self.consecutive_faults = 0
            self.last_fault = None

    # -- aggregation -----------------------------------------------------

    def snapshot(self) -> ExtensionSnapshot:
        packets_in = accepted = faults = cycles = 0
        merged: dict[int, int] = {}
        for counters in self.shard_counters:
            packets_in += counters.packets_in
            accepted += counters.accepted
            faults += counters.faults
            cycles += counters.cycles
            for value, count in counters.cycle_hist.items():
                merged[value] = merged.get(value, 0) + count
        return ExtensionSnapshot(
            name=self.name,
            state=self.state.value,
            checked=self.checked,
            packets_in=packets_in,
            accepted=accepted,
            rejected=packets_in - accepted - faults,
            faults=faults,
            consecutive_faults=self.consecutive_faults,
            quarantines=self.quarantines,
            cycles=cycles,
            p50_cycles=hist_percentile(merged, 0.50),
            p99_cycles=hist_percentile(merged, 0.99),
            last_fault=self.last_fault,
            cycle_budget=self.cycle_budget,
            wcet_cycles=self.wcet_bound,
            version=self.version,
            canary=(self.canary.snapshot()
                    if self.canary is not None else None),
        )
