"""Shard execution backends: how :meth:`PacketRuntime.serve` hosts its
workers.

A backend owns exactly one decision — what vehicle runs each shard's
``dispatch`` over its round-robin slice — and must be semantically
invisible: verdicts, per-extension counters, cycle clocks, histograms,
and quarantine transitions are bit-identical across backends and to the
serial :meth:`PacketRuntime.dispatch` reference.  Only ``wall_seconds``
(and the report's ``backend`` tag) may differ.

``ThreadBackend`` is the historical behaviour: one in-process thread per
shard.  Threads share the extension table, so runtime-wide quarantine is
immediate; wall throughput is GIL-bound.

``ProcessBackend`` forks one shared-nothing worker per shard.  Each
child inherits (copy-on-write) the runtime it will serve — its shard's
:class:`~repro.alpha.machine.Memory`, engines, batch runners, and the
extension table — executes its slice exactly as a thread would, then
ships back only the *state deltas*: shard clock and packet count, each
extension's :class:`~repro.runtime.extension.ShardCounters` for that one
shard, and the fault ledger.  The parent merges payloads **in shard-
index order**, so the merged state is a pure function of the dispatch
inputs, not of process scheduling:

* per-shard counters are disjoint by construction (shard ``i``'s worker
  is the only writer of ``shard_counters[i]``), so merging is assignment,
  not arithmetic, and cycle *histograms* make latency percentiles exact
  under any merge order;
* ``consecutive_faults`` is runtime-wide in-process but per-worker in
  children; the merge takes the maximum — with faults on one shard only
  (the deterministic case) that equals the threaded value exactly;
* a child that quarantines an extension reports the transition as soon
  as it happens (not at join), and the parent relays a **deactivation**
  to the other workers, who drain it between dispatch chunks — the same
  "every shard skips it from the next packet on, modulo packets already
  in flight" semantics threads get from writing ``active`` directly.
  The parent then replays the state transition once, so ``quarantines``
  counts each event exactly once, like the lock-guarded
  ``record_fault``.

Budget semantics need no relaying at all: budgets are resolved at
admission and carried by the extension objects the children inherit.

The process backend requires ``os.fork`` (POSIX).  Where it is missing,
or while a canary upgrade is in flight (promotion mutates the shared
extension table through a runtime-lock callback that cannot span
processes), ``serve`` falls back to the thread backend — reported
honestly via the report's ``backend`` field.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from array import array
from multiprocessing import Pipe
from multiprocessing.connection import wait

from repro.runtime.runtime import DispatchReport

__all__ = ["ProcessBackend", "ShardBackend", "ThreadBackend",
           "get_backend"]


class ShardBackend:
    """Interface: run every shard's slice of ``frames`` to completion."""

    name = "abstract"

    def serve(self, runtime, frames) -> DispatchReport:
        raise NotImplementedError


class ThreadBackend(ShardBackend):
    """One in-process worker thread per shard (the GIL-bound baseline)."""

    name = "thread"

    def serve(self, runtime, frames) -> DispatchReport:
        frames = list(frames)
        kept, drops = runtime._apply_contract(frames)
        runtime.contract_drops += drops
        extensions = runtime.extensions
        shards = runtime.shards
        count = len(shards)
        before = [shard.cycles for shard in shards]
        workers = [
            threading.Thread(
                target=shard.dispatch,
                args=(kept[index::count], extensions, runtime.policy),
                name=f"pcc-shard-{index}", daemon=True)
            for index, shard in enumerate(shards)
        ]
        started = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        wall = time.perf_counter() - started
        return DispatchReport(
            packets=len(kept), contract_drops=drops, wall_seconds=wall,
            shard_cycles=tuple(shard.cycles - prior for shard, prior
                               in zip(shards, before)),
            clock_mhz=runtime.config.cost_model.clock_mhz,
            backend=self.name)


class ProcessBackend(ShardBackend):
    """One forked shared-nothing worker process per shard."""

    name = "process"

    def serve(self, runtime, frames) -> DispatchReport:
        if not hasattr(os, "fork"):
            return ThreadBackend().serve(runtime, frames)
        extensions = runtime.extensions
        if any(extension.canary is not None for extension in extensions):
            # Promotion/rollback runs a runtime-lock callback that must
            # mutate the one true extension table; see module docstring.
            return ThreadBackend().serve(runtime, frames)
        frames = list(frames)
        kept, drops = runtime._apply_contract(frames)
        runtime.contract_drops += drops
        shards = runtime.shards
        count = len(shards)
        before = [shard.cycles for shard in shards]

        # Flatten the kept frames into one contiguous blob + offsets
        # *before* forking.  Children slice their own frames out of the
        # inherited blob: touching a 100 MB list of bytes objects from a
        # forked child would dirty every object header with refcount
        # writes (copy-on-write amplification); slicing the blob touches
        # only the pages actually read.
        offsets = array("Q", [0]) + array(
            "Q", (len(frame) for frame in kept))
        total = len(kept)
        for index in range(1, total + 1):
            offsets[index] += offsets[index - 1]
        blob = b"".join(kept)

        started = time.perf_counter()
        workers = []          # (pid, receive_conn, send_conn)
        for index, shard in enumerate(shards):
            parent_conn, child_conn = Pipe()
            pid = os.fork()
            if pid == 0:
                parent_conn.close()
                self._child(runtime, shard, extensions, blob, offsets,
                            index, count, child_conn)
                os._exit(0)  # unreachable; _child always exits
            child_conn.close()
            workers.append((pid, parent_conn))
        payloads: dict[int, dict] = {}
        failures: dict[int, str] = {}
        self._parent_loop(workers, payloads, failures)
        for pid, conn in workers:
            conn.close()
            os.waitpid(pid, 0)
        wall = time.perf_counter() - started
        if failures:
            index = min(failures)
            raise RuntimeError(
                f"process-backend worker for shard {index} died:\n"
                f"{failures[index]}")
        self._merge(runtime, extensions, payloads, count)
        return DispatchReport(
            packets=total, contract_drops=drops, wall_seconds=wall,
            shard_cycles=tuple(shard.cycles - prior for shard, prior
                               in zip(shards, before)),
            clock_mhz=runtime.config.cost_model.clock_mhz,
            backend=self.name)

    # -- child side ------------------------------------------------------

    def _child(self, runtime, shard, extensions, blob, offsets,
               index, count, conn) -> None:
        try:
            mine = [blob[offsets[j]:offsets[j + 1]]
                    for j in range(index, len(offsets) - 1, count)]
            baseline = {extension.name: extension.quarantines
                        for extension in extensions}
            batch_size = runtime.config.batch_size
            policy = runtime.policy
            for start in range(0, len(mine), batch_size):
                self._drain_deactivations(conn, extensions)
                shard.dispatch(mine[start:start + batch_size],
                               extensions, policy)
                for extension in extensions:
                    if extension.quarantines > baseline[extension.name]:
                        baseline[extension.name] = extension.quarantines
                        conn.send(("quarantine", extension.name))
            conn.send(("done", self._payload(shard, extensions)))
            conn.close()
        except BaseException:
            import traceback
            try:
                conn.send(("error", traceback.format_exc()))
                conn.close()
            except OSError:
                pass
            os._exit(1)
        os._exit(0)

    @staticmethod
    def _drain_deactivations(conn, extensions) -> None:
        while conn.poll():
            kind, name = conn.recv()
            if kind == "deactivate":
                for extension in extensions:
                    if extension.name == name:
                        # Remote quarantine: stop serving, but leave the
                        # ledger alone — the parent's merge replays the
                        # full transition exactly once.
                        extension.active = False

    def _payload(self, shard, extensions) -> bytes:
        """One worker's state delta, pickled eagerly so the expensive
        serialization runs in the child, parallel to other workers."""
        return pickle.dumps({
            "shard_index": shard.index,
            "cycles": shard.cycles,
            "packets": shard.packets,
            "canary_cycles": shard.canary_cycles,
            "extensions": {
                extension.name: {
                    "counters": extension.shard_counters[shard.index],
                    "consecutive_faults": extension.consecutive_faults,
                    "last_fault": extension.last_fault,
                    "quarantined": not extension.active,
                    "state": extension.state,
                }
                for extension in extensions
            },
        }, protocol=pickle.HIGHEST_PROTOCOL)

    # -- parent side -----------------------------------------------------

    def _parent_loop(self, workers, payloads, failures) -> None:
        """Relay quarantine events between live workers; collect final
        payloads."""
        conns = {conn: (index, pid)
                 for index, (pid, conn) in enumerate(workers)}
        open_conns = dict(conns)
        while open_conns:
            for conn in wait(list(open_conns)):
                index, pid = open_conns[conn]
                try:
                    kind, value = conn.recv()
                except (EOFError, OSError):
                    del open_conns[conn]
                    if index not in payloads and index not in failures:
                        failures[index] = "worker exited without a payload"
                    continue
                if kind == "quarantine":
                    for other, (other_index, _) in conns.items():
                        if other is not conn and other in open_conns:
                            try:
                                other.send(("deactivate", value))
                            except (BrokenPipeError, OSError):
                                pass
                elif kind == "done":
                    payloads[index] = pickle.loads(value)
                    del open_conns[conn]
                elif kind == "error":
                    failures[index] = value
                    del open_conns[conn]

    def _merge(self, runtime, extensions, payloads, count) -> None:
        """Fold worker deltas back into the parent, in shard-index order
        so the result is independent of completion order."""
        from repro.runtime.extension import ExtensionState

        by_name = {extension.name: extension for extension in extensions}
        ordered = [payloads[index] for index in sorted(payloads)]
        for payload in ordered:
            shard = runtime.shards[payload["shard_index"]]
            # Children inherit the parent's clocks, so these are
            # absolute values, not deltas.
            shard.cycles = payload["cycles"]
            shard.packets = payload["packets"]
            shard.canary_cycles = payload["canary_cycles"]
            for name, delta in payload["extensions"].items():
                by_name[name].shard_counters[payload["shard_index"]] = \
                    delta["counters"]
        for name, extension in by_name.items():
            deltas = [payload["extensions"][name] for payload in ordered]
            extension.consecutive_faults = max(
                (delta["consecutive_faults"] for delta in deltas),
                default=0)
            for delta in deltas:
                if delta["last_fault"] is not None:
                    extension.last_fault = delta["last_fault"]
            quarantining = [delta for delta in deltas
                            if delta["quarantined"]
                            and delta["state"] is not None
                            and delta["state"] is ExtensionState.QUARANTINED]
            if quarantining and extension.active:
                # Replay the transition exactly once, as record_fault's
                # lock-guarded `self.active` check does for threads.
                first = quarantining[0]
                extension.state = first["state"]
                extension.active = False
                extension.quarantines += 1


_BACKENDS = {
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(name: str) -> ShardBackend:
    """Resolve a backend by its config name ("thread" or "process")."""
    backend = _BACKENDS.get(name)
    if backend is None:
        raise ValueError(f"unknown shard backend {name!r} "
                         f"(known: {sorted(_BACKENDS)})")
    return backend()
