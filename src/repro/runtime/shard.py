"""One dispatch shard: a modeled kernel core with its own memory.

A shard owns everything the per-packet hot path touches — a reusable
:class:`~repro.alpha.machine.Memory` (rebinding the packet region per
invocation, exactly as the perf harness does), the invocation-contract
callables, and a **cycle clock**.  The clock is the shard's modeled
core: dispatching a packet advances it by the invocation's cost-model
cycles, so N shards fed disjoint packet slices model N cores draining
the stream in parallel.  Runtime-wide modeled throughput is therefore
``packets / (busiest clock / frequency)`` regardless of how many host
threads the simulation itself gets — the same cycles-first metric
discipline as :mod:`repro.perf`.

The dispatch chain runs every *active* extension over every packet (the
kernel-tap model: think several attached packet filters, each getting
its own look).  PCC-proven extensions run on the shared unchecked
engine; downgraded extensions run on this shard's checked engine, whose
rd()/wr() hooks consult predicates rebound per packet from the policy's
``make_checkers``.
"""

from __future__ import annotations

from repro.errors import BudgetExceeded, MachineError, SafetyViolation


def fault_reason(error: MachineError) -> str:
    """A one-line quarantine-log reason naming the fault precisely."""
    if isinstance(error, SafetyViolation):
        kind = error.kind or "rd/wr"
        return (f"{kind} violation at pc={error.pc} "
                f"address={error.address:#x}" if error.address is not None
                else f"{kind} violation at pc={error.pc}")
    if isinstance(error, BudgetExceeded):
        return (f"cycle budget exceeded ({error.cycles} cycles, "
                f"budget {error.budget})")
    return f"machine fault: {error}"


class Shard:
    """One worker's dispatch state; see the module docstring."""

    def __init__(self, index: int, config) -> None:
        self.index = index
        self.config = config
        self.memory, self.rebind = config.memory_factory()
        self.registers_fn = config.registers_fn
        self.cycles = 0
        self.packets = 0
        # Shadow-canary work is clocked separately: candidate cycles
        # must never move the live clock, or rollback would not restore
        # bit-identical modeled throughput.
        self.canary_cycles = 0
        # Checked-path predicates, rebound per packet by _bind_checkers;
        # the per-shard checked engines' decode-time hooks delegate here.
        self._can_read = None
        self._can_write = None

    # -- checked-path support --------------------------------------------

    def can_read(self, address: int) -> bool:
        return self._can_read is not None and self._can_read(address)

    def can_write(self, address: int) -> bool:
        return self._can_write is not None and self._can_write(address)

    def bind_checkers(self, policy, registers: dict[int, int]) -> None:
        """Derive this packet's rd()/wr() predicates from the policy's
        semantic interpretation (the abstract machine's view)."""
        if policy.make_checkers is None:
            self._can_read = self._can_write = None
            return
        self._can_read, self._can_write = policy.make_checkers(
            registers, self.memory.load_quad)

    # -- the hot loop ----------------------------------------------------

    def dispatch(self, frames, extensions, policy,
                 collect: bool = False) -> list[dict] | None:
        """Run ``frames`` through every active extension.

        Returns per-frame ``{extension name: verdict}`` dicts when
        ``collect`` (verdict ``None`` means the invocation faulted;
        quarantined extensions are absent), else ``None`` — the
        benchmark path keeps only counters.
        """
        config = self.config
        threshold = config.fault_threshold
        shard_index = self.index
        rebind = self.rebind
        registers_fn = self.registers_fn
        memory = self.memory
        records = [] if collect else None
        for frame in frames:
            self.packets += 1
            verdicts = {} if collect else None
            for extension in extensions:
                if not extension.active:
                    continue
                counters = extension.shard_counters[shard_index]
                rebind(frame)
                registers = registers_fn(len(frame))
                if extension.checked:
                    self.bind_checkers(policy, registers)
                    engine = extension.shard_engines[shard_index]
                else:
                    engine = extension.engine
                counters.packets_in += 1
                # Budgets are per extension, resolved at admission
                # (fixed config value or WCET-derived under "auto").
                budget = extension.cycle_budget
                try:
                    if budget is None:
                        result = engine.run(memory, registers)
                    else:
                        result = engine.run_budgeted(memory, registers,
                                                     budget)
                except MachineError as error:
                    counters.faults += 1
                    if isinstance(error, BudgetExceeded):
                        # The overrun consumed modeled time up to the
                        # point the budget tripped; other faults are
                        # modeled as instantaneous aborts.
                        counters.cycles += error.cycles
                        self.cycles += error.cycles
                    extension.record_fault(fault_reason(error), threshold)
                    canary = extension.canary
                    if canary is not None:
                        canary.consider(self, frame, None, policy)
                    if collect:
                        verdicts[extension.name] = None
                    continue
                counters.cycles += result.cycles
                counters.reservoir.add(result.cycles)
                self.cycles += result.cycles
                verdict = bool(result.value)
                counters.accepted += verdict
                if extension.consecutive_faults:
                    extension.record_success()
                canary = extension.canary
                if canary is not None:
                    # Shadow dispatch: rebinds the memory for its own
                    # invocation, so the live stream is untouched.
                    canary.consider(self, frame, verdict, policy)
                if collect:
                    verdicts[extension.name] = verdict
            if collect:
                records.append(verdicts)
        return records
