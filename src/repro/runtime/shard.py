"""One dispatch shard: a modeled kernel core with its own memory.

A shard owns everything the per-packet hot path touches — a reusable
:class:`~repro.alpha.machine.Memory` (rebinding the packet region per
invocation, exactly as the perf harness does), the invocation-contract
callables, and a **cycle clock**.  The clock is the shard's modeled
core: dispatching a packet advances it by the invocation's cost-model
cycles, so N shards fed disjoint packet slices model N cores draining
the stream in parallel.  Runtime-wide modeled throughput is therefore
``packets / (busiest clock / frequency)`` regardless of how many host
threads the simulation itself gets — the same cycles-first metric
discipline as :mod:`repro.perf`.

The dispatch chain runs every *active* extension over every packet (the
kernel-tap model: think several attached packet filters, each getting
its own look).  PCC-proven extensions run on the shared unchecked
engine; downgraded extensions run on this shard's checked engine, whose
rd()/wr() hooks consult predicates rebound per packet from the policy's
``make_checkers``.

Dispatch is **extension-major and batched** on the throughput path: each
chunk of frames runs through one extension at a time via its compiled
batch runner (:mod:`repro.alpha.batch`) or the engine's generic
:meth:`~repro.alpha.engine.ExecutionEngine.run_batch`, so the per-packet
Python dispatch toll is paid once per chunk instead of once per
invocation.  The reordering is sound because an invocation is a pure
function of the frame bytes — the packet region is rebound and the
scratch region re-zeroed before every run — so per-extension counters,
cycle totals, verdicts, and the fault/quarantine protocol come out
bit-identical to the frame-major reference loop (``_dispatch_frames``),
which still serves the checked tier, canary shadowing, and
verdict-collecting callers.
"""

from __future__ import annotations

from repro.errors import BudgetExceeded, MachineError, SafetyViolation


def fault_reason(error: MachineError) -> str:
    """A one-line quarantine-log reason naming the fault precisely."""
    if isinstance(error, SafetyViolation):
        kind = error.kind or "rd/wr"
        return (f"{kind} violation at pc={error.pc} "
                f"address={error.address:#x}" if error.address is not None
                else f"{kind} violation at pc={error.pc}")
    if isinstance(error, BudgetExceeded):
        return (f"cycle budget exceeded ({error.cycles} cycles, "
                f"budget {error.budget})")
    return f"machine fault: {error}"


class Shard:
    """One worker's dispatch state; see the module docstring."""

    def __init__(self, index: int, config) -> None:
        self.index = index
        self.config = config
        self.memory, self.rebind = config.memory_factory()
        self.registers_fn = config.registers_fn
        self.cycles = 0
        self.packets = 0
        # Shadow-canary work is clocked separately: candidate cycles
        # must never move the live clock, or rollback would not restore
        # bit-identical modeled throughput.
        self.canary_cycles = 0
        # Checked-path predicates, rebound per packet by _bind_checkers;
        # the per-shard checked engines' decode-time hooks delegate here.
        self._can_read = None
        self._can_write = None

    # -- checked-path support --------------------------------------------

    def can_read(self, address: int) -> bool:
        return self._can_read is not None and self._can_read(address)

    def can_write(self, address: int) -> bool:
        return self._can_write is not None and self._can_write(address)

    def bind_checkers(self, policy, registers: dict[int, int]) -> None:
        """Derive this packet's rd()/wr() predicates from the policy's
        semantic interpretation (the abstract machine's view)."""
        if policy.make_checkers is None:
            self._can_read = self._can_write = None
            return
        self._can_read, self._can_write = policy.make_checkers(
            registers, self.memory.load_quad)

    # -- the hot loop ----------------------------------------------------

    def dispatch(self, frames, extensions, policy,
                 collect: bool = False) -> list[dict] | None:
        """Run ``frames`` through every active extension.

        Returns per-frame ``{extension name: verdict}`` dicts when
        ``collect`` (verdict ``None`` means the invocation faulted;
        quarantined extensions are absent), else ``None`` — the
        benchmark path keeps only counters.
        """
        if collect:
            records = self._dispatch_frames(frames, extensions, policy,
                                            True)
            self.packets += len(records)
            return records
        if not isinstance(frames, (list, tuple)):
            frames = list(frames)
        batch_size = self.config.batch_size
        for start in range(0, len(frames), batch_size):
            chunk = frames[start:start + batch_size]
            for extension in extensions:
                if not extension.active:
                    continue
                if extension.checked or extension.canary is not None:
                    # The checked tier rebinds rd()/wr() predicates per
                    # packet and canaries shadow per packet: both stay
                    # on the frame-major reference loop.
                    self._dispatch_frames(chunk, (extension,), policy,
                                          False)
                else:
                    self._dispatch_batch(chunk, extension)
        self.packets += len(frames)
        return None

    def _dispatch_batch(self, frames, extension) -> None:
        """Extension-major fast path: one engine entry per segment,
        resuming after each fault exactly where the per-frame loop
        would — same counters, same quarantine transitions."""
        shard_index = self.index
        counters = extension.shard_counters[shard_index]
        threshold = self.config.fault_threshold
        budget = extension.cycle_budget
        runner = extension.batch_runner
        engine = extension.engine
        total = len(frames)
        start = 0
        while start < total and extension.active:
            if runner is not None:
                done, accepted, pairs, error = runner.run(
                    frames, start, budget)
            else:
                done, accepted, pairs, error = engine.run_batch(
                    self.memory, self.rebind, frames,
                    self.registers_fn, start, budget)
            completed = done - start
            if completed:
                counters.packets_in += completed
                counters.accepted += accepted
                hist = counters.cycle_hist
                segment_cycles = 0
                for value, count in pairs:
                    if count:
                        hist[value] = hist.get(value, 0) + count
                        segment_cycles += value * count
                counters.cycles += segment_cycles
                self.cycles += segment_cycles
                if extension.consecutive_faults:
                    extension.record_success()
            if error is None:
                return
            counters.packets_in += 1
            counters.faults += 1
            if isinstance(error, BudgetExceeded):
                # The overrun consumed modeled time up to the point the
                # budget tripped; other faults are instantaneous aborts.
                counters.cycles += error.cycles
                self.cycles += error.cycles
            extension.record_fault(fault_reason(error), threshold)
            start = done + 1

    def _dispatch_frames(self, frames, extensions, policy,
                         collect: bool) -> list[dict] | None:
        """The frame-major reference loop: checked tier, canary
        shadowing, and verdict collection."""
        config = self.config
        threshold = config.fault_threshold
        shard_index = self.index
        rebind = self.rebind
        registers_fn = self.registers_fn
        memory = self.memory
        records = [] if collect else None
        for frame in frames:
            verdicts = {} if collect else None
            for extension in extensions:
                if not extension.active:
                    continue
                counters = extension.shard_counters[shard_index]
                rebind(frame)
                registers = registers_fn(len(frame))
                if extension.checked:
                    self.bind_checkers(policy, registers)
                    engine = extension.shard_engines[shard_index]
                else:
                    engine = extension.engine
                counters.packets_in += 1
                # Budgets are per extension, resolved at admission
                # (fixed config value or WCET-derived under "auto").
                budget = extension.cycle_budget
                try:
                    if budget is None:
                        result = engine.run(memory, registers)
                    else:
                        result = engine.run_budgeted(memory, registers,
                                                     budget)
                except MachineError as error:
                    counters.faults += 1
                    if isinstance(error, BudgetExceeded):
                        # The overrun consumed modeled time up to the
                        # point the budget tripped; other faults are
                        # modeled as instantaneous aborts.
                        counters.cycles += error.cycles
                        self.cycles += error.cycles
                    extension.record_fault(fault_reason(error), threshold)
                    canary = extension.canary
                    if canary is not None:
                        canary.consider(self, frame, None, policy)
                    if collect:
                        verdicts[extension.name] = None
                    continue
                cycles = result.cycles
                counters.cycles += cycles
                hist = counters.cycle_hist
                hist[cycles] = hist.get(cycles, 0) + 1
                self.cycles += cycles
                verdict = bool(result.value)
                counters.accepted += verdict
                if extension.consecutive_faults:
                    extension.record_success()
                canary = extension.canary
                if canary is not None:
                    # Shadow dispatch: rebinds the memory for its own
                    # invocation, so the live stream is untouched.
                    canary.consider(self, frame, verdict, policy)
                if collect:
                    verdicts[extension.name] = verdict
            if collect:
                records.append(verdicts)
        return records
