"""Threaded-code execution engine for the Alpha subset.

:class:`repro.alpha.machine.Machine` is the *reference* interpreter: it
re-decodes every instruction on every step (``isinstance`` chains,
string-keyed operator dispatch, a ``cost_model.cycles()`` call per
instruction).  That is faithful to Figure 3 but dominates the wall-clock
cost of the paper's evaluation, where four filters run over a
200,000-packet trace under six approaches.

This module removes the interpretation overhead without changing a single
modeled cycle.  A :class:`Program` is translated *once* into a flat list
of specialized per-instruction closures — classic threaded code, the same
escape hatch real packet-filter stacks use when they outgrow a
switch-based interpreter:

* operand register indices, sign-extended displacements, pre-shifted
  literal amounts, and branch targets are resolved at decode time and
  captured in closure cells;
* the per-instruction cycle charge is looked up from the cost model once
  per *static* instruction and stored in a parallel ``costs`` array, so
  the run loop replaces a polymorphic ``cycles()`` call with a list index;
* branch successors are validated at decode time: a target that leaves
  the program compiles to a trap closure that raises the same
  :class:`~repro.errors.MachineError` the reference machine would raise,
  at the same point in execution, so the run loop needs no per-step
  bounds check;
* the abstract machine's rd()/wr() checks are a *decode-time* parameter:
  passing ``check_read``/``check_write`` bakes the paper's Figure 3
  safety checks into the LDQ/STQ closures, so
  :mod:`repro.alpha.abstract` rides the same engine (see
  :func:`repro.alpha.abstract.abstract_engine`).

On top of the closure table sits a second decode layer: *basic-block
superinstructions*.  Straight-line runs (single entry, terminated by a
control transfer or the next branch target) are compiled with ``exec``
into one specialized Python function per block — constants inlined as
literals, registers held in locals and flushed to the register file at
the block exit.  A block's dynamic step and cycle counts are decode-time
constants, so the run loop charges them with two additions per *block*
instead of per instruction.  Mid-block exceptions are safe: ``run()``
never exposes its register list, so deferred write-back is unobservable,
and error messages/order are unchanged because instructions execute in
program order inside the block.  The per-instruction table remains the
execution vehicle near the step limit, where the reference machine's
per-instruction limit check must be replicated exactly.

Unchecked translations are cached per ``(program, cost_model)`` in a
module-level code cache: the perf harness compiles each filter once and
reuses the closure table across all 200,000 packets.  Checked
translations capture per-run predicates and are rebuilt per engine.

The engine is *bit-identical* to the reference machine — same
``MachineResult`` fields, same error types and messages, same
abstract-machine blocking — which the differential property suite
(``tests/alpha/test_engine_differential.py``) asserts on random programs.

Cost models are resolved at decode time, so they must be pure functions
of the static instruction (true of :class:`repro.perf.cost.AlphaCostModel`).
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from repro.alpha.isa import (
    NUM_REGS,
    Br,
    Branch,
    Instruction,
    Lda,
    Ldah,
    Ldq,
    Lit,
    Operate,
    Program,
    Ret,
    Stq,
)
from repro.alpha.machine import MachineResult, Memory, WORD_MASK, _sext16
from repro.errors import BudgetExceeded, MachineError

_SIGN_BIT = 1 << 63

#: A translated instruction: ``(regs, memory) -> next_pc``; a negative
#: next_pc means RET (the result is in ``regs[0]``).
Op = Callable[[list, Memory], int]

#: Safety-check hook, as in :meth:`Machine._check_read`: called with
#: ``(address, pc)``, raises to block execution.
CheckHook = Callable[[int, int], None]

_RET = -1


class CompiledCode(NamedTuple):
    """Both decode layers for one program.

    ``ops``/``costs`` are the per-instruction closure table (plus trap
    slots appended past the program for invalid branch targets).
    ``blocks``/``block_len``/``block_cost`` are the basic-block layer:
    indexed by pc, populated only at block leaders and trap slots — the
    only pcs control flow can ever reach from outside a block.
    """

    ops: list
    costs: list
    blocks: list
    block_len: list
    block_cost: list


# ---------------------------------------------------------------------------
# The program code cache (unchecked translations only).

_CODE_CACHE: dict = {}
_CODE_CACHE_LIMIT = 512


def code_cache_size() -> int:
    """Number of cached translations (introspection for tests)."""
    return len(_CODE_CACHE)


def clear_code_cache() -> None:
    """Drop every cached translation."""
    _CODE_CACHE.clear()


def compile_program(program: Program, cost_model=None,
                    check_read: CheckHook | None = None,
                    check_write: CheckHook | None = None,
                    ) -> CompiledCode:
    """Translate ``program`` into threaded code (:class:`CompiledCode`).

    Unchecked translations are cached; checked ones capture the hook
    closures and are always rebuilt (the hooks embed per-run state).
    """
    if check_read is None and check_write is None:
        key = (program, cost_model)
        try:
            cached = _CODE_CACHE.get(key)
        except TypeError:           # unhashable custom cost model
            return _compile(program, cost_model, None, None)
        if cached is not None:
            return cached
        compiled = _compile(program, cost_model, None, None)
        if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
            _CODE_CACHE.clear()
        _CODE_CACHE[key] = compiled
        return compiled
    return _compile(program, cost_model, check_read, check_write)


def _compile(program: Program, cost_model,
             check_read: CheckHook | None,
             check_write: CheckHook | None) -> CompiledCode:
    ops, costs, traps = _translate(program, cost_model,
                                   check_read, check_write)
    blocks, block_len, block_cost = _compile_blocks(
        program, ops, costs, traps, check_read, check_write)
    return CompiledCode(ops, costs, blocks, block_len, block_cost)


class ExecutionEngine:
    """Runs one translated program; reusable across memories and runs.

    The constructor pays the (cached) translation cost; :meth:`run` is
    the per-packet hot path.  ``check_read``/``check_write`` follow the
    :meth:`Machine._check_read` contract and turn this into the abstract
    machine of Figure 3.
    """

    def __init__(self, program: Program, cost_model=None,
                 max_steps: int = 1_000_000,
                 check_read: CheckHook | None = None,
                 check_write: CheckHook | None = None) -> None:
        self.program = program
        self.cost_model = cost_model
        self.max_steps = max_steps
        self._code = compile_program(
            program, cost_model, check_read, check_write)
        self._ops = self._code.ops
        self._costs = self._code.costs

    def run(self, memory: Memory,
            registers: dict[int, int] | None = None) -> MachineResult:
        """Execute once against ``memory``; registers start zeroed."""
        regs = [0] * NUM_REGS
        if registers:
            for index, value in registers.items():
                regs[index] = value & WORD_MASK
        code = self._code
        blocks = code.blocks
        block_len = code.block_len
        block_cost = code.block_cost
        max_steps = self.max_steps
        pc = 0
        steps = 0
        cycles = 0
        # Blocks are entered only at leaders, so a block's step and cycle
        # charges are decode-time constants.  The step-limit check guards
        # every block entry; a block that would cross the limit runs
        # per-instruction instead, reproducing the reference machine's
        # check ordering exactly (a block never crosses the limit
        # silently, and errors raised before the limit still win).
        while True:
            if steps >= max_steps:
                raise MachineError(
                    f"exceeded {max_steps} steps (runaway program?)")
            length = block_len[pc]
            if steps + length > max_steps:
                return self._run_stepwise(regs, memory, pc, steps, cycles)
            cycles += block_cost[pc]
            steps += length
            pc = blocks[pc](regs, memory)
            if pc < 0:
                return MachineResult(regs[0], steps, cycles)

    def run_budgeted(self, memory: Memory,
                     registers: dict[int, int] | None = None,
                     cycle_budget: int = 1_000_000) -> MachineResult:
        """Like :meth:`run`, but raise :class:`BudgetExceeded` as soon as
        the modeled cycle clock passes ``cycle_budget``.

        The check runs at block granularity (one comparison per block, so
        the fast path stays fast); an invocation that completes within
        budget returns a result bit-identical to :meth:`run`.  Overruns
        are detected when a block's decode-time cycle charge pushes the
        clock past the budget — before the block executes, so a runaway
        loop is cut off within one block of the budget line.  The
        step-limit backstop still applies, for cost models that charge
        zero cycles.
        """
        regs = [0] * NUM_REGS
        if registers:
            for index, value in registers.items():
                regs[index] = value & WORD_MASK
        code = self._code
        blocks = code.blocks
        block_len = code.block_len
        block_cost = code.block_cost
        max_steps = self.max_steps
        pc = 0
        steps = 0
        cycles = 0
        while True:
            if steps >= max_steps:
                raise MachineError(
                    f"exceeded {max_steps} steps (runaway program?)")
            length = block_len[pc]
            if steps + length > max_steps:
                return self._run_stepwise(regs, memory, pc, steps, cycles,
                                          cycle_budget)
            cycles += block_cost[pc]
            if cycles > cycle_budget:
                raise BudgetExceeded(
                    f"exceeded cycle budget {cycle_budget} "
                    f"({cycles} cycles after {steps} steps)",
                    budget=cycle_budget, cycles=cycles, steps=steps)
            steps += length
            pc = blocks[pc](regs, memory)
            if pc < 0:
                return MachineResult(regs[0], steps, cycles)

    def run_batch(self, memory: Memory, rebind, frames: list,
                  registers_fn, start: int = 0,
                  cycle_budget: int | None = None):
        """Run one invocation per frame of ``frames[start:]`` without
        re-entering Python dispatch between packets.

        ``rebind`` and ``registers_fn`` follow the
        :func:`repro.filters.policy.reusable_packet_memory` /
        :func:`~repro.filters.policy.filter_registers` contracts: before
        each invocation the packet region is rebound to the frame bytes
        and a fresh entry-register dict is built from the frame length.
        Each invocation is bit-identical to :meth:`run` (or
        :meth:`run_budgeted` when ``cycle_budget`` is set) on a freshly
        rebound memory — the block loop below is the same loop with the
        same check ordering, merely hoisted inside the frame loop.

        Returns ``(next_index, accepted, hist_pairs, error)``:
        ``next_index`` is one past the last frame *executed* (equal to
        ``len(frames)`` when every frame completed), ``accepted`` counts
        completed frames with truthy verdicts, ``hist_pairs`` is the
        exact cycle histogram of completed frames as ``(cycles, count)``
        pairs, and ``error`` is the :class:`MachineError` raised by
        frame ``next_index`` (or ``None``).  The caller resumes at
        ``next_index + 1`` after accounting the fault, which reproduces
        the serial per-frame dispatch protocol exactly.
        """
        code = self._code
        blocks = code.blocks
        block_len = code.block_len
        block_cost = code.block_cost
        max_steps = self.max_steps
        accepted = 0
        hist: dict[int, int] = {}
        index = start
        try:
            for index in range(start, len(frames)):
                frame = frames[index]
                rebind(frame)
                regs = [0] * NUM_REGS
                for reg_index, value in registers_fn(len(frame)).items():
                    regs[reg_index] = value & WORD_MASK
                pc = 0
                steps = 0
                cycles = 0
                while True:
                    if steps >= max_steps:
                        raise MachineError(
                            f"exceeded {max_steps} steps "
                            f"(runaway program?)")
                    length = block_len[pc]
                    if steps + length > max_steps:
                        result = self._run_stepwise(
                            regs, memory, pc, steps, cycles, cycle_budget)
                        break
                    cycles += block_cost[pc]
                    if (cycle_budget is not None
                            and cycles > cycle_budget):
                        raise BudgetExceeded(
                            f"exceeded cycle budget {cycle_budget} "
                            f"({cycles} cycles after {steps} steps)",
                            budget=cycle_budget, cycles=cycles,
                            steps=steps)
                    steps += length
                    pc = blocks[pc](regs, memory)
                    if pc < 0:
                        result = MachineResult(regs[0], steps, cycles)
                        break
                accepted += 1 if result.value else 0
                hist[result.cycles] = hist.get(result.cycles, 0) + 1
        except MachineError as error:
            return index, accepted, list(hist.items()), error
        return len(frames), accepted, list(hist.items()), None

    def run_budgeted_batch(self, memory: Memory, rebind, frames: list,
                           registers_fn, start: int = 0,
                           cycle_budget: int = 1_000_000):
        """Budgeted spelling of :meth:`run_batch` (same return shape)."""
        return self.run_batch(memory, rebind, frames, registers_fn,
                              start, cycle_budget)

    def _run_stepwise(self, regs: list, memory: Memory, pc: int,
                      steps: int, cycles: int,
                      cycle_budget: int | None = None) -> MachineResult:
        """Per-instruction execution for the last block before the step
        limit; at most ``max_steps - steps`` instructions run here."""
        ops = self._ops
        costs = self._costs
        max_steps = self.max_steps
        while True:
            if steps >= max_steps:
                raise MachineError(
                    f"exceeded {max_steps} steps (runaway program?)")
            cycles += costs[pc]
            if cycle_budget is not None and cycles > cycle_budget:
                raise BudgetExceeded(
                    f"exceeded cycle budget {cycle_budget} "
                    f"({cycles} cycles after {steps} steps)",
                    budget=cycle_budget, cycles=cycles, steps=steps)
            steps += 1
            pc = ops[pc](regs, memory)
            if pc < 0:
                return MachineResult(regs[0], steps, cycles)


def run_program(program: Program, memory: Memory,
                registers: dict[int, int] | None = None,
                cost_model=None, max_steps: int = 1_000_000) -> MachineResult:
    """One-shot convenience wrapper over :class:`ExecutionEngine`."""
    return ExecutionEngine(program, cost_model, max_steps).run(
        memory, registers)


# ---------------------------------------------------------------------------
# Translation.

def _translate(program: Program, cost_model,
               check_read: CheckHook | None,
               check_write: CheckHook | None,
               ) -> tuple[list[Op], list[int], dict[int, int]]:
    size = len(program)
    ops: list[Op] = [None] * size  # type: ignore[list-item]
    costs: list[int] = [0] * size
    traps: dict[int, int] = {}     # bad target pc -> trap slot

    def resolve(target: int) -> int:
        """A successor pc, or a trap slot raising the reference error."""
        if 0 <= target < size:
            return target
        slot = traps.get(target)
        if slot is None:
            slot = len(ops)
            ops.append(_make_pc_trap(target))
            costs.append(0)
            traps[target] = slot
        return slot

    if size == 0:
        # The reference machine rejects pc=0 before fetching anything.
        return [_make_pc_trap(0)], [0], {0: 0}

    for pc, instruction in enumerate(program):
        costs[pc] = cost_model.cycles(instruction) if cost_model else 1
        nxt = resolve(pc + 1)
        if isinstance(instruction, Operate):
            ops[pc] = _make_operate(instruction, nxt)
        elif isinstance(instruction, Ldq):
            ops[pc] = _make_ldq(instruction, nxt, pc, check_read)
        elif isinstance(instruction, Stq):
            ops[pc] = _make_stq(instruction, nxt, pc, check_write)
        elif isinstance(instruction, Lda):
            ops[pc] = _make_lda(instruction, nxt)
        elif isinstance(instruction, Ldah):
            ops[pc] = _make_ldah(instruction, nxt)
        elif isinstance(instruction, Branch):
            ops[pc] = _make_branch(instruction,
                                   resolve(pc + 1 + instruction.offset), nxt)
        elif isinstance(instruction, Br):
            target = resolve(pc + 1 + instruction.offset)
            ops[pc] = _make_br(target)
        elif isinstance(instruction, Ret):
            ops[pc] = _ret_op
        else:  # pragma: no cover - exhaustive over Instruction
            ops[pc] = _make_execute_trap(instruction)
    return ops, costs, traps


def _ret_op(regs: list, memory: Memory) -> int:
    return _RET


def _make_pc_trap(target: int) -> Op:
    def op(regs: list, memory: Memory) -> int:
        raise MachineError(f"pc {target} outside program")
    return op


def _make_execute_trap(instruction: Instruction) -> Op:  # pragma: no cover
    def op(regs: list, memory: Memory) -> int:
        raise MachineError(f"cannot execute {instruction!r}")
    return op


def _make_operate(instruction: Operate, nxt: int) -> Op:
    """Specialize one ALU instruction; literals are folded at decode."""
    name = instruction.name
    a = instruction.ra.index
    c = instruction.rc.index
    if isinstance(instruction.rb, Lit):
        k = instruction.rb.value
        if name == "ADDQ":
            def op(regs, memory):
                regs[c] = (regs[a] + k) & WORD_MASK
                return nxt
        elif name == "SUBQ":
            def op(regs, memory):
                regs[c] = (regs[a] - k) & WORD_MASK
                return nxt
        elif name == "MULQ":
            def op(regs, memory):
                regs[c] = (regs[a] * k) & WORD_MASK
                return nxt
        elif name == "AND":
            def op(regs, memory):
                regs[c] = regs[a] & k
                return nxt
        elif name == "BIS":
            def op(regs, memory):
                regs[c] = regs[a] | k
                return nxt
        elif name == "XOR":
            def op(regs, memory):
                regs[c] = regs[a] ^ k
                return nxt
        elif name == "SLL":
            shift = k & 63

            def op(regs, memory):
                regs[c] = (regs[a] << shift) & WORD_MASK
                return nxt
        elif name == "SRL":
            shift = k & 63

            def op(regs, memory):
                regs[c] = regs[a] >> shift
                return nxt
        elif name == "CMPEQ":
            def op(regs, memory):
                regs[c] = 1 if regs[a] == k else 0
                return nxt
        elif name == "CMPULT":
            def op(regs, memory):
                regs[c] = 1 if regs[a] < k else 0
                return nxt
        elif name == "CMPULE":
            def op(regs, memory):
                regs[c] = 1 if regs[a] <= k else 0
                return nxt
        elif name == "EXTBL":
            shift = 8 * (k & 7)

            def op(regs, memory):
                regs[c] = (regs[a] >> shift) & 0xFF
                return nxt
        elif name == "EXTWL":
            shift = 8 * (k & 7)

            def op(regs, memory):
                regs[c] = (regs[a] >> shift) & 0xFFFF
                return nxt
        elif name == "EXTLL":
            shift = 8 * (k & 7)

            def op(regs, memory):
                regs[c] = (regs[a] >> shift) & 0xFFFFFFFF
                return nxt
        else:  # pragma: no cover - Operate.__post_init__ rejects these
            raise MachineError(f"unknown operate {name!r}")
        return op

    b = instruction.rb.index
    if name == "ADDQ":
        def op(regs, memory):
            regs[c] = (regs[a] + regs[b]) & WORD_MASK
            return nxt
    elif name == "SUBQ":
        def op(regs, memory):
            regs[c] = (regs[a] - regs[b]) & WORD_MASK
            return nxt
    elif name == "MULQ":
        def op(regs, memory):
            regs[c] = (regs[a] * regs[b]) & WORD_MASK
            return nxt
    elif name == "AND":
        def op(regs, memory):
            regs[c] = regs[a] & regs[b]
            return nxt
    elif name == "BIS":
        def op(regs, memory):
            regs[c] = regs[a] | regs[b]
            return nxt
    elif name == "XOR":
        def op(regs, memory):
            regs[c] = regs[a] ^ regs[b]
            return nxt
    elif name == "SLL":
        def op(regs, memory):
            regs[c] = (regs[a] << (regs[b] & 63)) & WORD_MASK
            return nxt
    elif name == "SRL":
        def op(regs, memory):
            regs[c] = regs[a] >> (regs[b] & 63)
            return nxt
    elif name == "CMPEQ":
        def op(regs, memory):
            regs[c] = 1 if regs[a] == regs[b] else 0
            return nxt
    elif name == "CMPULT":
        def op(regs, memory):
            regs[c] = 1 if regs[a] < regs[b] else 0
            return nxt
    elif name == "CMPULE":
        def op(regs, memory):
            regs[c] = 1 if regs[a] <= regs[b] else 0
            return nxt
    elif name == "EXTBL":
        def op(regs, memory):
            regs[c] = (regs[a] >> (8 * (regs[b] & 7))) & 0xFF
            return nxt
    elif name == "EXTWL":
        def op(regs, memory):
            regs[c] = (regs[a] >> (8 * (regs[b] & 7))) & 0xFFFF
            return nxt
    elif name == "EXTLL":
        def op(regs, memory):
            regs[c] = (regs[a] >> (8 * (regs[b] & 7))) & 0xFFFFFFFF
            return nxt
    else:  # pragma: no cover - Operate.__post_init__ rejects these
        raise MachineError(f"unknown operate {name!r}")
    return op


def _make_ldq(instruction: Ldq, nxt: int, pc: int,
              check_read: CheckHook | None) -> Op:
    d = instruction.rd.index
    s = instruction.rs.index
    disp = _sext16(instruction.disp)
    if check_read is None:
        def op(regs, memory):
            regs[d] = memory.load_quad((regs[s] + disp) & WORD_MASK)
            return nxt
    else:
        def op(regs, memory):
            address = (regs[s] + disp) & WORD_MASK
            check_read(address, pc)
            regs[d] = memory.load_quad(address)
            return nxt
    return op


def _make_stq(instruction: Stq, nxt: int, pc: int,
              check_write: CheckHook | None) -> Op:
    s = instruction.rs.index
    d = instruction.rd.index
    disp = _sext16(instruction.disp)
    if check_write is None:
        def op(regs, memory):
            memory.store_quad((regs[d] + disp) & WORD_MASK, regs[s])
            return nxt
    else:
        def op(regs, memory):
            address = (regs[d] + disp) & WORD_MASK
            check_write(address, pc)
            memory.store_quad(address, regs[s])
            return nxt
    return op


def _make_lda(instruction: Lda, nxt: int) -> Op:
    d = instruction.rd.index
    s = instruction.rs.index
    disp = _sext16(instruction.disp)

    def op(regs, memory):
        regs[d] = (regs[s] + disp) & WORD_MASK
        return nxt
    return op


def _make_ldah(instruction: Ldah, nxt: int) -> Op:
    d = instruction.rd.index
    s = instruction.rs.index
    disp = _sext16(instruction.disp) << 16

    def op(regs, memory):
        regs[d] = (regs[s] + disp) & WORD_MASK
        return nxt
    return op


def _make_br(target: int) -> Op:
    def op(regs, memory):
        return target
    return op


def _make_branch(instruction: Branch, taken: int, fallthrough: int) -> Op:
    """Branch predicates on the unsigned register image: a value is
    signed-negative exactly when it is >= 2^63."""
    name = instruction.name
    s = instruction.rs.index
    if name == "BEQ":
        def op(regs, memory):
            return taken if regs[s] == 0 else fallthrough
    elif name == "BNE":
        def op(regs, memory):
            return taken if regs[s] != 0 else fallthrough
    elif name == "BGE":
        def op(regs, memory):
            return taken if regs[s] < _SIGN_BIT else fallthrough
    elif name == "BLT":
        def op(regs, memory):
            return taken if regs[s] >= _SIGN_BIT else fallthrough
    elif name == "BGT":
        def op(regs, memory):
            return taken if 0 < regs[s] < _SIGN_BIT else fallthrough
    elif name == "BLE":
        def op(regs, memory):
            value = regs[s]
            return taken if value >= _SIGN_BIT or value == 0 else fallthrough
    else:  # pragma: no cover - Branch.__post_init__ rejects these
        raise MachineError(f"unknown branch {name!r}")
    return op


# ---------------------------------------------------------------------------
# Basic-block superinstructions.
#
# Every pc reachable from *outside* a block is a leader: pc 0, every
# branch target, and the fall-through successor of every conditional
# branch.  A block runs from a leader to the next control transfer (or
# the next leader, or the end of the program).  Each block compiles to
# one exec-generated function in which registers live in locals; the
# register file is written back only at the block exit, which is sound
# because ``run()`` never exposes its register list — a mid-block
# exception discards it.  Instructions execute in program order inside
# the block, so error sites, messages and ordering match the reference.

_M = str(WORD_MASK)
_S = str(_SIGN_BIT)

_KNOWN_INSTRUCTIONS = (Operate, Ldq, Stq, Lda, Ldah, Branch, Br, Ret)

_BRANCH_CONDITIONS = {
    "BEQ": "{s} == 0",
    "BNE": "{s} != 0",
    "BGE": "{s} < " + _S,
    "BLT": "{s} >= " + _S,
    "BGT": "0 < {s} < " + _S,
    "BLE": "{s} >= " + _S + " or {s} == 0",
}


class _BlockAssembler:
    """Builds one block's source; registers are cached in locals."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._cached: set[int] = set()
        self._dirty: set[int] = set()

    def line(self, text: str) -> None:
        self._lines.append("    " + text)

    def use(self, index: int) -> str:
        """An rvalue for register ``index``, loading it on first use."""
        if index not in self._cached:
            self.line(f"r{index} = regs[{index}]")
            self._cached.add(index)
        return f"r{index}"

    def assign(self, index: int, expr: str) -> None:
        self.line(f"r{index} = {expr}")
        self._cached.add(index)
        self._dirty.add(index)

    def flush(self) -> None:
        """Write every dirty local back to the register file."""
        for index in sorted(self._dirty):
            self.line(f"regs[{index}] = r{index}")
        self._dirty.clear()

    def render(self) -> str:
        return "\n".join(self._lines)


def _address_expr(asm: _BlockAssembler, base_index: int, disp: int) -> str:
    base = asm.use(base_index)
    if disp == 0:
        # Register values are invariantly < 2^64, so (r + 0) & MASK == r.
        return base
    return f"({base} + {disp}) & {_M}"


def _operate_expr(asm: _BlockAssembler, instruction: Operate) -> str:
    name = instruction.name
    a = asm.use(instruction.ra.index)
    if isinstance(instruction.rb, Lit):
        k = instruction.rb.value
        if name == "ADDQ":
            return f"({a} + {k}) & {_M}"
        if name == "SUBQ":
            return f"({a} - {k}) & {_M}"
        if name == "MULQ":
            return f"({a} * {k}) & {_M}"
        if name == "AND":
            return f"{a} & {k}"
        if name == "BIS":
            return f"{a} | {k}"
        if name == "XOR":
            return f"{a} ^ {k}"
        if name == "SLL":
            return f"({a} << {k & 63}) & {_M}"
        if name == "SRL":
            return f"{a} >> {k & 63}"
        if name == "CMPEQ":
            return f"1 if {a} == {k} else 0"
        if name == "CMPULT":
            return f"1 if {a} < {k} else 0"
        if name == "CMPULE":
            return f"1 if {a} <= {k} else 0"
        if name == "EXTBL":
            return f"({a} >> {8 * (k & 7)}) & 0xFF"
        if name == "EXTWL":
            return f"({a} >> {8 * (k & 7)}) & 0xFFFF"
        if name == "EXTLL":
            return f"({a} >> {8 * (k & 7)}) & 0xFFFFFFFF"
        raise MachineError(f"unknown operate {name!r}")  # pragma: no cover
    b = asm.use(instruction.rb.index)
    if name == "ADDQ":
        return f"({a} + {b}) & {_M}"
    if name == "SUBQ":
        return f"({a} - {b}) & {_M}"
    if name == "MULQ":
        return f"({a} * {b}) & {_M}"
    if name == "AND":
        return f"{a} & {b}"
    if name == "BIS":
        return f"{a} | {b}"
    if name == "XOR":
        return f"{a} ^ {b}"
    if name == "SLL":
        return f"({a} << ({b} & 63)) & {_M}"
    if name == "SRL":
        return f"{a} >> ({b} & 63)"
    if name == "CMPEQ":
        return f"1 if {a} == {b} else 0"
    if name == "CMPULT":
        return f"1 if {a} < {b} else 0"
    if name == "CMPULE":
        return f"1 if {a} <= {b} else 0"
    if name == "EXTBL":
        return f"({a} >> (8 * ({b} & 7))) & 0xFF"
    if name == "EXTWL":
        return f"({a} >> (8 * ({b} & 7))) & 0xFFFF"
    if name == "EXTLL":
        return f"({a} >> (8 * ({b} & 7))) & 0xFFFFFFFF"
    raise MachineError(f"unknown operate {name!r}")  # pragma: no cover


def _emit_straightline(asm: _BlockAssembler, instruction: Instruction,
                       pc: int, checked_read: bool,
                       checked_write: bool) -> None:
    if isinstance(instruction, Operate):
        asm.assign(instruction.rc.index, _operate_expr(asm, instruction))
    elif isinstance(instruction, Ldq):
        address = _address_expr(asm, instruction.rs.index,
                                _sext16(instruction.disp))
        if checked_read:
            asm.line(f"_a = {address}")
            asm.line(f"check_read(_a, {pc})")
            address = "_a"
        asm.assign(instruction.rd.index, f"memory.load_quad({address})")
    elif isinstance(instruction, Stq):
        address = _address_expr(asm, instruction.rd.index,
                                _sext16(instruction.disp))
        value = asm.use(instruction.rs.index)
        if checked_write:
            asm.line(f"_a = {address}")
            asm.line(f"check_write(_a, {pc})")
            address = "_a"
        asm.line(f"memory.store_quad({address}, {value})")
    elif isinstance(instruction, Lda):
        asm.assign(instruction.rd.index,
                   _address_expr(asm, instruction.rs.index,
                                 _sext16(instruction.disp)))
    else:  # Ldah — the only remaining straight-line kind
        asm.assign(instruction.rd.index,
                   _address_expr(asm, instruction.rs.index,
                                 _sext16(instruction.disp) << 16))


def _block_source(program: Program, leader: int, leaders: set[int],
                  traps: dict[int, int], checked_read: bool,
                  checked_write: bool) -> tuple[str, int]:
    """The body of one block function and its instruction count."""
    size = len(program)
    asm = _BlockAssembler()
    pc = leader
    while True:
        instruction = program[pc]
        if isinstance(instruction, Branch):
            target = pc + 1 + instruction.offset
            taken = target if 0 <= target < size else traps[target]
            fall = pc + 1 if pc + 1 < size else traps[size]
            condition = _BRANCH_CONDITIONS[instruction.name].format(
                s=asm.use(instruction.rs.index))
            asm.flush()
            asm.line(f"return {taken} if {condition} else {fall}")
            return asm.render(), pc + 1 - leader
        if isinstance(instruction, Br):
            target = pc + 1 + instruction.offset
            resolved = target if 0 <= target < size else traps[target]
            asm.flush()
            asm.line(f"return {resolved}")
            return asm.render(), pc + 1 - leader
        if isinstance(instruction, Ret):
            asm.flush()
            asm.line(f"return {_RET}")
            return asm.render(), pc + 1 - leader
        _emit_straightline(asm, instruction, pc, checked_read, checked_write)
        pc += 1
        if pc >= size:
            # Fall off the end: the trap slot raises the reference error
            # after the run loop's step-limit check, as the machine does.
            asm.flush()
            asm.line(f"return {traps[size]}")
            return asm.render(), pc - leader
        if pc in leaders:
            asm.flush()
            asm.line(f"return {pc}")
            return asm.render(), pc - leader


def _compile_blocks(program: Program, ops: list[Op], costs: list[int],
                    traps: dict[int, int],
                    check_read: CheckHook | None,
                    check_write: CheckHook | None,
                    ) -> tuple[list, list[int], list[int]]:
    size = len(program)
    blocks: list = [None] * len(ops)
    block_len = [0] * len(ops)
    block_cost = [0] * len(ops)
    # Trap slots become zero-length "blocks": the run loop's step check
    # still runs first, then the trap raises — the reference's ordering.
    for slot in traps.values():
        blocks[slot] = ops[slot]
    if size == 0:
        return blocks, block_len, block_cost

    leaders = {0}
    for pc, instruction in enumerate(program):
        if isinstance(instruction, Branch):
            target = pc + 1 + instruction.offset
            if 0 <= target < size:
                leaders.add(target)
            if pc + 1 < size:
                leaders.add(pc + 1)
        elif isinstance(instruction, Br):
            target = pc + 1 + instruction.offset
            if 0 <= target < size:
                leaders.add(target)
        elif not isinstance(instruction, _KNOWN_INSTRUCTIONS):
            leaders.add(pc)  # pragma: no cover - Instruction is closed

    sources = []
    for leader in sorted(leaders):
        if not isinstance(program[leader], _KNOWN_INSTRUCTIONS):
            # pragma: no cover - degenerate block over the raising closure
            blocks[leader] = ops[leader]
            block_len[leader] = 1
            block_cost[leader] = costs[leader]
            continue
        body, length = _block_source(program, leader, leaders, traps,
                                     check_read is not None,
                                     check_write is not None)
        sources.append((leader, body))
        block_len[leader] = length
        block_cost[leader] = sum(costs[leader:leader + length])

    namespace = {"check_read": check_read, "check_write": check_write}
    source = "\n".join(f"def _b{leader}(regs, memory):\n{body}"
                       for leader, body in sources)
    exec(compile(source, "<alpha-blocks>", "exec"), namespace)
    for leader, _ in sources:
        blocks[leader] = namespace[f"_b{leader}"]
    return blocks, block_len, block_cost
