"""Assembly-language front end for the Alpha subset.

The accepted syntax matches the paper's listings (Figure 5) closely::

        ADDQ  r0, 8, r1      % address of data in r1
        LDQ   r0, 8(r0)      ; data in r0
        BEQ   r2, L1         # skip if tag == 0
        STQ   r0, 0(r1)
    L1: RET

* labels are ``name:`` prefixes or stand-alone ``name:`` lines;
* comments start with ``%``, ``;`` or ``#`` and run to end of line;
* branch targets are labels (resolved to relative offsets) or explicit
  ``+n``/``-n`` instruction offsets;
* operate instructions take a register or an 8-bit literal as the second
  operand, e.g. ``ADDQ r0, 8, r1`` or ``ADDQ r0, r2, r1``.

:func:`format_program` is the inverse: it renders a program back to
parseable text (used by the round-trip tests and the CLI disassembler).
"""

from __future__ import annotations

import re

from repro.alpha.isa import (
    BRANCH_NAMES,
    OPERATE_NAMES,
    Br,
    Branch,
    Instruction,
    Lda,
    Ldah,
    Ldq,
    Lit,
    Operate,
    Program,
    Reg,
    Ret,
    Stq,
    branch_target,
    validate_program,
)
from repro.errors import AssemblyError

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):")
_REG_RE = re.compile(r"^r(\d+)$")
_MEM_RE = re.compile(r"^(-?(?:0[xX][0-9a-fA-F]+|\d+))\(r(\d+)\)$")


def _strip_comment(line: str) -> str:
    for marker in ("%", ";", "#"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


def _parse_reg(text: str, line_no: int) -> Reg:
    match = _REG_RE.match(text.strip())
    if not match:
        raise AssemblyError(f"line {line_no}: expected register, got {text!r}")
    return Reg(int(match.group(1)))


def _parse_reg_or_lit(text: str, line_no: int) -> Reg | Lit:
    text = text.strip()
    if _REG_RE.match(text):
        return _parse_reg(text, line_no)
    try:
        value = int(text, 0)
    except ValueError:
        raise AssemblyError(
            f"line {line_no}: expected register or literal, got {text!r}"
        ) from None
    return Lit(value)


def _parse_mem_operand(text: str, line_no: int) -> tuple[int, Reg]:
    match = _MEM_RE.match(text.strip())
    if not match:
        raise AssemblyError(
            f"line {line_no}: expected disp(reg), got {text!r}")
    return int(match.group(1), 0), Reg(int(match.group(2)))


def _split_operands(rest: str) -> list[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def parse_program(source: str) -> Program:
    """Parse assembly text into a validated :data:`Program`."""
    # First pass: tokenize into (line_no, mnemonic, operands) and record
    # label positions, so forward references resolve.
    rows: list[tuple[int, str, list[str]]] = []
    labels: dict[str, int] = {}
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblyError(
                    f"line {line_no}: duplicate label {label!r}")
            labels[label] = len(rows)
            line = line[match.end():].strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].upper()
        rest = parts[1] if len(parts) > 1 else ""
        rows.append((line_no, mnemonic, _split_operands(rest)))

    instructions: list[Instruction] = []
    for pc, (line_no, mnemonic, operands) in enumerate(rows):
        instructions.append(
            _parse_instruction(pc, line_no, mnemonic, operands, labels))
    program = tuple(instructions)
    validate_program(program)
    return program


def _resolve_target(target: str, pc: int, labels: dict[str, int],
                    line_no: int) -> int:
    target = target.strip()
    if target.startswith(("+", "-")):
        try:
            return int(target)
        except ValueError:
            raise AssemblyError(
                f"line {line_no}: bad branch offset {target!r}") from None
    if target not in labels:
        raise AssemblyError(f"line {line_no}: undefined label {target!r}")
    return labels[target] - (pc + 1)


def _parse_instruction(pc: int, line_no: int, mnemonic: str,
                       operands: list[str],
                       labels: dict[str, int]) -> Instruction:
    if mnemonic == "RET":
        if operands:
            raise AssemblyError(f"line {line_no}: RET takes no operands")
        return Ret()

    if mnemonic == "BR":
        if len(operands) != 1:
            raise AssemblyError(f"line {line_no}: BR takes one operand")
        return Br(_resolve_target(operands[0], pc, labels, line_no))

    if mnemonic in BRANCH_NAMES:
        if len(operands) != 2:
            raise AssemblyError(
                f"line {line_no}: {mnemonic} takes register, target")
        rs = _parse_reg(operands[0], line_no)
        return Branch(mnemonic,
                      rs, _resolve_target(operands[1], pc, labels, line_no))

    if mnemonic in ("LDA", "LDAH", "LDQ"):
        if len(operands) != 2:
            raise AssemblyError(
                f"line {line_no}: {mnemonic} takes rd, disp(rs)")
        rd = _parse_reg(operands[0], line_no)
        disp, rs = _parse_mem_operand(operands[1], line_no)
        if mnemonic == "LDA":
            return Lda(rd, disp, rs)
        if mnemonic == "LDAH":
            return Ldah(rd, disp, rs)
        return Ldq(rd, disp, rs)

    if mnemonic == "STQ":
        if len(operands) != 2:
            raise AssemblyError(f"line {line_no}: STQ takes rs, disp(rd)")
        rs = _parse_reg(operands[0], line_no)
        disp, rd = _parse_mem_operand(operands[1], line_no)
        return Stq(rs, disp, rd)

    # Accept OR as an alias for the Alpha's BIS.
    if mnemonic == "OR":
        mnemonic = "BIS"
    if mnemonic in OPERATE_NAMES:
        if len(operands) != 3:
            raise AssemblyError(
                f"line {line_no}: {mnemonic} takes ra, rb_or_lit, rc")
        ra = _parse_reg(operands[0], line_no)
        rb = _parse_reg_or_lit(operands[1], line_no)
        rc = _parse_reg(operands[2], line_no)
        return Operate(mnemonic, ra, rb, rc)

    raise AssemblyError(f"line {line_no}: unknown instruction {mnemonic!r}")


def format_program(program: Program) -> str:
    """Render a program as parseable assembly text.

    Branch targets are emitted as generated labels so the output stays
    readable; ``parse_program(format_program(p)) == p`` holds for every
    valid program (round-trip property tested in the suite).
    """
    targets: dict[int, str] = {}
    for pc, instruction in enumerate(program):
        if isinstance(instruction, (Branch, Br)):
            target = branch_target(pc, instruction)
            targets.setdefault(target, f"L{len(targets)}")

    lines: list[str] = []
    for pc, instruction in enumerate(program):
        prefix = f"{targets[pc]}:" if pc in targets else ""
        if isinstance(instruction, Branch):
            text = (f"{instruction.name} {instruction.rs}, "
                    f"{targets[branch_target(pc, instruction)]}")
        elif isinstance(instruction, Br):
            text = f"BR {targets[branch_target(pc, instruction)]}"
        else:
            text = str(instruction)
        lines.append(f"{prefix:<8}{text}")
    return "\n".join(lines) + "\n"
