"""The concrete machine: a cycle-counting simulator of the Alpha subset.

This stands in for the paper's DEC Alpha 3000/600.  It executes programs
*without any safety checks* beyond what the hardware itself enforces
(alignment traps and, in this model, access to unmapped memory, standing in
for the MMU).  PCC binaries run here at full speed; the SFI and
safe-language baselines run here too, paying for their extra instructions;
the abstract machine (:mod:`repro.alpha.abstract`) subclasses the stepping
logic and adds the paper's rd()/wr() checks.

Memory is a set of mapped regions, each a bytearray at a base address —
enough to model a packet buffer, a scratch area, and a kernel table without
simulating a full address space.  Reads of unmapped addresses raise
:class:`MachineError`, the moral equivalent of a kernel page fault: the
whole point of the paper is that certified code never gets there.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.alpha.isa import (
    NUM_REGS,
    Br,
    Branch,
    Instruction,
    Lda,
    Ldah,
    Ldq,
    Lit,
    Operate,
    Program,
    Ret,
    Stq,
)
from repro.errors import MachineError

WORD_MASK = (1 << 64) - 1
_SIGN_BIT = 1 << 63

_unpack_from = struct.unpack_from
_pack_into = struct.pack_into


@dataclass
class _Region:
    base: int
    data: bytearray
    writable: bool
    name: str

    def contains(self, address: int, size: int) -> bool:
        return self.base <= address and address + size <= self.base + len(self.data)


class Memory:
    """Sparse region-based memory with 64-bit little-endian words.

    Address resolution keeps a one-entry *last-hit cache*: packet filters
    touch the same (packet or scratch) region on almost every access, so
    the common case skips the linear region scan.  The cache holds the
    region object itself and re-checks bounds on every use, so the
    permission and bounds semantics are unchanged — a cached region never
    satisfies an access the uncached scan would reject.
    """

    def __init__(self) -> None:
        self._regions: list[_Region] = []
        self._last: _Region | None = None

    def map_region(self, base: int, data: bytes | bytearray, *,
                   writable: bool = False, name: str = "region") -> None:
        """Map ``data`` at address ``base``.

        Regions may not overlap; bases need not be aligned (SFI experiments
        use 2048-byte aligned packet segments, plain PCC does not care).
        """
        if base < 0:
            raise MachineError(f"negative region base {base:#x}")
        for region in self._regions:
            if base < region.base + len(region.data) and region.base < base + len(data):
                raise MachineError(
                    f"region {name!r} at {base:#x} overlaps {region.name!r}")
        self._regions.append(
            _Region(base, bytearray(data), writable, name))

    def rebind_region(self, name: str, data: bytes | bytearray) -> None:
        """Replace a region's backing bytes in place; base and
        permissions are unchanged.

        The perf harness uses this the way a kernel reuses one receive
        buffer across packets: instead of building a fresh
        :class:`Memory` per frame, it rebinds the packet region.  The
        new contents may have a different length, so the non-overlap
        invariant is re-checked against every other region.
        """
        target = None
        for region in self._regions:
            if region.name == name:
                target = region
                break
        if target is None:
            raise MachineError(f"no region named {name!r}")
        for region in self._regions:
            if region is target:
                continue
            if (target.base < region.base + len(region.data)
                    and region.base < target.base + len(data)):
                raise MachineError(
                    f"region {name!r} at {target.base:#x} overlaps "
                    f"{region.name!r}")
        if len(target.data) == len(data):
            target.data[:] = data
        else:
            target.data = bytearray(data)

    def region(self, name: str) -> bytearray:
        """The backing bytes of a mapped region (for test assertions)."""
        for region in self._regions:
            if region.name == name:
                return region.data
        raise MachineError(f"no region named {name!r}")

    def _find(self, address: int, size: int) -> _Region:
        last = self._last
        if (last is not None and last.base <= address
                and address + size <= last.base + len(last.data)):
            return last
        for region in self._regions:
            if region.contains(address, size):
                self._last = region
                return region
        raise MachineError(f"unmapped address {address:#x} (size {size})")

    def load_quad(self, address: int) -> int:
        """Read the 64-bit word at ``address`` (must be 8-byte aligned)."""
        if address & 7:
            raise MachineError(f"unaligned LDQ address {address:#x}")
        # The last-hit fast path, inlined: this is the hottest call in
        # the perf harness and a method call per load is measurable.
        region = self._last
        if (region is None or address < region.base
                or address + 8 > region.base + len(region.data)):
            region = self._find(address, 8)
        return _unpack_from("<Q", region.data, address - region.base)[0]

    def store_quad(self, address: int, value: int) -> None:
        """Write the 64-bit word at ``address`` (must be 8-byte aligned)."""
        if address & 7:
            raise MachineError(f"unaligned STQ address {address:#x}")
        region = self._last
        if (region is None or address < region.base
                or address + 8 > region.base + len(region.data)):
            region = self._find(address, 8)
        if not region.writable:
            raise MachineError(
                f"write to read-only region {region.name!r} at {address:#x}")
        _pack_into("<Q", region.data, address - region.base,
                   value & WORD_MASK)


@dataclass(frozen=True, slots=True)
class MachineResult:
    """Outcome of a program run."""

    value: int            # contents of r0 at RET
    instructions: int     # dynamic instruction count
    cycles: int           # cost-model cycles (see repro.perf.cost)


def _sext16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


class Machine:
    """Executes a program on registers + memory, counting instructions.

    ``cost_model`` maps an instruction to its cycle cost; the default
    charges one cycle per instruction (see :mod:`repro.perf.cost` for the
    calibrated model used in the benchmarks).
    """

    def __init__(self, program: Program, memory: Memory,
                 registers: dict[int, int] | None = None,
                 cost_model=None, max_steps: int = 1_000_000,
                 trace_hook=None) -> None:
        self.program = program
        self.memory = memory
        self.regs = [0] * NUM_REGS
        if registers:
            for index, value in registers.items():
                self.regs[index] = value & WORD_MASK
        self.cost_model = cost_model
        self.max_steps = max_steps
        #: Optional ``hook(pc, regs)`` observed before each step with a
        #: snapshot of the register file — the differential soundness
        #: suite checks every traced state against the static analyzer's
        #: intervals.  The concrete machine is the slow reference path,
        #: so the per-step None check is acceptable here (the threaded
        #: engine, the hot path, has no such hook).
        self.trace_hook = trace_hook

    # The abstract machine overrides these two hooks to insert the paper's
    # safety checks; the concrete machine goes straight to hardware.
    def _check_read(self, address: int, pc: int) -> None:
        pass

    def _check_write(self, address: int, pc: int) -> None:
        pass

    def run(self) -> MachineResult:
        """Run until RET; returns r0 and the execution counts."""
        program = self.program
        regs = self.regs
        memory = self.memory
        size = len(program)
        pc = 0
        steps = 0
        cycles = 0
        cost = self.cost_model
        trace = self.trace_hook
        while True:
            if steps >= self.max_steps:
                raise MachineError(
                    f"exceeded {self.max_steps} steps (runaway program?)")
            if not 0 <= pc < size:
                raise MachineError(f"pc {pc} outside program")
            if trace is not None:
                trace(pc, list(regs))
            instruction = program[pc]
            steps += 1
            cycles += cost.cycles(instruction) if cost is not None else 1

            if isinstance(instruction, Operate):
                a = regs[instruction.ra.index]
                if isinstance(instruction.rb, Lit):
                    b = instruction.rb.value
                else:
                    b = regs[instruction.rb.index]
                regs[instruction.rc.index] = _operate(instruction.name, a, b)
                pc += 1
            elif isinstance(instruction, Ldq):
                address = (regs[instruction.rs.index]
                           + _sext16(instruction.disp)) & WORD_MASK
                self._check_read(address, pc)
                regs[instruction.rd.index] = memory.load_quad(address)
                pc += 1
            elif isinstance(instruction, Stq):
                address = (regs[instruction.rd.index]
                           + _sext16(instruction.disp)) & WORD_MASK
                self._check_write(address, pc)
                memory.store_quad(address, regs[instruction.rs.index])
                pc += 1
            elif isinstance(instruction, Lda):
                regs[instruction.rd.index] = (
                    regs[instruction.rs.index]
                    + _sext16(instruction.disp)) & WORD_MASK
                pc += 1
            elif isinstance(instruction, Ldah):
                regs[instruction.rd.index] = (
                    regs[instruction.rs.index]
                    + (_sext16(instruction.disp) << 16)) & WORD_MASK
                pc += 1
            elif isinstance(instruction, Branch):
                if _branch_taken(instruction.name,
                                 regs[instruction.rs.index]):
                    pc = pc + 1 + instruction.offset
                else:
                    pc += 1
            elif isinstance(instruction, Br):
                pc = pc + 1 + instruction.offset
            elif isinstance(instruction, Ret):
                return MachineResult(regs[0], steps, cycles)
            else:  # pragma: no cover - exhaustive over Instruction
                raise MachineError(f"cannot execute {instruction!r}")


def _operate(name: str, a: int, b: int) -> int:
    """Semantics of the operate instructions on 64-bit words."""
    if name == "ADDQ":
        return (a + b) & WORD_MASK
    if name == "SUBQ":
        return (a - b) & WORD_MASK
    if name == "MULQ":
        return (a * b) & WORD_MASK
    if name == "AND":
        return a & b
    if name == "BIS":
        return a | b
    if name == "XOR":
        return a ^ b
    if name == "SLL":
        return (a << (b & 63)) & WORD_MASK
    if name == "SRL":
        return a >> (b & 63)
    if name == "CMPEQ":
        return 1 if a == b else 0
    if name == "CMPULT":
        return 1 if a < b else 0
    if name == "CMPULE":
        return 1 if a <= b else 0
    if name == "EXTBL":
        return (a >> (8 * (b & 7))) & 0xFF
    if name == "EXTWL":
        return (a >> (8 * (b & 7))) & 0xFFFF
    if name == "EXTLL":
        return (a >> (8 * (b & 7))) & 0xFFFFFFFF
    raise MachineError(f"unknown operate {name!r}")  # pragma: no cover


def _branch_taken(name: str, value: int) -> bool:
    """Branch predicates; BGE/BLT/BGT/BLE test the signed interpretation."""
    signed_negative = bool(value & _SIGN_BIT)
    if name == "BEQ":
        return value == 0
    if name == "BNE":
        return value != 0
    if name == "BGE":
        return not signed_negative
    if name == "BLT":
        return signed_negative
    if name == "BGT":
        return not signed_negative and value != 0
    if name == "BLE":
        return signed_negative or value == 0
    raise MachineError(f"unknown branch {name!r}")  # pragma: no cover
