"""DEC Alpha subset: ISA, assembler, binary encoding, and two machines.

This package is the native-code substrate of the reproduction.  It models
the subset of the Alpha architecture the paper uses (Figure 2, extended with
the byte-manipulation and compare instructions the hand-tuned filters need):

* :mod:`repro.alpha.isa` — instruction data types and register conventions,
* :mod:`repro.alpha.parser` — the assembly-language front end,
* :mod:`repro.alpha.encoding` — real 32-bit Alpha instruction encodings,
* :mod:`repro.alpha.machine` — the concrete processor (no safety checks),
* :mod:`repro.alpha.abstract` — the paper's abstract machine (Figure 3),
  which blocks on any rd()/wr() safety-check failure,
* :mod:`repro.alpha.engine` — the threaded-code execution engine: the
  same semantics as both machines (checks are a decode-time parameter),
  pre-decoded into per-instruction closures for the perf harness.
"""

from repro.alpha.isa import (
    NUM_REGS,
    Lit,
    Reg,
    Operate,
    Lda,
    Ldah,
    Ldq,
    Stq,
    Branch,
    Br,
    Ret,
    Instruction,
    Program,
    OPERATE_NAMES,
    BRANCH_NAMES,
)
from repro.alpha.parser import parse_program, format_program
from repro.alpha.encoding import encode_program, decode_program
from repro.alpha.machine import Machine, Memory, MachineResult
from repro.alpha.abstract import AbstractMachine, abstract_engine, run_abstract
from repro.alpha.engine import ExecutionEngine, compile_program, run_program

__all__ = [
    "NUM_REGS",
    "Lit",
    "Reg",
    "Operate",
    "Lda",
    "Ldah",
    "Ldq",
    "Stq",
    "Branch",
    "Br",
    "Ret",
    "Instruction",
    "Program",
    "OPERATE_NAMES",
    "BRANCH_NAMES",
    "parse_program",
    "format_program",
    "encode_program",
    "decode_program",
    "Machine",
    "Memory",
    "MachineResult",
    "AbstractMachine",
    "abstract_engine",
    "run_abstract",
    "ExecutionEngine",
    "compile_program",
    "run_program",
]
