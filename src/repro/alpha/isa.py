"""Instruction set for the DEC Alpha subset used by the paper.

The paper (Figure 2) restricts programs to 11 temporary / caller-save
registers, renamed ``r0`` .. ``r10``; reserved and callee-save registers
cannot be written, which makes programs trivially safe with respect to
them.  We keep the same convention: register operands are small integers in
``range(NUM_REGS)`` and the encoder maps them onto real Alpha register
numbers.

Instruction kinds:

================  =========================================================
:class:`Operate`  register-to-register ALU (ADDQ, SUBQ, AND, BIS, XOR,
                  SLL, SRL, MULQ, CMPEQ, CMPULT, CMPULE, EXTBL, EXTWL,
                  EXTLL); the second operand is a register or an 8-bit
                  literal, as on the real machine
:class:`Lda`      load address: ``rd := rs (+) sext(disp16)``
:class:`Ldah`     load address high: ``rd := rs (+) (sext(disp16) << 16)``
:class:`Ldq`      load quadword, 8-byte aligned
:class:`Stq`      store quadword, 8-byte aligned
:class:`Branch`   conditional branch (BEQ, BNE, BGE, BLT, BGT, BLE);
                  displacement is in instructions relative to pc+1
:class:`Br`       unconditional branch
:class:`Ret`      return to the kernel
================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import AssemblyError

#: The paper's 11 temporary registers, r0 .. r10.
NUM_REGS = 11

#: Value-producing operate instructions and the logic operator that gives
#: their semantics (see :mod:`repro.logic.terms`).
OPERATE_NAMES: dict[str, str] = {
    "ADDQ": "add64",
    "SUBQ": "sub64",
    "MULQ": "mul64",
    "AND": "and64",
    "BIS": "or64",   # Alpha's name for OR
    "XOR": "xor64",
    "SLL": "sll64",
    "SRL": "srl64",
    "CMPEQ": "cmpeq",
    "CMPULT": "cmpult",
    "CMPULE": "cmpule",
    "EXTBL": "extbl",
    "EXTWL": "extwl",
    "EXTLL": "extll",
}

#: Conditional branch mnemonics.  BGE/BLT/BGT/BLE test the *signed* value
#: of the register, i.e. its two's-complement interpretation.
BRANCH_NAMES = ("BEQ", "BNE", "BGE", "BLT", "BGT", "BLE")


@dataclass(frozen=True, slots=True)
class Reg:
    """A register operand, ``r0`` .. ``r10``."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_REGS:
            raise AssemblyError(
                f"register index {self.index} out of range 0..{NUM_REGS - 1}")

    def __str__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True, slots=True)
class Lit:
    """An 8-bit literal operand (the Alpha operate-format literal)."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 255:
            raise AssemblyError(
                f"operate literal {self.value} out of range 0..255")

    def __str__(self) -> str:
        return str(self.value)


RegOrLit = Union[Reg, Lit]


def _check_disp16(disp: int) -> None:
    if not -(1 << 15) <= disp < (1 << 15):
        raise AssemblyError(f"16-bit displacement {disp} out of range")


@dataclass(frozen=True, slots=True)
class Operate:
    """``name ra, rb_or_lit, rc`` — ``rc := ra <op> rb_or_lit``."""

    name: str
    ra: Reg
    rb: RegOrLit
    rc: Reg

    def __post_init__(self) -> None:
        if self.name not in OPERATE_NAMES:
            raise AssemblyError(f"unknown operate instruction {self.name!r}")

    def __str__(self) -> str:
        return f"{self.name} {self.ra}, {self.rb}, {self.rc}"


@dataclass(frozen=True, slots=True)
class Lda:
    """``LDA rd, disp(rs)`` — ``rd := rs (+) sext(disp)``.

    With ``rs`` equal to a register holding 0 this is the standard Alpha
    idiom for loading a 16-bit constant.
    """

    rd: Reg
    disp: int
    rs: Reg

    def __post_init__(self) -> None:
        _check_disp16(self.disp)

    def __str__(self) -> str:
        return f"LDA {self.rd}, {self.disp}({self.rs})"


@dataclass(frozen=True, slots=True)
class Ldah:
    """``LDAH rd, disp(rs)`` — ``rd := rs (+) (sext(disp) << 16)``."""

    rd: Reg
    disp: int
    rs: Reg

    def __post_init__(self) -> None:
        _check_disp16(self.disp)

    def __str__(self) -> str:
        return f"LDAH {self.rd}, {self.disp}({self.rs})"


@dataclass(frozen=True, slots=True)
class Ldq:
    """``LDQ rd, disp(rs)`` — load the quadword at ``rs (+) sext(disp)``."""

    rd: Reg
    disp: int
    rs: Reg

    def __post_init__(self) -> None:
        _check_disp16(self.disp)

    def __str__(self) -> str:
        return f"LDQ {self.rd}, {self.disp}({self.rs})"


@dataclass(frozen=True, slots=True)
class Stq:
    """``STQ rs, disp(rd)`` — store ``rs`` at ``rd (+) sext(disp)``."""

    rs: Reg
    disp: int
    rd: Reg

    def __post_init__(self) -> None:
        _check_disp16(self.disp)

    def __str__(self) -> str:
        return f"STQ {self.rs}, {self.disp}({self.rd})"


@dataclass(frozen=True, slots=True)
class Branch:
    """``name rs, offset`` — conditional branch to ``pc + 1 + offset``.

    The offset is stored in instruction units, exactly as in the Alpha
    branch format.  Positive offsets are forward branches; negative offsets
    (loops) require a loop invariant at the target.
    """

    name: str
    rs: Reg
    offset: int

    def __post_init__(self) -> None:
        if self.name not in BRANCH_NAMES:
            raise AssemblyError(f"unknown branch instruction {self.name!r}")
        if not -(1 << 20) <= self.offset < (1 << 20):
            raise AssemblyError(f"branch offset {self.offset} out of range")

    def __str__(self) -> str:
        return f"{self.name} {self.rs}, {self.offset:+d}"


@dataclass(frozen=True, slots=True)
class Br:
    """``BR offset`` — unconditional branch to ``pc + 1 + offset``."""

    offset: int

    def __post_init__(self) -> None:
        if not -(1 << 20) <= self.offset < (1 << 20):
            raise AssemblyError(f"branch offset {self.offset} out of range")

    def __str__(self) -> str:
        return f"BR {self.offset:+d}"


@dataclass(frozen=True, slots=True)
class Ret:
    """Return to the code consumer; the result is in ``r0``."""

    def __str__(self) -> str:
        return "RET"


Instruction = Union[Operate, Lda, Ldah, Ldq, Stq, Branch, Br, Ret]

#: A program is the instruction vector Pi of the paper.
Program = tuple[Instruction, ...]


def branch_target(pc: int, instruction: Branch | Br) -> int:
    """Target pc of a branch at position ``pc``."""
    return pc + 1 + instruction.offset


def written_register(instruction: Instruction) -> int | None:
    """Index of the register written by ``instruction``, if any."""
    if isinstance(instruction, Operate):
        return instruction.rc.index
    if isinstance(instruction, (Lda, Ldah, Ldq)):
        return instruction.rd.index
    return None


def read_registers(instruction: Instruction) -> set[int]:
    """Indices of registers read by ``instruction``."""
    if isinstance(instruction, Operate):
        regs = {instruction.ra.index}
        if isinstance(instruction.rb, Reg):
            regs.add(instruction.rb.index)
        return regs
    if isinstance(instruction, (Lda, Ldah, Ldq)):
        return {instruction.rs.index}
    if isinstance(instruction, Stq):
        return {instruction.rs.index, instruction.rd.index}
    if isinstance(instruction, Branch):
        return {instruction.rs.index}
    return set()


def validate_program(program: Program) -> None:
    """Structural sanity checks shared by both machines and the VC
    generator: every branch lands inside the program and the final
    instruction cannot fall off the end."""
    size = len(program)
    if size == 0:
        raise AssemblyError("empty program")
    for pc, instruction in enumerate(program):
        if isinstance(instruction, (Branch, Br)):
            target = branch_target(pc, instruction)
            if not 0 <= target < size:
                raise AssemblyError(
                    f"branch at pc={pc} targets {target}, outside program "
                    f"of {size} instructions")
    last = program[-1]
    if not isinstance(last, (Ret, Br, Branch)):
        raise AssemblyError(
            "control can fall off the end of the program; the final "
            "instruction must be RET or a branch")
    if isinstance(last, Branch):
        # A conditional branch as the last instruction falls through on the
        # not-taken path, which runs off the end.
        raise AssemblyError(
            "the final instruction is a conditional branch whose "
            "fall-through path leaves the program")
