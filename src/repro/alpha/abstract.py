"""The paper's abstract machine (Figure 3).

Identical to the concrete machine except for the boxed safety checks: every
LDQ must satisfy the policy's ``rd(address)`` predicate and every STQ its
``wr(address)`` predicate, *including* the 8-byte alignment requirement.
When a check fails the abstract machine has no transition — execution is
stuck — which we surface as :class:`repro.errors.SafetyViolation`.

The Safety Theorem (2.1) says a certified program started in a state
satisfying the precondition never gets stuck here; the test suite checks
that claim empirically for every certified program in the repository, and
checks the converse for deliberately unsafe programs.
"""

from __future__ import annotations

from typing import Callable

from repro.alpha.engine import CheckHook, ExecutionEngine
from repro.alpha.machine import Machine, MachineResult, Memory
from repro.alpha.isa import Program
from repro.errors import SafetyViolation

AddressPredicate = Callable[[int], bool]


def make_check_hooks(can_read: AddressPredicate,
                     can_write: AddressPredicate,
                     ) -> tuple[CheckHook, CheckHook]:
    """The Figure 3 boxed checks as engine decode-time hooks.

    Alignment is enforced here uniformly, exactly as in
    :class:`AbstractMachine`; a failed check raises
    :class:`SafetyViolation` — the abstract machine is stuck.
    """

    def check_read(address: int, pc: int) -> None:
        if address & 7 or not can_read(address):
            raise SafetyViolation(
                f"rd({address:#x}) check failed at pc={pc}",
                pc=pc, address=address, kind="rd")

    def check_write(address: int, pc: int) -> None:
        if address & 7 or not can_write(address):
            raise SafetyViolation(
                f"wr({address:#x}) check failed at pc={pc}",
                pc=pc, address=address, kind="wr")

    return check_read, check_write


def abstract_engine(program: Program,
                    can_read: AddressPredicate,
                    can_write: AddressPredicate,
                    cost_model=None,
                    max_steps: int = 1_000_000) -> ExecutionEngine:
    """A threaded-code engine with the rd()/wr() checks decoded in.

    Behaviourally identical to :class:`AbstractMachine` (the reference
    subclass below) but pays the safety checks only on memory
    instructions' closures instead of a per-step virtual dispatch.
    Checked translations embed the per-run predicates, so they are not
    shared through the global code cache.
    """
    check_read, check_write = make_check_hooks(can_read, can_write)
    return ExecutionEngine(program, cost_model, max_steps,
                           check_read=check_read, check_write=check_write)


def run_abstract(program: Program, memory: Memory,
                 can_read: AddressPredicate, can_write: AddressPredicate,
                 registers: dict[int, int] | None = None,
                 cost_model=None, max_steps: int = 1_000_000,
                 ) -> MachineResult:
    """One-shot abstract execution on the engine (Figure 3 semantics)."""
    return abstract_engine(program, can_read, can_write, cost_model,
                           max_steps).run(memory, registers)


class AbstractMachine(Machine):
    """A :class:`Machine` with the paper's rd()/wr() checks inserted.

    ``can_read`` and ``can_write`` are the policy's interpretation of the
    rd/wr predicates *minus* alignment, which is enforced here uniformly
    (the paper: "memory operations work on 64 bits and the addresses
    involved must be aligned on an 8-byte boundary").
    """

    def __init__(self, program: Program, memory: Memory,
                 can_read: AddressPredicate, can_write: AddressPredicate,
                 registers: dict[int, int] | None = None,
                 cost_model=None, max_steps: int = 1_000_000) -> None:
        super().__init__(program, memory, registers, cost_model, max_steps)
        self._can_read = can_read
        self._can_write = can_write

    def _check_read(self, address: int, pc: int) -> None:
        if address & 7 or not self._can_read(address):
            raise SafetyViolation(
                f"rd({address:#x}) check failed at pc={pc}",
                pc=pc, address=address, kind="rd")

    def _check_write(self, address: int, pc: int) -> None:
        if address & 7 or not self._can_write(address):
            raise SafetyViolation(
                f"wr({address:#x}) check failed at pc={pc}",
                pc=pc, address=address, kind="wr")
