"""Whole-trace batch compilation for the packet-filter hot path.

:class:`~repro.alpha.engine.ExecutionEngine` already removes the
per-instruction interpretation cost (closure tables, exec-compiled
basic-block superinstructions), but the dispatch runtime still pays a
fixed per-*invocation* Python toll: rebind the packet region, build the
register dict, enter ``run()``, thread every block transition through
the run loop, allocate a :class:`MachineResult`.  At ~6 µs per
invocation that toll dwarfs the filters themselves.

This module compiles an entire *program* — not just its blocks — into a
single exec-generated **batch driver**: one Python function that loops
over a list of frames and evaluates the whole filter inline per frame.
It is a partial evaluator specialized to the packet-filter invocation
contract (:class:`FramePlan`):

* the program's DAG of basic blocks is inlined into a decision *tree*
  (diamonds are duplicated, loops are rejected), so each root-to-leaf
  path is straight-line code guarded by the original branch conditions;
* registers are evaluated symbolically: r1/r3 are the plan's constant
  bases, r2 is the frame length, everything else starts at 0, and all
  arithmetic over compile-time constants is folded using the *reference
  machine's own* operator semantics (:func:`repro.alpha.machine
  ._operate`), so constant addresses, shifts and comparisons disappear
  into literals;
* every symbolic value carries an interval ``[min, max]`` and a
  known-trailing-zero-bits count.  The ranges prove most ``& 2**64-1``
  wrap masks redundant (the operands cannot overflow), fold branches
  and compares whose outcome is range-determined, let comparisons emit
  native Python ``bool`` results (``bool`` is an ``int`` subclass with
  the exact 0/1 values the reference computes, so downstream arithmetic
  is unchanged), and elide load-guard terms (alignment, lower bound)
  that the address range already guarantees;
* materialized subexpressions are remembered per path, so a value the
  filter recomputes (common after tree duplication) is evaluated once —
  loads included: a reload of the same address is pure given the frame;
* loads at constant in-packet offsets become ``unpack_from(frame, off)``
  guarded by one length compare; loads that fall inside the (store-free,
  hence always-zero) scratch region fold to the constant 0; everything
  else — padded-tail words, unaligned or unmapped addresses — funnels
  through one out-of-line helper that raises the *exact* reference
  :class:`MachineError` messages;
* a path's dynamic step and cycle counts are decode-time constants, so
  per-packet cycle telemetry is a per-leaf counter increment and the
  returned latency data is an exact histogram, not a sample;
* cycle-budget checks compile to constant comparisons at block entry —
  and are elided entirely when the budget is at least the DAG's maximum
  path cost, because then no check can ever fire (the caller picks the
  budgeted or plain driver per batch).

The compiled driver is **bit-identical** to running the engine frame by
frame over a freshly rebound :func:`~repro.filters.policy
.reusable_packet_memory`: same verdicts, same cycle counts, same error
types, messages and fault ordering.  ``tests/runtime/
test_backend_differential.py`` asserts this on random programs and
random (including degenerate) frames.

Applicability: :func:`compile_batch` returns ``None`` — and callers fall
back to :meth:`ExecutionEngine.run_batch` — for programs with stores
(the scratch-is-zero folding would be wrong), loops (the tree would be
infinite), step counts that could reach the engine's step limit, or
inlined trees past a size cap.  One documented divergence remains:
frames longer than the packet-to-scratch gap would make ``rebind``
itself fault on region overlap before the engine ever ran, which the
driver (which touches no :class:`Memory`) cannot reproduce; the runtime
dispatches batches only under its frame contract (max 1518 bytes), far
below the 64 KiB gap.
"""

from __future__ import annotations

import re
from struct import Struct
from typing import NamedTuple

from repro.alpha.isa import (
    Br,
    Branch,
    Lda,
    Ldah,
    Ldq,
    Lit,
    Operate,
    Program,
    Ret,
    Stq,
)
from repro.alpha.machine import WORD_MASK, _branch_taken, _operate, _sext16
from repro.errors import BudgetExceeded, MachineError

__all__ = ["BatchRunner", "FramePlan", "batch_capability", "compile_batch"]

_M = str(WORD_MASK)
_S63 = 1 << 63

#: Tree-inlining caps: a diamond-heavy DAG duplicates blocks per path,
#: so bound both the emitted instruction count and the nesting depth
#: (Python's compiler limits indentation) before falling back.
_MAX_NODES = 3000
_MAX_DEPTH = 48

#: Every operator result is assigned to a (memoized) temporary — the
#: maximal-sharing form — and a post-pass re-inlines the temporaries
#: with exactly one consumer, so values the filter uses once cost no
#: store/load and values it reuses are computed once.

_ZERO = ("k", 0)

#: A top-level AND-with-literal, as this module's own emitters spell it.
#: Every operand is a bare name or fully parenthesized, so any *nested*
#: ``& literal`` is followed by its own ``)`` before the end — the
#: fullmatch can only succeed when the AND is the principal operator.
_AND_CONST = re.compile(r"\((.+) & (\d+|0x[0-9A-Fa-f]+)\)")

_EXT_MASKS = {"EXTBL": "0xFF", "EXTWL": "0xFFFF", "EXTLL": "0xFFFFFFFF"}


class FramePlan(NamedTuple):
    """The invocation contract the driver is specialized against.

    Mirrors :func:`repro.filters.policy.reusable_packet_memory` and
    :func:`~repro.filters.policy.filter_registers`: a read-only packet
    region at ``packet_base`` (zero-padded to 8 bytes), a zeroed
    writable scratch region, and entry registers r1 = packet base,
    r2 = frame length, r3 = scratch base.
    """

    packet_base: int
    scratch_base: int
    scratch_size: int


class _Fallback(Exception):
    """Internal: this program is not batch-compilable; use the engine."""


class BatchRunner:
    """A compiled batch driver plus its budget-elision threshold.

    ``run`` executes frames ``[start:]`` and returns ``(next_index,
    accepted, hist_pairs, error)``: the index one past the last frame
    executed (== ``len(frames)`` when no fault), how many completed
    frames returned a truthy verdict, ``(cycles, count)`` pairs for the
    completed frames (counts may be 0), and the :class:`MachineError`
    that stopped frame ``next_index`` (or ``None``).  Identical to
    :meth:`~repro.alpha.engine.ExecutionEngine.run_batch` over a rebound
    reusable packet memory, bit for bit.
    """

    __slots__ = ("_plain", "_budgeted", "max_path_cycles")

    def __init__(self, plain, budgeted, max_path_cycles: int) -> None:
        self._plain = plain
        self._budgeted = budgeted
        self.max_path_cycles = max_path_cycles

    def run(self, frames: list, start: int = 0,
            cycle_budget: int | None = None):
        if cycle_budget is None or cycle_budget >= self.max_path_cycles:
            # No prefix of any path can exceed the budget: the budgeted
            # driver could never raise, so run without the compares.
            return self._plain(frames, start)
        return self._budgeted(frames, start, cycle_budget)


def batch_capability(program: Program,
                     max_steps: int = 1_000_000) -> str | None:
    """Why ``program`` cannot take the compiled batch path, or ``None``.

    The explicit admission-time capability probe: store-bearing and
    looping programs (the write-capable KV family) are *expected* here,
    and must route to the generic engine cleanly — this function never
    raises, and :func:`compile_batch` consults it first so a
    non-batchable program can never blow up mid-admission.
    """
    size = len(program)
    for pc, instruction in enumerate(program):
        if isinstance(instruction, Stq):
            return (f"store at pc={pc}: the driver folds scratch reads "
                    f"to zero, so stores take the generic engine")
        if not isinstance(instruction, (Operate, Ldq, Lda, Ldah,
                                        Branch, Br, Ret)):
            return (f"unsupported {type(instruction).__name__} "
                    f"at pc={pc}")  # pragma: no cover - closed class
    # Same block graph as the compiler, unit costs: detect cycles and
    # step-limit-reachable worst-case paths without emitting anything.
    leaders = {0} if size else set()
    for pc, instruction in enumerate(program):
        if isinstance(instruction, Branch):
            target = pc + 1 + instruction.offset
            if 0 <= target < size:
                leaders.add(target)
            if pc + 1 < size:
                leaders.add(pc + 1)
        elif isinstance(instruction, Br):
            target = pc + 1 + instruction.offset
            if 0 <= target < size:
                leaders.add(target)
    block_len: dict[int, int] = {}
    for leader in leaders:
        pc = leader
        while True:
            instruction = program[pc]
            if isinstance(instruction, (Branch, Br, Ret)):
                pc += 1
                break
            pc += 1
            if pc >= size or pc in leaders:
                break
        block_len[leader] = pc - leader

    def successors(leader: int) -> list[int]:
        last_pc = leader + block_len[leader] - 1
        last = program[last_pc]
        if isinstance(last, Ret):
            return []
        if isinstance(last, Br):
            return [last_pc + 1 + last.offset]
        if isinstance(last, Branch):
            return [last_pc + 1 + last.offset, last_pc + 1]
        return [leader + block_len[leader]]

    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[int, int] = {}
    steps_from: dict[int, int] = {}

    def visit(leader: int) -> str | None:
        color[leader] = GREY
        best = 0
        for succ in successors(leader):
            if not 0 <= succ < size:
                continue
            state = color.get(succ, WHITE)
            if state == GREY:
                return (f"loop through pc={succ}: the inlined tree "
                        f"would be infinite")
            if state == WHITE:
                reason = visit(succ)
                if reason is not None:
                    return reason
            best = max(best, steps_from.get(succ, 0))
        color[leader] = BLACK
        steps_from[leader] = block_len[leader] + best
        return None

    if size:
        reason = visit(0)
        if reason is not None:
            return reason
        if steps_from[0] >= max_steps:
            return (f"worst-case path of {steps_from[0]} steps reaches "
                    f"the {max_steps}-step limit")
    return None


def compile_batch(program: Program, cost_model, plan: FramePlan,
                  max_steps: int = 1_000_000) -> BatchRunner | None:
    """Compile ``program`` into a :class:`BatchRunner`, or ``None`` when
    the program falls outside the fast path's preconditions (see the
    module docstring) and the caller should use the generic engine."""
    if batch_capability(program, max_steps) is not None:
        return None
    size = len(program)
    costs = [cost_model.cycles(ins) if cost_model else 1 for ins in program]

    # Block structure, exactly as the engine's superinstruction layer
    # carves it: the driver must charge cycles and check budgets at the
    # same boundaries or BudgetExceeded payloads would drift.
    leaders = {0} if size else set()
    for pc, instruction in enumerate(program):
        if isinstance(instruction, Branch):
            target = pc + 1 + instruction.offset
            if 0 <= target < size:
                leaders.add(target)
            if pc + 1 < size:
                leaders.add(pc + 1)
        elif isinstance(instruction, Br):
            target = pc + 1 + instruction.offset
            if 0 <= target < size:
                leaders.add(target)
    block_len: dict[int, int] = {}
    block_cost: dict[int, int] = {}
    for leader in leaders:
        pc = leader
        while True:
            instruction = program[pc]
            if isinstance(instruction, (Branch, Br, Ret)):
                pc += 1
                break
            pc += 1
            if pc >= size or pc in leaders:
                break
        block_len[leader] = pc - leader
        block_cost[leader] = sum(costs[leader:pc])

    def successors(leader: int) -> list[int]:
        last_pc = leader + block_len[leader] - 1
        last = program[last_pc]
        if isinstance(last, Ret):
            return []
        if isinstance(last, Br):
            return [last_pc + 1 + last.offset]
        if isinstance(last, Branch):
            return [last_pc + 1 + last.offset, last_pc + 1]
        return [leader + block_len[leader]]  # fell through into a leader

    # Reject loops and step-limit-reachable programs; compute the DAG
    # maxima the budget elision and the soundness argument rest on.
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[int, int] = {}
    max_cycles: dict[int, int] = {}
    max_steps_from: dict[int, int] = {}

    def visit(leader: int) -> None:
        color[leader] = GREY
        best_c = best_s = 0
        for succ in successors(leader):
            if not 0 <= succ < size:
                continue  # trap: zero further cost
            state = color.get(succ, WHITE)
            if state == GREY:
                raise _Fallback("loop")
            if state == WHITE:
                visit(succ)
            best_c = max(best_c, max_cycles[succ])
            best_s = max(best_s, max_steps_from[succ])
        color[leader] = BLACK
        max_cycles[leader] = block_cost[leader] + best_c
        max_steps_from[leader] = block_len[leader] + best_s

    try:
        if size:
            visit(0)
            if max_steps_from[0] >= max_steps:
                # The reference could trip its step limit mid-run; the
                # driver elides that check, so it may not serve here.
                return None
        max_path_cycles = max_cycles.get(0, 0)
        plain = _emit_driver(program, plan, leaders, block_len, block_cost,
                             budgeted=False)
        budgeted = _emit_driver(program, plan, leaders, block_len,
                                block_cost, budgeted=True)
    except _Fallback:
        return None
    return BatchRunner(plain, budgeted, max_path_cycles)


# ---------------------------------------------------------------------------
# The partial evaluator.
#
# Register state during emission is a dict index -> value, where a value
# is ("k", int) for a compile-time constant or ("e", text, min, max, kz)
# for a Python expression over frame-dependent data annotated with an
# interval bound and a known-trailing-zero-bit count.  Expression texts
# are either bare names (flen, t<N>) or fully parenthesized, and
# reference only single-assignment temporaries — so inlining one into
# several consumers or into both arms of a branch can never change its
# meaning, and equal texts denote equal values (which is what makes the
# per-path materialization memo a sound CSE).

def _info(val) -> tuple[int, int, int]:
    """``(min, max, trailing-zero bits)`` for a symbolic value."""
    if val[0] == "k":
        v = val[1]
        return v, v, ((v & -v).bit_length() - 1 if v else 64)
    return val[2], val[3], val[4]


def _tz(value: int) -> int:
    return (value & -value).bit_length() - 1 if value else 64


def _add_const(val, c: int):
    """``(val + c) & 2**64-1`` as a symbolic value (``val`` is an "e")."""
    if c == 0:
        return val
    mn, mx, kz = _info(val)
    kz = min(kz, _tz(abs(c)))
    x = val[1]
    if c > 0 and mx + c <= WORD_MASK:
        return ("e", f"({x} + {c})", mn + c, mx + c, kz)
    if c < 0 and mn >= -c:
        return ("e", f"({x} - {-c})", mn + c, mx + c, kz)
    return ("e", f"(({x} + {c}) & {_M})", 0, WORD_MASK, kz)


def _identity(name: str, a, b):
    """Algebraic folds over symbolic operands, or None for the generic
    expression.  Sound because expression texts are pure and reference
    only single-assignment temporaries (equal text => equal value), and
    every register image is invariantly a canonical word (< 2**64), so
    e.g. ``ADDQ x, 0`` needs no re-masking.  Compiler idioms lean on
    these: assemblers spell "load 0" as ``SUBQ r, r, r`` and materialize
    constants into registers cleared that way.
    """
    if a[1] == b[1] and a[0] == b[0]:
        if name in ("SUBQ", "XOR"):
            return ("k", 0)
        if name in ("CMPEQ", "CMPULE"):
            return ("k", 1)
        if name == "CMPULT":
            return ("k", 0)
        if name in ("AND", "BIS"):
            return a
    if b[0] == "k" and b[1] == 0:
        if name in ("ADDQ", "SUBQ", "BIS", "XOR", "SLL", "SRL"):
            return a
        if name in ("AND", "MULQ"):
            return ("k", 0)
    if a[0] == "k" and a[1] == 0:
        if name in ("ADDQ", "BIS", "XOR"):
            return b
        if name in ("AND", "MULQ", "SLL", "SRL"):
            return ("k", 0)
    return None


def _symbolic(name: str, a, b):
    """One operate instruction as a symbolic value: a parenthesized
    expression over the operand texts plus the interval/alignment facts
    the operator semantics guarantee.  Wrap masks are emitted only when
    the operand ranges admit overflow; compares emit Python ``bool``
    (an ``int`` subclass with the reference's exact 0/1 values)."""
    amn, amx, akz = _info(a)
    bmn, bmx, bkz = _info(b)
    x, y = str(a[1]), str(b[1])
    if name == "ADDQ":
        if amx + bmx <= WORD_MASK:
            return ("e", f"({x} + {y})", amn + bmn, amx + bmx,
                    min(akz, bkz))
        return ("e", f"(({x} + {y}) & {_M})", 0, WORD_MASK, min(akz, bkz))
    if name == "SUBQ":
        if amn >= bmx:
            return ("e", f"({x} - {y})", amn - bmx, amx - bmn,
                    min(akz, bkz))
        return ("e", f"(({x} - {y}) & {_M})", 0, WORD_MASK, min(akz, bkz))
    if name == "MULQ":
        if amx * bmx <= WORD_MASK:
            return ("e", f"({x} * {y})", amn * bmn, amx * bmx,
                    min(akz + bkz, 64))
        return ("e", f"(({x} * {y}) & {_M})", 0, WORD_MASK,
                min(akz + bkz, 64))
    if name == "AND":
        if b[0] == "k":
            return _and_const(a, b[1])
        if a[0] == "k":
            return _and_const(b, a[1])
        return ("e", f"({x} & {y})", 0, min(amx, bmx), max(akz, bkz))
    if name == "BIS":
        mx = (1 << max(amx.bit_length(), bmx.bit_length())) - 1
        return ("e", f"({x} | {y})", max(amn, bmn), mx, min(akz, bkz))
    if name == "XOR":
        mx = (1 << max(amx.bit_length(), bmx.bit_length())) - 1
        return ("e", f"({x} ^ {y})", 0, mx, min(akz, bkz))
    if name == "SLL":
        if b[0] == "k":
            k = b[1] & 63
            if k == 0:
                return a
            # Tag the result with its provenance: a later SRL by the
            # same k cancels the shift pair even if this value has been
            # materialized into a bare temporary by then.
            if amx << k <= WORD_MASK:
                return ("e", f"({x} << {k})", amn << k, amx << k,
                        min(akz + k, 64), ("sll", a, k, False))
            return ("e", f"(({x} << {k}) & {_M})", 0, WORD_MASK,
                    min(akz + k, 64), ("sll", a, k, True))
        return ("e", f"(({x} << ({y} & 63)) & {_M})", 0, WORD_MASK, akz)
    if name == "SRL":
        if b[0] == "k":
            k = b[1] & 63
            if k == 0:
                return a
            lo, hi, kz = amn >> k, amx >> k, max(akz - k, 0)
            # The truncate idiom SLL k; SRL k:
            # ``((v << k) & M) >> k  ->  v & (M >> k)`` and — when the
            # SLL was proven overflow-free — ``(v << k) >> k  ->  v``.
            # ``v``'s text stays valid here: it names only
            # single-assignment temporaries from dominating points.
            meta = a[5] if len(a) > 5 else None
            if meta is not None and meta[0] == "sll" and meta[2] == k:
                inner, was_masked = meta[1], meta[3]
                if not was_masked:
                    return inner   # (v << k) >> k with no overflow: v
                return _and_const(inner, WORD_MASK >> k)
            return ("e", f"({x} >> {k})", lo, hi, kz)
        return ("e", f"({x} >> ({y} & 63))", 0, amx, 0)
    if name == "CMPEQ":
        if amx < bmn or bmx < amn:
            return ("k", 0)
        if amx <= 1 and b[0] == "k":
            # A boolean compared to a literal: the compare is a no-op
            # (== 1) or a negation (== 0).
            if b[1] == 1:
                return a
            return ("e", f"(not {x})", 0, 1, 0)
        return ("e", f"({x} == {y})", 0, 1, 0)
    if name == "CMPULT":
        if amx < bmn:
            return ("k", 1)
        if amn >= bmx:
            return ("k", 0)
        return ("e", f"({x} < {y})", 0, 1, 0)
    if name == "CMPULE":
        if amx <= bmn:
            return ("k", 1)
        if amn > bmx:
            return ("k", 0)
        return ("e", f"({x} <= {y})", 0, 1, 0)
    mask = _EXT_MASKS.get(name)
    if mask is not None:
        maskv = int(mask, 16)
        if b[0] == "k":
            shift = 8 * (b[1] & 7)
            if shift == 0:
                return _and_const(a, maskv, mask)
            return ("e", f"(({x} >> {shift}) & {mask})", 0,
                    min(amx >> shift, maskv), 0,
                    ("and", f"({x} >> {shift})", maskv))
        return ("e", f"(({x} >> (8 * ({y} & 7))) & {mask})", 0, maskv, 0)
    raise _Fallback(f"unknown operate {name!r}")  # pragma: no cover


def _and_const(a, c: int, text: str | None = None):
    """``a & c`` for a symbolic ``a`` and literal ``c``: drop the AND
    when the range proves it a no-op, merge it into an AND the operand
    is known (by provenance tag or by its own text) to already be, else
    emit it."""
    amn, amx, akz = _info(a)
    cover = (1 << amx.bit_length()) - 1
    if c & cover == cover:
        return a  # the mask keeps every bit the value can have set
    x = str(a[1])
    meta = a[5] if len(a) > 5 else None
    if meta is not None and meta[0] == "and":
        x = meta[1]
        c &= meta[2]
        text = None
    else:
        merged = _AND_CONST.fullmatch(x)
        if merged is not None:
            c &= int(merged.group(2), 0)
            x = merged.group(1)
            text = None
    if c == 0:
        return ("k", 0)
    return ("e", f"({x} & {text if text is not None else c})",
            0, min(amx, c), max(akz, _tz(c)), ("and", x, c))


def _branch_decide(name: str, mn: int, mx: int):
    """Fold a branch whose outcome the operand range determines:
    True = taken, False = fallthrough, None = genuinely dynamic."""
    if name == "BEQ":
        return True if mx == 0 else (False if mn >= 1 else None)
    if name == "BNE":
        return False if mx == 0 else (True if mn >= 1 else None)
    if name == "BGE":
        return True if mx < _S63 else (False if mn >= _S63 else None)
    if name == "BLT":
        return False if mx < _S63 else (True if mn >= _S63 else None)
    if name == "BGT":
        if mx == 0 or mn >= _S63:
            return False
        return True if 1 <= mn and mx < _S63 else None
    if name == "BLE":
        if mx == 0 or mn >= _S63:
            return True
        return False if 1 <= mn and mx < _S63 else None
    raise _Fallback(f"unknown branch {name!r}")  # pragma: no cover


def _branch_cond(name: str, s: str, mx: int) -> str:
    """The Python test for "branch taken".  Registers are ints, so
    truthiness is exactly ``!= 0``."""
    if name == "BNE":
        return s
    if name == "BEQ":
        return f"not {s}"
    if name == "BGE":
        return f"{s} < {_S63}"
    if name == "BLT":
        return f"{s} >= {_S63}"
    if name == "BGT":
        return s if mx < _S63 else f"0 < {s} < {_S63}"
    if name == "BLE":
        return f"not {s}" if mx < _S63 else f"{s} >= {_S63} or {s} == 0"
    raise _Fallback(f"unknown branch {name!r}")  # pragma: no cover


_ASSIGN = re.compile(r"(t\d+) = (.*)$")
_NAME = re.compile(r"\bt\d+\b")


def _tidy(lines: list[str]) -> list[str]:
    """Two cleanup passes over the emitted body.

    1. Dead-code sweep (reverse): the shift-pair and mask-merge rewrites
       can orphan a materialized temporary; dropping a *pure* assignment
       (no load — loads can fault and must keep their program point)
       whose name is never read is invisible, and the reverse scan
       cascades.
    2. Single-use inlining (forward): a pure temporary consumed exactly
       once is substituted into its consumer.  Sound because the texts
       are pure single-assignment expressions over dominating names, so
       evaluation can sink from definition to sole use without changing
       any observable — faults included: skipping a pure computation
       when an intervening load raises is invisible.
    """
    kept: list[str] = []
    used: set[str] = set()
    for line in reversed(lines):
        body = line.lstrip()
        match = _ASSIGN.match(body)
        if match is not None and match.group(1) not in used \
                and "q(" not in match.group(2) \
                and "edge(" not in match.group(2):
            continue
        kept.append(line)
        used.update(_NAME.findall(match.group(2) if match else body))
    kept.reverse()

    counts: dict[str, int] = {}
    for line in kept:
        body = line.lstrip()
        match = _ASSIGN.match(body)
        for name in _NAME.findall(match.group(2) if match else body):
            counts[name] = counts.get(name, 0) + 1
    inlined: dict[str, str] = {}

    def subst(text: str) -> str:
        return _NAME.sub(lambda m: inlined.get(m.group(0), m.group(0)),
                         text)

    out: list[str] = []
    for line in kept:
        body = line.lstrip()
        indent = line[:len(line) - len(body)]
        match = _ASSIGN.match(body)
        if match is None:
            out.append(indent + subst(body))
            continue
        name, rhs = match.group(1), subst(match.group(2))
        if counts.get(name, 0) == 1 and "q(" not in rhs \
                and "edge(" not in rhs:
            inlined[name] = rhs
            continue
        out.append(f"{indent}{name} = {rhs}")
    return out


def _emit_driver(program: Program, plan: FramePlan, leaders: set[int],
                 block_len: dict[int, int], block_cost: dict[int, int],
                 budgeted: bool):
    size = len(program)
    lines: list[str] = []
    counters: dict[int, str] = {}   # leaf cycles -> counter variable
    state = {"nodes": 0, "temps": 0}

    def emit(indent: int, text: str) -> None:
        lines.append("    " * indent + text)

    def temp() -> str:
        state["temps"] += 1
        return f"t{state['temps']}"

    def assign(rhs: str, indent: int, memo: dict) -> str:
        """Bind ``rhs`` to a (memoized) temporary on this path."""
        name = memo.get(rhs)
        if name is None:
            name = temp()
            memo[rhs] = name
            emit(indent, f"{name} = {rhs}")
        return name

    def fresh(val, indent: int, memo: dict):
        """Materialize an expression into a temporary (keeping the
        range facts and any provenance tag); the single-use post-pass
        undoes this wherever sharing does not pay."""
        if val[0] == "e" and not val[1].isidentifier():
            return ("e", assign(val[1], indent, memo)) + tuple(val[2:])
        return val

    def emit_ldq(instruction: Ldq, regs: dict, memo: dict,
                 indent: int) -> bool:
        """Emit one load; True when the path terminates here (a raise
        that does not depend on the frame)."""
        base = regs.get(instruction.rs.index, _ZERO)
        disp = _sext16(instruction.disp)
        pb = plan.packet_base
        sb, ss = plan.scratch_base, plan.scratch_size
        if base[0] == "k":
            address = (base[1] + disp) & WORD_MASK
            if address & 7:
                emit(indent, f'raise MachineError('
                             f'"unaligned LDQ address {address:#x}")')
                return True
            if sb <= address and address + 8 <= sb + ss:
                # Store-free program + scratch re-zeroed per invocation.
                regs[instruction.rd.index] = _ZERO
                return False
            offset = address - pb
            if offset < 0:
                # Below the packet region and not scratch: unmapped for
                # every frame, exactly as Memory._find would report.
                emit(indent, f'raise MachineError('
                             f'"unmapped address {address:#x} (size 8)")')
                return True
            name = assign(f"q(frame, {offset})[0] "
                          f"if flen >= {offset + 8} "
                          f"else edge({address}, frame, flen)",
                          indent, memo)
            regs[instruction.rd.index] = ("e", name, 0, WORD_MASK, 0)
            return False
        aval = _add_const(base, disp) if disp else base
        mn, mx, kz = _info(aval)
        if aval[1].isidentifier():
            addr = aval[1]
        else:
            addr = assign(aval[1], indent, memo)
        # In-packet fast path; the range facts discharge guard terms
        # (mn >= base proves the lower bound, kz >= 3 the alignment).
        checks = []
        if mn < pb:
            checks.append(f"{pb} <= {addr}")
        checks.append(f"{addr} <= flen + {pb - 8}")
        if kz < 3:
            checks.append(f"not {addr} & 7")
        name = assign(f"q(frame, {addr} - {pb})[0] "
                      f"if {' and '.join(checks)} "
                      f"else edge({addr}, frame, flen)", indent, memo)
        regs[instruction.rd.index] = ("e", name, 0, WORD_MASK, 0)
        return False

    def emit_straightline(instruction, regs: dict, memo: dict,
                          indent: int) -> bool:
        state["nodes"] += 1
        if state["nodes"] > _MAX_NODES:
            raise _Fallback("tree too large")
        if isinstance(instruction, Operate):
            a = regs.get(instruction.ra.index, _ZERO)
            if isinstance(instruction.rb, Lit):
                b = ("k", instruction.rb.value)
            else:
                b = regs.get(instruction.rb.index, _ZERO)
            if a[0] == "k" and b[0] == "k":
                value = ("k", _operate(instruction.name, a[1], b[1]))
            else:
                value = _identity(instruction.name, a, b)
                if value is None:
                    value = fresh(_symbolic(instruction.name, a, b),
                                  indent, memo)
            regs[instruction.rc.index] = value
            return False
        if isinstance(instruction, Ldq):
            return emit_ldq(instruction, regs, memo, indent)
        # Lda / Ldah
        disp = _sext16(instruction.disp)
        if isinstance(instruction, Ldah):
            disp <<= 16
        base = regs.get(instruction.rs.index, _ZERO)
        if base[0] == "k":
            regs[instruction.rd.index] = ("k", (base[1] + disp) & WORD_MASK)
        else:
            regs[instruction.rd.index] = fresh(_add_const(base, disp),
                                               indent, memo)
        return False

    def emit_leaf(regs: dict, cycles: int, indent: int) -> None:
        verdict = regs.get(0, _ZERO)
        if verdict[0] == "k":
            if verdict[1]:
                emit(indent, "accepted += 1")
        else:
            mn, mx, _ = _info(verdict)
            if mn >= 1:
                emit(indent, "accepted += 1")
            elif mx <= 1:
                emit(indent, f"accepted += {verdict[1]}")
            else:
                emit(indent, f"accepted += 1 if {verdict[1]} else 0")
        counter = counters.setdefault(cycles, f"h{len(counters)}")
        emit(indent, f"{counter} += 1")

    def walk(pc: int, regs: dict, memo: dict, cum_cycles: int,
             cum_steps: int, indent: int) -> None:
        if indent > _MAX_DEPTH:
            raise _Fallback("tree too deep")
        while True:
            if not 0 <= pc < size:
                # The engine's trap slot: a zero-length block that
                # raises after the (elided-as-unreachable) step check.
                emit(indent,
                     f'raise MachineError("pc {pc} outside program")')
                return
            # Block entry: charge the block, then (budgeted) compare the
            # now-constant clock, reproducing run_budgeted's payloads.
            cum_cycles += block_cost[pc]
            if budgeted:
                emit(indent, f"if {cum_cycles} > b:")
                emit(indent + 1,
                     f'raise BudgetExceeded(f"exceeded cycle budget '
                     f'{{b}} ({cum_cycles} cycles after {cum_steps} '
                     f'steps)", budget=b, cycles={cum_cycles}, '
                     f'steps={cum_steps})')
            cum_steps += block_len[pc]
            end = pc + block_len[pc]
            transferred = False
            for p in range(pc, end):
                instruction = program[p]
                if isinstance(instruction, Ret):
                    emit_leaf(regs, cum_cycles, indent)
                    return
                if isinstance(instruction, Br):
                    pc = p + 1 + instruction.offset
                    transferred = True
                    break
                if isinstance(instruction, Branch):
                    value = regs.get(instruction.rs.index, _ZERO)
                    taken = p + 1 + instruction.offset
                    if value[0] == "k":
                        pc = (taken
                              if _branch_taken(instruction.name, value[1])
                              else p + 1)
                        transferred = True
                        break
                    mn, mx, _ = _info(value)
                    decided = _branch_decide(instruction.name, mn, mx)
                    if decided is not None:
                        pc = taken if decided else p + 1
                        transferred = True
                        break
                    condition = _branch_cond(instruction.name, value[1],
                                             mx)
                    taken_regs = dict(regs)
                    fall_regs = dict(regs)
                    # BEQ-taken / BNE-fallthrough pin the register to an
                    # exact value; downstream reads of it const-fold.
                    if instruction.name == "BEQ":
                        taken_regs[instruction.rs.index] = _ZERO
                    elif instruction.name == "BNE":
                        fall_regs[instruction.rs.index] = _ZERO
                    emit(indent, f"if {condition}:")
                    walk(taken, taken_regs, dict(memo), cum_cycles,
                         cum_steps, indent + 1)
                    emit(indent, "else:")
                    walk(p + 1, fall_regs, dict(memo), cum_cycles,
                         cum_steps, indent + 1)
                    return
                if emit_straightline(instruction, regs, memo, indent):
                    return
            if not transferred:
                pc = end    # fell through into the next leader (or off
                            # the end, caught by the range check above)

    entry = {1: ("k", plan.packet_base), 2: ("e", "flen", 0, WORD_MASK, 0),
             3: ("k", plan.scratch_base)}
    signature = ("frames, start, b" if budgeted else "frames, start")
    emit(1, "try:")
    emit(2, "for frame in (frames[start:] if start else frames):")
    emit(3, "flen = len(frame)")
    walk(0, entry, {}, 0, 0, 3)
    pairs = ", ".join(f"({cycles}, {name})"
                      for cycles, name in sorted(counters.items()))
    # Frames complete strictly in order and bump exactly one leaf
    # counter each, so the index of the faulting frame is start plus
    # the completed count — no enumerate bookkeeping in the hot loop.
    fault_index = " + ".join(["start", *counters.values()])
    emit(1, "except MachineError as error:")
    emit(2, f"return {fault_index}, accepted, [{pairs}], error")
    emit(1, f"return len(frames), accepted, [{pairs}], None")
    lines = _tidy(lines)
    # Counter zeroing must precede the try block emitted into ``lines``;
    # q/edge ride as defaults so the hot loop reads locals, not globals.
    header = [f"def _drive({signature}, q=q, edge=edge):",
              "    accepted = 0"]
    counter_init = [f"    {name} = 0" for name in counters.values()]
    source = "\n".join(header + counter_init + lines)
    namespace = {
        "q": Struct("<Q").unpack_from,
        "edge": _make_edge(plan),
        "MachineError": MachineError,
        "BudgetExceeded": BudgetExceeded,
    }
    exec(compile(source, "<alpha-batch>", "exec"), namespace)
    return namespace["_drive"]


def _make_edge(plan: FramePlan):
    """The out-of-line load path: padded-tail words, scratch reads, and
    the reference's unaligned/unmapped faults — bit-exact with
    :meth:`repro.alpha.machine.Memory.load_quad` over a rebound
    reusable packet memory running a store-free program."""
    pb, sb, ss = plan
    unpack = Struct("<Q").unpack_from

    def edge(address: int, frame, flen: int) -> int:
        if address & 7:
            raise MachineError(f"unaligned LDQ address {address:#x}")
        offset = address - pb
        if 0 <= offset and offset + 8 <= flen + (-flen % 8):
            if offset + 8 <= flen:
                return unpack(frame, offset)[0]
            # The zero-padded tail word of the packet region.
            return int.from_bytes(frame[offset:], "little")
        if sb <= address and address + 8 <= sb + ss:
            return 0  # scratch: zeroed per invocation, never written
        raise MachineError(f"unmapped address {address:#x} (size 8)")

    return edge
