"""Binary encoding of the Alpha subset — real 32-bit Alpha instruction words.

The native-code section of a PCC binary contains genuine little-endian DEC
Alpha machine code, so the consumer-side validator works from exactly what
would be mapped into kernel memory.  Encodings follow the Alpha Architecture
Reference Manual:

* memory format    — ``opcode(6) ra(5) rb(5) disp(16)`` for LDA, LDAH,
  LDQ, STQ;
* operate format   — ``opcode(6) ra(5) rb(5)/lit(8) litflag(1) func(7)
  rc(5)`` for the integer ALU instructions;
* branch format    — ``opcode(6) ra(5) disp(21)``;
* RET              — the canonical ``RET $31,($26),1`` memory-branch word.

Our logical registers ``r0`` .. ``r10`` map to physical Alpha temporaries
(v0, t0-t7, a0, a1); the table is :data:`REG_MAP`.  Decoding inverts the
mapping and rejects words that use any other register — that is the
consumer's first tamper check.
"""

from __future__ import annotations

import struct

from repro.alpha.isa import (
    Br,
    Branch,
    Instruction,
    Lda,
    Ldah,
    Ldq,
    Lit,
    Operate,
    Program,
    Reg,
    Ret,
    Stq,
    validate_program,
)
from repro.errors import EncodingError

#: Logical register index -> physical Alpha register number.
#: v0, t0..t7, a0, a1 — all caller-save, per the paper's restriction.
REG_MAP: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 7, 8, 16, 17)
_PHYS_TO_LOGICAL = {phys: logical for logical, phys in enumerate(REG_MAP)}

#: The zero register, used as the base for LDA constant loads.
RZERO_PHYS = 31

_MEMORY_OPCODES = {"LDA": 0x08, "LDAH": 0x09, "LDQ": 0x29, "STQ": 0x2D}
_MEMORY_OPCODES_INV = {code: name for name, code in _MEMORY_OPCODES.items()}

#: Operate-format (opcode, function) pairs from the architecture manual.
_OPERATE_CODES: dict[str, tuple[int, int]] = {
    "ADDQ": (0x10, 0x20),
    "SUBQ": (0x10, 0x29),
    "CMPEQ": (0x10, 0x2D),
    "CMPULT": (0x10, 0x1D),
    "CMPULE": (0x10, 0x3D),
    "AND": (0x11, 0x00),
    "BIS": (0x11, 0x20),
    "XOR": (0x11, 0x40),
    "SLL": (0x12, 0x39),
    "SRL": (0x12, 0x34),
    "EXTBL": (0x12, 0x06),
    "EXTWL": (0x12, 0x16),
    "EXTLL": (0x12, 0x26),
    "MULQ": (0x13, 0x20),
}
_OPERATE_CODES_INV = {code: name for name, code in _OPERATE_CODES.items()}

_BRANCH_OPCODES = {
    "BR": 0x30,
    "BEQ": 0x39,
    "BLT": 0x3A,
    "BLE": 0x3B,
    "BNE": 0x3D,
    "BGE": 0x3E,
    "BGT": 0x3F,
}
_BRANCH_OPCODES_INV = {code: name for name, code in _BRANCH_OPCODES.items()}

#: ``RET $31,($26),1`` — the standard Alpha return instruction word.
RET_WORD = 0x6BFA8001


def _phys(reg: Reg) -> int:
    return REG_MAP[reg.index]


def _logical(phys: int, word: int) -> Reg:
    if phys not in _PHYS_TO_LOGICAL:
        raise EncodingError(
            f"instruction word {word:#010x} uses physical register "
            f"${phys}, outside the paper's 11-register policy subset")
    return Reg(_PHYS_TO_LOGICAL[phys])


def _encode_memory(opcode: int, ra: int, rb: int, disp: int) -> int:
    return (opcode << 26) | (ra << 21) | (rb << 16) | (disp & 0xFFFF)


def _encode_operate(instruction: Operate) -> int:
    opcode, func = _OPERATE_CODES[instruction.name]
    word = (opcode << 26) | (_phys(instruction.ra) << 21)
    if isinstance(instruction.rb, Lit):
        word |= (instruction.rb.value << 13) | (1 << 12)
    else:
        word |= _phys(instruction.rb) << 16
    word |= (func << 5) | _phys(instruction.rc)
    return word


def encode_instruction(instruction: Instruction) -> int:
    """Encode one instruction as a 32-bit Alpha word."""
    if isinstance(instruction, Ret):
        return RET_WORD
    if isinstance(instruction, Lda):
        return _encode_memory(_MEMORY_OPCODES["LDA"], _phys(instruction.rd),
                              _phys(instruction.rs), instruction.disp)
    if isinstance(instruction, Ldah):
        return _encode_memory(_MEMORY_OPCODES["LDAH"], _phys(instruction.rd),
                              _phys(instruction.rs), instruction.disp)
    if isinstance(instruction, Ldq):
        return _encode_memory(_MEMORY_OPCODES["LDQ"], _phys(instruction.rd),
                              _phys(instruction.rs), instruction.disp)
    if isinstance(instruction, Stq):
        return _encode_memory(_MEMORY_OPCODES["STQ"], _phys(instruction.rs),
                              _phys(instruction.rd), instruction.disp)
    if isinstance(instruction, Operate):
        return _encode_operate(instruction)
    if isinstance(instruction, Branch):
        opcode = _BRANCH_OPCODES[instruction.name]
        return ((opcode << 26) | (_phys(instruction.rs) << 21)
                | (instruction.offset & 0x1FFFFF))
    if isinstance(instruction, Br):
        return ((_BRANCH_OPCODES["BR"] << 26) | (RZERO_PHYS << 21)
                | (instruction.offset & 0x1FFFFF))
    raise EncodingError(f"cannot encode {instruction!r}")


def _sext16(value: int) -> int:
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


def _sext21(value: int) -> int:
    value &= 0x1FFFFF
    return value - 0x200000 if value & 0x100000 else value


def decode_instruction(word: int) -> Instruction:
    """Decode one 32-bit Alpha word back into an instruction.

    Raises :class:`EncodingError` for anything outside the policy subset —
    unknown opcodes, disallowed registers, or malformed operate words.
    """
    if word == RET_WORD:
        return Ret()
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    opcode = word >> 26
    ra_phys = (word >> 21) & 0x1F

    if opcode in _MEMORY_OPCODES_INV:
        name = _MEMORY_OPCODES_INV[opcode]
        rb_phys = (word >> 16) & 0x1F
        disp = _sext16(word)
        ra = _logical(ra_phys, word)
        rb = _logical(rb_phys, word)
        if name == "LDA":
            return Lda(ra, disp, rb)
        if name == "LDAH":
            return Ldah(ra, disp, rb)
        if name == "LDQ":
            return Ldq(ra, disp, rb)
        return Stq(ra, disp, rb)

    if opcode in (0x10, 0x11, 0x12, 0x13):
        func = (word >> 5) & 0x7F
        name = _OPERATE_CODES_INV.get((opcode, func))
        if name is None:
            raise EncodingError(
                f"operate word {word:#010x}: unknown function {func:#x} "
                f"for opcode {opcode:#x}")
        ra = _logical(ra_phys, word)
        rc = _logical(word & 0x1F, word)
        if word & (1 << 12):
            rb: Reg | Lit = Lit((word >> 13) & 0xFF)
        else:
            if (word >> 13) & 0x7:
                raise EncodingError(
                    f"operate word {word:#010x}: SBZ bits are not zero")
            rb = _logical((word >> 16) & 0x1F, word)
        return Operate(name, ra, rb, rc)

    if opcode in _BRANCH_OPCODES_INV:
        name = _BRANCH_OPCODES_INV[opcode]
        offset = _sext21(word)
        if name == "BR":
            if ra_phys != RZERO_PHYS:
                raise EncodingError(
                    f"BR word {word:#010x} must use $31 as ra")
            return Br(offset)
        return Branch(name, _logical(ra_phys, word), offset)

    raise EncodingError(f"unknown opcode {opcode:#x} in word {word:#010x}")


def encode_program(program: Program) -> bytes:
    """Encode a program as little-endian Alpha machine code."""
    words = [encode_instruction(instruction) for instruction in program]
    return b"".join(struct.pack("<I", word) for word in words)


def decode_program(code: bytes) -> Program:
    """Decode machine code back into a validated program."""
    if len(code) % 4 != 0:
        raise EncodingError(
            f"code section length {len(code)} is not a multiple of 4")
    if not code:
        raise EncodingError("empty code section")
    program = tuple(
        decode_instruction(struct.unpack_from("<I", code, offset)[0])
        for offset in range(0, len(code), 4))
    validate_program(program)
    return program
