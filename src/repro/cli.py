"""``pcc`` — command-line front end for the toolchain.

Subcommands mirror the paper's workflow:

* ``pcc certify <asm> -o <binary>`` — producer side: assemble + prove,
  emitting a PCC binary;
* ``pcc validate <binary>`` — consumer side: recompute the safety
  predicate and type-check the proof, printing the Table 1 metrics;
* ``pcc batch <binary>...`` — consumer side at load-heavy scale: run the
  submissions through the extension loader (content-addressed validation
  cache + ``multiprocessing`` pool), printing per-item verdicts and the
  cache hit/miss/eviction counters;
* ``pcc serve <binary>...`` — the dispatch plane: attach extensions
  through the loader, replay a synthetic trace across sharded workers
  with cycle budgets and fault quarantine, and print per-extension
  telemetry (``--json`` dumps the stats snapshot);
* ``pcc analyze <binary>`` — the static-analysis subsystem: recover the
  CFG, run the interval abstract interpreter against the policy's
  memory regions, bound the worst-case cycle count, and lint — all
  ahead of time, without executing or even validating the code;
* ``pcc upgrade <live> <candidate>`` — the supervised control plane:
  attach the live binary, admit the candidate as a shadow canary, replay
  a trace, and report the promotion/rollback decision;
* ``pcc chaos`` — the fault-injection harness: seeded faults at every
  layer (corrupted containers, adversarial packets, budget overruns,
  shard-worker crashes, wedged/killed validation-pool workers, divergent
  upgrades) with recovery invariants asserted; nonzero exit on any
  broken invariant;
* ``pcc disasm <binary>`` — decode the native-code section;
* ``pcc layout <binary>`` — print the Figure 7 section offsets;
* ``pcc filter <name> <trace-size>`` — certify one of the paper's four
  filters and run it (plus the baselines) over a synthetic trace.

Policies are selected with ``--policy`` (``resource-access``,
``packet-filter``, ``sfi-segment``, ``checksum-buffer`` or
``kv-packet``); these are the consumer-published contracts from the
paper, plus the write-capable KV/NAT/LB contract.  ``pcc serve
--policy kv-packet --builtin-filters`` serves the store-bearing family
over the Zipf key-popularity trace with persistent per-shard state.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import PccError
from repro.vcgen.policy import SafetyPolicy


def _load_policy(name: str) -> SafetyPolicy:
    from repro.baselines.sfi.policy import sfi_policy
    from repro.filters.checksum import checksum_policy
    from repro.filters.kv import kv_packet_policy
    from repro.filters.policy import packet_filter_policy
    from repro.vcgen.policy import resource_access_policy

    policies = {
        "resource-access": resource_access_policy,
        "packet-filter": packet_filter_policy,
        "sfi-segment": sfi_policy,
        "checksum-buffer": checksum_policy,
        "kv-packet": kv_packet_policy,
    }
    if name not in policies:
        raise SystemExit(f"unknown policy {name!r}; choose from "
                         f"{', '.join(sorted(policies))}")
    return policies[name]()


def _budget_value(text: str):
    """``--budget`` accepts an integer or the ``auto`` sentinel."""
    if text == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"budget must be an integer or 'auto', not {text!r}")


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.pcc import certify

    source = Path(args.source).read_text()
    policy = _load_policy(args.policy)
    result = certify(source, policy)
    blob = result.binary.to_bytes()
    Path(args.output).write_bytes(blob)
    print(f"certified {len(result.program)} instructions under "
          f"{policy.name!r}: {len(blob)} bytes -> {args.output}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.pcc import validate

    blob = Path(args.binary).read_bytes()
    policy = _load_policy(args.policy)
    report = validate(blob, policy, measure_memory=args.memory)
    print(f"VALID under policy {policy.name!r}")
    print(f"  instructions:     {report.instructions}")
    print(f"  code bytes:       {report.code_bytes}")
    print(f"  relocation bytes: {report.relocation_bytes}")
    print(f"  proof bytes:      {report.proof_bytes}")
    print(f"  validation time:  {report.validation_seconds * 1000:.1f} ms")
    if args.memory:
        print(f"  peak heap:        {report.peak_memory_bytes / 1024:.1f} "
              f"KB")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.pcc.loader import ExtensionLoader

    policy = _load_policy(args.policy)
    loader = ExtensionLoader(policy, capacity=args.cache_capacity)
    blobs = [Path(name).read_bytes() for name in args.binaries]
    valid = 0
    for round_number in range(args.repeat):
        items = loader.validate_batch(blobs, processes=args.jobs)
        if round_number:  # re-submissions only restate the verdicts
            continue
        for name, item in zip(args.binaries, items):
            if item.ok:
                valid += 1
                source = "cache" if item.cached else "validated"
                print(f"  VALID   {name}  "
                      f"({item.report.instructions} instructions, "
                      f"{source})")
            else:
                print(f"  INVALID {name}  ({item.error})")
    stats = loader.stats()
    print(f"policy {policy.name!r}: {valid}/{len(blobs)} valid")
    print(f"cache: {stats.hits} hits, {stats.misses} misses, "
          f"{stats.evictions} evictions over {stats.loads} loads "
          f"({stats.hit_rate:.0%} hit rate, "
          f"{stats.size}/{stats.capacity} entries)")
    return 0 if valid == len(blobs) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.filters.packets import inject_faults
    from repro.filters.trace import TraceConfig, generate_trace, replay_trace
    from repro.runtime import PacketRuntime, RuntimeConfig

    policy = _load_policy(args.policy)
    kv_mode = args.policy == "kv-packet"
    config_kwargs = dict(
        shards=args.shards,
        backend=args.backend,
        batch_size=args.batch_size,
        cycle_budget=args.budget,
        budget_slack=args.budget_slack,
        fault_threshold=args.fault_threshold,
        downgrade_unproven=args.downgrade,
        enforce_contract=not args.no_contract,
    )
    if kv_mode:
        # The write-capable family needs the KV invocation contract:
        # writable packet, persistent per-shard state area.
        from repro.filters.kv import kv_registers, reusable_kv_memory
        config_kwargs.update(memory_factory=reusable_kv_memory,
                             registers_fn=kv_registers)
    config = RuntimeConfig(**config_kwargs)
    runtime = PacketRuntime(policy, config)

    submissions: list[tuple[str, bytes]] = [
        (Path(name).stem, Path(name).read_bytes())
        for name in args.binaries
    ]
    if args.builtin_filters:
        from repro.pcc import certify
        if kv_mode:
            from repro.filters.kv import KV_PROGRAMS
            for spec in KV_PROGRAMS:
                submissions.append((spec.name, certify(
                    spec.source, policy,
                    invariants=spec.invariants()).binary.to_bytes()))
        else:
            from repro.filters.programs import FILTERS
            for spec in FILTERS:
                submissions.append(
                    (spec.name,
                     certify(spec.source, policy).binary.to_bytes()))
    if not submissions:
        raise SystemExit("nothing to serve: pass PCC binaries or "
                         "--builtin-filters")
    for name, blob in submissions:
        try:
            extension = runtime.attach(name, blob)
        except PccError as error:
            print(f"  REJECTED {name}: {error}")
            continue
        tier = "checked (downgraded)" if extension.checked else "unchecked"
        note = ""
        if extension.cycle_budget is not None:
            note = f", budget {extension.cycle_budget} cycles"
            if extension.wcet_bound is not None:
                note += f" (wcet {extension.wcet_bound})"
        elif config.cycle_budget == "auto":
            note = ", unbudgeted (no WCET bound)"
        print(f"  ATTACHED {name}: {len(extension.program)} instructions, "
              f"{tier}{note}")
    if not runtime.extensions:
        raise SystemExit("no extension was admitted")

    if kv_mode:
        from repro.filters.trace import KvTraceConfig, generate_kv_trace
        trace = generate_kv_trace(
            KvTraceConfig(packets=args.packets, seed=args.seed))
    else:
        trace = generate_trace(
            TraceConfig(packets=args.packets, seed=args.seed))
    if args.inject_faults:
        inject_faults(trace, fraction=args.inject_faults)
    report = runtime.serve(replay_trace(trace, args.repeat))

    snapshot = runtime.snapshot()
    model = config.cost_model
    print(f"\nserved {report.packets} packets over {config.shards} "
          f"shard(s), {report.backend} backend "
          f"({report.contract_drops} contract drops)")
    print(f"  modeled:  {report.modeled_packets_per_second:,.0f} pkts/s "
          f"at {model.clock_mhz:.0f} MHz "
          f"({report.modeled_seconds * 1e3:.1f} ms)")
    print(f"  python:   {report.wall_packets_per_second:,.0f} pkts/s "
          f"wall ({report.wall_seconds * 1e3:.1f} ms)")
    print(f"\n{'extension':12} {'state':12} {'in':>9} {'accept':>9} "
          f"{'fault':>6} {'p50cy':>7} {'p99cy':>7}")
    for extension in snapshot.extensions:
        print(f"{extension.name:12} {extension.state:12} "
              f"{extension.packets_in:>9} {extension.accepted:>9} "
              f"{extension.faults:>6} {extension.p50_cycles:>7.0f} "
              f"{extension.p99_cycles:>7.0f}"
              + (f"  [{extension.last_fault}]"
                 if extension.last_fault else ""))
    if args.json:
        Path(args.json).write_text(snapshot.to_json() + "\n")
        print(f"\nstats snapshot -> {args.json}")
    return 0


def _cmd_upgrade(args: argparse.Namespace) -> int:
    from repro.filters.trace import TraceConfig, generate_trace
    from repro.runtime import CanaryConfig, PacketRuntime, RuntimeConfig

    policy = _load_policy(args.policy)
    runtime = PacketRuntime(policy, RuntimeConfig(
        shards=args.shards, cycle_budget=args.budget))
    name = Path(args.live).stem
    canary = CanaryConfig(sample_fraction=args.sample,
                          promote_after=args.promote_after,
                          seed=args.seed)
    try:
        base_blob = Path(args.live).read_bytes()
        live = runtime.attach(name, base_blob)
        print(f"  ATTACHED {name} v{live.version} "
              f"(digest {live.digest[:12]})")
        if args.incremental:
            # Candidate is assembly source: certify it as a block-level
            # proof patch against the serving container, reusing its
            # invariant table (loop edits keep their cut points) and the
            # runtime loader's shared subproof store.
            from repro.lf.encode import decode_logic_formula
            from repro.pcc.container import PccBinary, unpack_invariants
            from repro.pcc.incremental import certify_incremental

            base = PccBinary.from_bytes(base_blob)
            invariants = {
                pc: decode_logic_formula(term)
                for pc, term
                in unpack_invariants(base.invariants).items()}
            result = certify_incremental(
                base_blob, Path(args.candidate).read_text(), policy,
                invariants=invariants,
                store=runtime.loader.proof_store)
            print(f"  PATCH    {result.reused_parts}/{result.total_parts} "
                  f"subproofs reused, {result.proved_parts} proved fresh "
                  f"(blocks changed: "
                  f"{list(result.changed_blocks) or 'none'})")
            print(f"           {result.patch_bytes} patch bytes vs "
                  f"{result.full_proof_bytes} full proof bytes, certified "
                  f"in {result.certify_seconds * 1e3:.1f} ms")
            shadow = runtime.upgrade(name, canary=canary,
                                     patch=result.patch)
        else:
            shadow = runtime.upgrade(
                name, Path(args.candidate).read_bytes(), canary)
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    candidate = shadow.candidate
    print(f"  SHADOW   {name} v{candidate.version} "
          f"(digest {candidate.digest[:12]}, sampling "
          f"{args.sample:.0%}, promote after {args.promote_after} clean)")

    trace = generate_trace(TraceConfig(packets=args.packets,
                                       seed=args.seed))
    runtime.serve(trace)
    record = shadow.record()
    if record.state == "shadow":
        print(f"  UNDECIDED after {record.sampled} sampled packets "
              f"({record.clean} clean); rolling back")
        record = runtime.rollback(name)

    print(f"\nupgrade {name}: v{record.from_version} -> "
          f"v{record.to_version}  [{record.state.upper()}]")
    print(f"  sampled {record.sampled}, clean {record.clean}, "
          f"divergences {record.divergences}, faults {record.faults}")
    if record.reason:
        print(f"  reason: {record.reason}")
    print(f"  decision after {record.decision_seconds * 1e3:.1f} ms; "
          f"now serving v{runtime.extension(name).version}")
    return 0 if record.state == "promoted" else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.runtime.chaos import ChaosConfig, run_chaos

    packets = args.packets
    rounds = args.mutation_rounds
    if args.quick:
        packets = min(packets, 150)
        rounds = min(rounds, 2)
    try:
        config = ChaosConfig(
            packets=packets, seed=args.seed, shards=args.shards,
            mutation_rounds=rounds,
            scenarios=tuple(args.scenario) if args.scenario else None)
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    report = run_chaos(config)

    print(f"chaos campaign: {report.packets} packets, "
          f"{report.shards} shard(s), seed {report.seed:#x}\n")
    for scenario in report.scenarios:
        mark = "PASS" if scenario.passed else "FAIL"
        print(f"  {mark}  {scenario.name:22} "
              f"({scenario.wall_seconds:.2f}s)")
        for check, ok, detail in scenario.checks:
            if args.verbose or not ok:
                line = f"          {'ok    ' if ok else 'BROKEN'} {check}"
                if detail:
                    line += f": {detail}"
                print(line)
    mttr = report.mttr_seconds
    verdict = "ALL INVARIANTS HELD" if report.passed \
        else "INVARIANTS BROKEN"
    print(f"\n{verdict}: "
          f"{sum(s.passed for s in report.scenarios)}"
          f"/{len(report.scenarios)} scenarios in "
          f"{report.wall_seconds:.1f}s")
    if mttr:
        print(f"  recovery: {len(mttr)} incident(s), mean MTTR "
              f"{sum(mttr) / len(mttr) * 1e3:.1f} ms, worst "
              f"{max(mttr) * 1e3:.1f} ms")
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"  chaos report -> {args.json}")
    return 0 if report.passed else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.alpha.encoding import decode_program
    from repro.analysis import analyze_program, context_for_policy
    from repro.analysis.prescreen import prescreen_blob
    from repro.errors import ValidationError
    from repro.pcc.container import PccBinary

    policy = _load_policy(args.policy)
    blob = Path(args.binary).read_bytes()
    try:
        binary = PccBinary.from_bytes(blob)
        code, is_container = binary.code, True
    except ValidationError:
        code, is_container = blob, False  # raw encoded code section
    program = decode_program(code)

    context = context_for_policy(policy)
    report = analyze_program(program, context)
    cfg, wcet, lint = report.cfg, report.wcet, report.lint

    print(f"analyzed {args.binary} under policy {policy.name!r}: "
          f"{len(program)} instructions, {len(cfg.blocks)} basic "
          f"block(s)")
    print("\nbasic blocks:")
    for block in cfg.blocks:
        marker = "" if block.index in cfg.reachable else "  (unreachable)"
        print(f"  {block}{marker}")
    if cfg.loops:
        print("\nloops:")
        for loop in cfg.loops:
            print(f"  {loop}")
    else:
        print("\nloops: none")

    if report.intervals.accesses:
        print("\nmemory accesses:")
        for access in report.intervals.accesses:
            print(f"  pc {access.pc:3d}  {access.kind}  "
                  f"{str(access.interval):24}  {access.verdict:8} "
                  f"{access.alignment}-aligned")
    else:
        print("\nmemory accesses: none")

    print(f"\n{wcet}")
    for bound in wcet.loop_bounds:
        print(f"  {bound}")
    budget = wcet.budget(args.slack)
    if budget is not None:
        print(f"  auto cycle budget (slack {args.slack:.0%}): {budget}")
    else:
        print("  auto cycle budget: none (unbounded; runtime falls back "
              "to unbudgeted dispatch)")

    if lint.clean:
        print("\nlint: clean")
    else:
        print(f"\nlint: {len(lint.errors)} error(s), "
              f"{len(lint.warnings)} warning(s)")
        for diagnostic in lint:
            print(f"  {diagnostic}")

    if is_container:
        verdict = prescreen_blob(blob, policy, context)
        print(f"\n{verdict}")

    if args.json:
        payload = report.to_dict()
        payload["auto_budget"] = budget
        payload["slack"] = args.slack
        Path(args.json).write_text(json.dumps(payload, indent=2,
                                              sort_keys=True) + "\n")
        print(f"\nanalysis report -> {args.json}")
    return 0 if not lint.errors else 1


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.alpha.encoding import decode_program
    from repro.alpha.parser import format_program
    from repro.pcc.container import PccBinary

    binary = PccBinary.from_bytes(Path(args.binary).read_bytes())
    print(format_program(decode_program(binary.code)), end="")
    return 0


def _cmd_layout(args: argparse.Namespace) -> int:
    from repro.pcc.container import PccBinary

    binary = PccBinary.from_bytes(Path(args.binary).read_bytes())
    print("section        start    end")
    for name, start, end in binary.layout().rows():
        print(f"{name:12} {start:7} {end:6}")
    return 0


def _cmd_rules(args: argparse.Namespace) -> int:
    """Print the published rule set Delta — the consumer's proof logic."""
    from repro.proof.rules import RULES
    from repro.lf.signature import SIGNATURE

    print(f"rule set Delta: {len(RULES)} rules "
          f"(LF signature: {len(SIGNATURE.entries)} constants)\n")
    for name in sorted(RULES):
        doc = (RULES[name].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        entry = SIGNATURE.entries.get(name)
        guarded = ""
        if entry is not None and entry.side_condition is not None:
            guarded = "  [computational side condition]"
        print(f"  {name:18} {summary}{guarded}")
    return 0


def _cmd_filter(args: argparse.Namespace) -> int:
    from repro.filters.programs import FILTERS
    from repro.filters.trace import TraceConfig, generate_trace
    from repro.perf import ALPHA_175, run_approach

    spec = next((s for s in FILTERS if s.name == args.name), None)
    if spec is None:
        raise SystemExit(f"unknown filter {args.name!r}; choose from "
                         f"{', '.join(s.name for s in FILTERS)}")
    trace = generate_trace(TraceConfig(packets=args.packets))
    print(f"{spec.name}: {spec.description}")
    for approach in ("bpf", "bpf-jit", "m3", "m3-view", "sfi", "pcc"):
        result = run_approach(spec, approach, trace)
        print(f"  {approach:8} {result.cycles_per_packet:9.1f} cycles/pkt "
              f"({result.us_per_packet(ALPHA_175):.3f} us @175MHz), "
              f"accepted {result.accepted}/{result.packets}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pcc",
        description="Proof-carrying code toolchain (Necula & Lee, "
                    "OSDI '96 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_certify = sub.add_parser("certify", help="assemble + prove")
    p_certify.add_argument("source", help="Alpha assembly file")
    p_certify.add_argument("-o", "--output", required=True)
    p_certify.add_argument("--policy", default="packet-filter")
    p_certify.set_defaults(fn=_cmd_certify)

    p_validate = sub.add_parser("validate", help="consumer-side check")
    p_validate.add_argument("binary")
    p_validate.add_argument("--policy", default="packet-filter")
    p_validate.add_argument("--memory", action="store_true",
                            help="measure peak validation heap")
    p_validate.set_defaults(fn=_cmd_validate)

    p_batch = sub.add_parser(
        "batch", help="load many binaries through the caching loader")
    p_batch.add_argument("binaries", nargs="+")
    p_batch.add_argument("--policy", default="packet-filter")
    p_batch.add_argument("--jobs", type=int, default=None,
                         help="worker processes (0 = in-process)")
    p_batch.add_argument("--repeat", type=int, default=1,
                         help="re-submit the batch N times (warm loads "
                              "hit the cache)")
    p_batch.add_argument("--cache-capacity", type=int, default=64)
    p_batch.set_defaults(fn=_cmd_batch)

    p_serve = sub.add_parser(
        "serve", help="dispatch a packet trace through loaded extensions")
    p_serve.add_argument("binaries", nargs="*",
                         help="PCC binaries to attach (name = file stem)")
    p_serve.add_argument("--builtin-filters", action="store_true",
                         help="certify + attach the paper's four filters")
    p_serve.add_argument("--policy", default="packet-filter")
    p_serve.add_argument("--packets", type=int, default=10_000)
    p_serve.add_argument("--repeat", type=int, default=1,
                         help="replay the trace N times")
    p_serve.add_argument("--seed", type=int, default=19961028)
    p_serve.add_argument("--shards", type=int, default=4)
    p_serve.add_argument("--backend", choices=("thread", "process"),
                         default="thread",
                         help="shard worker vehicle: in-process threads "
                              "(default) or shared-nothing forked "
                              "processes")
    p_serve.add_argument("--batch-size", type=int, default=8192,
                         help="frames per dispatch chunk on the batched "
                              "hot path")
    p_serve.add_argument("--budget", type=_budget_value, default=None,
                         help="per-invocation cycle budget (an int, or "
                              "'auto' to derive each extension's budget "
                              "from its static WCET bound)")
    p_serve.add_argument("--budget-slack", type=float, default=0.0,
                         help="headroom on 'auto' budgets (0.25 = +25%%)")
    p_serve.add_argument("--fault-threshold", type=int, default=3,
                         help="consecutive faults before quarantine")
    p_serve.add_argument("--downgrade", action="store_true",
                         help="run unproven binaries on the checked tier")
    p_serve.add_argument("--no-contract", action="store_true",
                         help="do not drop contract-violating frames")
    p_serve.add_argument("--inject-faults", type=float, default=0.0,
                         metavar="FRACTION",
                         help="corrupt this fraction of the trace")
    p_serve.add_argument("--json", metavar="PATH",
                         help="write the stats snapshot as JSON")
    p_serve.set_defaults(fn=_cmd_serve)

    p_upgrade = sub.add_parser(
        "upgrade", help="hot-swap a binary behind a shadow canary")
    p_upgrade.add_argument("live", help="the currently-serving PCC binary")
    p_upgrade.add_argument("candidate",
                           help="the replacement PCC binary (or assembly "
                                "source with --incremental)")
    p_upgrade.add_argument("--incremental", action="store_true",
                           help="treat the candidate as assembly source "
                                "and admit it as a block-level proof "
                                "patch against the live container")
    p_upgrade.add_argument("--policy", default="packet-filter")
    p_upgrade.add_argument("--packets", type=int, default=2000)
    p_upgrade.add_argument("--seed", type=int, default=19961028)
    p_upgrade.add_argument("--shards", type=int, default=2)
    p_upgrade.add_argument("--budget", type=_budget_value, default="auto",
                           help="per-invocation cycle budget (int, 'auto')")
    p_upgrade.add_argument("--sample", type=float, default=1.0,
                           help="fraction of the stream the canary shadows")
    p_upgrade.add_argument("--promote-after", type=int, default=128,
                           help="clean sampled packets before promotion")
    p_upgrade.set_defaults(fn=_cmd_upgrade)

    p_chaos = sub.add_parser(
        "chaos", help="fault-injection harness with recovery invariants")
    p_chaos.add_argument("--packets", type=int, default=600)
    p_chaos.add_argument("--seed", type=int, default=0xC4405)
    p_chaos.add_argument("--shards", type=int, default=2)
    p_chaos.add_argument("--mutation-rounds", type=int, default=4,
                         help="corrupted containers per mutation kind")
    p_chaos.add_argument("--scenario", action="append", metavar="NAME",
                         help="run only this scenario (repeatable)")
    p_chaos.add_argument("--quick", action="store_true",
                         help="CI profile: small trace, fewer mutants")
    p_chaos.add_argument("--verbose", action="store_true",
                         help="print passing invariants too")
    p_chaos.add_argument("--json", metavar="PATH",
                         help="write the chaos report as JSON")
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_analyze = sub.add_parser(
        "analyze", help="static analysis: CFG, intervals, WCET, lint")
    p_analyze.add_argument("binary",
                           help="PCC binary (or raw encoded code section)")
    p_analyze.add_argument("--policy", default="packet-filter")
    p_analyze.add_argument("--slack", type=float, default=0.0,
                           help="headroom on the auto cycle budget "
                                "(e.g. 0.25 = +25%%)")
    p_analyze.add_argument("--json", metavar="PATH",
                           help="write the analysis report as JSON")
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_disasm = sub.add_parser("disasm", help="decode the code section")
    p_disasm.add_argument("binary")
    p_disasm.set_defaults(fn=_cmd_disasm)

    p_layout = sub.add_parser("layout", help="Figure 7 section offsets")
    p_layout.add_argument("binary")
    p_layout.set_defaults(fn=_cmd_layout)

    p_rules = sub.add_parser("rules", help="print the proof rule set")
    p_rules.set_defaults(fn=_cmd_rules)

    p_filter = sub.add_parser("filter", help="run a paper filter + "
                                             "baselines on a trace")
    p_filter.add_argument("name")
    p_filter.add_argument("--packets", type=int, default=2000)
    p_filter.set_defaults(fn=_cmd_filter)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except PccError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
