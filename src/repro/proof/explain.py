"""Human-readable proof rendering (the paper's Figure 6, as text).

The checker validates proofs top-down by recomputing every premise's
goal; :func:`explain_proof` does the same walk but renders it, producing
the rule-and-goal tree the paper draws for SP_r.  Shared subproofs are
printed once and referenced afterwards, mirroring how they are stored
and transmitted.
"""

from __future__ import annotations

from repro.errors import ProofError
from repro.logic.formulas import Formula
from repro.logic.pretty import pp_formula
from repro.proof.proofs import Proof
from repro.proof.rules import RULES


def explain_proof(proof: Proof, goal: Formula,
                  max_depth: int = 12, max_width: int = 96) -> str:
    """Render the proof of ``goal`` as an indented rule tree.

    Raises :class:`ProofError` if the proof does not actually prove the
    goal (rendering replays the rule functions, so it doubles as a
    check).  Deep subtrees are elided with ``...`` past ``max_depth``.
    """
    lines: list[str] = []
    seen: dict[int, int] = {}
    counter = [0]

    def clip(text: str) -> str:
        if len(text) <= max_width:
            return text
        return text[:max_width - 3] + "..."

    def walk(node: Proof, node_goal: Formula,
             hyps: dict[str, Formula], depth: int) -> None:
        indent = "  " * depth
        reference = seen.get(id(node))
        if reference is not None and node.premises:
            lines.append(f"{indent}[see #{reference}] "
                         f"{clip(pp_formula(node_goal))}")
            return
        rule = RULES.get(node.rule)
        if rule is None:
            raise ProofError(f"unknown rule {node.rule!r}")
        obligations = rule(node_goal, node.params, hyps)
        if len(obligations) != len(node.premises):
            raise ProofError(f"rule {node.rule!r}: premise count mismatch")
        label = ""
        if node.premises:
            counter[0] += 1
            seen[id(node)] = counter[0]
            label = f"#{counter[0]} "
        lines.append(f"{indent}{label}{node.rule}: "
                     f"{clip(pp_formula(node_goal))}")
        if depth >= max_depth:
            if node.premises:
                lines.append(f"{indent}  ...")
            return
        for premise, (subgoal, extra) in zip(node.premises, obligations):
            inner = dict(hyps)
            inner.update(extra)
            for name, formula in extra.items():
                lines.append(f"{indent}  [{name}: "
                             f"{clip(pp_formula(formula))}]")
            walk(premise, subgoal, inner, depth + 1)

    walk(proof, goal, {}, 0)
    return "\n".join(lines)
