"""Proof objects and the trusted proof checker (the rule set Delta, §2.2).

A proof is a natural-deduction tree (:class:`repro.proof.proofs.Proof`);
the checker (:mod:`repro.proof.checker`) verifies, top-down, that the tree
proves a given goal formula under the rules in :mod:`repro.proof.rules`:

* the predicate-calculus rules (implication/conjunction/disjunction
  introduction and elimination, universal quantification, hypotheses), and
* the two's-complement arithmetic rules — the paper's "first-order
  predicate calculus extended with two's-complement integer arithmetic".

Each arithmetic rule is an axiom *schema* whose instances are verified by a
small side-condition computation (e.g. evaluating a ground inequality, or
checking a Fourier-Motzkin refutation for the ``linarith`` rule).  Every
schema's unconditional soundness is property-tested by random instantiation
in ``tests/proof/test_rule_soundness.py``.

This checker and the LF type checker (:mod:`repro.lf`) are independent
validators of the same proofs; the PCC pipeline uses LF (as in the paper)
and the test suite cross-checks the two on every shipped proof.
"""

from repro.proof.proofs import Proof, proof_size, proof_rules_used
from repro.proof.checker import check_proof
from repro.proof.store import ProofStore, ProofStoreStats, subproof_digest
from repro.proof import rules

__all__ = [
    "Proof",
    "proof_size",
    "proof_rules_used",
    "check_proof",
    "rules",
    "ProofStore",
    "ProofStoreStats",
    "subproof_digest",
]
