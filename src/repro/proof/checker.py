"""The trusted proof checker for the rule set Delta.

Checking is a single top-down pass: at each node the rule function computes
the premise obligations from the goal and parameters, and the checker
recurses.  Safety-predicate proofs share subtrees heavily — diamond control
flow makes both the VC and its proof DAGs — so results are memoized per
``(proof identity, goal)`` together with the *hypotheses the subproof
actually used*: a proof that checked once remains valid in any scope that
still binds those labels to the same formulas (adding hypotheses can never
invalidate a natural-deduction proof).  Without this, checking a deep
conditional chain re-verifies the shared join-point proof once per path —
exponential work.

The checker never trusts the proof's own claims: goals flow downward from
the consumer-computed safety predicate, and every rule application is
re-verified.  Any mismatch raises :class:`repro.errors.ProofError`.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ProofError
from repro.logic.formulas import Formula
from repro.proof.proofs import Proof
from repro.proof.rules import RULES


def _used_labels(proof: Proof) -> frozenset:
    """Hypothesis labels referenced anywhere in ``proof`` (DAG-aware)."""
    labels: set[str] = set()
    seen: set[int] = set()
    stack = [proof]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node.rule == "hyp" and node.params:
            label = node.params[0]
            if isinstance(label, str):
                labels.add(label)
        stack.extend(node.premises)
    return frozenset(labels)


def check_proof(proof: Proof, goal: Formula,
                hypotheses: Mapping[str, Formula] | None = None,
                max_depth: int = 100_000) -> None:
    """Verify that ``proof`` proves ``goal`` under ``hypotheses``.

    Raises :class:`ProofError` on any rule violation; returns None on
    success.  ``max_depth`` bounds the recursion to keep a malicious proof
    from exhausting the stack — real proofs are wide, not deep.
    """
    hyps: dict[str, Formula] = dict(hypotheses or {})
    # (id(proof), goal) -> tuple of (label, formula) pairs the subproof
    # relied on when it first checked.
    cache: dict[tuple[int, Formula], tuple] = {}
    label_cache: dict[int, frozenset] = {}

    def labels_of(node: Proof) -> frozenset:
        cached = label_cache.get(id(node))
        if cached is None:
            cached = _used_labels(node)
            label_cache[id(node)] = cached
        return cached

    def run(node: Proof, node_goal: Formula,
            scope: dict[str, Formula], depth: int) -> None:
        if depth > max_depth:
            raise ProofError("proof exceeds maximum depth")
        if not isinstance(node, Proof):
            raise ProofError(f"not a proof node: {node!r}")
        key = (id(node), node_goal)
        requirements = cache.get(key)
        if requirements is not None:
            if all(scope.get(label) == formula
                   for label, formula in requirements):
                return
        rule = RULES.get(node.rule)
        if rule is None:
            raise ProofError(f"unknown rule {node.rule!r}")
        try:
            obligations = rule(node_goal, node.params, scope)
        except ProofError:
            raise
        except Exception as error:
            # A malformed parameter tuple must read as an invalid proof,
            # not crash the consumer.
            raise ProofError(
                f"rule {node.rule!r} rejected malformed parameters: "
                f"{error}") from error
        if len(obligations) != len(node.premises):
            raise ProofError(
                f"rule {node.rule!r} needs {len(obligations)} premises, "
                f"proof supplies {len(node.premises)}")
        for premise, (subgoal, extra) in zip(node.premises, obligations):
            if extra:
                inner = dict(scope)
                inner.update(extra)
            else:
                inner = scope
            run(premise, subgoal, inner, depth + 1)
        used = labels_of(node) & scope.keys()
        cache[key] = tuple(sorted(
            (label, scope[label]) for label in used))

    run(proof, goal, hyps, 0)
