"""Content-addressed subproof store: hash-consed LF proof terms.

Table 1 shows proofs (814–2190 B) dwarfing the code they certify
(16–172 B), and a fleet of extensions certified under one policy repeats
the same subproofs constantly — every filter proves the same
precondition-shaped obligations, and an upgraded extension re-proves
every obligation its edit did not touch.  This store makes those bytes
shared: an LF proof term is keyed by the SHA-256 of its canonical
:mod:`repro.lf.binary` encoding (the same content-addressing discipline
as the loader's validation cache), so identical subproofs are stored
once no matter how many extensions carry them.

**Trust model.**  The store is *untrusted* plumbing, exactly like the
proof section of a PCC binary: nothing admits code because a digest
matched.  Every subproof that leaves the store is re-hashed against its
key before it is returned (a corrupted entry is dropped and reported as
a miss — fail closed), and everything assembled from stored subproofs
goes through the full :func:`repro.pcc.validate` pipeline — VC
recomputation plus LF type-checking — before admission.  A forged,
stale, substituted, or bit-flipped entry can therefore waste producer
time, never flip a consumer verdict; ``tests/proof/test_store_tampering
.py`` holds the store to that.

Alongside the blob map the store keeps a *binding* index
``(policy fingerprint, obligation digest) -> subproof digest`` so an
incremental certifier can ask "do we already hold a proof of this exact
obligation under this exact policy?", and a *manifest* index
``(fingerprint, program key) -> ordered obligation digests`` so a warm
upgrade chain can skip recomputing a base container's obligations
entirely.  Both are hints for the untrusted producer: a binding whose
subproof has been evicted or corrupted simply misses, and consumers
(:func:`repro.pcc.incremental.apply_patch`) never consult either —
they recompute obligations from scratch.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import LfError
from repro.lf.binary import deserialize_lf, serialize_lf
from repro.lf.syntax import LfTerm

__all__ = [
    "ProofStore",
    "ProofStoreStats",
    "frame_sections",
    "subproof_digest",
    "unframe_sections",
]

#: How many program manifests (ordered obligation-digest lists) to keep.
_MANIFEST_CAPACITY = 256


def frame_sections(table: bytes, stream: bytes) -> bytes:
    """Length-frame the two :func:`serialize_lf` sections into one blob.

    The framing is part of the digest's definition: hashing the bare
    concatenation would let a (table, stream) boundary shift produce the
    same digest for a different term.
    """
    return (len(table).to_bytes(4, "little") + table
            + len(stream).to_bytes(4, "little") + stream)


def unframe_sections(blob: bytes) -> tuple[bytes, bytes]:
    """Split a framed blob back into (table, stream); raises LfError."""
    if len(blob) < 4:
        raise LfError("framed LF blob shorter than its table header")
    table_len = int.from_bytes(blob[:4], "little")
    if len(blob) < 8 + table_len:
        raise LfError("framed LF blob truncated in its symbol table")
    table = blob[4:4 + table_len]
    stream_len = int.from_bytes(blob[4 + table_len:8 + table_len], "little")
    stream = blob[8 + table_len:]
    if len(stream) != stream_len:
        raise LfError("framed LF blob stream length mismatch")
    return table, stream


def subproof_digest(term: LfTerm) -> str:
    """SHA-256 of the canonical LF wire encoding of ``term``.

    :func:`serialize_lf` is purely structural — binder hints never reach
    the wire, DAG back-references are assigned in traversal order, and
    the symbol table is ordered by first occurrence — so the digest is a
    pure function of the term's structure, stable across processes and
    ``PYTHONHASHSEED`` values (pinned by ``tests/pcc/test_determinism
    .py``).
    """
    return hashlib.sha256(frame_sections(*serialize_lf(term))).hexdigest()


@dataclass(frozen=True)
class ProofStoreStats:
    """Point-in-time counters of one :class:`ProofStore`.

    ``puts`` counts :meth:`~ProofStore.put` calls; ``dedup_hits`` the
    subset that found their term already stored (hash-consing at work).
    ``hits + misses == gets``; ``verify_failures`` counts entries that
    failed their read-time re-hash and were dropped (each also counts as
    a miss).  ``bytes_stored`` is the live blob payload; ``bytes_shared``
    is what duplicate puts *would* have added without content
    addressing.
    """

    puts: int
    dedup_hits: int
    gets: int
    hits: int
    misses: int
    verify_failures: int
    evictions: int
    entries: int
    bytes_stored: int
    bytes_shared: int
    capacity: int


class ProofStore:
    """A bounded, thread-safe, content-addressed map of LF subproofs.

    ``capacity`` bounds the number of stored blobs (LRU eviction, same
    shape as the loader's verdict cache).  All methods are safe to call
    concurrently; the hammering test models the loader's LRU suite.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("proof store capacity must be at least 1")
        self.capacity = capacity
        self._blobs: OrderedDict[str, bytes] = OrderedDict()
        self._bindings: dict[tuple[str, str], str] = {}
        self._manifests: OrderedDict[tuple[str, str],
                                     tuple[str, ...]] = OrderedDict()
        self._lock = threading.Lock()
        self._puts = 0
        self._dedup_hits = 0
        self._gets = 0
        self._hits = 0
        self._misses = 0
        self._verify_failures = 0
        self._evictions = 0
        self._bytes_shared = 0

    # -- blobs -----------------------------------------------------------

    def put(self, term: LfTerm) -> str:
        """Store ``term`` (hash-consed); returns its content digest."""
        blob = frame_sections(*serialize_lf(term))
        digest = hashlib.sha256(blob).hexdigest()
        with self._lock:
            self._puts += 1
            if digest in self._blobs:
                self._blobs.move_to_end(digest)
                self._dedup_hits += 1
                self._bytes_shared += len(blob)
                return digest
            self._blobs[digest] = blob
            self._evict_over_capacity()
        return digest

    def get(self, digest: str) -> LfTerm | None:
        """The stored term for ``digest``, or None.

        The blob is re-hashed before deserialization: an entry that no
        longer matches its key (bit rot, tampering) is dropped and
        reported as a miss — the store fails closed rather than handing
        back a subproof it cannot vouch for.  Deserialization itself is
        the fully validating :func:`repro.lf.binary.deserialize_lf`.
        """
        with self._lock:
            self._gets += 1
            blob = self._blobs.get(digest)
            if blob is None:
                self._misses += 1
                return None
            if hashlib.sha256(blob).hexdigest() != digest:
                del self._blobs[digest]
                self._verify_failures += 1
                self._misses += 1
                return None
            self._blobs.move_to_end(digest)
        try:
            term = deserialize_lf(*unframe_sections(blob))
        except LfError:
            with self._lock:
                self._blobs.pop(digest, None)
                self._verify_failures += 1
                self._misses += 1
            return None
        with self._lock:
            self._hits += 1
        return term

    def get_blob(self, digest: str) -> bytes | None:
        """The verified raw framed blob for ``digest`` (for shipping in a
        patch), or None; same fail-closed re-hash as :meth:`get`."""
        with self._lock:
            blob = self._blobs.get(digest)
            if blob is None:
                return None
            if hashlib.sha256(blob).hexdigest() != digest:
                del self._blobs[digest]
                self._verify_failures += 1
                return None
            self._blobs.move_to_end(digest)
            return blob

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._blobs

    def __len__(self) -> int:
        with self._lock:
            return len(self._blobs)

    def _evict_over_capacity(self) -> None:
        # Caller holds the lock.
        while len(self._blobs) > self.capacity:
            evicted, __ = self._blobs.popitem(last=False)
            self._evictions += 1
            # Bindings to the evicted blob are now dangling; lookup()
            # treats them as misses, so leaving them costs nothing, but
            # pruning keeps the index bounded by the blob map.
            stale = [key for key, value in self._bindings.items()
                     if value == evicted]
            for key in stale:
                del self._bindings[key]

    # -- obligation bindings ---------------------------------------------

    def bind(self, fingerprint: str, obligation: str, digest: str) -> None:
        """Record that ``digest`` proves ``obligation`` under the policy
        with ``fingerprint``.  A binding is advisory (see module doc)."""
        with self._lock:
            self._bindings[(fingerprint, obligation)] = digest

    def lookup(self, fingerprint: str, obligation: str) -> str | None:
        """The bound subproof digest, or None.  Scoped by the full policy
        fingerprint, so a policy change (even a renegotiated
        precondition) can never resurrect a stale proof — the same
        discipline as the loader's verdict cache."""
        with self._lock:
            digest = self._bindings.get((fingerprint, obligation))
            if digest is None:
                return None
            if digest not in self._blobs:
                # Evicted or corrupted-and-dropped: the binding is dead.
                del self._bindings[(fingerprint, obligation)]
                return None
            return digest

    # -- program manifests -------------------------------------------------

    def record_manifest(self, fingerprint: str, program_key: str,
                        part_digests: tuple[str, ...]) -> None:
        """Remember the ordered effective-obligation digests of one
        program under one policy (``program_key`` hashes the program's
        code and invariant sections).  Purely a producer-side shortcut:
        a warm upgrade chain re-harvests its own previous result without
        rerunning the VC generator over the base.  Consumers never read
        manifests, so a wrong one can waste time, never flip a verdict.
        """
        with self._lock:
            self._manifests[(fingerprint, program_key)] = \
                tuple(part_digests)
            self._manifests.move_to_end((fingerprint, program_key))
            while len(self._manifests) > _MANIFEST_CAPACITY:
                self._manifests.popitem(last=False)

    def manifest(self, fingerprint: str,
                 program_key: str) -> tuple[str, ...] | None:
        """The recorded obligation digests for a program, or None."""
        with self._lock:
            parts = self._manifests.get((fingerprint, program_key))
            if parts is not None:
                self._manifests.move_to_end((fingerprint, program_key))
            return parts

    # -- reporting --------------------------------------------------------

    def stats(self) -> ProofStoreStats:
        with self._lock:
            return ProofStoreStats(
                puts=self._puts,
                dedup_hits=self._dedup_hits,
                gets=self._gets,
                hits=self._hits,
                misses=self._misses,
                verify_failures=self._verify_failures,
                evictions=self._evictions,
                entries=len(self._blobs),
                bytes_stored=sum(len(blob)
                                 for blob in self._blobs.values()),
                bytes_shared=self._bytes_shared,
                capacity=self.capacity,
            )

    # -- testing hooks ----------------------------------------------------

    def _corrupt(self, digest: str, blob: bytes) -> None:
        """Overwrite a stored blob *without* re-keying (tampering tests
        only; there is deliberately no public API that can do this)."""
        with self._lock:
            if digest in self._blobs:
                self._blobs[digest] = blob
