"""Natural-deduction proof trees.

A :class:`Proof` node names an inference rule, carries the rule-specific
parameters (terms, formulas, hypothesis labels), and holds the subproofs of
the rule's premises.  Proofs say nothing about what they prove — the goal is
supplied externally and the checker verifies the match — which is exactly
the paper's arrangement: the consumer computes the safety predicate itself
and checks the received proof against it, so a proof of the wrong predicate
is useless to an attacker.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Proof:
    """One inference step: ``rule`` applied to ``premises`` with ``params``.

    ``params`` content is rule-specific; see :mod:`repro.proof.rules` for
    each rule's expectations.  Proof objects are immutable and freely
    shared — large safety-predicate proofs reuse subproofs heavily, which
    both the size accounting and the LF encoder preserve.
    """

    rule: str
    params: tuple = ()
    premises: tuple["Proof", ...] = field(default_factory=tuple)


def proof_size(proof: Proof) -> int:
    """Number of inference nodes, counting shared subtrees once.

    This is the honest size of the proof as transmitted: the binary LF
    encoding also shares identical subterms through its symbol table.
    """
    seen: set[int] = set()

    def walk(node: Proof) -> int:
        if id(node) in seen:
            return 0
        seen.add(id(node))
        return 1 + sum(walk(premise) for premise in node.premises)

    return walk(proof)


def proof_rules_used(proof: Proof) -> dict[str, int]:
    """Histogram of rule names in the proof (shared subtrees counted once).

    The size of a PCC binary's relocation section grows with the number of
    *distinct* rules used (paper §2.3), so this is what the container
    format's symbol table is built from.
    """
    seen: set[int] = set()
    histogram: dict[str, int] = {}

    def walk(node: Proof) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        histogram[node.rule] = histogram.get(node.rule, 0) + 1
        for premise in node.premises:
            walk(premise)

    walk(proof)
    return histogram
